//! Program isolation at flow and port granularity (§4.1.1): the paper's
//! filtering supports exact 5-tuples, masked address ranges, and ingress
//! ports.

use p4runpro::traffic::{frame_for, make_flows};
use p4runpro::Controller;

#[test]
fn port_granularity_isolation() {
    // Two tenants on disjoint port sets, same traffic shape.
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy(
        "program tenant_a(<meta.ingress_port, 0, 0xfff8>) { FORWARD(10); }",
    )
    .unwrap();
    ctl.deploy(
        "program tenant_b(<meta.ingress_port, 8, 0xfff8>) { FORWARD(20); }",
    )
    .unwrap();
    let flow = make_flows(1, 1, 0.0)[0].tuple;
    let frame = frame_for(&flow, 64);
    for port in 0..8u16 {
        let out = ctl.inject(port, &frame).unwrap();
        assert_eq!(out.emitted[0].0, 10, "ports 0-7 belong to tenant A");
    }
    for port in 8..16u16 {
        let out = ctl.inject(port, &frame).unwrap();
        assert_eq!(out.emitted[0].0, 20, "ports 8-15 belong to tenant B");
    }
    // Ports outside both ranges hit neither program.
    assert!(ctl.inject(33, &frame).unwrap().dropped);
}

#[test]
fn exact_five_tuple_isolation() {
    let flows = make_flows(2, 2, 0.0);
    let (a, b) = (flows[0].tuple, flows[1].tuple);
    let mut ctl = Controller::with_defaults().unwrap();
    let filter = format!(
        "<hdr.ipv4.src, {}, 0xffffffff>, <hdr.ipv4.dst, {}, 0xffffffff>, \
         <hdr.udp.src_port, {}, 0xffff>, <hdr.udp.dst_port, {}, 0xffff>, \
         <hdr.ipv4.proto, 17, 0xff>",
        a.src_addr, a.dst_addr, a.src_port, a.dst_port
    );
    ctl.deploy(&format!("program one_flow({filter}) {{ FORWARD(9); }}"))
        .unwrap();
    let out = ctl.inject(0, &frame_for(&a, 64)).unwrap();
    assert_eq!(out.emitted[0].0, 9, "the exact flow matches");
    assert!(ctl.inject(0, &frame_for(&b, 64)).unwrap().dropped, "any other flow misses");
    // Same addresses, different source port: still a different flow.
    let mut a2 = a;
    a2.src_port = a.src_port.wrapping_add(1);
    assert!(ctl.inject(0, &frame_for(&a2, 64)).unwrap().dropped);
}

#[test]
fn address_range_isolation_with_masks() {
    // Coarser isolation: /24 prefixes via masks (the paper's "matching an
    // address range with a mask").
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy("program net_a(<hdr.ipv4.dst, 10.2.1.0, 0xffffff00>) { FORWARD(1); }")
        .unwrap();
    ctl.deploy("program net_b(<hdr.ipv4.dst, 10.2.2.0, 0xffffff00>) { FORWARD(2); }")
        .unwrap();
    let mut flow = make_flows(3, 1, 0.0)[0].tuple;
    flow.dst_addr = std::net::Ipv4Addr::new(10, 2, 1, 77);
    assert_eq!(ctl.inject(0, &frame_for(&flow, 64)).unwrap().emitted[0].0, 1);
    flow.dst_addr = std::net::Ipv4Addr::new(10, 2, 2, 77);
    assert_eq!(ctl.inject(0, &frame_for(&flow, 64)).unwrap().emitted[0].0, 2);
    flow.dst_addr = std::net::Ipv4Addr::new(10, 2, 3, 77);
    assert!(ctl.inject(0, &frame_for(&flow, 64)).unwrap().dropped);
}

#[test]
fn state_is_private_per_program() {
    // Two programs with identical logic and identical virtual addresses:
    // their buckets must live in disjoint physical regions.
    let mut ctl = Controller::with_defaults().unwrap();
    for (name, net) in [("pa", "10.2.1.0"), ("pb", "10.2.2.0")] {
        let src = format!(
            "@ m_{name} 256\nprogram {name}(<hdr.ipv4.dst, {net}, 0xffffff00>) {{\n\
             LOADI(sar, 1);\nHASH_5_TUPLE_MEM(m_{name});\nMEMADD(m_{name});\n}}"
        );
        ctl.deploy(&src).unwrap();
    }
    let mut flow = make_flows(4, 1, 0.0)[0].tuple;
    flow.dst_addr = std::net::Ipv4Addr::new(10, 2, 1, 9);
    for _ in 0..5 {
        ctl.inject(0, &frame_for(&flow, 64)).unwrap();
    }
    let a: u64 = ctl.read_memory("pa", "m_pa").unwrap().iter().map(|&v| u64::from(v)).sum();
    let b: u64 = ctl.read_memory("pb", "m_pb").unwrap().iter().map(|&v| u64::from(v)).sum();
    assert_eq!(a, 5, "program A counted its traffic");
    assert_eq!(b, 0, "program B's memory is untouched");
}
