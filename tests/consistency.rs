//! Consistent-update tests (§4.3, Figure 6): no packet may ever observe a
//! half-installed or half-removed program, even when packets interleave
//! with every single entry update of an install/remove batch.

use netpkt::{CacheOp, ParsedPacket};
use p4runpro::p4rp_compiler::consistency::{plan_install, plan_remove};
use p4runpro::rmt_sim::switch::ControlOp;
use p4runpro::Controller;
use p4runpro::p4rp_progs::sources;

fn cache_source() -> String {
    sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &[(0x8888, 512)])
}

fn read_frame(key: u64) -> Vec<u8> {
    let flows = p4runpro::traffic::make_flows(2, 1, 0.0);
    p4runpro::traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, key, 0)
}

/// A packet injected between any two control operations of an install must
/// behave as either "program absent" (dropped here: no other program is
/// deployed) or "program fully present" (hit answered with the value) —
/// never a hybrid like "matched the filter but found no operations".
#[test]
fn packets_interleaved_with_install_see_old_or_new_only() {
    // Build the op sequence by planning against a scratch controller.
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy(&cache_source()).unwrap();
    ctl.write_memory("cache", "mem1", 512, 777).unwrap();
    let installed = ctl.program("cache").unwrap().clone();
    let batches = plan_install(
        &installed.image,
        ctl.dataplane(),
        ctl.switch().field_table(),
    )
    .unwrap();
    let ops: Vec<ControlOp> = batches.into_iter().flat_map(|b| b.ops).collect();
    let n_ops = ops.len();
    assert!(n_ops > 10);

    // For every prefix length k: fresh switch, apply k ops, probe.
    for k in 0..=n_ops {
        let mut ctl = Controller::with_defaults().unwrap();
        for op in &ops[..k] {
            ctl.switch_mut().apply_op(op).unwrap();
        }
        // Pre-load the value so a "new state" probe returns it. This write
        // bypasses the program abstraction on purpose.
        let region = installed.image.mem_regions[0].clone();
        ctl.switch_mut()
            .apply_op(&ControlOp::WriteReg {
                array: region.rpb.array_ref(),
                addr: region.offset + 512,
                value: 777,
            })
            .unwrap();

        let out = ctl.switch_mut().process_frame(0, &read_frame(0x8888)).unwrap();
        if out.dropped {
            // Old state: the filter is not yet active — fine.
            continue;
        }
        // New state: the reply must be complete and correct.
        assert_eq!(out.emitted.len(), 1, "prefix {k}/{n_ops}");
        assert_eq!(out.emitted[0].0, 0, "returned out the ingress port");
        let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
        assert_eq!(
            reply.netcache.unwrap().value,
            777,
            "prefix {k}/{n_ops}: partial program must be invisible"
        );
    }
}

/// During removal, the filter goes first: after any prefix of the removal
/// batch, a packet either still gets full service or none at all.
#[test]
fn packets_interleaved_with_removal_see_new_or_gone_only() {
    let mut base = Controller::with_defaults().unwrap();
    base.deploy(&cache_source()).unwrap();
    let handles = base.program("cache").unwrap().handles.clone();
    let batches = plan_remove(&handles);
    let ops: Vec<ControlOp> = batches.into_iter().flat_map(|b| b.ops).collect();

    for k in 0..=ops.len() {
        let mut ctl = Controller::with_defaults().unwrap();
        ctl.deploy(&cache_source()).unwrap();
        ctl.write_memory("cache", "mem1", 512, 4242).unwrap();
        for op in &ops[..k] {
            ctl.switch_mut().apply_op(op).unwrap();
        }
        let out = ctl.switch_mut().process_frame(0, &read_frame(0x8888)).unwrap();
        if out.dropped {
            continue; // program already deactivated — fine
        }
        let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
        assert_eq!(
            reply.netcache.unwrap().value,
            4242,
            "prefix {k}: a still-active program must be fully functional"
        );
    }
}

/// The Figure 6 scenario: terminating prog1 and adding prog2 in sequence,
/// with traffic interleaved, never mis-routes a packet between them.
#[test]
fn terminate_then_add_is_isolated() {
    let mut ctl = Controller::with_defaults().unwrap();
    let prog1 = cache_source();
    ctl.deploy(&prog1).unwrap();
    ctl.write_memory("cache", "mem1", 512, 1).unwrap();

    // prog2: same traffic class but forwards to a different port.
    let prog2 = "program cache2(<hdr.udp.dst_port, 7777, 0xffff>) { FORWARD(40); }";

    // Interleave: revoke prog1, probe, deploy prog2, probe.
    let out = ctl.inject(0, &read_frame(0x8888)).unwrap();
    assert_eq!(out.emitted[0].0, 0, "prog1 serves the hit");

    ctl.revoke("cache").unwrap();
    let out = ctl.inject(0, &read_frame(0x8888)).unwrap();
    assert!(out.dropped, "no program between the two updates");

    ctl.deploy(prog2).unwrap();
    let out = ctl.inject(0, &read_frame(0x8888)).unwrap();
    assert_eq!(out.emitted[0].0, 40, "prog2 owns the traffic now");

    // prog1's memory was reset before release: redeploying sees zeros.
    ctl.revoke("cache2").unwrap();
    ctl.deploy(&prog1).unwrap();
    assert_eq!(ctl.read_memory("cache", "mem1").unwrap()[512], 0);
}

/// The same invariant read off the telemetry event stream: while the
/// install's entry writes land one by one, every probe packet injected
/// between two writes must produce exactly one terminal traffic-manager
/// verdict — "dropped" (old state) or "returned with the full answer"
/// (new state) — and never a forward/multicast to some half-configured
/// destination. The telemetry epoch must not move either: entry writes
/// within one lifecycle event never split an epoch, so no packet-visible
/// event can be attributed to a state between them.
#[test]
fn event_stream_shows_no_packet_event_between_entry_writes() {
    let mut scratch = Controller::with_defaults().unwrap();
    scratch.deploy(&cache_source()).unwrap();
    let installed = scratch.program("cache").unwrap().clone();
    let batches = plan_install(
        &installed.image,
        scratch.dataplane(),
        scratch.switch().field_table(),
    )
    .unwrap();
    let ops: Vec<ControlOp> = batches.into_iter().flat_map(|b| b.ops).collect();
    let region = installed.image.mem_regions[0].clone();

    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_telemetry();
    let epoch0 = ctl.switch().telemetry().unwrap().epoch;
    let mut prev = ctl.switch().telemetry().unwrap().clone();
    let mut served = 0usize;
    for (k, op) in ops.iter().enumerate() {
        ctl.switch_mut().apply_op(op).unwrap();
        // Pre-load the cached value so a "new state" probe can answer.
        ctl.switch_mut()
            .apply_op(&ControlOp::WriteReg {
                array: region.rpb.array_ref(),
                addr: region.offset + 512,
                value: 777,
            })
            .unwrap();
        let out = ctl.switch_mut().process_frame(0, &read_frame(0x8888)).unwrap();

        let now = ctl.switch().telemetry().unwrap().clone();
        let dropped = now.tm.dropped.get() - prev.tm.dropped.get();
        let returned = now.tm.returned.get() - prev.tm.returned.get();
        let forwarded = now.tm.forwarded.get() - prev.tm.forwarded.get();
        let multicast = now.tm.multicast.get() - prev.tm.multicast.get();
        assert_eq!(
            dropped + returned,
            1,
            "write {k}/{}: exactly one terminal verdict per probe",
            ops.len()
        );
        assert_eq!(forwarded + multicast, 0, "write {k}: no mis-route mid-install");
        assert_eq!(now.epoch, epoch0, "write {k}: entry writes never split an epoch");
        if returned == 1 {
            served += 1;
            let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
            assert_eq!(reply.netcache.unwrap().value, 777, "write {k}: complete answer");
        }
        prev = now;
    }
    assert!(served >= 1, "the probe after the final write is served");
    assert_eq!(
        prev.tm.dropped.get() + prev.tm.returned.get(),
        ops.len() as u64,
        "event stream accounts for every probe"
    );
}
