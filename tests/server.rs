//! The runtime-control server end to end (docs/SERVER.md).
//!
//! The acceptance bar from the issue:
//!
//! 1. **Fidelity** — a loopback session of several concurrent clients
//!    interleaving deploy/revoke/status/metrics completes with responses
//!    that match what a direct `Controller` produces **bit-for-bit** on
//!    every deterministic field (names, prog ids, entry counts, depths,
//!    passes, simulated update delays — never wall-clock durations, which
//!    do not replay).
//! 2. **Consistency** — after a drain shutdown the controller audits
//!    clean and the flight recorder holds zero invariant violations.
//! 3. **Backpressure** — over-limit clients receive an explicit `busy` /
//!    `rate_limited` reply, never a hang.
//! 4. **HTTP fold-in** — the same port answers one-shot Prometheus
//!    scrapes, refusing non-GET methods (405) and non-`/metrics` paths
//!    (404) instead of shrugging 200 at everything.

use p4runpro::p4rp_ctl::server::{serve, Client, ServerConfig};
use p4runpro::p4rp_ctl::telemetry::ServerStats;
use p4runpro::rmt_sim::trace::TraceConfig;
use p4runpro::Controller;
use serde::Value;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// Bind on an ephemeral port and return (listener, addr-string).
fn bind() -> (TcpListener, String) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    (listener, addr)
}

/// Start a server over a fresh traced controller on its own thread.
/// Returns the address and a handle yielding (final stats, controller).
#[allow(clippy::type_complexity)]
fn start_server(
    cfg: ServerConfig,
) -> (String, std::thread::JoinHandle<(ServerStats, Controller)>) {
    let (listener, addr) = bind();
    let handle = std::thread::spawn(move || {
        let mut ctl = Controller::with_defaults().unwrap();
        ctl.enable_trace(TraceConfig::default());
        let stats = serve(&mut ctl, listener, &cfg).unwrap();
        (stats, ctl)
    });
    (addr, handle)
}

fn get_u64(doc: &Value, key: &str) -> u64 {
    match doc.get(key) {
        Some(Value::U64(n)) => *n,
        other => panic!("field `{key}` not a u64: {other:?}"),
    }
}

fn get_str<'a>(doc: &'a Value, key: &str) -> &'a str {
    match doc.get(key) {
        Some(Value::Str(s)) => s.as_str(),
        other => panic!("field `{key}` not a string: {other:?}"),
    }
}

fn assert_ok(doc: &Value, context: &str) {
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{context}: {doc:?}");
}

/// The deterministic slice of one deploy report, as carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
struct DeployFacts {
    name: String,
    prog_id: u64,
    entries_installed: u64,
    depth: u64,
    passes: u64,
    update_delay_ns: u64,
}

fn deploy_facts(report: &Value) -> DeployFacts {
    DeployFacts {
        name: get_str(report, "name").to_string(),
        prog_id: get_u64(report, "prog_id"),
        entries_installed: get_u64(report, "entries_installed"),
        depth: get_u64(report, "depth"),
        passes: get_u64(report, "passes"),
        update_delay_ns: get_u64(report, "update_delay_ns"),
    }
}

fn source_for(i: usize) -> String {
    format!("program c{i}(<hdr.ipv4.dst, 10.1.{i}.1, 0xffffffff>) {{ FORWARD({}); }}", i + 1)
}

/// Concurrent clients interleave the whole request surface; the
/// responses must reproduce a direct controller bit-for-bit, and the
/// drained server must audit clean with a silent invariant checker.
#[test]
fn concurrent_sessions_match_direct_controller_bit_for_bit() {
    const CLIENTS: usize = 4;
    let (addr, server) = start_server(ServerConfig::default());

    let barrier = std::sync::Arc::new(std::sync::Barrier::new(CLIENTS));
    let mut workers = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        let barrier = barrier.clone();
        workers.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let source = source_for(i);
            // Phase A: everyone deploys a distinct program concurrently,
            // with status/metrics interleaved on the same sessions.
            barrier.wait();
            let deploy = c.deploy(&source).unwrap();
            let status = c.status().unwrap();
            let metrics = c.metrics().unwrap();
            // Phase B: everyone revokes their own program concurrently.
            barrier.wait();
            let revoke = c.revoke(&format!("c{i}")).unwrap();
            (source, deploy, status, metrics, revoke)
        }));
    }
    let mut sessions: Vec<(String, String, String, String, String)> =
        workers.into_iter().map(|w| w.join().unwrap()).collect();

    // One last session checks post-drain audit and stops the server.
    let mut closer = Client::connect(&addr).unwrap();
    let final_status = closer.status().unwrap();
    assert_ok(&serde::json::parse(&closer.shutdown().unwrap()).unwrap(), "shutdown");
    let (stats, ctl) = server.join().unwrap();

    // -- Consistency ---------------------------------------------------
    assert!(ctl.audit().unwrap().clean(), "audit dirty after drain");
    assert_eq!(ctl.trace_stats().violations, 0, "invariant violations recorded");
    let doc = serde::json::parse(&final_status).unwrap();
    assert_eq!(get_u64(&doc, "programs_deployed"), 0, "{final_status}");
    assert_eq!(stats.responses_err, 0, "unexpected errors: {stats:?}");
    assert_eq!(stats.requests, (CLIENTS * 4 + 2) as u64, "{stats:?}");
    assert_eq!(stats.batched_deploys, CLIENTS as u64, "{stats:?}");
    assert_eq!(stats.batched_revokes, CLIENTS as u64, "{stats:?}");
    assert_eq!(stats.accepted, (CLIENTS + 1) as u64, "{stats:?}");

    // Every status/metrics response parsed and reported ok.
    for (_, _, status, metrics, _) in &sessions {
        let s = serde::json::parse(status).unwrap();
        assert_ok(&s, "status");
        let m = serde::json::parse(metrics).unwrap();
        assert_ok(&m, "metrics");
        // The exposition inside the reply is well-formed.
        p4runpro::p4rp_ctl::parse_prometheus(get_str(&m, "exposition")).unwrap();
    }

    // -- Fidelity ------------------------------------------------------
    // The response prog_id reveals the global commit order the batches
    // chose. Replaying the sources in that order on a fresh controller
    // must reproduce every deterministic field exactly: commit applies a
    // program's own entries only, so per-program results depend on the
    // commit sequence, not on what shared a batch.
    let mut committed: Vec<(DeployFacts, String, String)> = sessions
        .drain(..)
        .map(|(source, deploy, _, _, revoke)| {
            let doc = serde::json::parse(&deploy).unwrap();
            assert_ok(&doc, "deploy");
            let reports = doc.get("reports").and_then(|v| v.as_array()).unwrap();
            assert_eq!(reports.len(), 1, "{deploy}");
            (deploy_facts(&reports[0]), source, revoke)
        })
        .collect();
    committed.sort_by_key(|(facts, _, _)| facts.prog_id);

    let mut direct = Controller::with_defaults().unwrap();
    for (facts, source, _) in &committed {
        let results = direct.deploy_many(std::slice::from_ref(source));
        let reports = results[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("direct deploy of `{}`: {e}", facts.name));
        assert_eq!(reports.len(), 1);
        let want = DeployFacts {
            name: reports[0].name.clone(),
            prog_id: u64::from(reports[0].prog_id),
            entries_installed: reports[0].entries_installed as u64,
            depth: reports[0].depth as u64,
            passes: u64::from(reports[0].passes),
            update_delay_ns: reports[0].update_delay.0,
        };
        assert_eq!(facts, &want, "server/direct deploy reports diverged");
    }
    for (facts, _, revoke) in &committed {
        let direct_report = direct.revoke_many(std::slice::from_ref(&facts.name))[0]
            .as_ref()
            .unwrap_or_else(|e| panic!("direct revoke of `{}`: {e}", facts.name))
            .clone();
        let doc = serde::json::parse(revoke).unwrap();
        assert_ok(&doc, "revoke");
        let report = doc.get("report").unwrap();
        assert_eq!(get_str(report, "name"), direct_report.name, "{revoke}");
        assert_eq!(
            get_u64(report, "update_delay_ns"),
            direct_report.update_delay.0,
            "server/direct revoke delay diverged for `{}`",
            facts.name
        );
    }
    assert!(direct.audit().unwrap().clean());
}

/// Over-limit clients are told so explicitly — a session past its rate
/// gets `rate_limited`, a connection past `max_clients` gets `busy` at
/// accept — and a flood never hangs: every request draws exactly one
/// reply line.
#[test]
fn over_limit_clients_get_explicit_rejections_not_hangs() {
    let cfg = ServerConfig { max_clients: 2, rate: Some(1), ..Default::default() };
    let (addr, server) = start_server(cfg);

    // Session 1: the token bucket holds one token (burst = rate = 1) and
    // the sim clock only advances on control-channel work, so the second
    // ping is deterministically over the rate.
    let mut a = Client::connect(&addr).unwrap();
    assert_ok(&serde::json::parse(&a.ping().unwrap()).unwrap(), "first ping");
    let doc = serde::json::parse(&a.ping().unwrap()).unwrap();
    assert_eq!(doc.get("ok"), Some(&Value::Bool(false)), "{doc:?}");
    assert_eq!(get_str(&doc, "error"), "rate_limited");

    // A second session fills `max_clients`; the third connection is
    // refused with a one-line `busy` reply instead of dangling.
    let _b = Client::connect(&addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut refused = TcpStream::connect(&addr).unwrap();
    let mut line = String::new();
    refused.read_to_string(&mut line).unwrap();
    let doc = serde::json::parse(line.trim()).unwrap_or_else(|e| panic!("{e}: {line:?}"));
    assert_eq!(get_str(&doc, "error"), "busy", "{line:?}");

    // Flood: many requests on one socket; exactly one reply line each
    // (ok or explicit rejection), no hang, no dropped request.
    drop(_b);
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut flood = Client::connect(&addr).unwrap();
    let mut outcomes = std::collections::BTreeMap::new();
    for _ in 0..40 {
        let doc = serde::json::parse(&flood.status().unwrap()).unwrap();
        let outcome = match doc.get("ok") {
            Some(Value::Bool(true)) => "ok".to_string(),
            _ => get_str(&doc, "error").to_string(),
        };
        *outcomes.entry(outcome).or_insert(0u32) += 1;
    }
    assert_eq!(outcomes.values().sum::<u32>(), 40);
    assert!(outcomes.contains_key("rate_limited"), "{outcomes:?}");

    // `shutdown` is exempt from admission control — even a fully
    // rate-limited session can always drain the server.
    assert_ok(&serde::json::parse(&flood.shutdown().unwrap()).unwrap(), "shutdown");
    let (stats, _ctl) = server.join().unwrap();
    assert!(stats.rejected_rate_limited > 0, "{stats:?}");
    assert_eq!(stats.rejected_max_clients, 1, "{stats:?}");
}

/// One-shot HTTP over the same port: non-GET methods are 405, paths
/// other than `/metrics` are 404, and a real scrape returns a parseable
/// exposition that includes the server's own counters.
#[test]
fn http_scrapes_route_by_method_and_path() {
    let (addr, server) = start_server(ServerConfig::default());

    let http = |request: &str| -> String {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };

    // Seed some state first so the scrape carries real rows.
    let mut c = Client::connect(&addr).unwrap();
    assert_ok(&serde::json::parse(&c.deploy(&source_for(0)).unwrap()).unwrap(), "deploy");

    let resp = http("POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 405 "), "{resp}");
    assert!(resp.contains("Allow: GET"), "{resp}");
    let resp = http("GET /other HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 404 "), "{resp}");
    let resp = http("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200 "), "{resp}");
    let body = resp.split("\r\n\r\n").nth(1).unwrap();
    let samples = p4runpro::p4rp_ctl::parse_prometheus(body).unwrap();
    assert!(samples.iter().any(|s| s.name == "p4rp_server_requests_total"), "{body}");
    let deployed = samples.iter().find(|s| s.name == "p4rp_programs_deployed").unwrap();
    assert_eq!(deployed.value, 1.0, "{body}");

    assert_ok(&serde::json::parse(&c.shutdown().unwrap()).unwrap(), "shutdown");
    let (stats, _ctl) = server.join().unwrap();
    assert_eq!(stats.http_gets, 1, "{stats:?}");
    assert_eq!(stats.http_rejected, 2, "{stats:?}");
}

/// The CI `server-smoke` path: start, deploy over the line protocol,
/// scrape over HTTP, drain, and come back with coherent counters in
/// both the final stats and the controller's own telemetry.
#[test]
fn server_smoke_deploy_scrape_drain() {
    let (addr, server) = start_server(ServerConfig::default());
    let mut c = Client::connect(&addr).unwrap();
    assert_ok(&serde::json::parse(&c.deploy(&source_for(3)).unwrap()).unwrap(), "deploy");
    let m = serde::json::parse(&c.metrics().unwrap()).unwrap();
    assert_ok(&m, "metrics");
    let samples = p4runpro::p4rp_ctl::parse_prometheus(get_str(&m, "exposition")).unwrap();
    assert!(samples.iter().any(|s| s.name == "p4rp_programs_deployed"), "scrape lacks gauges");
    let t = serde::json::parse(&c.trace().unwrap()).unwrap();
    assert_ok(&t, "trace");
    assert!(get_u64(&t, "recorded") > 0, "{t:?}");
    assert_ok(&serde::json::parse(&c.shutdown().unwrap()).unwrap(), "shutdown");

    let (stats, ctl) = server.join().unwrap();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.requests, 4);
    assert_eq!(stats.responses_ok, 4);
    assert_eq!(stats.responses_err + stats.rejected() + stats.parse_errors, 0, "{stats:?}");
    assert!(stats.request_latency.count() >= 4, "{stats:?}");
    // The drained controller still carries the final server section, so
    // `status --json` consumers see how the session ended.
    let report = ctl.telemetry_report();
    let sv = report.server.expect("server section in telemetry");
    assert_eq!(sv.requests, 4);
    // Request lifecycle events reached the flight recorder.
    let trace = ctl.trace().expect("trace enabled");
    let kinds: Vec<&str> = trace.events().map(|e| e.kind.name()).collect();
    assert!(kinds.contains(&"request_begin"), "no request_begin in trace");
    assert!(kinds.contains(&"request_end"), "no request_end in trace");
}

/// Malformed requests draw line-numbered parse errors and never wedge
/// the session; well-formed requests after them still work.
#[test]
fn malformed_requests_get_line_numbered_errors() {
    let (addr, server) = start_server(ServerConfig::default());
    let mut c = Client::connect(&addr).unwrap();

    let reply = c.request_line("this is not json").unwrap();
    let doc = serde::json::parse(&reply).unwrap();
    assert_eq!(get_str(&doc, "error"), "parse", "{reply}");
    assert!(get_str(&doc, "detail").starts_with("line 1:"), "{reply}");

    let reply = c.request_line(r#"{"op": "ping"}"#).unwrap();
    let doc = serde::json::parse(&reply).unwrap();
    assert!(get_str(&doc, "detail").contains("line 2") , "{reply}");
    assert!(get_str(&doc, "detail").contains("missing `id`"), "{reply}");

    let reply = c.request_line(r#"{"id": 1, "op": "deploy", "source": 5}"#).unwrap();
    let doc = serde::json::parse(&reply).unwrap();
    assert!(get_str(&doc, "detail").contains("`source` must be a string"), "{reply}");

    let reply = c.request_line(r#"{"id": 1, "op": "frobnicate"}"#).unwrap();
    let doc = serde::json::parse(&reply).unwrap();
    assert!(get_str(&doc, "detail").contains("unknown op `frobnicate`"), "{reply}");

    // The session survives all of that.
    assert_ok(&serde::json::parse(&c.ping().unwrap()).unwrap(), "ping after garbage");
    assert_ok(&serde::json::parse(&c.shutdown().unwrap()).unwrap(), "shutdown");
    let (stats, _ctl) = server.join().unwrap();
    assert_eq!(stats.parse_errors, 4, "{stats:?}");
    assert_eq!(stats.responses_ok, 2, "{stats:?}");
}
