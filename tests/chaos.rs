//! Chaos-testing the control plane: deterministic fault injection,
//! transactional rollback, and post-reset reconciliation (docs/CHAOS.md).
//!
//! The fixed-seed acceptance scenario faults op 2 of a cache program's
//! install batch and proves the deploy rolls back without a trace: the
//! device audit is clean, the resource gauges are bit-identical to the
//! pre-deploy snapshot, zero invariants fired, and the same seed
//! reproduces the identical trace fingerprint twice.

use p4runpro::p4rp_ctl::chaos::{
    self, frame_to, pool_dst, pool_port, trace_fingerprint, SENTINEL_DST, SENTINEL_PORT,
};
use p4runpro::rmt_sim::clock::Nanos;
use p4runpro::rmt_sim::fault::{FaultKind, FaultPlan, FaultTrigger, OpKind};
use p4runpro::rmt_sim::trace::{chrome_trace_json, TraceConfig};
use p4runpro::traffic::replay::{Replay, TimedPacket};
use p4runpro::{ChaosConfig, Controller, CtlError};
use proptest::prelude::*;

const SENTINEL: &str =
    "program sentinel(<hdr.ipv4.dst, 10.9.9.9, 0xffffffff>) { FORWARD(7); }";
const CACHE: &str = "@ cache 64\nprogram cache(<hdr.ipv4.dst, 10.1.2.3, 0xffffffff>) \
                     { LOADI(mar, 9); MEMREAD(cache); FORWARD(2); }";

fn traced_controller() -> Controller {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.set_fast_path(true);
    ctl.enable_trace(TraceConfig { capacity: 4096, postmortem_dir: None, ..Default::default() });
    ctl
}

/// Retry wedged cleanups and reconcile until device == resource manager.
/// Returns whether the drain converged within the budget.
fn drain(ctl: &mut Controller, budget: usize) -> bool {
    for _ in 0..budget {
        if !ctl.channel().is_connected() {
            ctl.channel_mut().reconnect();
        }
        let mut wedged: Vec<String> = ctl.wedged_programs().cloned().collect();
        wedged.sort();
        for name in wedged {
            let _ = ctl.revoke(&name);
        }
        if ctl.wedged_programs().next().is_none()
            && !ctl.needs_reconcile()
            && ctl.audit().unwrap().clean()
        {
            return true;
        }
        let _ = ctl.reconcile();
    }
    false
}

/// The acceptance scenario, returning the trace fingerprint so callers
/// can assert seed-for-seed reproducibility.
fn faulted_cache_install() -> u64 {
    let mut ctl = traced_controller();
    ctl.deploy(SENTINEL).unwrap();
    let resources_before = ctl.telemetry_report().resources;
    let audit_before = ctl.audit().unwrap();
    assert!(audit_before.clean());

    // Fail the third op (index 2) of the cache program's install batch.
    ctl.set_fault_plan(FaultPlan::parse_spec("failop@2").unwrap());
    let err = ctl.deploy(CACHE).unwrap_err();
    match &err {
        CtlError::DeployFault { program, .. } => assert_eq!(program, "cache"),
        other => panic!("expected DeployFault, got {other}"),
    }

    // Rolled back without a trace: device diff empty, resource manager
    // bit-identical, nothing wedged, zero invariant violations.
    let audit_after = ctl.audit().unwrap();
    assert!(audit_after.clean(), "device diverged after rollback: {audit_after:?}");
    assert_eq!(audit_after.expected, audit_before.expected, "sentinel entries disturbed");
    assert_eq!(ctl.telemetry_report().resources, resources_before);
    assert!(ctl.program("cache").is_none());
    assert_eq!(ctl.trace().unwrap().violations().len(), 0);

    // The sentinel never flinched.
    let out = ctl.inject(0, &frame_to(SENTINEL_DST)).unwrap();
    assert!(out.emitted.iter().any(|&(p, _)| p == SENTINEL_PORT));

    // The books agree with the story.
    let stats = ctl.fault_stats();
    assert_eq!(stats.faults_injected, 1);
    assert_eq!(stats.deploy_faults, 1);
    assert_eq!(stats.rollbacks, 1);
    assert!(stats.rollback_ops >= 2, "two applied ops needed undoing");
    assert_eq!(stats.wedged, 0);

    // A retry after the plan exhausts commits cleanly.
    ctl.deploy(CACHE).unwrap();
    assert!(ctl.audit().unwrap().clean());

    trace_fingerprint(&ctl)
}

#[test]
fn faulted_cache_install_rolls_back_and_replays_identically() {
    let a = faulted_cache_install();
    let b = faulted_cache_install();
    assert_eq!(a, b, "same scenario, different trace");
}

#[test]
fn device_reset_mid_install_reconciles_every_resident_program() {
    let mut ctl = traced_controller();
    ctl.deploy(SENTINEL).unwrap();
    ctl.deploy(&chaos::pool_source(0)).unwrap();
    let resources_before = ctl.telemetry_report().resources;

    ctl.set_fault_plan(FaultPlan::parse_spec("reset@1").unwrap());
    let err = ctl.deploy(CACHE).unwrap_err();
    assert!(matches!(err, CtlError::DeployFault { .. }), "got {err}");
    assert!(ctl.needs_reconcile());
    assert_eq!(ctl.switch().generation(), 1);

    // The wipe took the residents down; reconcile puts them back and the
    // failed deploy's resources were refunded.
    let audit = ctl.audit().unwrap();
    assert_eq!(audit.missing, audit.expected, "reset should wipe everything");
    let rep = ctl.reconcile().unwrap();
    assert_eq!(rep.reinstalled, audit.expected);
    assert!(!ctl.needs_reconcile());
    assert!(ctl.audit().unwrap().clean());
    assert_eq!(ctl.telemetry_report().resources, resources_before);

    let out = ctl.inject(0, &frame_to(SENTINEL_DST)).unwrap();
    assert!(out.emitted.iter().any(|&(p, _)| p == SENTINEL_PORT));
    let out = ctl.inject(0, &frame_to(pool_dst(0))).unwrap();
    assert!(out.emitted.iter().any(|&(p, _)| p == pool_port(0)));
}

#[test]
fn every_fault_kind_at_every_op_index_converges() {
    let kinds = [
        FaultKind::FailOp,
        FaultKind::BatchTimeout,
        FaultKind::ChannelDrop,
        FaultKind::DeviceReset,
    ];
    for kind in kinds {
        for at in 0..12u64 {
            let mut ctl = traced_controller();
            ctl.deploy(SENTINEL).unwrap();
            ctl.set_fault_plan(FaultPlan::new(vec![FaultTrigger {
                at,
                op_kind: None,
                fault: kind,
            }]));
            match ctl.deploy(CACHE) {
                Ok(_) | Err(CtlError::DeployFault { .. }) | Err(CtlError::Wedged { .. }) => {}
                Err(e) => panic!("{kind:?}@{at}: unexpected error {e}"),
            }
            assert!(drain(&mut ctl, 8), "{kind:?}@{at}: drain did not converge");
            assert_eq!(
                ctl.trace().unwrap().violations().len(),
                0,
                "{kind:?}@{at}: invariant violation"
            );
            let out = ctl.inject(0, &frame_to(SENTINEL_DST)).unwrap();
            assert!(
                out.emitted.iter().any(|&(p, _)| p == SENTINEL_PORT),
                "{kind:?}@{at}: sentinel lost"
            );
        }
    }
}

#[test]
fn kind_matched_trigger_only_fires_on_matching_ops() {
    let mut ctl = traced_controller();
    ctl.deploy(SENTINEL).unwrap();
    // Armed against deletes only: the install (all inserts) sails through.
    ctl.set_fault_plan(FaultPlan::new(vec![FaultTrigger {
        at: 0,
        op_kind: Some(OpKind::Delete),
        fault: FaultKind::FailOp,
    }]));
    ctl.deploy(CACHE).unwrap();
    assert_eq!(ctl.fault_stats().faults_injected, 0);
    // The revoke's first delete trips it and the program wedges.
    let err = ctl.revoke("cache").unwrap_err();
    assert!(matches!(err, CtlError::Wedged { .. }), "got {err}");
    assert!(drain(&mut ctl, 8));
    assert!(ctl.program("cache").is_none());
}

#[test]
fn replay_traffic_interleaves_with_faulted_churn() {
    let mut ctl = traced_controller();
    ctl.enable_telemetry();
    ctl.deploy(SENTINEL).unwrap();
    // A transient fault on the first deploy's batch; a mid-batch fault is
    // armed separately before the second deploy (plans count ops from
    // arming, so this pins each fault to its intended batch).
    ctl.set_fault_plan(FaultPlan::parse_spec("timeout@0").unwrap());

    let packets: Vec<TimedPacket> = (0..60)
        .map(|k| TimedPacket {
            t: Nanos::from_micros(k * 50),
            port: 0,
            frame: frame_to(SENTINEL_DST),
        })
        .collect();
    let mut rp = Replay::new(packets);

    // Burst → deploy (absorbs the timeout via retry) → burst → faulted
    // deploy (rolls back) → burst → revoke → rest of the trace.
    rp.run_until(Nanos::from_micros(500), |p, f| ctl.inject(p, f).unwrap());
    ctl.deploy(&chaos::pool_source(2)).unwrap();
    rp.run_until(Nanos::from_micros(1500), |p, f| ctl.inject(p, f).unwrap());
    ctl.set_fault_plan(FaultPlan::parse_spec("failop@2").unwrap());
    let err = ctl.deploy(CACHE).unwrap_err();
    assert!(matches!(err, CtlError::DeployFault { .. }), "got {err}");
    rp.run_until(Nanos::from_micros(2500), |p, f| ctl.inject(p, f).unwrap());
    ctl.revoke("c2").unwrap();
    rp.run_all(|p, f| ctl.inject(p, f).unwrap());

    // Every sentinel packet forwarded across all five phases.
    let (tx, offered): (u64, u64) =
        rp.stats.iter().fold((0, 0), |(t, o), b| (t + b.tx_pkts, o + b.offered_pkts));
    assert_eq!(offered, 60);
    assert_eq!(tx, 60, "sentinel packets lost during faulted churn");
    assert_eq!(ctl.trace().unwrap().violations().len(), 0);
    assert!(ctl.audit().unwrap().clean());
    let stats = ctl.fault_stats();
    assert_eq!(stats.faults_injected, 2);
    assert!(stats.retries >= 1);
}

#[test]
fn chaos_trace_round_trips_through_chrome_json() {
    let mut ctl = traced_controller();
    ctl.deploy(SENTINEL).unwrap();
    ctl.set_fault_plan(FaultPlan::parse_spec("failop@2").unwrap());
    let _ = ctl.deploy(CACHE);
    ctl.set_fault_plan(FaultPlan::parse_spec("reset@2").unwrap());
    let _ = ctl.deploy(CACHE);
    assert!(drain(&mut ctl, 8));

    let json = chrome_trace_json(ctl.trace().unwrap().events());
    for needle in ["fault_injected", "rollback_begin", "rollback_end", "reconcile_begin", "reconcile_end"]
    {
        assert!(json.contains(needle), "chrome trace lacks {needle}");
    }
    // Round-trip: the export parses back and the fault events survive in
    // the traceEvents array with their categories intact.
    let v = serde::json::parse(&json).expect("chrome trace is valid JSON");
    let obj = v.as_object().expect("chrome trace is a JSON object");
    let events = obj
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .and_then(|(_, v)| v.as_array())
        .expect("traceEvents array");
    let fault_events = events
        .iter()
        .filter_map(|e| e.as_object())
        .filter(|fields| {
            fields.iter().any(|(k, v)| {
                k == "name"
                    && matches!(v, serde::Value::Str(s) if s.starts_with("fault_")
                        || s.starts_with("rollback_") || s.starts_with("reconcile_"))
            })
        })
        .count();
    assert!(fault_events >= 5, "only {fault_events} fault-family events round-tripped");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("P4RP_PROPTEST_CASES")
            .ok().and_then(|s| s.parse().ok()).unwrap_or(12),
        .. ProptestConfig::default()
    })]

    /// Random program churn × random fault plans: deploys either commit
    /// or roll back atomically, the drain converges, the sentinel never
    /// misforwards under a coherent device, and no invariant fires. The
    /// seed is in the failure message via proptest's shrunken input.
    #[test]
    fn chaos_campaigns_always_converge(
        seed in 0u64..1_000_000,
        nfaults in 0usize..8,
        horizon in 40u64..400,
        programs in 2usize..7,
    ) {
        let cfg = ChaosConfig {
            seed,
            steps: 40,
            programs,
            faults: FaultPlan::random(seed ^ 0x9e3779b9, nfaults, horizon),
            packets_per_burst: 3,
            workers: 1,
            watchdog: None,
        };
        let out = chaos::run(&cfg).map_err(|e| {
            proptest::test_runner::TestCaseError::Fail(format!("seed {seed}: campaign error {e}"))
        })?;
        prop_assert_eq!(out.sentinel_misses, 0, "seed {}: sentinel misforwarded {:?}", seed, &out);
        prop_assert_eq!(out.resident_misses, 0, "seed {}: resident misforwarded {:?}", seed, &out);
        prop_assert_eq!(out.invariant_violations, 0, "seed {}: invariants fired", seed);
        prop_assert!(out.converged, "seed {}: drain did not converge: {:?}", seed, &out);
        prop_assert!(out.final_audit.clean(), "seed {}: final audit dirty: {:?}", seed, &out.final_audit);
    }
}
