//! End-to-end telemetry: a deploy → replay → revoke cycle must leave the
//! control-side spans, the resource gauges, and the packet-side counters
//! mutually consistent — the invariants `status --metrics` is trusted to
//! report (see `docs/TELEMETRY.md`).

use p4runpro::p4rp_progs::{instance, Family, WorkloadParams};
use p4runpro::rmt_sim::clock::Nanos;
use p4runpro::traffic::{synthesize, CampusParams, Replay};
use p4runpro::{Controller, TelemetryReport};

/// The Figure 13(a) scenario in miniature: running traffic with program
/// churn interleaved. After revoking everything, every write must be
/// matched by a revocation, every claimed bucket released, and the churn
/// must not have dropped a single packet of the running traffic.
#[test]
fn deploy_replay_revoke_counters_are_consistent() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_telemetry();
    // The basic forwarding program carrying the traffic (all IPv4 → 1).
    ctl.deploy("program basefwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();

    let p = CampusParams { duration: Nanos::from_secs(2), ..Default::default() };
    let trace = synthesize(&p);
    let mut replay = Replay::new(trace.packets.clone());
    replay.epoch = ctl.epoch();

    // Churn: deploy three Table-1 programs mid-replay. Their filters use
    // instance ids ≥ 1000 (10.0.x.x), independent of the 10.1/10.2 trace.
    let mut deployed: Vec<String> = Vec::new();
    let mut event_t = Nanos::from_millis(500);
    for (i, fam) in [Family::ALL[0], Family::ALL[3], Family::ALL[7]].iter().enumerate() {
        replay.run_until(event_t, |port, frame| ctl.inject(port, frame).unwrap());
        let src = instance(*fam, 1000 + i, WorkloadParams::default());
        deployed.push(ctl.deploy(&src).unwrap()[0].name.clone());
        replay.epoch = ctl.epoch();
        event_t += Nanos::from_millis(400);
    }
    replay.run_all(|port, frame| ctl.inject(port, frame).unwrap());

    for name in &deployed {
        ctl.revoke(name).unwrap();
    }
    ctl.revoke("basefwd").unwrap();

    let report = ctl.telemetry_report();

    // Per-program: the deploy span's writes equal the revoke span's
    // revocations, and claimed memory equals released memory.
    for name in deployed.iter().chain(std::iter::once(&"basefwd".to_string())) {
        let dep = report
            .spans
            .iter()
            .find(|s| s.kind == "deploy" && &s.program == name)
            .unwrap_or_else(|| panic!("no deploy span for {name}"));
        let rev = report
            .spans
            .iter()
            .find(|s| s.kind == "revoke" && &s.program == name)
            .unwrap_or_else(|| panic!("no revoke span for {name}"));
        assert_eq!(dep.entries_written, rev.entries_revoked, "{name}: entry balance");
        assert_eq!(dep.memory_claimed, rev.memory_released, "{name}: memory balance");
        assert!(dep.entries_written > 0, "{name}: a deploy writes entries");
        assert!(rev.epoch > dep.epoch, "{name}: revoke follows deploy");
    }
    let written: u64 = report.spans.iter().map(|s| s.entries_written).sum();
    let revoked: u64 = report.spans.iter().map(|s| s.entries_revoked).sum();
    assert_eq!(written, revoked, "all writes matched by revocations");

    // Gauges: everything returned to the free lists.
    assert_eq!(report.resources.memory_utilization, 0.0);
    assert_eq!(report.resources.entry_utilization, 0.0);
    assert_eq!(report.resources.init_used, 0);
    assert_eq!(report.resources.recirc_used, 0);
    assert_eq!(report.programs_deployed, 0);

    // One epoch per lifecycle event, and the data plane recorder carries
    // the latest.
    assert_eq!(report.epoch, report.spans.len() as u64);
    let dp = report.dataplane.as_ref().expect("telemetry enabled");
    assert_eq!(dp.epoch, report.epoch);

    // The Figure 13(a) claim: churn never drops running traffic.
    assert_eq!(dp.tm.dropped.get(), 0, "no TM drops during churn");
    assert!(dp.tm.forwarded.get() > 0, "traffic flowed");
    assert!(report.control_write_latency.count() > 0, "writes were timed");

    // Replay buckets carry monotone epoch tags spanning the churn.
    assert!(replay.stats.windows(2).all(|w| w[0].epoch <= w[1].epoch));
    assert_eq!(replay.stats.first().unwrap().epoch, 1, "first bucket: only basefwd");
    assert!(replay.stats.last().unwrap().epoch >= 4, "last bucket saw all deploys");

    // The whole report — live dataplane counters included — round-trips
    // through the JSON document `status --json` emits.
    let back = TelemetryReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);
}

/// Single-program attribution round-trip: with exactly one resident
/// program owning all traffic, its row accounts for every global
/// counter (the unattributed slot stays empty save for pre-binding
/// stage-0 lookups), the report carries the schema version, program
/// rows, watchdog status, and series, and the whole document survives
/// the `status --json` round trip.
#[test]
fn single_program_attribution_accounts_for_all_traffic() {
    use p4runpro::p4rp_ctl::{SloThresholds, SCHEMA_VERSION};

    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_attribution();
    ctl.enable_series(16);
    ctl.arm_watchdog(SloThresholds {
        max_drop_ppm: Some(1_000_000),
        ..Default::default()
    });
    ctl.deploy("program solo(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();

    let flows = p4runpro::traffic::make_flows(3, 8, 0.0);
    for i in 0..200 {
        let frame = p4runpro::traffic::frame_for(&flows[i % flows.len()].tuple, 64);
        ctl.inject(0, &frame).unwrap();
    }

    let report = ctl.telemetry_report();
    assert_eq!(report.schema_version, SCHEMA_VERSION);
    let dp = report.dataplane.as_ref().expect("attribution implies telemetry");

    // The solo program's row owns every packet.
    let solo = report
        .programs
        .iter()
        .find(|p| p.name == "solo")
        .expect("attribution row for solo");
    assert_eq!(solo.packets, 200);
    assert_eq!(solo.forwarded, 200);
    assert_eq!(solo.drops, 0);
    assert!(solo.entries > 0, "resource columns come from the installed image");
    assert!(solo.resource_share > 0.0);

    // Summed over every row (unattributed slot included), the per-program
    // counters reproduce the globals exactly.
    let terminal = dp.tm.forwarded.get() + dp.tm.returned.get() + dp.tm.multicast.get();
    assert_eq!(report.programs.iter().map(|p| p.packets).sum::<u64>(), 200);
    assert_eq!(report.programs.iter().map(|p| p.forwarded).sum::<u64>(), terminal);
    assert_eq!(
        report.programs.iter().map(|p| p.drops).sum::<u64>(),
        dp.tm.dropped.get()
    );
    assert_eq!(
        report.programs.iter().map(|p| p.recirc_passes).sum::<u64>(),
        dp.tm.recirculated.get()
    );
    assert_eq!(
        report.programs.iter().map(|p| p.hits).sum::<u64>(),
        dp.ingress.total().hits.get() + dp.egress.total().hits.get()
    );
    assert_eq!(
        report.programs.iter().map(|p| p.salu_rmws).sum::<u64>(),
        dp.ingress.total().salu_reads.get() + dp.egress.total().salu_reads.get()
    );

    // Watchdog: armed with a permissive threshold, no violations; the
    // series collected at least the deploy-epoch bucket.
    let slo = report.slo.as_ref().expect("watchdog armed");
    assert_eq!(slo.violations, 0);
    assert!(slo.breached.is_empty());
    assert!(report.series.as_ref().is_some_and(|s| !s.points.is_empty()));

    // The human summary surfaces the new sections.
    let text = report.summary();
    assert!(text.contains("per-program:"), "summary lists program rows:\n{text}");
    assert!(text.contains("solo"), "summary names the program:\n{text}");
    assert!(text.contains("slo watchdog: armed"), "summary shows the watchdog:\n{text}");
    assert!(text.contains("series:"), "summary shows series retention:\n{text}");

    // Full round trip, new sections included.
    let back = TelemetryReport::from_json(&report.to_json()).unwrap();
    assert_eq!(back, report);
}

/// Disabling telemetry detaches the recorder and returns the snapshot;
/// subsequent traffic must not touch it.
#[test]
fn disabled_telemetry_records_nothing() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy("program fwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();
    let frame = p4runpro::traffic::frame_for(
        &p4runpro::traffic::make_flows(1, 1, 0.0)[0].tuple,
        64,
    );
    ctl.inject(0, &frame).unwrap();
    let report = ctl.telemetry_report();
    assert!(report.dataplane.is_none(), "telemetry off → no packet counters");
    // Spans and the control-channel histogram are always on.
    assert_eq!(report.spans.len(), 1);
    assert!(report.control_write_latency.count() > 0);

    // Enabling later starts from zero, synchronized to the current epoch.
    ctl.enable_telemetry();
    ctl.inject(0, &frame).unwrap();
    let dp = ctl.telemetry_report().dataplane.unwrap();
    assert_eq!(dp.epoch, 1);
    assert_eq!(dp.tm.forwarded.get(), 1);
}
