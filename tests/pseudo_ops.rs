//! End-to-end semantics of the pseudo primitives (Figure 14): each is
//! expanded by the compiler, allocated, installed, and exercised with real
//! packets; the result is read back from the reply header.
//!
//! The harness program extracts the two operand words from the cache
//! header into `sar`/`mar`, applies one pseudo primitive, writes `sar`
//! into the value field and reflects the packet.

use netpkt::{CacheOp, ParsedPacket};
use p4runpro::traffic::{make_flows, netcache_frame};
use p4runpro::Controller;

/// Run `body` (operating on sar = a, mar = b) and return the reply value.
fn eval(body: &str, a: u32, b: u32) -> u32 {
    let mut ctl = Controller::with_defaults().unwrap();
    let src = format!(
        r#"
program t(<hdr.udp.dst_port, 7777, 0xffff>) {{
    EXTRACT(hdr.nc.key2, sar);
    EXTRACT(hdr.nc.key1, mar);
    {body}
    MODIFY(hdr.nc.value, sar);
    RETURN;
}}
"#
    );
    ctl.deploy(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let flow = make_flows(1, 1, 0.0)[0].tuple;
    let key = (u64::from(b) << 32) | u64::from(a);
    let out = ctl.inject(0, &netcache_frame(&flow, CacheOp::Read, key, 0)).unwrap();
    assert_eq!(out.emitted.len(), 1, "reflected\n{src}");
    ParsedPacket::parse(&out.emitted[0].1).unwrap().netcache.unwrap().value
}

#[test]
fn move_copies() {
    assert_eq!(eval("MOVE(sar, mar);", 1, 99), 99);
}

#[test]
fn not_inverts() {
    assert_eq!(eval("NOT(sar);", 0x0f0f_0f0f, 0), 0xf0f0_f0f0);
    assert_eq!(eval("NOT(sar);", 0, 0), 0xffff_ffff);
}

#[test]
fn sub_is_exact_including_wraparound() {
    assert_eq!(eval("SUB(sar, mar);", 10, 3), 7);
    assert_eq!(eval("SUB(sar, mar);", 3, 10), 3u32.wrapping_sub(10));
    assert_eq!(eval("SUB(sar, mar);", 0, 1), u32::MAX);
    assert_eq!(eval("SUB(sar, mar);", 12345, 12345), 0);
}

#[test]
fn subi_and_addi() {
    assert_eq!(eval("SUBI(sar, 7);", 10, 0), 3);
    assert_eq!(eval("SUBI(sar, 11);", 10, 0), 10u32.wrapping_sub(11));
    assert_eq!(eval("ADDI(sar, 90);", 10, 0), 100);
    assert_eq!(eval("ANDI(sar, 0xff);", 0x1234, 0), 0x34);
    assert_eq!(eval("XORI(sar, 0xffff);", 0x1234, 0), 0x1234 ^ 0xffff);
}

#[test]
fn equal_yields_zero_iff_equal() {
    assert_eq!(eval("EQUAL(sar, mar);", 5, 5), 0);
    assert_ne!(eval("EQUAL(sar, mar);", 5, 6), 0);
}

#[test]
fn sgt_yields_zero_iff_ge() {
    // SGT(A,B): A = 0 iff A >= B (Table 3).
    assert_eq!(eval("SGT(sar, mar);", 9, 5), 0);
    assert_eq!(eval("SGT(sar, mar);", 5, 5), 0);
    assert_ne!(eval("SGT(sar, mar);", 4, 5), 0);
}

#[test]
fn slt_yields_zero_iff_le() {
    // SLT(A,B): A = 0 iff A <= B.
    assert_eq!(eval("SLT(sar, mar);", 3, 5), 0);
    assert_eq!(eval("SLT(sar, mar);", 5, 5), 0);
    assert_ne!(eval("SLT(sar, mar);", 6, 5), 0);
}

#[test]
fn comparisons_drive_branches() {
    // The §7 pattern: SGT + BRANCH expresses ">=" conditions.
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy(
        r#"
program gate(<hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.key2, sar);
    EXTRACT(hdr.nc.key1, mar);
    SGT(sar, mar);
    BRANCH:
    /*value >= limit*/
    case(<sar, 0, 0xffffffff>) {
        DROP;
    };
    FORWARD(6);
}
"#,
    )
    .unwrap();
    let flow = make_flows(2, 1, 0.0)[0].tuple;
    let send = |ctl: &mut Controller, v: u32, limit: u32| {
        let key = (u64::from(limit) << 32) | u64::from(v);
        ctl.inject(0, &netcache_frame(&flow, CacheOp::Read, key, 0)).unwrap()
    };
    assert!(send(&mut ctl, 100, 50).dropped, "100 >= 50 gated");
    assert!(send(&mut ctl, 50, 50).dropped, "50 >= 50 gated");
    let out = send(&mut ctl, 49, 50);
    assert_eq!(out.emitted[0].0, 6, "49 < 50 passes");
}

#[test]
fn supportive_register_backup_preserves_values() {
    // ADDI needs a supportive register; with both other registers live
    // (read afterwards), the compiler must back up and restore, so the
    // final MODIFY sees the original mar.
    let got = eval("ADDI(sar, 1);\n    ADD(sar, mar);", 10, 7);
    assert_eq!(got, 18, "sar = (10+1) + mar(7), mar intact through the expansion");
}
