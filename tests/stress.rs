//! Long-running churn: hundreds of random deploy/revoke cycles must never
//! leak memory, entries, or program ids, and the data plane must stay
//! consistent with the resource manager's books throughout.

use p4runpro::p4rp_progs::{instance, Family, WorkloadParams};
use p4runpro::Controller;
use rand::prelude::*;
use rand::rngs::StdRng;

#[test]
fn churn_does_not_leak() {
    let mut ctl = Controller::with_defaults().unwrap();
    let mut rng = StdRng::seed_from_u64(77);
    let mut live: Vec<String> = Vec::new();
    let params = WorkloadParams::default();

    for i in 0..300 {
        if live.len() < 12 && (live.is_empty() || rng.random::<f64>() < 0.6) {
            let family = Family::ALL[rng.random_range(0..15)];
            match ctl.deploy(&instance(family, i, params)) {
                Ok(reports) => live.push(reports[0].name.clone()),
                Err(e) => panic!("deploy {i} ({family:?}) failed under light load: {e}"),
            }
        } else {
            let victim = live.swap_remove(rng.random_range(0..live.len()));
            ctl.revoke(&victim).unwrap();
        }

        // Books vs. data plane: the init table holds exactly one filter
        // entry per live program.
        let init_len = ctl
            .switch()
            .table(ctl.dataplane().init_table)
            .unwrap()
            .len();
        assert_eq!(init_len, live.len(), "iteration {i}");
        assert_eq!(ctl.resources().init_entries_used(), live.len());
        assert_eq!(ctl.deployed_programs().count(), live.len());
    }

    // Drain everything: all books return to zero.
    for name in live.drain(..) {
        ctl.revoke(&name).unwrap();
    }
    assert_eq!(ctl.resources().memory_utilization(), 0.0);
    assert_eq!(ctl.resources().entry_utilization(), 0.0);
    assert_eq!(ctl.resources().init_entries_used(), 0);
    // Every RPB table is empty again.
    for rpb in p4runpro::p4rp_dataplane::RpbId::all() {
        assert_eq!(ctl.switch().table(rpb.table_ref()).unwrap().len(), 0, "rpb {}", rpb.0);
    }
}

#[test]
fn program_id_reuse_is_safe() {
    // Exhausting and recycling ids: deploy/revoke one program repeatedly;
    // entries from earlier incarnations must never answer for later ones.
    let mut ctl = Controller::with_defaults().unwrap();
    let flow = p4runpro::traffic::make_flows(5, 1, 0.0)[0].tuple;
    let frame = p4runpro::traffic::frame_for(&flow, 40);
    for round in 0..30u16 {
        let port = 1 + (round % 40);
        let src = format!(
            "program p(<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>) {{ FORWARD({port}); }}"
        );
        ctl.deploy(&src).unwrap();
        let out = ctl.inject(0, &frame).unwrap();
        assert_eq!(out.emitted[0].0, port, "round {round}: only the live incarnation answers");
        ctl.revoke("p").unwrap();
        assert!(ctl.inject(0, &frame).unwrap().dropped);
    }
}
