//! Per-program attribution and the Prometheus-style exposition
//! (docs/METRICS.md).
//!
//! Two acceptance properties pin the observability layer down:
//!
//! 1. **Conservation** — per-program counters summed over every
//!    attribution row reproduce the global counters exactly, whatever
//!    the worker count: attribution re-buckets events, it never
//!    invents or loses them.
//! 2. **Round trip** — the text exposition parses back to the same
//!    counter values the report carries, so a scraper sees what the
//!    controller sees.
//!
//! A CLI smoke test (the CI `metrics-smoke` step) drives the same
//! surfaces end to end: deploy two programs, replay traffic, render
//! `top --once`, export the exposition, and re-parse it.

use p4runpro::p4rp_ctl::{
    parse_prometheus, render_prometheus, Cli, ProgramUsage, Sample, TelemetryReport,
};
use p4runpro::traffic::gen::{frame_for, make_flows, Flow};
use p4runpro::Controller;
use proptest::prelude::*;

/// Forward the first few distinct destinations of `mix` to distinct
/// ports (same shape as the parallel-engine tests), so attribution sees
/// several owners plus unmatched traffic on the unattributed slot.
fn deploy_forwarders(ctl: &mut Controller, mix: &[Flow]) {
    let mut seen = std::collections::HashSet::new();
    let mut i = 0;
    for f in mix {
        if seen.len() == 3 {
            break;
        }
        if seen.insert(f.tuple.dst_addr) {
            let src = format!(
                "program f{i}(<hdr.ipv4.dst, {}, 0xffffffff>) {{ FORWARD({}); }}",
                f.tuple.dst_addr,
                i + 1
            );
            ctl.deploy(&src).unwrap();
            i += 1;
        }
    }
}

/// Replay a seeded mix with attribution on and return the report.
fn run_attributed(seed: u64, flows: usize, packets: usize, workers: usize) -> TelemetryReport {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_attribution();
    let mix = make_flows(seed, flows, 0.5);
    deploy_forwarders(&mut ctl, &mix);
    if workers > 0 {
        ctl.enable_workers(workers);
    }
    for i in 0..packets {
        let frame = frame_for(&mix[i % mix.len()].tuple, 64);
        ctl.inject_sharded(0, &frame).unwrap();
    }
    ctl.telemetry_report()
}

/// The sample carrying `name` with `prog_id == id`, or panic.
fn prog_sample<'a>(samples: &'a [Sample], name: &str, id: u64) -> &'a Sample {
    let id = id.to_string();
    samples
        .iter()
        .find(|s| s.name == name && s.label("prog_id") == Some(id.as_str()))
        .unwrap_or_else(|| panic!("no {name} sample for prog_id {id}"))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("P4RP_PROPTEST_CASES")
            .ok().and_then(|s| s.parse().ok()).unwrap_or(8),
        .. ProptestConfig::default()
    })]

    /// Conservation and round trip, across the sequential engine and
    /// 1/2/4-worker pools.
    #[test]
    fn attribution_sums_to_globals_and_exposition_round_trips(
        seed in 0u64..10_000,
        flows in 4usize..=16,
        packets in 40usize..=160,
    ) {
        for workers in [0usize, 1, 2, 4] {
            let report = run_attributed(seed, flows, packets, workers);
            let dp = report.dataplane.as_ref().expect("attribution implies telemetry");

            // Conservation: the rows partition the global counters.
            let terminal = dp.tm.forwarded.get() + dp.tm.returned.get()
                + dp.tm.multicast.get() + dp.tm.dropped.get();
            prop_assert_eq!(terminal, packets as u64, "{} workers", workers);
            let rows = &report.programs;
            prop_assert_eq!(
                rows.iter().map(|p| p.packets).sum::<u64>(),
                packets as u64, "{} workers", workers
            );
            prop_assert_eq!(
                rows.iter().map(|p| p.forwarded).sum::<u64>(),
                dp.tm.forwarded.get() + dp.tm.returned.get() + dp.tm.multicast.get(),
                "{} workers", workers
            );
            prop_assert_eq!(
                rows.iter().map(|p| p.drops).sum::<u64>(),
                dp.tm.dropped.get(), "{} workers", workers
            );
            prop_assert_eq!(
                rows.iter().map(|p| p.recirc_passes).sum::<u64>(),
                dp.tm.recirculated.get(), "{} workers", workers
            );
            prop_assert_eq!(
                rows.iter().map(|p| p.hits).sum::<u64>(),
                dp.ingress.total().hits.get() + dp.egress.total().hits.get(),
                "{} workers", workers
            );
            prop_assert_eq!(
                rows.iter().map(|p| p.salu_rmws).sum::<u64>(),
                dp.ingress.total().salu_reads.get() + dp.egress.total().salu_reads.get(),
                "{} workers", workers
            );

            // Round trip: the exposition parses back to the same values.
            let text = render_prometheus(&report);
            let samples = parse_prometheus(&text).unwrap();
            for p in rows {
                let cases = [
                    ("p4rp_program_packets_total", p.packets),
                    ("p4rp_program_forwarded_total", p.forwarded),
                    ("p4rp_program_drops_total", p.drops),
                    ("p4rp_program_recirc_passes_total", p.recirc_passes),
                    ("p4rp_program_hits_total", p.hits),
                    ("p4rp_program_salu_rmws_total", p.salu_rmws),
                ];
                for (name, want) in cases {
                    let s = prog_sample(&samples, name, p.prog_id);
                    prop_assert_eq!(s.value, want as f64, "{} prog {}", name, p.prog_id);
                    prop_assert_eq!(
                        s.label("program"), Some(p.name.as_str()),
                        "program label on {}", name
                    );
                }
            }
            let verdicts = [
                ("forwarded", dp.tm.forwarded.get()),
                ("dropped", dp.tm.dropped.get()),
                ("recirculated", dp.tm.recirculated.get()),
            ];
            for (kind, want) in verdicts {
                let s = samples
                    .iter()
                    .find(|s| {
                        s.name == "p4rp_tm_verdicts_total" && s.label("verdict") == Some(kind)
                    })
                    .unwrap();
                prop_assert_eq!(s.value, want as f64, "verdict {}", kind);
            }
        }
    }
}

/// The CI smoke path: two programs, replayed traffic, a `top --once`
/// render, and a `metrics export` whose output parses with valid label
/// syntax and counters that only ever grow between scrapes.
#[test]
fn cli_top_and_export_smoke() {
    let mut cli = Cli::new(Controller::with_defaults().unwrap());
    let mix = make_flows(5, 8, 0.5);
    let (a, b) = (mix[0].tuple.dst_addr, mix[1].tuple.dst_addr);
    assert!(cli
        .exec(&format!("deploy program alpha(<hdr.ipv4.dst, {a}, 0xffffffff>) {{ FORWARD(1); }}"))
        .contains("linked `alpha`"));
    assert!(cli
        .exec(&format!("deploy program beta(<hdr.ipv4.dst, {b}, 0xffffffff>) {{ FORWARD(2); }}"))
        .contains("linked `beta`"));

    // `top` arms attribution on first use, so replay traffic after it.
    let first = cli.exec("top --once");
    assert!(first.contains("attribution just enabled"), "{first}");
    assert!(cli.exec("replay --packets 400 --flows 8 --seed 5").contains("replayed"));

    let top = cli.exec("top --once");
    assert!(top.contains("alpha") && top.contains("beta"), "{top}");
    assert!(top.contains("PACKETS"), "{top}");

    // First scrape.
    let text1 = cli.exec("metrics export -");
    let s1 = parse_prometheus(&text1).unwrap_or_else(|e| panic!("scrape 1: {e}\n{text1}"));
    assert!(!s1.is_empty());

    // More traffic, second scrape: every *_total counter is monotone.
    assert!(cli.exec("replay --packets 400 --flows 8 --seed 5").contains("replayed"));
    let text2 = cli.exec("metrics export -");
    let s2 = parse_prometheus(&text2).unwrap_or_else(|e| panic!("scrape 2: {e}\n{text2}"));
    let key = |s: &Sample| {
        let mut labels = s.labels.clone();
        labels.sort();
        (s.name.clone(), labels)
    };
    let first_by_key: std::collections::HashMap<_, _> =
        s1.iter().map(|s| (key(s), s.value)).collect();
    let mut counters_checked = 0;
    for s in &s2 {
        if !s.name.ends_with("_total") {
            continue;
        }
        if let Some(&before) = first_by_key.get(&key(s)) {
            assert!(
                s.value >= before,
                "counter {} went backwards: {} -> {}",
                s.name,
                before,
                s.value
            );
            counters_checked += 1;
        }
    }
    assert!(counters_checked > 10, "only {counters_checked} counters compared");

    // The packet counters attributed to the two programs both moved.
    let alpha = s2
        .iter()
        .find(|s| {
            s.name == "p4rp_program_packets_total" && s.label("program") == Some("alpha")
        })
        .expect("alpha row exported");
    assert!(alpha.value > 0.0, "alpha attributed packets");

    // Writing to a file works too.
    let dir = std::env::temp_dir().join("p4rp-metrics-smoke");
    let path = dir.join("metrics.prom");
    let out = cli.exec(&format!("metrics export {}", path.display()));
    assert!(out.contains("wrote"), "{out}");
    let text = std::fs::read_to_string(&path).unwrap();
    parse_prometheus(&text).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Characters that have broken (or could break) the exposition at some
/// point: the escape triggers themselves (`\`, `"`, `\n`, `\r`), the
/// label-syntax metacharacters, and multi-byte UTF-8 of 2, 3, and 4
/// bytes. Random draws from this set compose into hostile label values.
const TRICKY_CHARS: &[char] = &[
    'a', 'B', '0', '"', '\\', '\n', '\r', '\t', ' ', '=', ',', '{', '}', 'λ', 'й', '日', '🦀',
];

fn label_value() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..TRICKY_CHARS.len(), 0..10)
        .prop_map(|ix| ix.into_iter().map(|i| TRICKY_CHARS[i]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("P4RP_PROPTEST_CASES")
            .ok().and_then(|s| s.parse().ok()).unwrap_or(32),
        .. ProptestConfig::default()
    })]

    /// For arbitrary label values — including carriage returns,
    /// backslashes, quotes, and multi-byte UTF-8 — and arbitrary series
    /// of program rows, `render_prometheus` → `parse_prometheus` is the
    /// identity on both label values and counter values, and the wire
    /// text never carries a raw CR or a label-internal raw LF that would
    /// break HTTP framing. (This property caught the unescaped `\r`:
    /// a raw CR round-trips in memory because `str::lines` only splits
    /// on `\n`, but corrupts the exposition once it crosses a socket.)
    #[test]
    fn arbitrary_label_values_round_trip_through_exposition(
        names in prop::collection::vec(label_value(), 1..5),
        counts in prop::collection::vec(1u64..1_000_000, 5..6),
    ) {
        let ctl = Controller::with_defaults().unwrap();
        let mut report = ctl.telemetry_report();
        report.programs = names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                ProgramUsage {
                    name: name.clone(),
                    prog_id: i as u64,
                    packets: counts[i % counts.len()],
                    drops: counts[(i + 1) % counts.len()],
                    hits: counts[(i + 2) % counts.len()],
                    ..Default::default()
                }
            })
            .collect();
        let text = render_prometheus(&report);
        prop_assert!(!text.contains('\r'), "raw CR reached the wire:\n{:?}", text);
        let samples = match parse_prometheus(&text) {
            Ok(s) => s,
            Err(e) => {
                return Err(proptest::test_runner::TestCaseError::Fail(format!(
                    "exposition failed to re-parse: {e}\n{text:?}"
                )))
            }
        };
        for (i, name) in names.iter().enumerate() {
            let id = i.to_string();
            for (metric, want) in [
                ("p4rp_program_packets_total", counts[i % counts.len()]),
                ("p4rp_program_drops_total", counts[(i + 1) % counts.len()]),
                ("p4rp_program_hits_total", counts[(i + 2) % counts.len()]),
            ] {
                let s = samples
                    .iter()
                    .find(|s| s.name == metric && s.label("prog_id") == Some(id.as_str()))
                    .unwrap_or_else(|| panic!("missing {metric} row for prog {id}"));
                prop_assert_eq!(
                    s.label("program"), Some(name.as_str()),
                    "label value mangled on {} ({:?})", metric, name
                );
                prop_assert_eq!(s.value, want as f64, "counter value drifted on {}", metric);
            }
        }
    }
}
