//! The parallel data plane: sharded multi-worker replay with
//! epoch-consistent table snapshots (docs/PERF.md).
//!
//! Three acceptance properties pin the engine down:
//!
//! 1. **Engine equivalence** — per-flow outcomes (emitted frames, drops,
//!    recirculation passes) are bit-identical whether packets run through
//!    the sequential path or are sharded across 1, 2, or 4 workers.
//! 2. **Atomic visibility under churn** — deploy/revoke batches flip
//!    visible to workers as whole snapshots: a freshly deployed program
//!    forwards its very next packet, a revoked one never half-matches,
//!    and no invariant fires on any ring while traffic keeps flowing.
//! 3. **Deterministic merge** — the merged trace ring renumbers
//!    sequences contiguously and accounts for every event: retained plus
//!    dropped equals the sum over the source rings.

use std::net::Ipv4Addr;

use p4runpro::p4rp_ctl::chaos::{frame_to, total_violations, SENTINEL_DST, SENTINEL_PORT};
use p4runpro::rmt_sim::clock::Nanos;
use p4runpro::rmt_sim::parallel::shard_for_frame;
use p4runpro::rmt_sim::trace::TraceConfig;
use p4runpro::traffic::gen::{frame_for, make_flows, Flow};
use p4runpro::traffic::replay::{ParallelReplay, Replay, TimedPacket};
use p4runpro::Controller;
use proptest::prelude::*;

const SENTINEL: &str =
    "program sentinel(<hdr.ipv4.dst, 10.9.9.9, 0xffffffff>) { FORWARD(7); }";

/// Everything observable about one packet's fate, minus the PHV scratch.
type Fate = (Vec<(u16, Vec<u8>)>, Vec<Vec<u8>>, bool, u8);

/// Forward the first few distinct destination addresses of `mix` to
/// distinct ports, so the replay exercises hit, miss, and per-flow
/// divergence at once.
fn deploy_forwarders(ctl: &mut Controller, mix: &[Flow]) {
    let mut seen = std::collections::HashSet::new();
    let mut i = 0;
    for f in mix {
        if seen.len() == 4 {
            break;
        }
        if seen.insert(f.tuple.dst_addr) {
            let src = format!(
                "program f{i}(<hdr.ipv4.dst, {}, 0xffffffff>) {{ FORWARD({}); }}",
                f.tuple.dst_addr,
                i + 1
            );
            ctl.deploy(&src).unwrap();
            i += 1;
        }
    }
}

/// Replay the seeded mix through one engine configuration and record
/// every packet's fate. `workers == 0` leaves the pool uninstalled (the
/// pure sequential path every other test exercises); otherwise packets
/// shard across `workers` forked switches.
fn run_engine(seed: u64, flows: usize, packets: usize, workers: usize) -> Vec<Fate> {
    let mut ctl = Controller::with_defaults().unwrap();
    let mix = make_flows(seed, flows, 0.5);
    deploy_forwarders(&mut ctl, &mix);
    if workers > 0 {
        ctl.enable_workers(workers);
    }
    (0..packets)
        .map(|i| {
            let frame = frame_for(&mix[i % mix.len()].tuple, 64);
            let out = ctl.inject_sharded(0, &frame).unwrap();
            (out.emitted, out.reports, out.dropped, out.passes)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("P4RP_PROPTEST_CASES")
            .ok().and_then(|s| s.parse().ok()).unwrap_or(8),
        .. ProptestConfig::default()
    })]

    /// Sharding is an implementation detail: for any seeded flow mix,
    /// per-flow outcomes through 1, 2, and 4 workers are bit-identical
    /// to the sequential engine's, packet for packet.
    #[test]
    fn parallel_outcomes_match_sequential(
        seed in 0u64..10_000,
        flows in 4usize..=16,
        packets in 40usize..=160,
    ) {
        let baseline = run_engine(seed, flows, packets, 0);
        for workers in [1usize, 2, 4] {
            let got = run_engine(seed, flows, packets, workers);
            prop_assert_eq!(
                &got, &baseline,
                "fates diverged at {} worker(s), seed {}", workers, seed
            );
        }
    }

    /// `shard_for_frame` is total: any byte soup — empty, shorter than
    /// any header, or random garbage — shards without panicking, the
    /// answer is stable across calls, and it always lands in `0..n`,
    /// including non-power-of-two worker counts.
    #[test]
    fn shard_for_frame_is_total_stable_and_in_range(
        frame in prop::collection::vec(any::<u8>(), 0..64),
        n in 0usize..=9,
    ) {
        let shard = shard_for_frame(&frame, n);
        prop_assert_eq!(shard, shard_for_frame(&frame, n), "sharding is unstable");
        if n <= 1 {
            prop_assert_eq!(shard, 0, "n <= 1 must collapse to shard 0");
        } else {
            prop_assert!(shard < n, "shard {} out of range 0..{}", shard, n);
        }
    }
}

/// Every truncation of a real generated frame shards in range, and a
/// flow keeps its worker whatever the frame size — the five-tuple, not
/// the payload, decides placement.
#[test]
fn shard_for_frame_handles_truncated_real_frames() {
    let mix = make_flows(7, 8, 0.5);
    for f in &mix {
        let frame = frame_for(&f.tuple, 64);
        for len in 0..=frame.len() {
            for n in [1usize, 2, 3, 5, 7, 8] {
                let shard = shard_for_frame(&frame[..len], n);
                assert!(shard < n, "shard {shard} out of 0..{n} at prefix {len}");
            }
        }
        let small = shard_for_frame(&frame_for(&f.tuple, 64), 3);
        let large = shard_for_frame(&frame_for(&f.tuple, 128), 3);
        assert_eq!(small, large, "flow affinity broke across frame sizes");
    }
}

/// The threaded driver agrees with the sequential [`Replay`] on every
/// merged aggregate: per-bucket tx/drop counts, per-port byte totals,
/// and the set of flows that crossed the report threshold.
#[test]
fn threaded_driver_matches_sequential_totals() {
    let mix = make_flows(42, 32, 0.5);
    let trace: Vec<TimedPacket> = (0..2000)
        .map(|i| TimedPacket {
            t: Nanos::from_micros(i as u64),
            port: 0,
            frame: frame_for(&mix[i % mix.len()].tuple, 64),
        })
        .collect();

    let mut ctl = Controller::with_defaults().unwrap();
    deploy_forwarders(&mut ctl, &mix);
    let mut seq = Replay::new(trace.clone());
    seq.run_all_into(|port, frame, out| {
        ctl.inject_into(port, frame, out).unwrap();
    });
    seq.finish();
    let seq_tx: u64 = seq.stats.iter().map(|b| b.tx_pkts).sum();
    let seq_drop: u64 = seq.stats.iter().map(|b| b.dropped).sum();

    for workers in [2usize, 4] {
        let mut ctl = Controller::with_defaults().unwrap();
        deploy_forwarders(&mut ctl, &mix);
        ctl.enable_workers(workers);
        let pr = ParallelReplay::new(trace.clone(), workers);
        assert_eq!(pr.total_packets(), 2000);
        let pool = ctl.workers_mut().unwrap();
        let out = pr.run(pool).unwrap();

        assert_eq!(out.packets, 2000, "{workers} workers");
        let par_tx: u64 = out.stats.iter().map(|b| b.tx_pkts).sum();
        let par_drop: u64 = out.stats.iter().map(|b| b.dropped).sum();
        assert_eq!((par_tx, par_drop), (seq_tx, seq_drop), "{workers} workers");
        // Bucket boundaries are global trace positions, so the merged
        // per-bucket series matches the sequential one exactly.
        assert_eq!(out.stats.len(), seq.stats.len(), "{workers} workers");
        for (pb, sb) in out.stats.iter().zip(seq.stats.iter()) {
            assert_eq!(pb.tx_pkts, sb.tx_pkts);
            assert_eq!(pb.dropped, sb.dropped);
        }
        assert_eq!(out.port_tx_bytes, seq.port_tx_bytes, "{workers} workers");
        assert_eq!(out.reported_flows, seq.reported_flows, "{workers} workers");
        // Per-worker stats decompose the totals without loss.
        let injected: u64 = out.worker_stats.iter().map(|w| w.packets).sum();
        assert_eq!(injected, 2000);
    }
}

/// Deploy/revoke churn while two workers carry traffic: every batch is
/// visible atomically (a new program forwards its next packet, a revoked
/// one stops), the sentinel never misforwards, and no invariant fires on
/// any ring.
#[test]
fn churn_under_parallel_replay_keeps_snapshots_atomic() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_trace(TraceConfig { capacity: 16384, postmortem_dir: None, ..Default::default() });
    ctl.deploy(SENTINEL).unwrap();
    ctl.enable_workers(2);
    let gen0 = ctl.channel().snapshot_generation();
    let sentinel = frame_to(SENTINEL_DST);

    for step in 0..24usize {
        for _ in 0..4 {
            let out = ctl.inject_sharded(0, &sentinel).unwrap();
            assert!(
                out.emitted.iter().any(|&(p, _)| p == SENTINEL_PORT),
                "sentinel misforwarded at step {step}"
            );
        }

        let dst = Ipv4Addr::new(10, 42, step as u8, 1);
        let port = 1 + (step % 4) as u16;
        ctl.deploy(&format!(
            "program churn{step}(<hdr.ipv4.dst, {dst}, 0xffffffff>) {{ FORWARD({port}); }}"
        ))
        .unwrap();
        // The deploy batch must be wholly visible to whichever worker
        // owns this flow — its very next packet forwards.
        let out = ctl.inject_sharded(0, &frame_to(dst)).unwrap();
        assert!(
            out.emitted.iter().any(|&(p, _)| p == port),
            "fresh deploy churn{step} not visible to its worker"
        );

        if step >= 2 {
            let old = step - 2;
            let old_dst = Ipv4Addr::new(10, 42, old as u8, 1);
            let old_port = 1 + (old % 4) as u16;
            ctl.revoke(&format!("churn{old}")).unwrap();
            // And the revoke batch too — the old program is gone, not
            // half-matched.
            let out = ctl.inject_sharded(0, &frame_to(old_dst)).unwrap();
            assert!(
                !out.emitted.iter().any(|&(p, _)| p == old_port),
                "revoked churn{old} still forwarding"
            );
        }
    }

    assert!(ctl.channel().snapshot_generation() > gen0, "no snapshots published");
    assert_eq!(total_violations(&ctl), 0);
    assert!(ctl.audit().unwrap().clean());
    // Workers adopt deltas lazily (on their next packet); after one
    // explicit poll every ring has caught up to the published head.
    let master_gen = ctl.channel().snapshot_generation();
    let pool = ctl.workers_mut().unwrap();
    let _ = pool.poll_all();
    for w in pool.workers() {
        assert_eq!(w.stats().snapshot_generation, master_gen);
    }
}

/// The algorithmic TCAM fast path is invisible to the data plane: with
/// the tuple-space index and the megaflow result cache armed, every
/// packet's fate under deploy/revoke churn — sequential or sharded across
/// a 2-worker pool — is bit-identical to the sequential engine in forced
/// scan mode (the semantic authority), and no invariant fires on any
/// ring. Cache invalidation rides the table generation stamp, so worker
/// snapshots adopted mid-churn can never serve a stale memo.
#[test]
fn tss_and_result_cache_keep_fates_identical_under_churn() {
    let run = |indexed: bool, cached: bool, workers: usize| -> Vec<Fate> {
        let mut ctl = Controller::with_defaults().unwrap();
        ctl.enable_trace(TraceConfig {
            capacity: 16384,
            postmortem_dir: None,
            ..Default::default()
        });
        ctl.deploy(SENTINEL).unwrap();
        let mix = make_flows(21, 12, 0.5);
        deploy_forwarders(&mut ctl, &mix);
        if workers > 0 {
            ctl.enable_workers(workers);
        }
        ctl.set_indexed(indexed);
        ctl.set_result_cache(cached);

        let mut fates = Vec::new();
        let mut record = |ctl: &mut Controller, frame: &[u8]| {
            let out = ctl.inject_sharded(0, frame).unwrap();
            fates.push((out.emitted, out.reports, out.dropped, out.passes));
        };
        for step in 0..16usize {
            for i in 0..8 {
                record(&mut ctl, &frame_for(&mix[(step * 8 + i) % mix.len()].tuple, 64));
            }
            record(&mut ctl, &frame_to(SENTINEL_DST));
            let dst = Ipv4Addr::new(10, 60, step as u8, 1);
            ctl.deploy(&format!(
                "program churn{step}(<hdr.ipv4.dst, {dst}, 0xffffffff>) {{ FORWARD({}); }}",
                1 + step % 4
            ))
            .unwrap();
            record(&mut ctl, &frame_to(dst));
            if step >= 2 {
                let old = step - 2;
                ctl.revoke(&format!("churn{old}")).unwrap();
                record(&mut ctl, &frame_to(Ipv4Addr::new(10, 60, old as u8, 1)));
            }
        }
        assert_eq!(total_violations(&ctl), 0, "invariant fired (indexed={indexed})");
        assert!(ctl.audit().unwrap().clean(), "audit failed (indexed={indexed})");
        fates
    };

    let scan_authority = run(false, false, 0);
    let tss_sequential = run(true, true, 0);
    let tss_parallel = run(true, true, 2);
    assert_eq!(tss_sequential, scan_authority, "sequential TSS+cache diverged from scan");
    assert_eq!(tss_parallel, scan_authority, "2-worker TSS+cache diverged from scan");
}

/// Attribution merge survives idle shards: a single-destination mix
/// leaves most of a 4-worker pool with zero packets, yet the merged
/// per-program rows still reproduce the globals exactly and agree
/// across worker counts — zero-packet recorders must merge as identity
/// elements, not as resets.
#[test]
fn attribution_merge_is_exact_with_zero_packet_workers() {
    let mut baseline = None;
    for workers in [0usize, 1, 2, 4] {
        let mut ctl = Controller::with_defaults().unwrap();
        ctl.enable_attribution();
        ctl.deploy(SENTINEL).unwrap();
        if workers > 0 {
            ctl.enable_workers(workers);
        }
        // One flow: the shard hash maps it to exactly one worker, so at
        // 4 workers at least three recorders stay at zero packets.
        let sentinel = frame_to(SENTINEL_DST);
        for _ in 0..40 {
            ctl.inject_sharded(0, &sentinel).unwrap();
        }

        let report = ctl.telemetry_report();
        let dp = report.dataplane.as_ref().unwrap();
        let terminal = dp.tm.forwarded.get()
            + dp.tm.returned.get()
            + dp.tm.multicast.get()
            + dp.tm.dropped.get();
        assert_eq!(terminal, 40, "{workers} workers: every frame has one verdict");
        assert_eq!(
            report.programs.iter().map(|p| p.packets).sum::<u64>(),
            40,
            "{workers} workers: attribution accounts for every packet"
        );
        let row = report
            .programs
            .iter()
            .find(|p| p.name == "sentinel")
            .expect("sentinel attribution row");
        assert_eq!(row.packets, 40, "{workers} workers");
        assert_eq!(row.forwarded, 40, "{workers} workers");

        // Every engine configuration reports byte-identical rows.
        let rows: Vec<String> = report.programs.iter().map(|p| p.render()).collect();
        match &baseline {
            None => baseline = Some(rows),
            Some(b) => assert_eq!(&rows, b, "{workers} workers diverged"),
        }
    }
}

/// Merging trace rings and recorders that never saw an event is safe:
/// a freshly forked pool with zero traffic yields an empty merged ring
/// (no phantom events, no drops) and a merged recorder equal to the
/// master's, and the telemetry report still renders.
#[test]
fn empty_worker_rings_and_recorders_merge_cleanly() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_attribution();
    ctl.enable_trace(TraceConfig { capacity: 128, postmortem_dir: None, ..Default::default() });
    ctl.enable_workers(4);

    // No packets at all: worker rings and recorders are pristine.
    let merged = ctl.merged_trace().unwrap();
    let stats = merged.stats();
    assert_eq!(stats.dropped, 0, "nothing to drop from empty rings");
    let master_events = ctl.trace().unwrap().stats().retained;
    assert_eq!(stats.retained, master_events, "merge adds no phantom events");

    let report = ctl.telemetry_report();
    let dp = report.dataplane.as_ref().unwrap();
    assert_eq!(
        dp.tm.forwarded.get() + dp.tm.returned.get() + dp.tm.multicast.get() + dp.tm.dropped.get(),
        0
    );
    assert!(report.programs.iter().all(|p| p.packets == 0));
    // The summary renderer tolerates the all-zero state.
    assert!(report.summary().contains("dataplane"));
}

/// The merged trace ring is causally ordered with contiguous sequence
/// numbers, and its drop accounting is exact: retained + dropped events
/// equal the sum over the master and worker source rings.
#[test]
fn merged_trace_is_monotonic_with_exact_drop_accounting() {
    let mut ctl = Controller::with_defaults().unwrap();
    // Small rings force wraparound on the workers, so the drop ledger
    // actually carries weight.
    ctl.enable_trace(TraceConfig { capacity: 128, postmortem_dir: None, ..Default::default() });
    ctl.deploy(SENTINEL).unwrap();
    ctl.enable_workers(2);

    let mix = make_flows(7, 24, 0.5);
    for i in 0..600 {
        let frame = frame_for(&mix[i % mix.len()].tuple, 64);
        ctl.inject_sharded(0, &frame).unwrap();
    }

    let mut source_retained = 0u64;
    let mut source_dropped = 0u64;
    let mut rings = Vec::new();
    if let Some(t) = ctl.trace() {
        rings.push(t.stats());
    }
    for w in ctl.workers().unwrap().workers() {
        if let Some(t) = w.switch().trace() {
            rings.push(t.stats());
        }
    }
    for s in &rings {
        source_retained += s.retained;
        source_dropped += s.dropped;
        assert_eq!(s.violations, 0);
    }
    assert!(source_dropped > 0, "test did not exercise ring wraparound");

    let merged = ctl.merged_trace().unwrap();
    let stats = merged.stats();
    // Nothing vanished in the merge: every source event is either in the
    // merged ring or on its drop ledger.
    assert_eq!(stats.recorded, source_retained);
    assert_eq!(
        stats.retained + stats.dropped,
        source_retained + source_dropped,
        "merge lost events: {stats:?}"
    );
    // Contiguous renumbering — causal order survives the shard merge.
    let seqs: Vec<u64> = merged.events().map(|e| e.seq).collect();
    assert!(!seqs.is_empty());
    for pair in seqs.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "seq gap after merge");
    }
    let mut last_t = 0u64;
    for e in merged.events() {
        assert!(e.t_ns >= last_t, "merged ring went back in time");
        last_t = e.t_ns;
    }
}
