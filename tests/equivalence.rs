//! Functional equivalence (§6.4): the runtime-linked P4runpro programs
//! and the standalone fixed-function ("conventional P4") pipelines compute
//! the same thing on the same traffic.

use netpkt::{CacheOp, ParsedPacket};
use p4runpro::baselines::{NativeCache, NativeLb};
use p4runpro::p4rp_progs::sources;
use p4runpro::traffic;
use p4runpro::Controller;

#[test]
fn cache_equivalence_over_a_request_stream() {
    let keys: [(u64, u32); 3] = [(0x8888, 512), (0x9999, 513), (0xaaaa, 514)];

    // P4runpro side.
    let mut ctl = Controller::with_defaults().unwrap();
    let key_list: Vec<(u32, u32)> = keys.iter().map(|(k, b)| (*k as u32, *b)).collect();
    let src = sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &key_list);
    ctl.deploy(&src).unwrap();

    // Native side.
    let mut native = NativeCache::build(&keys, 32).unwrap();

    // Same request stream through both: writes then interleaved reads,
    // including misses.
    let flows = traffic::make_flows(9, 4, 0.0);
    let mut stream = Vec::new();
    for (i, (k, _)) in keys.iter().enumerate() {
        stream.push((CacheOp::Write, *k, 1000 + i as u32));
    }
    for i in 0..40u64 {
        let key = if i % 3 == 0 { 0xdead + i } else { keys[(i % 3) as usize].0 };
        stream.push((CacheOp::Read, key, 0));
    }

    for (op, key, value) in stream {
        let frame = traffic::netcache_frame(&flows[(key % 4) as usize].tuple, op, key, value);
        let a = ctl.inject(3, &frame).unwrap();
        let b = native.switch.process_frame(3, &frame).unwrap();
        assert_eq!(a.dropped, b.dropped, "op {op:?} key {key:#x}");
        assert_eq!(a.emitted.len(), b.emitted.len());
        for ((pa, fa), (pb, fb)) in a.emitted.iter().zip(&b.emitted) {
            assert_eq!(pa, pb, "same egress port for key {key:#x}");
            let va = ParsedPacket::parse(fa).unwrap().netcache.map(|n| n.value);
            let vb = ParsedPacket::parse(fb).unwrap().netcache.map(|n| n.value);
            assert_eq!(va, vb, "same reply value for key {key:#x}");
        }
    }
}

#[test]
fn lb_equivalence_on_port_and_dip_choice() {
    // Both implementations hash the five-tuple with the stage's CRC and
    // index the same pools, so per-flow decisions must agree when the
    // pools agree. The P4runpro lb hashes in the RPB its allocation chose;
    // pin pools so any uniform spread is comparable statistically.
    let mut ctl = Controller::with_defaults().unwrap();
    let src = sources::lb("lb", "<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>", 16, &[2, 3]);
    ctl.deploy(&src).unwrap();
    for i in 0..16u32 {
        ctl.write_memory("lb", "port_pool_lb", i, i % 2).unwrap();
        ctl.write_memory("lb", "dip_pool_lb", i, 0x0a09_0900 + (i % 2)).unwrap();
    }

    let mut native = NativeLb::build(16).unwrap();
    for i in 0..16u32 {
        native.set_bucket(i, 2 + (i % 2) as u16, 0x0a09_0900 + (i % 2)).unwrap();
    }

    // Per-flow consistency: the same flow always picks the same backend in
    // both implementations, and the DIP always matches the chosen port.
    let flows = traffic::make_flows(10, 64, 0.5);
    let mut agree = 0usize;
    for f in &flows {
        let frame = traffic::frame_for(&f.tuple, 64);
        let a1 = ctl.inject(0, &frame).unwrap();
        let a2 = ctl.inject(0, &frame).unwrap();
        assert_eq!(a1.emitted[0].0, a2.emitted[0].0, "per-flow stability (p4runpro)");
        let b1 = native.switch.process_frame(0, &frame).unwrap();
        let dip_a = ParsedPacket::parse(&a1.emitted[0].1).unwrap().ipv4.unwrap().dst_addr;
        let dip_b = ParsedPacket::parse(&b1.emitted[0].1).unwrap().ipv4.unwrap().dst_addr;
        let port_a = a1.emitted[0].0;
        let port_b = b1.emitted[0].0;
        assert_eq!(u32::from_be_bytes(dip_a.octets()) & 1, u32::from(port_a) - 2);
        assert_eq!(u32::from_be_bytes(dip_b.octets()) & 1, u32::from(port_b) - 2);
        if port_a == port_b {
            agree += 1;
        }
    }
    // The two may hash with different stage CRCs; both still balance.
    assert!(agree >= 16, "distributions overlap ({agree}/64 identical)");
}

#[test]
fn forwarding_tail_programs_match_native_behavior() {
    // L3 routing with two prefixes vs. direct expectations.
    let mut ctl = Controller::with_defaults().unwrap();
    let src = sources::l3_routing(
        "l3",
        &[(0x0a02_0000, 0xffff_0000, 7), (0x0a03_0000, 0xffff_0000, 8)],
    );
    ctl.deploy(&src).unwrap();

    let mut flows = traffic::make_flows(12, 2, 0.0);
    flows[0].tuple.dst_addr = std::net::Ipv4Addr::new(10, 2, 1, 1);
    flows[1].tuple.dst_addr = std::net::Ipv4Addr::new(10, 3, 1, 1);
    let out = ctl.inject(0, &traffic::frame_for(&flows[0].tuple, 40)).unwrap();
    assert_eq!(out.emitted[0].0, 7);
    let out = ctl.inject(0, &traffic::frame_for(&flows[1].tuple, 40)).unwrap();
    assert_eq!(out.emitted[0].0, 8);
    // Unrouted prefix → DROP (the program's default).
    let mut other = flows[0].tuple;
    other.dst_addr = std::net::Ipv4Addr::new(10, 99, 0, 1);
    let out = ctl.inject(0, &traffic::frame_for(&other, 40)).unwrap();
    assert!(out.dropped);
}

#[test]
fn multicast_extension_replicates_to_group() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.set_multicast_group(5, vec![1, 2, 3]).unwrap();
    ctl.deploy("program bcast(<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>) { MULTICAST(5); }")
        .unwrap();
    let flow = traffic::make_flows(13, 1, 0.0)[0].tuple;
    let out = ctl.inject(0, &traffic::frame_for(&flow, 64)).unwrap();
    let ports: Vec<u16> = out.emitted.iter().map(|(p, _)| *p).collect();
    assert_eq!(ports, vec![1, 2, 3]);
    // All replicas are byte-identical.
    assert!(out.emitted.windows(2).all(|w| w[0].1 == w[1].1));
    // Unconfigured group → dropped, not panicked.
    let mut ctl2 = Controller::with_defaults().unwrap();
    ctl2.deploy("program bcast(<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>) { MULTICAST(9); }")
        .unwrap();
    let out = ctl2.inject(0, &traffic::frame_for(&flow, 64)).unwrap();
    assert!(out.dropped);
    // Group 0 is reserved at every layer.
    assert!(ctl2.set_multicast_group(0, vec![1]).is_err());
    assert!(p4runpro::parse("program x(<a,1,1>) { MULTICAST(0); }").is_err());
}
