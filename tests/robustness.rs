//! Robustness suites: arbitrary input must never panic the parsers — the
//! wire parsers reject gracefully, the language front end produces
//! diagnostics, and the controller surfaces typed errors.

use proptest::prelude::*;
use p4runpro::p4rp_lang;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through the packet parser: parse or reject, never
    /// panic; anything that parses re-emits and re-parses to itself.
    #[test]
    fn wire_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(parsed) = netpkt::ParsedPacket::parse(&bytes) {
            let emitted = parsed.emit();
            let reparsed = netpkt::ParsedPacket::parse(&emitted).unwrap();
            prop_assert_eq!(parsed, reparsed);
        }
    }

    /// Arbitrary text through the language front end: diagnostics, not
    /// panics.
    #[test]
    fn language_frontend_total(src in "\\PC{0,200}") {
        let _ = p4rp_lang::parse(&src);
    }

    /// Arbitrary printable soup with P4runpro-ish tokens mixed in.
    #[test]
    fn language_frontend_tokeny(parts in proptest::collection::vec(
        prop::sample::select(vec![
            "program", "case", "BRANCH:", "{", "}", "(", ")", "<", ">", ",", ";",
            "har", "sar", "mar", "MEMADD(m)", "LOADI", "0xff", "10.0.0.1", "@ m 64",
        ]), 0..30))
    {
        let src = parts.join(" ");
        let _ = p4rp_lang::parse(&src);
    }

    /// The recirculation-header parser tolerates any buffer.
    #[test]
    fn recirc_header_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(h) = netpkt::RecircHeader::new_checked(&bytes) {
            let repr = netpkt::RecircRepr::parse(&h);
            let emitted = repr.emit(h.payload());
            prop_assert_eq!(&emitted[..netpkt::RECIRC_HEADER_LEN],
                            &bytes[..netpkt::RECIRC_HEADER_LEN]);
        }
    }
}

/// Deploy errors are typed and the controller stays usable afterwards.
#[test]
fn controller_survives_bad_inputs() {
    let mut ctl = p4runpro::Controller::with_defaults().unwrap();
    for bad in [
        "",
        "garbage",
        "program p() { }",
        "program p(<hdr.ipv4.dst, 1, 1>) { }",
        "program p(<hdr.ipv4.dst, 1, 1>) { MEMREAD(ghost); }",
        "@ m 100\nprogram p(<hdr.ipv4.dst, 1, 1>) { MEMREAD(m); }", // non-pow2
        "program p(<hdr.bogus.f, 1, 1>) { DROP; }",
        "program p(<hdr.ipv4.ttl, 1, 1>) { DROP; }", // unsupported filter field
    ] {
        assert!(ctl.deploy(bad).is_err(), "{bad:?} must be rejected");
    }
    // Still fully functional.
    ctl.deploy("program ok(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) { FORWARD(1); }")
        .unwrap();
    assert_eq!(ctl.deployed_programs().count(), 1);
    assert_eq!(ctl.resources().init_entries_used(), 1);
}

const PROG: &str = "@ m 64\nprogram p(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) \
                    { LOADI(mar, 1); MEMREAD(m); FORWARD(1); }";

/// A dropped control channel is absorbed by the deploy's retry loop; a
/// sustained outage surfaces a typed error and the controller recovers
/// once the channel comes back.
#[test]
fn controller_survives_channel_drop() {
    use p4runpro::rmt_sim::fault::FaultPlan;

    let mut ctl = p4runpro::Controller::with_defaults().unwrap();
    // One drop: reconnect + retry make the deploy succeed anyway.
    ctl.set_fault_plan(FaultPlan::parse_spec("drop@0").unwrap());
    ctl.deploy(PROG).unwrap();
    assert!(ctl.channel().is_connected());
    let stats = ctl.fault_stats();
    assert_eq!(stats.faults_injected, 1);
    assert!(stats.retries >= 1);
    ctl.revoke("p").unwrap();

    // Five consecutive drops exhaust the retry budget: typed error, no
    // partial state, and the next deploy (after reconnect) succeeds.
    ctl.set_fault_plan(
        FaultPlan::parse_spec("drop@0,drop@0,drop@0,drop@0,drop@0").unwrap(),
    );
    let err = ctl.deploy(PROG).unwrap_err();
    assert!(
        matches!(err, p4runpro::CtlError::DeployFault { .. }),
        "sustained outage must be a typed deploy fault, got {err}"
    );
    assert!(ctl.program("p").is_none());
    if !ctl.channel().is_connected() {
        ctl.channel_mut().reconnect();
    }
    ctl.deploy(PROG).unwrap();
    assert!(ctl.audit().unwrap().clean());
}

/// A fault during rollback (a double fault) wedges the program with a
/// typed error instead of panicking, and revoking a half-rolled-back
/// program is idempotent: each retry makes progress until the name frees.
#[test]
fn double_fault_wedges_and_revoke_is_idempotent() {
    use p4runpro::rmt_sim::fault::FaultPlan;

    let mut ctl = p4runpro::Controller::with_defaults().unwrap();
    ctl.set_fast_path(true);
    let pristine = ctl.telemetry_report().resources;
    // failop@2 kills the install mid-batch; failop@3 then kills the
    // rollback's own batch (rollback ops continue the op count).
    ctl.set_fault_plan(FaultPlan::parse_spec("failop@2,failop@3").unwrap());
    let err = ctl.deploy(PROG).unwrap_err();
    let wedged_err = matches!(err, p4runpro::CtlError::Wedged { .. });
    assert!(wedged_err, "double fault must wedge, got {err}");
    assert_eq!(ctl.fault_stats().wedged, 1);
    assert_eq!(ctl.wedged_programs().count(), 1);

    // The name stays taken while wedged.
    let dup = ctl.deploy(PROG).unwrap_err();
    assert!(matches!(dup, p4runpro::CtlError::DuplicateProgram(_)), "got {dup}");

    // Revoke retries the parked cleanup. Under more injected faults it
    // stays wedged (idempotent, no double refund); once the plan
    // exhausts it completes, and a further revoke is NoSuchProgram.
    ctl.set_fault_plan(FaultPlan::parse_spec("failop@0").unwrap());
    let again = ctl.revoke("p").unwrap_err();
    assert!(matches!(again, p4runpro::CtlError::Wedged { .. }), "got {again}");
    ctl.revoke("p").unwrap();
    assert_eq!(ctl.wedged_programs().count(), 0);
    let gone = ctl.revoke("p").unwrap_err();
    assert!(matches!(gone, p4runpro::CtlError::NoSuchProgram(_)), "got {gone}");

    // Fully recovered: every claimed resource refunded exactly once.
    assert_eq!(ctl.telemetry_report().resources, pristine);
    assert!(ctl.audit().unwrap().clean());
    ctl.deploy(PROG).unwrap();
    assert!(ctl.audit().unwrap().clean());
}
