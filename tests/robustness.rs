//! Robustness suites: arbitrary input must never panic the parsers — the
//! wire parsers reject gracefully, the language front end produces
//! diagnostics, and the controller surfaces typed errors.

use proptest::prelude::*;
use p4runpro::p4rp_lang;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through the packet parser: parse or reject, never
    /// panic; anything that parses re-emits and re-parses to itself.
    #[test]
    fn wire_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        if let Ok(parsed) = netpkt::ParsedPacket::parse(&bytes) {
            let emitted = parsed.emit();
            let reparsed = netpkt::ParsedPacket::parse(&emitted).unwrap();
            prop_assert_eq!(parsed, reparsed);
        }
    }

    /// Arbitrary text through the language front end: diagnostics, not
    /// panics.
    #[test]
    fn language_frontend_total(src in "\\PC{0,200}") {
        let _ = p4rp_lang::parse(&src);
    }

    /// Arbitrary printable soup with P4runpro-ish tokens mixed in.
    #[test]
    fn language_frontend_tokeny(parts in proptest::collection::vec(
        prop::sample::select(vec![
            "program", "case", "BRANCH:", "{", "}", "(", ")", "<", ">", ",", ";",
            "har", "sar", "mar", "MEMADD(m)", "LOADI", "0xff", "10.0.0.1", "@ m 64",
        ]), 0..30))
    {
        let src = parts.join(" ");
        let _ = p4rp_lang::parse(&src);
    }

    /// The recirculation-header parser tolerates any buffer.
    #[test]
    fn recirc_header_total(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(h) = netpkt::RecircHeader::new_checked(&bytes) {
            let repr = netpkt::RecircRepr::parse(&h);
            let emitted = repr.emit(h.payload());
            prop_assert_eq!(&emitted[..netpkt::RECIRC_HEADER_LEN],
                            &bytes[..netpkt::RECIRC_HEADER_LEN]);
        }
    }
}

/// Deploy errors are typed and the controller stays usable afterwards.
#[test]
fn controller_survives_bad_inputs() {
    let mut ctl = p4runpro::Controller::with_defaults().unwrap();
    for bad in [
        "",
        "garbage",
        "program p() { }",
        "program p(<hdr.ipv4.dst, 1, 1>) { }",
        "program p(<hdr.ipv4.dst, 1, 1>) { MEMREAD(ghost); }",
        "@ m 100\nprogram p(<hdr.ipv4.dst, 1, 1>) { MEMREAD(m); }", // non-pow2
        "program p(<hdr.bogus.f, 1, 1>) { DROP; }",
        "program p(<hdr.ipv4.ttl, 1, 1>) { DROP; }", // unsupported filter field
    ] {
        assert!(ctl.deploy(bad).is_err(), "{bad:?} must be rejected");
    }
    // Still fully functional.
    ctl.deploy("program ok(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) { FORWARD(1); }")
        .unwrap();
    assert_eq!(ctl.deployed_programs().count(), 1);
    assert_eq!(ctl.resources().init_entries_used(), 1);
}
