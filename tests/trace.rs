//! Flight-recorder integration tests: journey reconstruction agrees with
//! the switch's returned outcome, deploy-under-replay traces keep every
//! packet inside one epoch with zero ring drops, wraparound accounting is
//! exact, the online invariant checker fires on corrupted interleavings,
//! and the Chrome trace-event export round-trips through the vendored JSON
//! parser (see `docs/TRACING.md`).

use std::net::Ipv4Addr;

use netpkt::FiveTuple;
use proptest::prelude::*;
use p4runpro::rmt_sim::clock::Nanos;
use p4runpro::rmt_sim::tm::Verdict;
use p4runpro::rmt_sim::trace::{
    chrome_trace_json, frame_five_tuple, journey, journeys, TraceConfig,
};
use p4runpro::traffic::{frame_for, synthesize, CampusParams, Replay};
use p4runpro::Controller;

/// A two-pass program (two accesses to one virtual memory under R = 1
/// forces a recirculation), so journeys exercise multi-pass reconstruction.
const TWO_PASS: &str = "@ m 256\nprogram twopass(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) {\n    HASH_5_TUPLE_MEM(m); MEMADD(m);\n    LOADI(mar, 3); MEMREAD(m);\n    FORWARD(5);\n}\n";

fn tuple(dst: Ipv4Addr, sport: u16, dport: u16, proto: u8) -> FiveTuple {
    FiveTuple {
        src_addr: Ipv4Addr::new(10, 9, 0, 1),
        dst_addr: dst,
        src_port: sport,
        dst_port: dport,
        protocol: proto,
    }
}

/// One generated probe: whether it matches the program filter, plus
/// arbitrary ports/protocol/payload.
fn arb_probe() -> impl Strategy<Value = (bool, u16, u16, bool, usize)> {
    (any::<bool>(), 1u16..u16::MAX, 1u16..u16::MAX, any::<bool>(), 0usize..64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The reconstructed journey of every injected frame agrees with the
    /// `ProcessOutcome` the switch returned: same terminal drop flag, same
    /// pass count, recirculations = passes − 1, a hit on a program filter
    /// whenever the program served the packet, and the five-tuple the
    /// recorder extracted from the raw frame.
    #[test]
    fn journeys_agree_with_process_outcomes(probes in proptest::collection::vec(arb_probe(), 1..24)) {
        let mut ctl = Controller::with_defaults().unwrap();
        ctl.deploy(TWO_PASS).unwrap();
        ctl.enable_trace(TraceConfig { postmortem_dir: None, ..TraceConfig::default() });

        for (matches, sport, dport, tcp, payload) in probes {
            let dst = if matches { Ipv4Addr::new(10, 0, 0, 1) } else { Ipv4Addr::new(10, 2, 0, 9) };
            let proto = if tcp { 6 } else { 17 };
            let frame = frame_for(&tuple(dst, sport, dport, proto), payload);
            let packet = ctl.switch().next_packet_id();
            let out = ctl.inject(0, &frame).unwrap();

            let t = ctl.trace().unwrap();
            let j = journey(t.events(), packet).expect("journey retained");
            prop_assert!(!j.truncated);
            prop_assert_eq!(j.end, Some((out.passes, out.dropped)));
            prop_assert_eq!(j.passes.len(), usize::from(out.passes));
            prop_assert_eq!(j.recirculations(), usize::from(out.passes) - 1);
            prop_assert_eq!(j.port, Some(0));
            prop_assert_eq!(j.len, Some(frame.len() as u32));
            prop_assert_eq!(j.flow, frame_five_tuple(&frame));

            if matches {
                prop_assert_eq!(out.passes, 2, "two memory accesses recirculate once");
                prop_assert_eq!(j.final_verdict(), Some(Verdict::Forward(5)));
                prop_assert!(!j.stages_hit().is_empty(), "filter hit recorded");
            } else {
                prop_assert!(out.dropped, "no program owns this traffic");
                prop_assert_eq!(j.final_verdict(), Some(Verdict::Drop));
            }
            prop_assert_eq!(j.epochs.len(), 1, "one epoch per packet");
        }

        // The checker saw nothing suspicious in a clean run.
        prop_assert!(ctl.trace().unwrap().violations().is_empty());
    }
}

/// The Figure 13(a) scenario under the flight recorder at default
/// capacity: a full deploy → replay-with-churn → revoke run records with
/// zero drops, the online invariant checker stays silent, and every
/// packet's trace shows events from exactly one epoch.
#[test]
fn deploy_under_replay_keeps_packets_in_one_epoch() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_trace(TraceConfig { postmortem_dir: None, ..TraceConfig::default() });
    ctl.deploy("program basefwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();

    // 400 ms of campus traffic ≈ 5–6k packets ≈ 200k trace events: the
    // "experiment-scale" run the default ring capacity is sized for.
    let p = CampusParams { duration: Nanos::from_millis(400), ..Default::default() };
    let trace = synthesize(&p);
    let mut replay = Replay::new(trace.packets.clone());

    // Churn mid-replay, timestamps flowing into the recorder so packet
    // journeys and control batches land on one timeline.
    replay.run_until_into_at(Nanos::from_millis(150), |t, port, frame, out| {
        ctl.trace_mut().unwrap().set_now(t);
        ctl.inject_into(port, frame, out).unwrap();
    });
    ctl.deploy(TWO_PASS).unwrap();
    replay.run_until_into_at(Nanos::from_millis(300), |t, port, frame, out| {
        ctl.trace_mut().unwrap().set_now(t);
        ctl.inject_into(port, frame, out).unwrap();
    });
    ctl.revoke("twopass").unwrap();
    replay.run_all_into_at(|t, port, frame, out| {
        ctl.trace_mut().unwrap().set_now(t);
        ctl.inject_into(port, frame, out).unwrap();
    });
    ctl.revoke("basefwd").unwrap();

    let t = ctl.trace().unwrap();
    let stats = t.stats();
    assert!(stats.enabled);
    assert_eq!(stats.dropped, 0, "default capacity holds the full run");
    assert!(stats.recorded > 1000, "the run actually traced traffic");
    assert_eq!(stats.violations, 0, "clean interleaving");

    // Sequence numbers are strictly increasing in causal order.
    let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));

    // Every packet's events carry exactly one epoch, and epochs cover the
    // four lifecycle events (2 deploys + 2 revokes).
    let js = journeys(t.events());
    assert!(!js.is_empty());
    for j in &js {
        assert_eq!(j.epochs.len(), 1, "packet {} spans epochs {:?}", j.packet, j.epochs);
    }
    let distinct: std::collections::BTreeSet<u64> =
        js.iter().map(|j| j.epochs[0]).collect();
    assert!(distinct.len() >= 3, "traffic observed the churn: {distinct:?}");
    assert_eq!(ctl.epoch(), 4);
}

/// Ring wraparound under a deliberately tiny capacity: sequence numbers
/// stay monotonic, drop accounting is exact (recorded − retained), and
/// the retained window is the trace's tail.
#[test]
fn wraparound_is_monotonic_with_exact_drops() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy("program basefwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();
    ctl.enable_trace(TraceConfig {
        capacity: 32,
        postmortem_dir: None,
        ..TraceConfig::default()
    });

    let frame = frame_for(&tuple(Ipv4Addr::new(10, 2, 0, 9), 4000, 5000, 17), 16);
    for _ in 0..100 {
        ctl.inject(0, &frame).unwrap();
    }

    let t = ctl.trace().unwrap();
    let stats = t.stats();
    assert_eq!(stats.capacity, 32);
    assert_eq!(stats.retained, 32);
    assert!(stats.recorded > 32);
    assert_eq!(stats.dropped, stats.recorded - stats.retained, "exact accounting");

    let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
    assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "contiguous tail");
    assert_eq!(*seqs.last().unwrap(), stats.recorded - 1, "newest event retained");

    // The oldest packets were evicted wholesale; the newest journey is
    // complete and flagged untruncated.
    let js = journeys(t.events());
    let newest = js.last().unwrap();
    assert!(!newest.truncated || js.len() == 1);
}

/// A deliberately corrupted interleaving — a packet injected inside an
/// open control batch (test-only hook: `batch_begin` without the control
/// channel) — fires the `packet-during-batch` invariant and produces a
/// post-mortem artifact with the ring tail.
#[test]
fn corrupted_interleaving_fires_checker_and_dumps_postmortem() {
    let dir = std::env::temp_dir().join(format!("p4rp-trace-pm-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy("program basefwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();
    ctl.enable_trace(TraceConfig {
        capacity: 1024,
        postmortem_dir: Some(dir.to_string_lossy().into_owned()),
        postmortem_last: 16,
    });

    let frame = frame_for(&tuple(Ipv4Addr::new(10, 2, 0, 9), 4000, 5000, 17), 16);
    ctl.inject(0, &frame).unwrap();
    assert!(ctl.trace().unwrap().violations().is_empty(), "clean so far");

    // Corrupt: open a batch and let a packet land inside the critical
    // section, something the real control channel can never do.
    let open = ctl.trace_mut().unwrap().batch_begin(1);
    ctl.inject(0, &frame).unwrap();

    let t = ctl.trace().unwrap();
    assert!(!t.violations().is_empty(), "checker fired");
    assert_eq!(t.violations()[0].rule, "packet-during-batch");

    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("post-mortem directory created")
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!dumps.is_empty(), "post-mortem artifact written");
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    assert!(text.contains("packet-during-batch"), "{text}");
    assert!(text.contains("last 16 events"), "{text}");

    // Close the batch; clean traffic afterwards does not re-fire.
    let n = ctl.trace().unwrap().violations().len();
    ctl.trace_mut().unwrap().batch_end(open, 1, Nanos::ZERO);
    ctl.inject(0, &frame).unwrap();
    assert_eq!(ctl.trace().unwrap().violations().len(), n);

    std::fs::remove_dir_all(&dir).ok();
}

/// The Chrome trace-event export round-trips through the vendored JSON
/// parser and keeps control ops and packet journeys on separate tracks.
#[test]
fn chrome_export_roundtrips_with_two_tracks() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_trace(TraceConfig { postmortem_dir: None, ..TraceConfig::default() });
    ctl.deploy(TWO_PASS).unwrap();
    let frame = frame_for(&tuple(Ipv4Addr::new(10, 0, 0, 1), 4000, 5000, 17), 16);
    ctl.inject(0, &frame).unwrap();
    ctl.revoke("twopass").unwrap();

    let text = chrome_trace_json(ctl.trace().unwrap().events());
    let doc = serde::json::parse(&text).expect("export parses");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(events.len() > 10);

    let pid_of = |ev: &serde::Value| match ev.get("pid") {
        Some(serde::Value::U64(p)) => *p,
        other => panic!("pid must be an integer, got {other:?}"),
    };
    let name_of = |ev: &serde::Value| match ev.get("name") {
        Some(serde::Value::Str(s)) => s.clone(),
        other => panic!("name must be a string, got {other:?}"),
    };
    let control: Vec<String> =
        events.iter().filter(|e| pid_of(e) == 1).map(&name_of).collect();
    let packet: Vec<String> =
        events.iter().filter(|e| pid_of(e) == 2).map(&name_of).collect();

    assert!(control.iter().any(|n| n == "batch"), "{control:?}");
    assert!(control.iter().any(|n| n == "deploy"), "{control:?}");
    assert!(control.iter().any(|n| n == "revoke"), "{control:?}");
    assert!(control.iter().any(|n| n == "entry_insert"), "{control:?}");
    assert!(control.iter().any(|n| n == "epoch_bump"), "{control:?}");
    assert!(packet.iter().any(|n| n == "packet_start"), "{packet:?}");
    assert!(packet.iter().any(|n| n == "tm_verdict"), "{packet:?}");
    assert!(packet.iter().any(|n| n == "packet_end"), "{packet:?}");

    // Batch slices carry durations; every event row parses pid/ts.
    for ev in events {
        assert!(ev.get("ts").is_some());
        let pid = pid_of(ev);
        assert!(pid == 1 || pid == 2, "only the two tracks");
    }
}

/// Disabling the flight recorder hands the ring back and the switch stops
/// recording; re-enabling starts a fresh ring synchronized to the epoch.
#[test]
fn disable_returns_ring_and_reenable_is_fresh() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_trace(TraceConfig { postmortem_dir: None, ..TraceConfig::default() });
    ctl.deploy("program basefwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();
    let ring = ctl.disable_trace().expect("was enabled");
    assert!(ring.recorded() > 0);
    assert!(ctl.trace().is_none());
    assert!(!ctl.trace_stats().enabled);

    let frame = frame_for(&tuple(Ipv4Addr::new(10, 2, 0, 9), 1, 2, 17), 16);
    ctl.inject(0, &frame).unwrap();

    let t = ctl.enable_trace(TraceConfig { postmortem_dir: None, ..TraceConfig::default() });
    assert_eq!(t.recorded(), 0, "fresh ring");
    assert_eq!(t.epoch(), 1, "synchronized to the controller epoch");
    ctl.inject(0, &frame).unwrap();
    let j = journeys(ctl.trace().unwrap().events());
    assert_eq!(j.len(), 1);
    assert!(j[0].packet >= 1, "packet ids stay globally unique across windows");
}
