//! Multi-switch deployment (§4.1.3): "Recirculation can also be replaced
//! by multiple switches deployed on the same path."
//!
//! Two switches are chained by a wire: the first emits state-headered
//! packets toward the second instead of recirculating. The *same* program
//! image is deployed to both — pass-0 entries (recirculation id 0) only
//! ever match on the first switch, pass-1 entries on the second, so the
//! chain computes exactly what one recirculating switch does.

use netpkt::{CacheOp, ParsedPacket};
use p4runpro::p4rp_compiler::alloc::AllocConfig;
use p4runpro::rmt_sim::switch::SwitchConfig;
use p4runpro::traffic::{make_flows, netcache_frame};
use p4runpro::Controller;

/// A 2-pass program whose second pass comes from *depth* (too many
/// levels for one traversal), not from re-accessing a memory: this is the
/// class of programs the multi-switch replacement serves. A program that
/// reads the same memory on both passes could NOT be chained — each
/// switch owns its own stage memory — which is exactly why the paper says
/// constraint (5) "needs to be adjusted" for chained deployments.
const TWO_PASS: &str = r#"
@ m 256
program twopass(<hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.value, sar);
    LOADI(har, 1); LOADI(har, 2); LOADI(har, 3); LOADI(har, 4);
    LOADI(har, 5); LOADI(har, 6); LOADI(har, 7); LOADI(har, 8);
    LOADI(har, 9); LOADI(har, 10); LOADI(har, 11); LOADI(har, 12);
    LOADI(har, 13); LOADI(har, 14); LOADI(har, 15); LOADI(har, 16);
    LOADI(har, 17); LOADI(har, 18);
    LOADI(mar, 9);
    MEMADD(m);
    MODIFY(hdr.nc.value, sar);
    FORWARD(30);
}
"#;

const WIRE_OUT: u16 = 60;
const WIRE_IN: u16 = 61;

fn chain() -> (Controller, Controller) {
    let first_cfg = SwitchConfig {
        recirc_wire_port: Some(WIRE_OUT),
        ..Default::default()
    };
    let second_cfg = SwitchConfig {
        recirc_ingress_ports: vec![WIRE_IN],
        ..Default::default()
    };
    let mut first = Controller::new(first_cfg, AllocConfig::default()).unwrap();
    let mut second = Controller::new(second_cfg, AllocConfig::default()).unwrap();
    first.deploy(TWO_PASS).unwrap();
    second.deploy(TWO_PASS).unwrap();
    (first, second)
}

#[test]
fn chained_switches_equal_single_switch_recirculation() {
    // Reference: one switch, internal recirculation.
    let mut single = Controller::with_defaults().unwrap();
    single.deploy(TWO_PASS).unwrap();
    let flow = make_flows(1, 1, 0.0)[0].tuple;

    let (mut first, mut second) = chain();
    for round in 1..=3u32 {
        let frame = netcache_frame(&flow, CacheOp::Read, 1, 5);

        let ref_out = single.inject(0, &frame).unwrap();
        assert_eq!(ref_out.passes, 2, "reference really recirculates");
        let ref_value =
            ParsedPacket::parse(&ref_out.emitted[0].1).unwrap().netcache.unwrap().value;

        // Chain: switch 1 hands the state-headered frame over the wire…
        let hop1 = first.inject(0, &frame).unwrap();
        assert_eq!(hop1.passes, 1, "no internal recirculation on the chain");
        assert_eq!(hop1.emitted.len(), 1);
        let (port, wire_frame) = &hop1.emitted[0];
        assert_eq!(*port, WIRE_OUT);
        // …with the recirculation header intact on the wire.
        let hdr = netpkt::RecircHeader::new_checked(wire_frame).unwrap();
        assert_eq!(hdr.recirc_id(), 1, "next-pass id travels in the header");

        // Switch 2 resumes the program and emits externally.
        let hop2 = second.inject(WIRE_IN, wire_frame).unwrap();
        assert_eq!(hop2.emitted.len(), 1);
        assert_eq!(hop2.emitted[0].0, 30, "final verdict taken on the second switch");
        let chain_value =
            ParsedPacket::parse(&hop2.emitted[0].1).unwrap().netcache.unwrap().value;

        assert_eq!(chain_value, ref_value, "round {round}: chain ≡ recirculation");
        assert_eq!(chain_value, 5 * round, "the accumulator advanced once per packet");
        // The emitted frame carries no internal header.
        assert!(netpkt::ParsedPacket::parse(&hop2.emitted[0].1).is_ok());
    }

    // The program's memory lives on whichever switch hosts its pass — in
    // one place, consistent with the reference.
    let m1 = first.read_memory("twopass", "m").unwrap()[9];
    let m2 = second.read_memory("twopass", "m").unwrap()[9];
    assert_eq!(m1 + m2, 15, "one accumulator across the chain");
    assert!(m1 == 0 || m2 == 0, "…on exactly one switch");
}

#[test]
fn single_pass_traffic_skips_the_wire() {
    let (mut first, _) = chain();
    first
        .deploy("program fwd(<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>) { FORWARD(7); }")
        .unwrap();
    let flow = make_flows(2, 1, 0.0)[0].tuple;
    let out = first.inject(0, &p4runpro::traffic::frame_for(&flow, 64)).unwrap();
    assert_eq!(out.emitted[0].0, 7, "no detour for single-pass programs");
    // And no recirculation header on the ordinary egress.
    assert!(ParsedPacket::parse(&out.emitted[0].1).unwrap().ipv4.is_some());
}
