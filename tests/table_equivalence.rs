//! Property tests: the indexed table lookup is observationally equivalent
//! to a reference linear scan.
//!
//! The table's ordered scan is the semantic definition of first-match
//! precedence (priority desc → LPM prefix-length sum desc → insertion
//! order asc); the exact-key hash index, the per-prefix-length LPM
//! buckets, and the tuple-space search over ternary/range/mixed keys are
//! pure accelerations of it. These properties rebuild that definition
//! *independently* — a naive filter-then-minimize over a shadow entry
//! list — and check the real table against it for random key specs,
//! entries, priorities, churn, and probes, in four modes per probe:
//! indexed, indexed with the megaflow result cache armed (both the miss
//! that fills the memo and the hit that reads it back), and forced scan.
//!
//! The case count obeys `P4RP_PROPTEST_CASES` (CI's `tcam-equivalence`
//! step sets it low for a fast smoke; the default is the full campaign).

use proptest::prelude::*;
use rmt_sim::action::ActionDef;
use rmt_sim::phv::{FieldId, FieldTable, Phv};
use rmt_sim::table::{EntryHandle, KeySpec, MatchKind, MatchValue, Table, TableEntry};

const KINDS: [MatchKind; 4] =
    [MatchKind::Exact, MatchKind::Ternary, MatchKind::Lpm, MatchKind::Range];
const WIDTHS: [u8; 3] = [32, 16, 8];

/// The shadow copy of one live entry.
#[derive(Debug, Clone)]
struct RefEntry {
    matches: Vec<MatchValue>,
    priority: i32,
    seq: u64,
    action: usize,
    data: Vec<u64>,
}

/// The reference model: a plain list in insertion order plus the
/// first-match rule written out directly.
#[derive(Debug, Default)]
struct RefTable {
    entries: Vec<(u64, RefEntry)>, // (handle, entry)
    default_action: Option<(usize, Vec<u64>)>,
    next_seq: u64,
}

impl RefTable {
    fn insert(&mut self, handle: u64, e: &TableEntry) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((
            handle,
            RefEntry {
                matches: e.matches.clone(),
                priority: e.priority,
                seq,
                action: e.action,
                data: e.data.clone(),
            },
        ));
    }

    fn delete(&mut self, handle: u64) -> bool {
        match self.entries.iter().position(|(h, _)| *h == handle) {
            Some(i) => {
                self.entries.remove(i);
                true
            }
            None => false,
        }
    }

    /// First match by the paper-facing precedence rule, computed the slow
    /// obvious way: filter all matching entries, then minimize the rank.
    fn lookup(&self, fields: &[FieldId], phv: &Phv) -> Option<(usize, Vec<u64>, bool)> {
        let lpm_sum = |e: &RefEntry| -> i64 {
            e.matches
                .iter()
                .map(|m| match *m {
                    MatchValue::Lpm { prefix_len, .. } => i64::from(prefix_len),
                    _ => 0,
                })
                .sum()
        };
        self.entries
            .iter()
            .filter(|(_, e)| {
                fields.iter().zip(&e.matches).all(|(f, m)| m.matches(phv.get(*f)))
            })
            .min_by_key(|(_, e)| (-i64::from(e.priority), -lpm_sum(e), e.seq))
            .map(|(_, e)| (e.action, e.data.clone(), true))
            .or_else(|| self.default_action.clone().map(|(a, d)| (a, d, false)))
    }
}

/// Raw generated material for one entry: interpreted per key field kind.
type RawEntry = (u64, u64, u8, u8, u8, u64);

struct Scenario {
    ft: FieldTable,
    fields: Vec<(FieldId, MatchKind)>,
    tbl: Table,
    reference: RefTable,
}

fn noop_actions(n: usize) -> Vec<ActionDef> {
    (0..n).map(|i| ActionDef::noop(format!("act{i}"))).collect()
}

fn field_width(ft: &FieldTable, f: FieldId) -> u8 {
    ft.spec(f).bits
}

fn mask_of(bits: u8) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Build a key spec over up to three registered fields from generator soup.
fn build_scenario(spec_seed: &[(u8, u8)], with_default: bool) -> Scenario {
    let mut ft = FieldTable::new();
    let regs = [
        ft.register("meta.k0", WIDTHS[0]).unwrap(),
        ft.register("meta.k1", WIDTHS[1]).unwrap(),
        ft.register("meta.k2", WIDTHS[2]).unwrap(),
    ];
    // Distinct fields per key, in seed order.
    let mut fields: Vec<(FieldId, MatchKind)> = Vec::new();
    for &(f, k) in spec_seed {
        let field = regs[f as usize % regs.len()];
        if fields.iter().any(|(existing, _)| *existing == field) {
            continue;
        }
        fields.push((field, KINDS[k as usize % KINDS.len()]));
    }
    if fields.is_empty() {
        fields.push((regs[0], MatchKind::Exact));
    }
    let mut tbl = Table::new("prop", KeySpec::new(fields.clone()), noop_actions(4), 4096);
    let mut reference = RefTable::default();
    if with_default {
        tbl.set_default_action(3, vec![0xdef]);
        reference.default_action = Some((3, vec![0xdef]));
    }
    Scenario { ft, fields, tbl, reference }
}

/// Interpret one raw entry against the key spec, producing a conforming
/// match value per field. `pri_mod` squeezes priorities into a small range
/// so ties and collisions are common; `pri_mod == 1` keeps every priority
/// at 0, which is what lets the single-field LPM index stay live.
fn make_entry(
    sc: &Scenario,
    raw: RawEntry,
    pri_mod: u8,
    narrow_values: bool,
) -> TableEntry {
    let (v, aux, prefix, pri, action, data) = raw;
    let matches = sc
        .fields
        .iter()
        .enumerate()
        .map(|(i, (f, kind))| {
            let bits = field_width(&sc.ft, *f);
            let m = mask_of(bits);
            // Rotate the raw words per field so multi-field keys don't
            // repeat the same value in every position.
            let v = v.rotate_left(i as u32 * 13) & m;
            let v = if narrow_values { v % 5 } else { v };
            let aux = aux.rotate_left(i as u32 * 7) & m;
            match kind {
                MatchKind::Exact => MatchValue::Exact(v),
                MatchKind::Ternary => MatchValue::Ternary { value: v, mask: aux },
                MatchKind::Lpm => {
                    MatchValue::Lpm { value: v, prefix_len: prefix % (bits + 1), bits }
                }
                MatchKind::Range => {
                    let (lo, hi) = if v <= aux { (v, aux) } else { (aux, v) };
                    MatchValue::Range { lo, hi }
                }
            }
        })
        .collect();
    TableEntry {
        matches,
        priority: i32::from(pri % pri_mod.max(1)),
        action: usize::from(action % 3),
        data: vec![data],
    }
}

/// A probe PHV: either random or derived from a stored entry's own match
/// values (with a small perturbation) so hits are common.
fn probe_phv(sc: &Scenario, raw: (u64, u8, u8), entries: &[(u64, TableEntry)]) -> Phv {
    let (rand_v, pick, tweak) = raw;
    let mut phv = Phv::new(&sc.ft);
    for (i, (f, _)) in sc.fields.iter().enumerate() {
        let bits = field_width(&sc.ft, *f);
        let base = if !entries.is_empty() && usize::from(pick) % 4 != 0 {
            let (_, e) = &entries[usize::from(pick) % entries.len()];
            match e.matches[i] {
                MatchValue::Exact(v) => v,
                MatchValue::Ternary { value, .. } => value,
                MatchValue::Lpm { value, .. } => value,
                MatchValue::Range { lo, .. } => lo,
            }
        } else {
            rand_v.rotate_left(i as u32 * 13)
        };
        phv.set(&sc.ft, *f, (base ^ u64::from(tweak % 4)) & mask_of(bits));
    }
    phv
}

/// Run the generated scenario and check indexed lookup, forced-scan lookup,
/// and the reference model all agree on every probe.
fn check_equivalence(
    spec_seed: &[(u8, u8)],
    raw_entries: &[RawEntry],
    deletes: &[u8],
    probes: &[(u64, u8, u8)],
    pri_mod: u8,
    narrow_values: bool,
    with_default: bool,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut sc = build_scenario(spec_seed, with_default);
    let mut live: Vec<(u64, TableEntry)> = Vec::new();
    for (h, raw) in raw_entries.iter().enumerate() {
        let handle = h as u64;
        let entry = make_entry(&sc, *raw, pri_mod, narrow_values);
        sc.tbl.insert(EntryHandle(handle), entry.clone()).unwrap();
        sc.reference.insert(handle, &entry);
        live.push((handle, entry));
    }
    for &d in deletes {
        if live.is_empty() {
            break;
        }
        let handle = live[usize::from(d) % live.len()].0;
        sc.tbl.delete(EntryHandle(handle)).unwrap();
        assert!(sc.reference.delete(handle));
        live.retain(|(h, _)| *h != handle);
    }
    prop_assert_eq!(sc.tbl.len(), live.len());

    let field_ids: Vec<FieldId> = sc.fields.iter().map(|(f, _)| *f).collect();
    for raw_probe in probes {
        let phv = probe_phv(&sc, *raw_probe, &live);
        assert_modes_agree(&mut sc.tbl, &sc.reference, &field_ids, &phv)?;
    }
    Ok(())
}

/// One probe, four ways: indexed, cache-armed miss, cache-armed hit
/// (re-probe of the fresh memo), and forced scan — all against the
/// reference model. Compares on (action name, data, hit): the reference
/// stores the action index, the table hands back the ActionDef borrow.
fn assert_modes_agree(
    tbl: &mut Table,
    reference: &RefTable,
    field_ids: &[FieldId],
    phv: &Phv,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let expected = reference.lookup(field_ids, phv).map(|(a, d, h)| (format!("act{a}"), d, h));
    let indexed = tbl.lookup(phv).map(|r| (r.action.name.clone(), r.data.to_vec(), r.hit));
    tbl.set_result_cache(true);
    let cached_miss = tbl.lookup(phv).map(|r| (r.action.name.clone(), r.data.to_vec(), r.hit));
    let cached_hit = tbl.lookup(phv).map(|r| (r.action.name.clone(), r.data.to_vec(), r.hit));
    tbl.set_result_cache(false);
    tbl.set_indexed(false);
    let scanned = tbl.lookup(phv).map(|r| (r.action.name.clone(), r.data.to_vec(), r.hit));
    tbl.set_indexed(true);
    prop_assert_eq!(&indexed, &expected, "indexed vs reference");
    prop_assert_eq!(&cached_miss, &expected, "cache-armed miss vs reference");
    prop_assert_eq!(&cached_hit, &expected, "cache-armed hit vs reference");
    prop_assert_eq!(&scanned, &expected, "scan vs reference");
    Ok(())
}

/// The tuple-space-search stress shape: one ternary field whose masks come
/// from a tiny pool (so groups run deep instead of wide), optionally a
/// second range field, duplicate-heavy priorities, and explicit
/// delete-then-reinsert churn *inside* a mask group — the reinserted entry
/// gets a fresh sequence number, so the insertion-order tie-break must
/// move it to the back of its priority class.
fn check_tss_churn(
    masks: &[u16],
    raw_entries: &[(u8, u16, u8, u8, u8, u64)],
    ops: &[(bool, u8)],
    probes: &[(u16, u8, u8, u8)],
    with_range: bool,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut ft = FieldTable::new();
    let t = ft.register("meta.t", 16).unwrap();
    let r = ft.register("meta.r", 8).unwrap();
    let mut fields = vec![(t, MatchKind::Ternary)];
    if with_range {
        fields.push((r, MatchKind::Range));
    }
    let mut tbl = Table::new("tss_churn", KeySpec::new(fields.clone()), noop_actions(4), 4096);
    let mut reference = RefTable::default();
    let mut live: Vec<(u64, TableEntry)> = Vec::new();
    let mut graveyard: Vec<TableEntry> = Vec::new();
    let mut next_handle = 0u64;

    for &(mi, v, pri, lo, hi, data) in raw_entries {
        let mut matches = vec![MatchValue::Ternary {
            value: u64::from(v),
            mask: u64::from(masks[usize::from(mi) % masks.len()]),
        }];
        if with_range {
            let (lo, hi) = (u64::from(lo.min(hi)), u64::from(lo.max(hi)));
            matches.push(MatchValue::Range { lo, hi });
        }
        let entry = TableEntry {
            matches,
            priority: i32::from(pri % 3),
            action: usize::from(pri % 3),
            data: vec![data],
        };
        let h = next_handle;
        next_handle += 1;
        tbl.insert(EntryHandle(h), entry.clone()).unwrap();
        reference.insert(h, &entry);
        live.push((h, entry));
    }
    for &(delete, idx) in ops {
        if delete {
            if live.is_empty() {
                continue;
            }
            let (h, e) = live.remove(usize::from(idx) % live.len());
            tbl.delete(EntryHandle(h)).unwrap();
            assert!(reference.delete(h));
            graveyard.push(e);
        } else {
            if graveyard.is_empty() {
                continue;
            }
            let e = graveyard.remove(usize::from(idx) % graveyard.len());
            let h = next_handle;
            next_handle += 1;
            tbl.insert(EntryHandle(h), e.clone()).unwrap();
            reference.insert(h, &e);
            live.push((h, e));
        }
    }
    prop_assert_eq!(tbl.len(), live.len());

    let field_ids: Vec<FieldId> = fields.iter().map(|(f, _)| *f).collect();
    for &(rand_v, pick, tweak, rv) in probes {
        // Mostly probe at/near a live entry's own value so hits and
        // same-group collisions dominate; sometimes fully random.
        let mut phv = Phv::new(&ft);
        let base = if !live.is_empty() && usize::from(pick) % 4 != 0 {
            match live[usize::from(pick) % live.len()].1.matches[0] {
                MatchValue::Ternary { value, .. } => value,
                _ => unreachable!("field 0 is ternary"),
            }
        } else {
            u64::from(rand_v)
        };
        phv.set(&ft, t, base ^ u64::from(tweak % 4));
        if with_range {
            phv.set(&ft, r, u64::from(rv));
        }
        assert_modes_agree(&mut tbl, &reference, &field_ids, &phv)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: std::env::var("P4RP_PROPTEST_CASES")
            .ok().and_then(|s| s.parse().ok()).unwrap_or(64),
        .. ProptestConfig::default()
    })]

    /// Mixed key kinds, duplicate-heavy values, interleaved deletes: the
    /// indexed lookup (whatever path the table chose — exact index, LPM
    /// buckets, degraded scan) agrees with the reference at every probe.
    #[test]
    fn indexed_lookup_matches_reference_scan(
        spec_seed in prop::collection::vec((any::<u8>(), any::<u8>()), 1..4),
        raw_entries in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
            0..24,
        ),
        deletes in prop::collection::vec(any::<u8>(), 0..12),
        probes in prop::collection::vec((any::<u64>(), any::<u8>(), any::<u8>()), 1..16),
        pri_mod in 1u8..4,
        narrow in any::<bool>(),
        with_default in any::<bool>(),
    ) {
        check_equivalence(&spec_seed, &raw_entries, &deletes, &probes, pri_mod, narrow, with_default)?;
    }

    /// All-exact keys with values squeezed into a tiny domain: duplicate
    /// key tuples are the common case, so winner selection and
    /// delete-promotion inside the hash index get exercised hard.
    #[test]
    fn exact_index_survives_duplicate_churn(
        nfields in 1u8..4,
        raw_entries in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
            0..32,
        ),
        deletes in prop::collection::vec(any::<u8>(), 0..24),
        probes in prop::collection::vec((any::<u64>(), any::<u8>(), any::<u8>()), 1..16),
        pri_mod in 1u8..4,
    ) {
        let spec_seed: Vec<(u8, u8)> = (0..nfields).map(|i| (i, 0)).collect();
        check_equivalence(&spec_seed, &raw_entries, &deletes, &probes, pri_mod, true, false)?;
    }

    /// Single-field LPM with uniform priority — the shape the per-prefix
    /// bucket index serves — including prefix-length ties, bucket-emptying
    /// deletes, and /0 catch-alls.
    #[test]
    fn lpm_index_longest_prefix_equivalence(
        raw_entries in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
            0..24,
        ),
        deletes in prop::collection::vec(any::<u8>(), 0..16),
        probes in prop::collection::vec((any::<u64>(), any::<u8>(), any::<u8>()), 1..16),
    ) {
        // spec_seed (0, 2): field 0, KINDS[2] = Lpm; pri_mod 1 keeps the
        // priorities uniform so the table keeps its LPM index.
        check_equivalence(&[(0, 2)], &raw_entries, &deletes, &probes, 1, false, false)?;
    }

    /// Mixed-priority LPM degrades to the scan; the result must *still*
    /// track the reference (priority outranks prefix length).
    #[test]
    fn mixed_priority_lpm_stays_equivalent(
        raw_entries in prop::collection::vec(
            (any::<u64>(), any::<u64>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
            2..24,
        ),
        probes in prop::collection::vec((any::<u64>(), any::<u8>(), any::<u8>()), 1..16),
    ) {
        check_equivalence(&[(0, 2)], &raw_entries, &[], &probes, 3, false, true)?;
    }

    /// Deep mask groups: every ternary mask drawn from a pool of at most
    /// three, so the tuple-space groups hold many entries and duplicate
    /// priorities force the insertion-order tie-break, under
    /// delete-then-reinsert churn inside the groups.
    #[test]
    fn tss_deep_groups_survive_reinsert_churn(
        masks in prop::collection::vec(any::<u16>(), 1..4),
        raw_entries in prop::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
            1..24,
        ),
        ops in prop::collection::vec((any::<bool>(), any::<u8>()), 0..24),
        probes in prop::collection::vec(
            (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..16,
        ),
    ) {
        check_tss_churn(&masks, &raw_entries, &ops, &probes, false)?;
    }

    /// Same shape with a range field appended to the key: the single-range
    /// interval probe inside each bucket must agree with the reference,
    /// including overlapping ranges resolved by priority and seq.
    #[test]
    fn tss_ternary_range_mixed_equivalence(
        masks in prop::collection::vec(any::<u16>(), 1..3),
        raw_entries in prop::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u64>()),
            1..20,
        ),
        ops in prop::collection::vec((any::<bool>(), any::<u8>()), 0..16),
        probes in prop::collection::vec(
            (any::<u16>(), any::<u8>(), any::<u8>(), any::<u8>()),
            1..16,
        ),
    ) {
        check_tss_churn(&masks, &raw_entries, &ops, &probes, true)?;
    }
}
