//! Property-based tests over the core invariants: language round-trips,
//! allocator constraint satisfaction, address translation, and packet
//! round-trips.

use proptest::prelude::*;
use p4runpro::p4rp_compiler::alloc::{allocate, slot_requirements, AllocConfig, AllocView};
use p4runpro::p4rp_compiler::ir::{lower, MemDecl};
use p4runpro::p4rp_dataplane::{LogicalRpb, RPB_MEM_SIZE, RPB_TABLE_SIZE};
use p4runpro::p4rp_lang::{parse, print_unit, Reg};
use p4runpro::rmt_sim::hash::{CrcSpec, HH_CRC_SET};

// ---------------------------------------------------------------- language

/// Generate a random well-formed P4runpro program source.
fn arb_program() -> impl Strategy<Value = String> {
    let reg = prop::sample::select(vec!["har", "sar", "mar"]);
    let simple = (reg.clone(), 0u32..1000).prop_map(|(r, i)| format!("LOADI({r}, {i});"));
    let two = (reg.clone(), reg.clone(), prop::sample::select(vec!["ADD", "XOR", "MIN", "MAX"]))
        .prop_filter_map("distinct regs", |(a, b, op)| {
            (a != b).then(|| format!("{op}({a}, {b});"))
        });
    let mem = prop::sample::select(vec![
        "HASH_5_TUPLE_MEM(m); MEMADD(m);",
        "LOADI(mar, 3); MEMREAD(m);",
        "HASH_5_TUPLE_MEM(m); MEMMAX(m);",
    ])
    .prop_map(str::to_string);
    let pseudo = (reg, 1u32..100).prop_map(|(r, i)| format!("ADDI({r}, {i});"));
    let stmt = prop_oneof![simple, two, mem, pseudo];
    // At most two accesses to the same virtual memory: R = 1 allows two
    // passes, so a third same-memory access is *correctly* infeasible
    // (constraint (5)) — keep generated programs allocatable.
    (
        proptest::collection::vec(stmt, 1..8).prop_filter("≤2 accesses to m", |stmts| {
            stmts.iter().map(|s| s.matches("MEM").count()).sum::<usize>() <= 2
        }),
        any::<bool>(),
    )
        .prop_map(|(stmts, fwd)| {
        let mut body = stmts.join("\n    ");
        if fwd {
            body.push_str("\n    FORWARD(5);");
        }
        format!("@ m 256\nprogram p(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) {{\n    {body}\n}}\n")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print(parse(src)) re-parses to the same AST.
    #[test]
    fn pretty_print_roundtrip(src in arb_program()) {
        let a = parse(&src).unwrap();
        let printed = print_unit(&a);
        let b = parse(&printed).expect("canonical form parses");
        // Positions differ; compare structure via a second print.
        prop_assert_eq!(printed, print_unit(&b));
    }

    /// Every allocation the solver returns satisfies the §4.3 constraints.
    #[test]
    fn allocations_satisfy_model_constraints(src in arb_program()) {
        let unit = parse(&src).unwrap();
        let mems: Vec<MemDecl> = unit.annotations.iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();
        let ir = lower(&unit.programs[0], &mems).unwrap();
        let view = AllocView::unconstrained(RPB_TABLE_SIZE, RPB_MEM_SIZE);
        let cfg = AllocConfig::default();
        let alloc = allocate(&ir, &view, &cfg).unwrap();
        let (reqs, pairs) = slot_requirements(&ir);

        // (1) strict ordering.
        for w in alloc.x.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // Domain bound.
        let max = LogicalRpb::max_index(cfg.max_recirc);
        prop_assert!(*alloc.x.last().unwrap() <= max);
        // (4) forwarding in ingress RPBs.
        for (i, r) in reqs.iter().enumerate() {
            if r.is_forwarding {
                prop_assert!(LogicalRpb::from_index(alloc.x[i]).is_ingress());
            }
        }
        // (5) same vmem ⇒ same physical RPB, strictly increasing pass.
        let mut seen: std::collections::HashMap<&str, (u8, u8)> = Default::default();
        for (i, r) in reqs.iter().enumerate() {
            for m in &r.mems {
                let l = LogicalRpb::from_index(alloc.x[i]);
                if let Some((rpb, pass)) = seen.get(m.as_str()) {
                    prop_assert_eq!(*rpb, l.rpb().0);
                    prop_assert!(l.pass() > *pass);
                }
                seen.insert(m, (l.rpb().0, l.pass()));
            }
        }
        // (6) same-pass pairs.
        for (a, b) in pairs {
            prop_assert_eq!(
                LogicalRpb::from_index(alloc.x[a]).pass(),
                LogicalRpb::from_index(alloc.x[b]).pass()
            );
        }
    }

    /// The mask step equals truncation for every CRC the data plane wires.
    #[test]
    fn mask_step_is_truncation(data in proptest::collection::vec(any::<u8>(), 1..64),
                               bits in 1u8..16) {
        for spec in HH_CRC_SET {
            let full = spec.compute(&data);
            prop_assert_eq!(spec.compute_masked(&data, bits), full & ((1 << bits) - 1));
        }
    }

    /// CRC linearity sanity: same input ⇒ same output; algorithms are
    /// deterministic functions.
    #[test]
    fn crc_deterministic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let spec: CrcSpec = HH_CRC_SET[0];
        prop_assert_eq!(spec.compute(&data), spec.compute(&data));
    }

    /// Wire round-trip: any UDP packet built by the traffic generator
    /// parses back to itself.
    #[test]
    fn frame_roundtrip(seed in 0u64..1000, payload in 0usize..800) {
        let flows = p4runpro::traffic::make_flows(seed, 1, 0.5);
        let frame = p4runpro::traffic::frame_for(&flows[0].tuple, payload);
        let parsed = netpkt::ParsedPacket::parse(&frame).unwrap();
        prop_assert_eq!(parsed.five_tuple().unwrap(), flows[0].tuple);
        prop_assert_eq!(parsed.payload_len, payload);
        prop_assert_eq!(parsed.emit(), frame);
    }

    /// Register set sanity: the supportive-register scheme always has a
    /// third register available.
    #[test]
    fn register_triples(a in 0usize..3, b in 0usize..3) {
        prop_assume!(a != b);
        let (a, b) = (Reg::ALL[a], Reg::ALL[b]);
        let c = Reg::ALL.into_iter().find(|r| *r != a && *r != b);
        prop_assert!(c.is_some());
    }
}
