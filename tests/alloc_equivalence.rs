//! The fast allocator against the reference: the interned / pruned /
//! memoized solver in `p4rp_compiler::alloc` must be observationally
//! equivalent to the naive DFS preserved in `alloc_reference` — same
//! feasibility verdict and the same (exact) objective on every program
//! and plane state — plus a regression test that concurrent `deploy_many`
//! commits never double-book memory or table entries.
//!
//! The reference is the §4.3 model written out directly, with no pruning
//! beyond the `x_L` bound; the fast solver adds suffix-capacity cuts,
//! free-slot dominance, and memoized infeasible frontiers, all of which
//! must be invisible in the result. Both run with a node budget large
//! enough that neither truncates on these program sizes, so exact
//! equality (not just "no worse") is the right assertion.

use proptest::prelude::*;
use p4runpro::p4rp_compiler::alloc::{allocate, AllocConfig, AllocView, Objective};
use p4runpro::p4rp_compiler::ir::{lower, MemDecl};
use p4runpro::p4rp_dataplane::{NUM_RPBS, RPB_MEM_SIZE, RPB_TABLE_SIZE};
use p4runpro::p4rp_lang::parse;
use p4runpro::p4rp_ctl::Controller;
use p4runpro::rmt_sim::trace::TraceConfig;

/// Random small-program source: register ops, up to two accesses to each
/// of two virtual memories (R = 1 permits at most two passes), optional
/// forwarding primitives that trigger the ingress-only constraint.
fn arb_source() -> impl Strategy<Value = String> {
    let reg = prop::sample::select(vec!["har", "sar", "mar"]);
    let simple = (reg.clone(), 0u32..1000).prop_map(|(r, i)| format!("LOADI({r}, {i});"));
    let two = (reg.clone(), reg, prop::sample::select(vec!["ADD", "XOR", "MIN", "MAX"]))
        .prop_filter_map("distinct regs", |(a, b, op)| {
            (a != b).then(|| format!("{op}({a}, {b});"))
        });
    let mem = prop::sample::select(vec![
        "LOADI(mar, 3); MEMREAD(ma);",
        "HASH_5_TUPLE_MEM(ma); MEMADD(ma);",
        "LOADI(mar, 7); MEMWRITE(mb);",
        "HASH_5_TUPLE_MEM(mb); MEMMAX(mb);",
    ])
    .prop_map(str::to_string);
    let fwd = prop::sample::select(vec!["FORWARD(5);", "DROP;"]).prop_map(str::to_string);
    let stmt = prop_oneof![simple, two, mem, fwd];
    proptest::collection::vec(stmt, 1..8)
        .prop_filter("≤2 accesses per memory", |stmts| {
            let joined = stmts.join(" ");
            joined.matches("(ma)").count() <= 2 && joined.matches("(mb)").count() <= 2
        })
        .prop_map(|stmts| {
            format!(
                "@ ma 256\n@ mb 128\nprogram p(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) {{\n    {}\n}}\n",
                stmts.join("\n    ")
            )
        })
}

/// Random plane state: every RPB keeps full, reduced, or fragmented
/// entries and memory. Realism doesn't matter — both solvers must agree
/// on *any* view — but mixing full and tight RPBs exercises both the
/// feasible and infeasible paths.
fn arb_view() -> impl Strategy<Value = AllocView> {
    // Unweighted arms: repeat the full-capacity case so most RPBs stay
    // usable and the feasible path gets real coverage.
    let te = prop_oneof![
        Just(RPB_TABLE_SIZE),
        Just(RPB_TABLE_SIZE),
        Just(RPB_TABLE_SIZE),
        Just(RPB_TABLE_SIZE),
        0usize..8,
        8usize..64,
    ];
    let mem = prop_oneof![
        Just(vec![RPB_MEM_SIZE]),
        Just(vec![RPB_MEM_SIZE]),
        Just(vec![RPB_MEM_SIZE]),
        Just(vec![RPB_MEM_SIZE]),
        Just(vec![]),
        proptest::collection::vec(0u32..512, 1..3),
        Just(vec![300, RPB_MEM_SIZE / 2]),
    ];
    (
        proptest::collection::vec(te, NUM_RPBS..NUM_RPBS + 1),
        proptest::collection::vec(mem, NUM_RPBS..NUM_RPBS + 1),
    )
        .prop_map(|(te_free, mem_free)| AllocView { te_free, mem_free })
}

fn arb_objective() -> impl Strategy<Value = Objective> {
    prop_oneof![
        Just(Objective::LastOnly),
        Just(Objective::Hierarchical),
        Just(Objective::paper_default()),
        Just(Objective::WeightedDiff { alpha: 0.5, beta: 0.5 }),
        Just(Objective::Ratio),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fast solver ≡ reference DFS: same verdict, same objective, and an
    /// `x_L` that is no worse, on random programs × planes × objectives.
    #[test]
    fn fast_solver_matches_reference(
        src in arb_source(),
        view in arb_view(),
        objective in arb_objective(),
    ) {
        let unit = parse(&src).unwrap();
        let mems: Vec<MemDecl> = unit.annotations.iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();
        let ir = lower(&unit.programs[0], &mems).unwrap();
        // Budget high enough that neither solver truncates at this size:
        // completeness makes exact equality the correct assertion.
        let fast_cfg = AllocConfig { objective, node_budget: 20_000_000, ..AllocConfig::default() };
        let ref_cfg = AllocConfig { reference: true, ..fast_cfg };

        let fast = allocate(&ir, &view, &fast_cfg);
        let reference = allocate(&ir, &view, &ref_cfg);
        match (fast, reference) {
            (Ok(f), Ok(r)) => {
                prop_assert!(
                    (f.objective_value - r.objective_value).abs() < 1e-9,
                    "objective diverged: fast {} vs reference {} (x {:?} vs {:?})",
                    f.objective_value, r.objective_value, f.x, r.x,
                );
                prop_assert!(
                    f.x.last() <= r.x.last(),
                    "fast x_L worse: {:?} vs {:?}", f.x, r.x,
                );
                prop_assert_eq!(f.passes, r.passes);
                prop_assert!(
                    f.nodes_explored <= r.nodes_explored,
                    "pruned solver explored more nodes: {} vs {}",
                    f.nodes_explored, r.nodes_explored,
                );
            }
            (Err(_), Err(_)) => {} // Same verdict: infeasible for both.
            (f, r) => prop_assert!(
                false,
                "verdict diverged: fast {:?} vs reference {:?}",
                f.map(|a| a.x), r.map(|a| a.x),
            ),
        }
    }
}

/// Conflicting concurrent deploys must never double-book resources: every
/// speculative allocation is computed against the same snapshot (so they
/// all want the same placement), and the serial validate-commit phase has
/// to detect each collision and re-solve the loser against the live view.
/// Granted regions must end up pairwise disjoint, and the invariant
/// checker must stay quiet through deploy-under-replay.
#[test]
fn concurrent_deploys_never_double_book() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.enable_trace(TraceConfig::default());

    // Each program wants an entire RPB's memory (sizes must be powers of
    // two for mask-based address translation), so no two fit in the RPB
    // the snapshot speculation steers them all toward.
    let big = RPB_MEM_SIZE;
    let sources: Vec<String> = (0..6)
        .map(|i| {
            format!(
                "@ m{i} {big}\nprogram p{i}(<hdr.ipv4.dst, 10.1.{i}.1, 0xffffffff>) \
                 {{ LOADI(mar, 1); MEMREAD(m{i}); MODIFY(hdr.ipv4.ttl, har); }}"
            )
        })
        .collect();
    let results = ctl.deploy_many(&sources);
    assert_eq!(results.len(), 6);
    for r in &results {
        r.as_ref().expect("plane has room for all six in distinct RPBs");
    }
    assert!(
        ctl.spec_conflicts() >= 1,
        "all six speculated the same RPB; at least one commit must have re-solved"
    );

    // No two granted regions overlap within an RPB.
    let mut regions: Vec<(u8, u32, u32)> = Vec::new();
    for (_, p) in ctl.deployed_programs() {
        for r in &p.image.mem_regions {
            regions.push((r.rpb.0, r.offset, r.size));
        }
    }
    assert_eq!(regions.len(), 6);
    for (i, a) in regions.iter().enumerate() {
        for b in &regions[i + 1..] {
            if a.0 == b.0 {
                let disjoint = a.1 + a.2 <= b.1 || b.1 + b.2 <= a.1;
                assert!(disjoint, "regions overlap: {a:?} vs {b:?}");
            }
        }
    }

    // Distinct values written per program read back intact — aliased
    // regions would clobber each other.
    for i in 0..6u32 {
        ctl.write_memory(&format!("p{i}"), &format!("m{i}"), 9, 1000 + i).unwrap();
    }
    for i in 0..6u32 {
        let v = ctl.read_memory(&format!("p{i}"), &format!("m{i}")).unwrap();
        assert_eq!(v[9], 1000 + i, "program p{i} lost its write");
    }

    // Deploy-under-replay: traffic through the freshly committed plane,
    // then tear half down, with the flight recorder's invariant checker
    // watching the whole time.
    let frame = p4runpro::traffic::frame_for(
        &p4runpro::netpkt::FiveTuple {
            src_addr: std::net::Ipv4Addr::new(10, 9, 9, 9),
            dst_addr: std::net::Ipv4Addr::new(10, 1, 0, 1),
            src_port: 4000,
            dst_port: 5000,
            protocol: 17,
        },
        8,
    );
    for _ in 0..64 {
        ctl.inject(1, &frame).unwrap();
    }
    let names: Vec<String> = (0..3).map(|i| format!("p{i}")).collect();
    for r in ctl.revoke_many(&names) {
        r.unwrap();
    }
    assert_eq!(ctl.deployed_programs().count(), 3);
    let stats = ctl.trace_stats();
    assert!(stats.enabled);
    assert_eq!(stats.violations, 0, "invariant checker flagged the fast path");
}

/// The same shape deployed many times exercises the entry-generation
/// cache; outputs must stay per-instance (distinct prog ids and offsets
/// were already covered by the unit test — here the whole pipeline runs).
#[test]
fn deploy_many_reuses_entry_templates() {
    let mut ctl = Controller::with_defaults().unwrap();
    let sources: Vec<String> = (0..8)
        .map(|i| {
            format!(
                "@ m 64\nprogram q{i}(<hdr.ipv4.dst, 10.2.{i}.1, 0xffffffff>) \
                 {{ LOADI(mar, 2); MEMADD(m); }}"
            )
        })
        .collect();
    for r in ctl.deploy_many(&sources) {
        r.unwrap();
    }
    let (hits, misses) = ctl.entry_cache_stats();
    assert_eq!(hits + misses, 8);
    assert!(hits >= 6, "identical shapes should hit the template cache: {hits} hits");
}
