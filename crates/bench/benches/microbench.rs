//! Criterion micro-benchmarks of the runtime-compilation pipeline: the
//! per-stage costs behind Figure 7's deployment delay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use p4rp_compiler::alloc::{allocate, AllocConfig, AllocView, Objective};
use p4rp_compiler::ir::{lower, MemDecl};
use p4rp_ctl::Controller;
use p4rp_lang::parse;
use p4rp_progs::{catalog_all, sources};
use std::hint::black_box;

fn cache_src() -> String {
    sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &[(0x8888, 512)])
}

fn bench_frontend(c: &mut Criterion) {
    let src = cache_src();
    c.bench_function("lang/parse_cache", |b| b.iter(|| parse(black_box(&src)).unwrap()));

    let hll = sources::hll("hll", "<hdr.ipv4.src, 10.0.0.0, 0xffff0000>", 256);
    c.bench_function("lang/parse_hll", |b| b.iter(|| parse(black_box(&hll)).unwrap()));

    let unit = parse(&src).unwrap();
    let mems: Vec<MemDecl> = unit
        .annotations
        .iter()
        .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
        .collect();
    c.bench_function("compiler/lower_cache", |b| {
        b.iter(|| lower(black_box(&unit.programs[0]), black_box(&mems)).unwrap())
    });
}

fn bench_allocator(c: &mut Criterion) {
    let src = cache_src();
    let unit = parse(&src).unwrap();
    let mems: Vec<MemDecl> = unit
        .annotations
        .iter()
        .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
        .collect();
    let ir = lower(&unit.programs[0], &mems).unwrap();
    let view = AllocView::unconstrained(2048, 65_536);
    let mut group = c.benchmark_group("alloc/objectives");
    for (name, obj) in [
        ("f1", Objective::paper_default()),
        ("f2", Objective::LastOnly),
        ("f3", Objective::Ratio),
        ("hier", Objective::Hierarchical),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &obj, |b, obj| {
            let cfg = AllocConfig { objective: *obj, ..Default::default() };
            b.iter(|| allocate(black_box(&ir), black_box(&view), &cfg).unwrap())
        });
    }
    group.finish();
}

fn bench_deploy(c: &mut Criterion) {
    // Full deploy+revoke round trips per program family.
    let mut group = c.benchmark_group("ctl/deploy_revoke");
    group.sample_size(20);
    for spec in catalog_all().into_iter().take(4) {
        group.bench_function(spec.name, |b| {
            let mut ctl = Controller::with_defaults().unwrap();
            b.iter(|| {
                let r = ctl.deploy(black_box(&spec.source)).unwrap();
                ctl.revoke(&r[0].name).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_frontend, bench_allocator, bench_deploy);
criterion_main!(benches);
