//! Criterion micro-benchmarks of the data plane substrate: packet
//! processing, table lookup scaling, and the hash engines.

use bench::fixtures::{cache_controller, exact_fixture, ternary_fixture, tss_fixture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rmt_sim::hash::{CRC16_BUYPASS, CRC32};
use rmt_sim::switch::ProcessOutcome;
use std::hint::black_box;

fn bench_crc(c: &mut Criterion) {
    let data = [0u8; 13]; // five-tuple width
    let mut group = c.benchmark_group("hash");
    group.throughput(Throughput::Bytes(13));
    group.bench_function("crc16_buypass_5tuple", |b| {
        b.iter(|| CRC16_BUYPASS.compute(black_box(&data)))
    });
    group.bench_function("crc32_5tuple", |b| b.iter(|| CRC32.compute(black_box(&data))));
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    // End-to-end frame processing through the provisioned P4runpro data
    // plane with the cache program linked.
    let (mut ctl, hit, miss, plain) = cache_controller();

    let mut group = c.benchmark_group("switch/process_frame");
    group.bench_function("cache_hit", |b| b.iter(|| ctl.inject(0, black_box(&hit)).unwrap()));
    group.bench_function("cache_miss", |b| b.iter(|| ctl.inject(0, black_box(&miss)).unwrap()));
    group.bench_function("no_program", |b| b.iter(|| ctl.inject(0, black_box(&plain)).unwrap()));
    group.finish();
}

/// Table lookup scaling: the indexed fast paths against the forced linear
/// scan at 16 / 256 / 4096 entries.
fn bench_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table/lookup");
    for &n in &[16usize, 256, 4096] {
        let (mut tbl, probes) = exact_fixture(n);
        let mut i = 0;
        group.bench_function(BenchmarkId::new("exact_indexed", n), |b| {
            b.iter(|| {
                i = (i + 1) % probes.len();
                tbl.lookup(black_box(&probes[i])).is_some()
            })
        });
        tbl.set_indexed(false);
        let mut i = 0;
        group.bench_function(BenchmarkId::new("exact_scan", n), |b| {
            b.iter(|| {
                i = (i + 1) % probes.len();
                tbl.lookup(black_box(&probes[i])).is_some()
            })
        });
        let (mut tbl, probes) = ternary_fixture(n);
        let mut i = 0;
        group.bench_function(BenchmarkId::new("ternary_tss", n), |b| {
            b.iter(|| {
                i = (i + 1) % probes.len();
                tbl.lookup(black_box(&probes[i])).is_some()
            })
        });
        tbl.set_indexed(false);
        let mut i = 0;
        group.bench_function(BenchmarkId::new("ternary_scan", n), |b| {
            b.iter(|| {
                i = (i + 1) % probes.len();
                tbl.lookup(black_box(&probes[i])).is_some()
            })
        });
        // The multi-mask-group stress shape (64 groups at 4096 entries),
        // with and without the megaflow result cache memoizing probes.
        let groups = (n / 64).clamp(1, 64);
        let (mut tbl, probes) = tss_fixture(n, groups);
        let mut i = 0;
        group.bench_function(BenchmarkId::new("ternary_grouped_tss", n), |b| {
            b.iter(|| {
                i = (i + 1) % probes.len();
                tbl.lookup(black_box(&probes[i])).is_some()
            })
        });
        tbl.set_result_cache(true);
        let mut i = 0;
        group.bench_function(BenchmarkId::new("ternary_grouped_cached", n), |b| {
            b.iter(|| {
                i = (i + 1) % probes.len();
                tbl.lookup(black_box(&probes[i])).is_some()
            })
        });
    }
    group.finish();
}

/// The pooled-outcome injection path (`process_frame_into`) against the
/// per-call-allocating wrapper, on the same cache-hit frame.
fn bench_outcome_reuse(c: &mut Criterion) {
    let (mut ctl, hit, _, _) = cache_controller();

    let mut group = c.benchmark_group("switch/outcome");
    group.bench_function("alloc_per_call", |b| {
        b.iter(|| ctl.inject(0, black_box(&hit)).unwrap())
    });
    let mut out = ProcessOutcome::empty();
    group.bench_function("reused", |b| {
        b.iter(|| ctl.inject_into(0, black_box(&hit), &mut out).unwrap())
    });
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // The zero-cost-when-disabled claim of `rmt_sim::telemetry`: with the
    // recorder off, the hot path pays one virtual call to an empty body
    // per event, which must be invisible next to a table lookup.
    let (mut ctl, hit, _, _) = cache_controller();

    let mut group = c.benchmark_group("switch/telemetry");
    group.bench_function("disabled", |b| b.iter(|| ctl.inject(0, black_box(&hit)).unwrap()));
    ctl.enable_telemetry();
    group.bench_function("enabled", |b| b.iter(|| ctl.inject(0, black_box(&hit)).unwrap()));
    group.finish();
}

criterion_group!(
    benches,
    bench_crc,
    bench_pipeline,
    bench_lookup_scaling,
    bench_outcome_reuse,
    bench_telemetry
);
criterion_main!(benches);
