//! Criterion micro-benchmarks of the data plane substrate: packet
//! processing and the hash engines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netpkt::CacheOp;
use p4rp_ctl::Controller;
use p4rp_progs::sources;
use rmt_sim::hash::{CRC16_BUYPASS, CRC32};
use std::hint::black_box;

fn bench_crc(c: &mut Criterion) {
    let data = [0u8; 13]; // five-tuple width
    let mut group = c.benchmark_group("hash");
    group.throughput(Throughput::Bytes(13));
    group.bench_function("crc16_buypass_5tuple", |b| {
        b.iter(|| CRC16_BUYPASS.compute(black_box(&data)))
    });
    group.bench_function("crc32_5tuple", |b| b.iter(|| CRC32.compute(black_box(&data))));
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    // End-to-end frame processing through the provisioned P4runpro data
    // plane with the cache program linked.
    let mut ctl = Controller::with_defaults().unwrap();
    let src = sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &[(0x8888, 512)]);
    ctl.deploy(&src).unwrap();
    let flows = traffic::make_flows(5, 1, 0.0);
    let hit = traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, 0x8888, 0);
    let miss = traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, 0x9999, 0);
    let plain = traffic::frame_for(&flows[0].tuple, 64);

    let mut group = c.benchmark_group("switch/process_frame");
    group.bench_function("cache_hit", |b| b.iter(|| ctl.inject(0, black_box(&hit)).unwrap()));
    group.bench_function("cache_miss", |b| b.iter(|| ctl.inject(0, black_box(&miss)).unwrap()));
    group.bench_function("no_program", |b| b.iter(|| ctl.inject(0, black_box(&plain)).unwrap()));
    group.finish();
}

fn bench_telemetry(c: &mut Criterion) {
    // The zero-cost-when-disabled claim of `rmt_sim::telemetry`: with the
    // recorder off, the hot path pays one virtual call to an empty body
    // per event, which must be invisible next to a table lookup.
    let mut ctl = Controller::with_defaults().unwrap();
    let src = sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &[(0x8888, 512)]);
    ctl.deploy(&src).unwrap();
    let flows = traffic::make_flows(5, 1, 0.0);
    let hit = traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, 0x8888, 0);

    let mut group = c.benchmark_group("switch/telemetry");
    group.bench_function("disabled", |b| b.iter(|| ctl.inject(0, black_box(&hit)).unwrap()));
    ctl.enable_telemetry();
    group.bench_function("enabled", |b| b.iter(|| ctl.inject(0, black_box(&hit)).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_crc, bench_pipeline, bench_telemetry);
criterion_main!(benches);
