//! Figure 10: hardware resource usage of the three data planes across the
//! seven main resources (PHV, hash, SRAM, TCAM, VLIW, SALU, LTID).

use bench::print_table;
use p4rp_dataplane::provision;
use rmt_sim::resources::ChipReport;
use rmt_sim::switch::SwitchConfig;

fn main() {
    println!("Figure 10: resource utilization (% of chip capacity)\n");
    let (_, dp) = provision(SwitchConfig::default()).unwrap();
    let reports: Vec<(&str, ChipReport)> = vec![
        ("P4runpro", dp.report.clone()),
        ("ActiveRMT", baselines::activermt::build_profile().unwrap()),
        ("FlyMon", baselines::flymon::build_profile().unwrap()),
    ];
    let mut rows = Vec::new();
    for (name, r) in &reports {
        let pct = r.utilization_pct();
        let mut row = vec![name.to_string()];
        row.extend(pct.iter().map(|p| format!("{p:.1}%")));
        rows.push(row);
    }
    print_table(
        &["System", "PHV", "Hash", "SRAM", "TCAM", "VLIW", "SALU", "LTID"],
        &rows,
    );
    println!("\nPaper's qualitative profile (Fig. 10): P4runpro uses nearly all VLIW,");
    println!("efficient PHV/LTID, moderate SRAM, TCAM bounded; ActiveRMT leads on");
    println!("SRAM/SALU; FlyMon is light everywhere except its measurement stages.");
}
