//! Figure 12 / Appendix C: the four allocation objectives under the
//! all-mixed workload — program capacity, memory/entry utilization, and
//! allocation delay, deployed continuously until failure.

use bench::{mean_alloc_ms, run_deploy_stream};
use p4rp_compiler::alloc::{AllocConfig, Objective};
use p4rp_ctl::Controller;
use p4rp_progs::{Workload, WorkloadParams};
use rmt_sim::switch::SwitchConfig;

fn main() {
    println!("Figure 12: objective-function comparison, all-mixed workload\n");
    let objectives: [(&str, Objective); 4] = [
        ("f1 = 0.7xL - 0.3x1", Objective::paper_default()),
        ("f2 = xL", Objective::LastOnly),
        ("f3 = xL / x1", Objective::Ratio),
        ("hierarchical", Objective::Hierarchical),
    ];
    println!(
        "{:<20} {:>9} {:>10} {:>10} {:>14}",
        "objective", "capacity", "mem util", "entry util", "alloc delay ms"
    );
    for (name, objective) in objectives {
        let cfg = AllocConfig { objective, ..Default::default() };
        let mut ctl = Controller::new(SwitchConfig::default(), cfg).unwrap();
        let recs = run_deploy_stream(
            &mut ctl,
            Workload::AllMixed,
            WorkloadParams::default(),
            100_000,
            21,
            true,
        );
        let capacity = recs.iter().filter(|r| r.ok).count();
        println!(
            "{:<20} {:>9} {:>9.1}% {:>9.1}% {:>14.2}",
            name,
            capacity,
            ctl.resources().memory_utilization() * 100.0,
            ctl.resources().entry_utilization() * 100.0,
            mean_alloc_ms(&recs)
        );
    }
    println!("\nPaper: f2/hierarchical have the lowest capacity+utilization; f3 the");
    println!("highest but with 1–10 s delays; f1 balances all three (chosen default).");
}
