//! Figure 7: allocation delay.
//!
//! (a) Allocation-scheme computation time during 500 sequential program
//!     deployments, for the cache / lb / hh / mixed workloads, P4runpro
//!     vs ActiveRMT (moving average, window 31, averaged over repeats).
//! (b) Allocation delay under the mixed workload for memory granularities
//!     128 B – 1,024 B (32–256 buckets): P4runpro is insensitive to the
//!     requested size; ActiveRMT slows down as granularity shrinks.

use bench::{mean, mean_alloc_ms, print_series, run_activermt_stream, run_deploy_stream, scaled};
use baselines::ActiveRmtAllocator;
use p4rp_ctl::Controller;
use p4rp_progs::{Workload, WorkloadParams};
use traffic::moving_average;

fn main() {
    let epochs = scaled(500);
    let repeats = scaled(30).clamp(1, 3);
    println!("Figure 7(a): allocation delay over {epochs} deployment epochs (ms, moving avg w=31)\n");

    for workload in [Workload::Cache, Workload::Lb, Workload::Hh, Workload::Mixed] {
        // P4runpro: average the per-epoch series over the repeats.
        let mut acc: Vec<f64> = vec![0.0; epochs];
        for rep in 0..repeats {
            let mut ctl = Controller::with_defaults().unwrap();
            let recs = run_deploy_stream(
                &mut ctl,
                workload,
                WorkloadParams::default(),
                epochs,
                rep as u64,
                false,
            );
            for r in &recs {
                acc[r.epoch] += r.alloc_ms / repeats as f64;
            }
        }
        let smoothed = moving_average(&acc, 31);
        print_series(&format!("p4runpro {:9}", workload.label()), &smoothed, 20);

        let mut a_acc: Vec<f64> = vec![0.0; epochs];
        for rep in 0..repeats {
            let mut armt = ActiveRmtAllocator::default();
            let recs = run_activermt_stream(
                &mut armt,
                workload,
                WorkloadParams::default(),
                epochs,
                rep as u64,
                false,
            );
            for r in &recs {
                a_acc[r.epoch] += r.alloc_ms / repeats as f64;
            }
        }
        let smoothed = moving_average(&a_acc, 31);
        print_series(&format!("activermt {:9}", workload.label()), &smoothed, 20);
        println!();
    }

    println!("Figure 7(b): mean allocation delay vs memory granularity, mixed workload (ms)\n");
    println!("granularity  p4runpro  activermt");
    for buckets in [32u32, 64, 128, 256] {
        let params = WorkloadParams { mem: buckets, elastic: 2 };
        let mut ctl = Controller::with_defaults().unwrap();
        let ours = mean_alloc_ms(&run_deploy_stream(&mut ctl, Workload::Mixed, params, epochs.min(300), 1, false));
        let mut armt = ActiveRmtAllocator::new(buckets);
        let recs = run_activermt_stream(&mut armt, Workload::Mixed, params, epochs.min(300), 1, false);
        let theirs = mean(&recs.iter().filter(|r| r.ok).map(|r| r.alloc_ms).collect::<Vec<_>>());
        println!("{:>6}B      {:>7.2}   {:>8.2}", buckets * 4, ours, theirs);
    }
}
