//! Figure 9: program capacity — how many programs run concurrently —
//! for the cache / lb / hh / nc / all-mixed workloads, under the baseline
//! configuration (1,024 B memory, 2 elastic case blocks) and the enhanced
//! requests (2,048 B / 4,096 B memory; 16 / 256 elastic blocks).

use bench::run_deploy_stream;
use p4rp_ctl::Controller;
use p4rp_progs::{Workload, WorkloadParams};

fn capacity(workload: Workload, params: WorkloadParams) -> usize {
    let mut ctl = Controller::with_defaults().unwrap();
    run_deploy_stream(&mut ctl, workload, params, 100_000, 5, true)
        .iter()
        .filter(|r| r.ok)
        .count()
}

fn main() {
    println!("Figure 9: program capacity (concurrent programs until allocation failure)\n");
    let configs: [(&str, WorkloadParams); 5] = [
        ("baseline 1KB/2eb", WorkloadParams { mem: 256, elastic: 2 }),
        ("mem 2KB", WorkloadParams { mem: 512, elastic: 2 }),
        ("mem 4KB", WorkloadParams { mem: 1024, elastic: 2 }),
        ("elastic 16", WorkloadParams { mem: 256, elastic: 16 }),
        ("elastic 256", WorkloadParams { mem: 256, elastic: 256 }),
    ];
    println!(
        "{:<12} {:>16} {:>8} {:>8} {:>12} {:>12}",
        "workload", "baseline 1KB/2eb", "2KB", "4KB", "elastic 16", "elastic 256"
    );
    for workload in [Workload::Cache, Workload::Lb, Workload::Hh, Workload::Nc, Workload::AllMixed]
    {
        let caps: Vec<String> = configs
            .iter()
            .map(|(_, p)| {
                // hh has no elastic blocks; skip redundant configs.
                if workload == Workload::Hh && p.elastic != 2 {
                    "-".to_string()
                } else {
                    capacity(workload, *p).to_string()
                }
            })
            .collect();
        println!(
            "{:<12} {:>16} {:>8} {:>8} {:>12} {:>12}",
            workload.label(),
            caps[0],
            caps[1],
            caps[2],
            caps[3],
            caps[4]
        );
    }
    println!("\nPaper: lb ≈2.8K, nc ≈0.6K, all-mixed 77–1351 depending on requests;");
    println!("doubling memory does not halve capacity; elastic blocks dominate.");
}
