//! Table 1: LoC comparison and update delay for the 15 programs.
//!
//! For each program: our P4runpro LoC vs the paper's P4 control-block
//! LoC, and the measured data plane update delay averaged over repeated
//! deploy→revoke cycles (the paper averages 50 updates), alongside the
//! paper's own numbers and the prior systems' (`*` ActiveRMT,
//! `**` FlyMon).

use bench::{mean, print_table, scaled};
use p4rp_ctl::Controller;
use p4rp_lang::count_loc;
use p4rp_progs::{catalog_all, PriorSystem};

fn main() {
    let repeats = scaled(50);
    println!("Table 1: P4 programs implemented by P4runpro and update delay");
    println!("(update delay averaged over {repeats} repeated deployments)\n");

    let mut rows = Vec::new();
    for spec in catalog_all() {
        let mut ctl = Controller::with_defaults().unwrap();
        let mut delays = Vec::new();
        for i in 0..repeats {
            let reports = ctl
                .deploy(&spec.source)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            delays.push(reports[0].update_delay.as_millis_f64());
            if i + 1 < repeats {
                ctl.revoke(reports[0].name.as_str()).unwrap();
            }
        }
        let ours_loc = count_loc(&spec.source);
        let other = match spec.prior {
            Some((PriorSystem::ActiveRmt, ms)) => format!("{ms:.2}*"),
            Some((PriorSystem::FlyMon, ms)) => format!("{ms:.2}**"),
            None => "-".to_string(),
        };
        rows.push(vec![
            spec.name.to_string(),
            ours_loc.to_string(),
            spec.p4_loc.to_string(),
            format!("{:.2}", mean(&delays)),
            format!("{:.2}", spec.paper_delay_ms),
            other,
        ]);
    }
    print_table(
        &["Program", "LoC ours", "LoC P4", "Update ms (ours)", "Update ms (paper)", "Others ms"],
        &rows,
    );
    println!("\n*  ActiveRMT update delay (paper Table 1)");
    println!("** FlyMon update delay (paper Table 1)");
}
