//! Control-plane deploy fast-path numbers, written to
//! `BENCH_controlplane.json`.
//!
//! Measures deploy latency against the number of already-resident
//! programs, before and after the fast path:
//!
//! * **before** — the naive reference allocator
//!   (`AllocConfig::reference`) and the per-op-latency channel path
//!   (`fast_path` off): what the control plane did prior to this work;
//! * **after** — the interned/pruned/memoized solver plus the vectored
//!   single-batch channel (`fast_path` on).
//!
//! Per-deploy latency decomposes into the solver wall-clock (Figure 7's
//! quantity), the controller-side channel-apply wall-clock, and the
//! simulated `bfrt`-calibrated device latency (Table 1's quantity); the
//! JSON reports the p50 of each split so the solver-vs-channel
//! attribution is explicit. A final section times `deploy_many` (the
//! speculative-allocate → validate-commit pipeline) against the same
//! programs deployed sequentially, and a `fault_guard` section pins the
//! cost of an armed-but-idle `FaultPlan` (see `docs/CHAOS.md`) to within
//! noise of the plan-free fast path. A `server_overhead` section drives
//! the same deploy/revoke cycle through a loopback `p4rp serve` session
//! (docs/SERVER.md) and pins the line-protocol + batching overhead to
//! < 1.5x the direct in-process calls, using the interleaved same-run
//! A/B scheme (`measure::ab_min`) so wall-clock drift cancels.
//!
//! Run from the workspace root (`cargo run --release -p bench --bin
//! bench_controlplane`); `P4RP_SCALE=quick` trims the sample counts.

use bench::scaled;
use p4rp_compiler::alloc::AllocConfig;
use p4rp_ctl::Controller;
use p4rp_progs::{instance, Family, WorkloadParams};
use rmt_sim::fault::{FaultKind, FaultPlan, FaultTrigger};
use serde::{json, Value};

const RESIDENTS: [usize; 3] = [0, 32, 128];
const FAMILIES: [Family; 4] = [Family::Cache, Family::Hh, Family::Lb, Family::Dqacc];

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

fn p50(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Small-footprint workload instance `i` (64 buckets of memory) so 128 of
/// them fit comfortably and the plane still fragments realistically.
fn resident_source(i: usize) -> String {
    let fam = FAMILIES[i % FAMILIES.len()];
    instance(fam, i, WorkloadParams { mem: 64, elastic: 2 })
}

struct Split {
    solver_us: f64,
    apply_us: f64,
    device_us: f64,
}

/// Fill a fresh controller to `n_resident` programs, then sample
/// deploy-revoke cycles of a probe program, returning the per-deploy
/// latency splits.
fn measure(reference: bool, fast: bool, n_resident: usize, samples: usize) -> Vec<Split> {
    let cfg = AllocConfig { reference, ..AllocConfig::default() };
    let mut ctl = Controller::new(Default::default(), cfg).expect("provision");
    ctl.set_fast_path(fast);
    let mut filled = 0;
    for i in 0..n_resident {
        if ctl.deploy(&resident_source(i)).is_ok() {
            filled += 1;
        }
    }
    assert_eq!(filled, n_resident, "resident fill failed: {filled}/{n_resident}");

    let probe = instance(Family::Cache, 1_000_000, WorkloadParams { mem: 64, elastic: 2 });
    let probe_name = "cache_1000000";
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        let reports = ctl.deploy(&probe).expect("probe deploys");
        let r = &reports[0];
        out.push(Split {
            solver_us: r.alloc_wall.as_secs_f64() * 1e6,
            apply_us: r.channel_wall.as_secs_f64() * 1e6,
            device_us: r.update_delay.0 as f64 / 1e3,
        });
        ctl.revoke(probe_name).expect("probe revokes");
    }
    out
}

fn split_row(splits: &mut [Split]) -> (f64, f64, f64, f64) {
    let mut total: Vec<f64> =
        splits.iter().map(|s| s.solver_us + s.apply_us + s.device_us).collect();
    let mut solver: Vec<f64> = splits.iter().map(|s| s.solver_us).collect();
    let mut apply: Vec<f64> = splits.iter().map(|s| s.apply_us).collect();
    let mut device: Vec<f64> = splits.iter().map(|s| s.device_us).collect();
    (p50(&mut total), p50(&mut solver), p50(&mut apply), p50(&mut device))
}

fn main() {
    let samples = scaled(24);
    let mut rows = Vec::new();
    let mut p50_at_max = (0.0f64, 0.0f64); // (before, after) at RESIDENTS.last()

    for &n in &RESIDENTS {
        println!("measuring deploy latency at {n} resident programs ...");
        let mut before = measure(true, false, n, samples);
        let mut after = measure(false, true, n, samples);
        let (bt, bs, ba, bd) = split_row(&mut before);
        let (at, as_, aa, ad) = split_row(&mut after);
        if n == *RESIDENTS.last().unwrap() {
            p50_at_max = (bt, at);
        }
        rows.push(obj(vec![
            ("resident_programs", Value::U64(n as u64)),
            (
                "before",
                obj(vec![
                    ("p50_total_us", Value::F64(round1(bt))),
                    ("p50_solver_us", Value::F64(round1(bs))),
                    ("p50_channel_apply_us", Value::F64(round1(ba))),
                    ("p50_device_us", Value::F64(round1(bd))),
                ]),
            ),
            (
                "after",
                obj(vec![
                    ("p50_total_us", Value::F64(round1(at))),
                    ("p50_solver_us", Value::F64(round1(as_))),
                    ("p50_channel_apply_us", Value::F64(round1(aa))),
                    ("p50_device_us", Value::F64(round1(ad))),
                ]),
            ),
            ("speedup_p50", Value::F64(round1(bt / at))),
        ]));
        println!(
            "  before p50 {:.0} µs (solver {:.0} / apply {:.0} / device {:.0})",
            bt, bs, ba, bd
        );
        println!(
            "  after  p50 {:.0} µs (solver {:.0} / apply {:.0} / device {:.0}) — {:.1}x",
            at, as_, aa, ad, bt / at
        );
    }

    // Concurrent deploys: wall-clock for one deploy_many batch against the
    // same sources pushed through sequential deploy calls.
    println!("measuring deploy_many vs sequential ...");
    let batch = scaled(16).min(64);
    let sources: Vec<String> = (0..batch).map(|i| resident_source(2_000_000 + i)).collect();
    let mut seq = Controller::with_defaults().expect("provision");
    seq.set_fast_path(true);
    let t = std::time::Instant::now();
    for s in &sources {
        seq.deploy(s).expect("sequential deploy");
    }
    let seq_us = t.elapsed().as_secs_f64() * 1e6;
    let mut conc = Controller::with_defaults().expect("provision");
    let t = std::time::Instant::now();
    for r in conc.deploy_many(&sources) {
        r.expect("concurrent deploy");
    }
    let conc_us = t.elapsed().as_secs_f64() * 1e6;
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let concurrency = obj(vec![
        ("batch", Value::U64(batch as u64)),
        ("host_cores", Value::U64(cores as u64)),
        ("sequential_wall_us", Value::F64(round1(seq_us))),
        ("deploy_many_wall_us", Value::F64(round1(conc_us))),
        ("speedup", Value::F64(round1(seq_us / conc_us))),
        ("spec_conflicts", Value::U64(conc.spec_conflicts())),
    ]);
    println!(
        "  sequential {:.0} µs, deploy_many {:.0} µs ({:.1}x, {} conflicts re-solved)",
        seq_us,
        conc_us,
        seq_us / conc_us,
        conc.spec_conflicts()
    );

    // Fault-injection guard: the deploy fast path with an armed-but-idle
    // FaultPlan (triggers parked beyond any reachable op index) must sit
    // within noise of the plan-free path — the injection hooks are two
    // branch-on-empty checks per batch/op.
    println!("measuring fault-injection guard (armed plan, no trigger fires) ...");
    let mut baseline = measure(false, true, 0, samples);
    let mut armed = Controller::with_defaults().expect("provision");
    armed.set_fast_path(true);
    armed.set_fault_plan(FaultPlan::new(
        [FaultKind::FailOp, FaultKind::BatchTimeout, FaultKind::ChannelDrop, FaultKind::DeviceReset]
            .map(|fault| FaultTrigger { at: u64::MAX, op_kind: None, fault })
            .to_vec(),
    ));
    let probe = instance(Family::Cache, 1_000_000, WorkloadParams { mem: 64, elastic: 2 });
    let mut guarded = Vec::with_capacity(samples);
    for _ in 0..samples {
        let reports = armed.deploy(&probe).expect("guarded probe deploys");
        let r = &reports[0];
        guarded.push(Split {
            solver_us: r.alloc_wall.as_secs_f64() * 1e6,
            apply_us: r.channel_wall.as_secs_f64() * 1e6,
            device_us: r.update_delay.0 as f64 / 1e3,
        });
        armed.revoke("cache_1000000").expect("guarded probe revokes");
    }
    assert_eq!(armed.fault_stats().faults_injected, 0, "guard plan must never fire");
    let (base_total, _, base_apply, _) = split_row(&mut baseline);
    let (armed_total, _, armed_apply, _) = split_row(&mut guarded);
    let apply_ratio = armed_apply / base_apply;
    assert!(
        apply_ratio < 1.5,
        "armed-but-idle fault plan cost {apply_ratio:.2}x on the channel-apply \
         path ({armed_apply:.1} µs vs {base_apply:.1} µs) — must stay within noise"
    );
    let fault_guard = obj(vec![
        ("baseline_p50_total_us", Value::F64(round1(base_total))),
        ("armed_p50_total_us", Value::F64(round1(armed_total))),
        ("baseline_p50_channel_apply_us", Value::F64(round1(base_apply))),
        ("armed_p50_channel_apply_us", Value::F64(round1(armed_apply))),
        ("channel_apply_ratio", Value::F64((apply_ratio * 100.0).round() / 100.0)),
        ("faults_fired", Value::U64(0)),
    ]);
    println!(
        "  plan-free apply p50 {base_apply:.1} µs, armed-idle {armed_apply:.1} µs \
         ({apply_ratio:.2}x)"
    );

    // Server overhead: one deploy+revoke cycle through a loopback
    // runtime-control session vs the same cycle as direct calls on an
    // identically configured controller. Interleaved A/B windows with
    // per-side minima (the PR-8 de-drift scheme): slow machine drift
    // lands on both sides, so the ratio needs no hardcoded anchor.
    println!("measuring server overhead (loopback session vs direct calls) ...");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let server = std::thread::spawn(move || {
        let mut ctl = Controller::with_defaults().expect("provision server controller");
        p4rp_ctl::server::serve(&mut ctl, listener, &p4rp_ctl::server::ServerConfig::default())
            .expect("serve");
    });
    let mut client = loop {
        match p4rp_ctl::server::Client::connect(&addr) {
            Ok(c) => break c,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    };
    let mut direct = Controller::with_defaults().expect("provision");
    // A heavier probe than the latency sections: the session tax (two loopback
    // round trips plus thread handoffs, ~100 µs) should be judged against a
    // realistic deploy, not a minimal one.
    let probe = instance(Family::Cache, 3_000_000, WorkloadParams { mem: 512, elastic: 8 });
    let ok = |reply: &str| {
        let doc = json::parse(reply).expect("reply parses");
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{reply}");
    };
    let cycles = scaled(8).max(2);
    let (server_ns, direct_ns) = bench::measure::ab_min(scaled(6).max(3), |via_server| {
        let t = std::time::Instant::now();
        for _ in 0..cycles {
            if via_server {
                ok(&client.deploy(&probe).expect("server deploy"));
                ok(&client.revoke("cache_3000000").expect("server revoke"));
            } else {
                direct.deploy(&probe).expect("direct deploy");
                direct.revoke("cache_3000000").expect("direct revoke");
            }
        }
        t.elapsed().as_nanos() as f64 / cycles as f64
    });
    ok(&client.shutdown().expect("shutdown"));
    server.join().expect("server thread");
    let server_ratio = server_ns / direct_ns;
    assert!(
        server_ratio < 1.5,
        "loopback control session cost {server_ratio:.2}x per deploy+revoke cycle \
         ({:.1} µs vs {:.1} µs direct) — the line protocol must stay cheap",
        server_ns / 1e3,
        direct_ns / 1e3
    );
    let server_overhead = obj(vec![
        ("cycles_per_window", Value::U64(cycles as u64)),
        ("direct_cycle_us", Value::F64(round1(direct_ns / 1e3))),
        ("server_cycle_us", Value::F64(round1(server_ns / 1e3))),
        ("ratio", Value::F64((server_ratio * 100.0).round() / 100.0)),
    ]);
    println!(
        "  direct {:.1} µs/cycle, via server {:.1} µs/cycle ({server_ratio:.2}x)",
        direct_ns / 1e3,
        server_ns / 1e3
    );

    let doc = obj(vec![
        ("bench", Value::Str("controlplane".into())),
        ("units", Value::Str("us_per_deploy".into())),
        ("samples_per_point", Value::U64(samples as u64)),
        ("deploy_latency", Value::Array(rows)),
        ("concurrency", concurrency),
        ("fault_guard", fault_guard),
        ("server_overhead", server_overhead),
        (
            "acceptance",
            obj(vec![
                ("resident_programs", Value::U64(*RESIDENTS.last().unwrap() as u64)),
                ("before_p50_us", Value::F64(round1(p50_at_max.0))),
                ("after_p50_us", Value::F64(round1(p50_at_max.1))),
                ("speedup_p50", Value::F64(round1(p50_at_max.0 / p50_at_max.1))),
            ]),
        ),
    ]);

    let rendered = json::to_string_pretty(&doc);
    std::fs::write("BENCH_controlplane.json", &rendered).expect("write BENCH_controlplane.json");
    println!("{rendered}");
    println!("wrote BENCH_controlplane.json");
}
