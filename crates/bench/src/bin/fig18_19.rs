//! Figures 18 & 19 (Appendix C): per-RPB memory and table-entry
//! utilization heatmaps over the deployment epochs of the all-mixed
//! workload, one pair per allocation objective.

use bench::scaled;
use p4rp_compiler::alloc::{AllocConfig, Objective};
use p4rp_ctl::Controller;
use p4rp_progs::{Workload, WorkloadParams};
use rand::prelude::*;
use rand::rngs::StdRng;
use rmt_sim::switch::SwitchConfig;

const SHADES: [char; 9] = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];

fn shade(v: f64) -> char {
    SHADES[((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1)]
}

fn main() {
    println!("Figures 18/19: per-RPB utilization heatmaps (rows = RPB 1..22,");
    println!("columns = epoch segments; shade ' .:-=+*#@' spans 0..100%)\n");
    let segments = 12usize;
    let objectives: [(&str, Objective); 4] = [
        ("f1 = 0.7xL - 0.3x1", Objective::paper_default()),
        ("f2 = xL", Objective::LastOnly),
        ("f3 = xL / x1", Objective::Ratio),
        ("hierarchical", Objective::Hierarchical),
    ];
    for (name, objective) in objectives {
        let cfg = AllocConfig { objective, ..Default::default() };
        let mut ctl = Controller::new(SwitchConfig::default(), cfg).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        // Deploy until failure, snapshotting per-RPB utilization.
        let mut mem_snaps: Vec<Vec<f64>> = Vec::new();
        let mut te_snaps: Vec<Vec<f64>> = Vec::new();
        let max_epochs = scaled(3000);
        for epoch in 0..max_epochs {
            let src = Workload::AllMixed.program(
                epoch,
                rng.random::<u32>() as usize,
                WorkloadParams::default(),
            );
            let ok = ctl.deploy(&src).is_ok();
            // Heatmap rows come from the telemetry gauges — the same
            // per-RPB vectors `status --metrics` serializes.
            let gauges = p4rp_ctl::ResourceGauges::collect(ctl.resources());
            mem_snaps.push(gauges.memory_per_rpb);
            te_snaps.push(gauges.entries_per_rpb);
            if !ok {
                break;
            }
        }
        let epochs = mem_snaps.len();
        let seg = (epochs / segments).max(1);
        println!("== {name} ({epochs} epochs) ==");
        for (label, snaps) in [("mem  (Fig 18)", &mem_snaps), ("entry (Fig 19)", &te_snaps)] {
            println!("{label}:");
            #[allow(clippy::needless_range_loop)] // rpb indexes the inner vec across snapshots
            for rpb in 0..22 {
                let mut row = String::new();
                for s in 0..segments {
                    let idx = ((s + 1) * seg - 1).min(epochs - 1);
                    row.push(shade(snaps[idx][rpb]));
                }
                println!("  rpb {:2} |{row}|", rpb + 1);
            }
        }
        println!();
    }
    println!("Paper: f2/hierarchical exhaust the ingress RPBs' entries first;");
    println!("f3 spreads most uniformly; f1 sits in between (Appendix C).");
}
