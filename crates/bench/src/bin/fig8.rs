//! Figure 8: memory and table-entry utilization when continuously
//! allocating programs until failure, for the cache / lb / hh / mixed
//! workloads — P4runpro vs ActiveRMT.

use bench::{print_series, run_activermt_stream, run_deploy_stream};
use baselines::ActiveRmtAllocator;
use p4rp_ctl::Controller;
use p4rp_progs::{Workload, WorkloadParams};

fn main() {
    println!("Figure 8: resource utilization until allocation failure\n");
    let params = WorkloadParams::default();
    for workload in [Workload::Cache, Workload::Lb, Workload::Hh, Workload::Mixed] {
        let mut ctl = Controller::with_defaults().unwrap();
        let recs = run_deploy_stream(&mut ctl, workload, params, 100_000, 11, true);
        let n_ok = recs.iter().filter(|r| r.ok).count();
        let mem: Vec<f64> = recs.iter().map(|r| r.mem_util * 100.0).collect();
        let te: Vec<f64> = recs.iter().map(|r| r.te_util * 100.0).collect();
        println!(
            "p4runpro {:6}: capacity {} programs, final mem {:.1}%, final entries {:.1}%",
            workload.label(),
            n_ok,
            mem.last().unwrap(),
            te.last().unwrap()
        );
        print_series("  mem%   ", &mem, 16);
        print_series("  entry% ", &te, 16);

        let mut armt = ActiveRmtAllocator::default();
        let arecs = run_activermt_stream(&mut armt, workload, params, 100_000, 11, true);
        let a_ok = arecs.iter().filter(|r| r.ok).count();
        println!(
            "activermt {:5}: capacity {} programs, final mem {:.1}%",
            workload.label(),
            a_ok,
            armt.memory_utilization() * 100.0
        );
        println!();
    }
    println!("note: P4runpro failures stem from table-entry exhaustion in the ingress");
    println!("RPBs (forwarding primitives are ingress-only), matching §6.2.2's analysis.");
}
