//! Ablations of the design choices §4.1.2 and §4.2 argue for:
//!
//! 1. **Register count** — the paper fixes three PHV registers because the
//!    pre-installed operation catalogue grows combinatorially with the
//!    register count (`C(n,1)·C(n−1,1)` actions per two-operand op) while
//!    two registers lose expressiveness. We recompute the catalogue's VLIW
//!    footprint for 2/3/4/5 registers against the per-stage budget.
//! 2. **Address translation** — mask-based (the paper's choice) vs the
//!    shift-based and TCAM-based alternatives of FlyMon, costed in the
//!    same resource units the data plane uses.

use bench::print_table;
use p4rp_dataplane::fields;
use rmt_sim::pipeline::StageLimits;

fn main() {
    let (ft, _, f) = fields::build().unwrap();
    let budget = StageLimits::default().vliw_slots;

    println!("Ablation 1: operation-catalogue VLIW cost vs register count\n");
    // Count program-visible fields the way the catalogue enumerates them.
    let mut seen = Vec::new();
    let mut extract_fields = 0usize;
    let mut modify_fields = 0usize;
    for (name, id) in &f.named {
        if seen.contains(id) {
            continue;
        }
        seen.push(*id);
        extract_fields += 1;
        if name.starts_with("hdr.") {
            modify_fields += 1;
        }
    }
    let fixed_slots = {
        // Hash (4 ops, 6 slots), branch (1), offset (2), memory pairs (4),
        // forwarding (4), backup/restore pairs handled per register below.
        6 + 1 + 2 + 4 + 4
    };
    let mut rows = Vec::new();
    for n in 2..=5usize {
        let header = (extract_fields + modify_fields) * n; // 1 slot each
        let alu = 6 * n * (n - 1); // 6 ops × ordered register pairs
        let loadi = n;
        let backup = 2 * n;
        let total = header + alu + loadi + backup + fixed_slots;
        rows.push(vec![
            n.to_string(),
            format!("{}", 6 * n * (n - 1)),
            total.to_string(),
            format!("{:.0}%", 100.0 * total as f64 / budget as f64),
            match n {
                2 => "cannot express 3-operand idioms (SUB needs a spare register)".into(),
                3 => "the paper's choice: fits, full pseudo-primitive set".to_string(),
                _ => "exceeds the stage's VLIW budget".to_string(),
            },
        ]);
    }
    print_table(&["registers", "ALU actions", "VLIW slots", "of budget", "note"], &rows);

    println!("\nAblation 2: address-translation mechanisms (per RPB)\n");
    // Mask-based (ours): the mask fuses into the hash action (1 extra
    // slot) and the offset step is one action (2 slots) — no extra stage.
    // Shift-based (FlyMon): one shift action per possible width (16
    // widths) in a dedicated stage. TCAM-based (FlyMon): a translation
    // table with one ternary entry per region and a dedicated action per
    // width.
    let widths = 16; // virtual sizes 2^1..2^16
    let rows = vec![
        vec![
            "mask-based (ours)".to_string(),
            "3".to_string(),
            "0".to_string(),
            "0".to_string(),
            "power-of-two sizes only".to_string(),
        ],
        vec![
            "shift-based".to_string(),
            format!("{}", 2 * widths),
            "0".to_string(),
            "1 extra stage".to_string(),
            "per-width VLIW actions".to_string(),
        ],
        vec![
            "TCAM-based".to_string(),
            format!("{}", widths),
            format!("{}", 4 * 4), // 2048-entry translation table
            "1 extra stage".to_string(),
            "arbitrary sizes, heavy TCAM".to_string(),
        ],
    ];
    print_table(
        &["mechanism", "VLIW slots", "TCAM blocks", "stage cost", "notes"],
        &rows,
    );
    let _ = ft;
    println!("\n§4.1.2: \"these two mechanisms demand significant VLIW and stage or VLIW");
    println!("and TCAM resources\" — the mask step rides along existing actions instead.");
}
