//! Headline data-plane numbers, written to `BENCH_dataplane.json`.
//!
//! This harness seeds the repo's perf trajectory: it re-measures the
//! `switch/process_frame` and `table/lookup` workloads that the Criterion
//! bench (`benches/dataplane.rs`) covers, and records them next to the
//! figures measured *before* the fast-path work (indexed lookups,
//! zero-clone dispatch, buffer reuse, table-driven CRC, byte-wise parser)
//! so a regression shows up as a ratio, not an absent memory.
//!
//! Timing is hand-rolled on `std::time::Instant` because Criterion is a
//! dev-dependency (benches only); the methodology matches the vendored
//! Criterion stand-in: warm up, calibrate an iteration count for a fixed
//! wall-time budget, report the mean.
//!
//! Run from the workspace root (`cargo run --release -p bench --bin
//! bench_dataplane`); the JSON lands in the current directory.

use bench::fixtures::{cache_controller, exact_fixture, ternary_fixture};
use rmt_sim::clock::Nanos;
use rmt_sim::switch::ProcessOutcome;
use rmt_sim::trace::TraceConfig;
use serde::{json, Value};
use std::hint::black_box;
use std::time::Instant;
use traffic::replay::{ParallelReplay, Replay, TimedPacket};

/// Measurements taken on this machine immediately before the fast-path
/// changes (same fixtures, same harness methodology). The seed recording in
/// CHANGES.md quotes 2450 ns for the cache-hit frame on the original
/// machine; the figures below are the pre-change numbers re-measured here
/// so before/after share hardware.
const BEFORE_CACHE_HIT_NS: f64 = 2900.1;
const BEFORE_CACHE_MISS_NS: f64 = 2656.5;
const BEFORE_NO_PROGRAM_NS: f64 = 876.8;
const SEED_BASELINE_CACHE_HIT_NS: f64 = 2450.0;

/// The cache-hit figure the data-plane fast-path PR recorded on this
/// machine (tracing disabled), kept for the history row in the JSON.
const PR5_CACHE_HIT_NS: f64 = 923.6;
/// The same fixture at the pre-parallel-engine HEAD, re-measured
/// immediately before this change landed — same methodology as the
/// `BEFORE_*` constants above, so guard and measurement share today's
/// hardware conditions rather than the original session's.
const PR5_CACHE_HIT_REMEASURED_NS: f64 = 1119.1;
/// Re-anchored immediately before the attribution work landed: the
/// PR5 re-measurement above had drifted outside the guard band on this
/// host (observed 1045–1210 ns across quiet runs of the *unmodified*
/// tree), so the guard now compares against a figure taken under
/// today's conditions. The PR5 rows stay in the JSON as history.
const HEAD_CACHE_HIT_NS: f64 = 1214.5;
/// The parallel engine's snapshot indirection hides behind a
/// branch-on-None on the sequential path; the guard bounds any
/// regression it could introduce. The attribution guard reuses the
/// same band for the branch-on-None attribution gate.
const GUARD_MAX_RATIO: f64 = 1.05;

/// Packets per parallel-scaling replay window.
const REPLAY_PACKETS: usize = 20_000;
/// Distinct five-tuples in the replay mix (all NetCache hits), so the
/// RSS-style shard hash actually spreads flows across workers.
const REPLAY_FLOWS: usize = 64;

/// Mean ns/iter: warm up, calibrate the iteration count for an ~50 ms
/// measurement window, then report the best of three windows — the minimum
/// is the standard noise filter for wall-clock microbenchmarks (scheduler
/// preemption and cache pollution only ever add time).
fn time_ns(mut f: impl FnMut()) -> f64 {
    const PROBE: u64 = 2_000;
    for _ in 0..PROBE {
        f();
    }
    let probe = Instant::now();
    for _ in 0..PROBE {
        f();
    }
    let per = probe.elapsed().as_nanos() as f64 / PROBE as f64;
    let n = ((50_000_000.0 / per.max(1.0)) as u64).clamp(PROBE, 4_000_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// The cache-hit replay mix: [`REPLAY_PACKETS`] frames round-robin over
/// [`REPLAY_FLOWS`] distinct five-tuples, every one a NetCache read of
/// the resident key — so per-packet work matches the `cache_hit` probe
/// while the RSS-style shard hash spreads flows across workers.
fn replay_mix() -> Vec<TimedPacket> {
    let flows = traffic::make_flows(9, REPLAY_FLOWS, 0.0);
    let frames: Vec<Vec<u8>> = flows
        .iter()
        .map(|f| traffic::netcache_frame(&f.tuple, netpkt::CacheOp::Read, 0x8888, 0))
        .collect();
    (0..REPLAY_PACKETS)
        .map(|i| TimedPacket {
            t: Nanos(i as u64 * 100),
            port: 0,
            frame: frames[i % frames.len()].clone(),
        })
        .collect()
}

/// ns/packet for the sequential engine over the replay mix (best of 3).
fn sequential_replay_ns(trace: &[TimedPacket]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (mut ctl, _, _, _) = cache_controller();
        let mut r = Replay::new(trace.to_vec());
        let t = Instant::now();
        r.run_all_into(|port, frame, out| {
            ctl.inject_into(port, frame, out).expect("replay inject");
        });
        best = best.min(t.elapsed().as_nanos() as f64 / trace.len() as f64);
    }
    best
}

/// ns/packet for the threaded engine at `workers` workers (best of 3).
fn parallel_replay_ns(trace: &[TimedPacket], workers: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (mut ctl, _, _, _) = cache_controller();
        ctl.enable_workers(workers);
        let pr = ParallelReplay::new(trace.to_vec(), workers);
        let pool = ctl.workers_mut().expect("pool installed");
        let t = Instant::now();
        let out = pr.run(pool).expect("parallel replay");
        let ns = t.elapsed().as_nanos() as f64 / out.packets.max(1) as f64;
        assert_eq!(out.packets as usize, trace.len());
        best = best.min(ns);
    }
    best
}

/// Mean wall latency of one deploy+revoke round; with `snapshots` the
/// control channel also publishes every batch as a worker delta, so the
/// two figures bracket the snapshot-publish cost.
fn deploy_probe_ns(snapshots: bool, rounds: usize) -> f64 {
    let (mut ctl, _, _, _) = cache_controller();
    if snapshots {
        ctl.channel_mut().enable_snapshots();
    }
    let t = Instant::now();
    for i in 0..rounds {
        let src = format!(
            "program probe(<hdr.ipv4.dst, 10.77.{}.1, 0xffffffff>) {{ FORWARD(1); }}",
            i % 200
        );
        ctl.deploy(&src).expect("probe deploys");
        ctl.revoke("probe").expect("probe revokes");
    }
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// Drive the 2-worker replay while the master churns deploy/revoke
/// batches on another thread. Returns (replay ns/pkt under churn, mean
/// deploy latency under churn) — the stall ratio against the quiet
/// 2-worker figure is the "publishes never block workers" probe.
fn churned_parallel_replay(trace: &[TimedPacket], deploys: usize) -> (f64, f64) {
    let (mut ctl, _, _, _) = cache_controller();
    ctl.enable_workers(2);
    let mut pool = ctl.disable_workers().expect("pool installed");
    let pr = ParallelReplay::new(trace.to_vec(), 2);
    let mut deploy_total = 0u128;
    let mut replay_ns = 0.0;
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let t = Instant::now();
            let out = pr.run(&mut pool).expect("parallel replay");
            t.elapsed().as_nanos() as f64 / out.packets.max(1) as f64
        });
        for i in 0..deploys {
            let src = format!(
                "program probe(<hdr.ipv4.dst, 10.77.{}.1, 0xffffffff>) {{ FORWARD(1); }}",
                i % 200
            );
            let t = Instant::now();
            ctl.deploy(&src).expect("probe deploys");
            deploy_total += t.elapsed().as_nanos();
            ctl.revoke("probe").expect("probe revokes");
        }
        replay_ns = handle.join().expect("replay thread");
    });
    (replay_ns, deploy_total as f64 / deploys.max(1) as f64)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn before_after(before: f64, after: f64) -> Value {
    obj(vec![
        ("before_ns", Value::F64(round1(before))),
        ("after_ns", Value::F64(round1(after))),
        ("speedup", Value::F64(round1(before / after))),
    ])
}

fn main() {
    let (mut ctl, hit, miss, plain) = cache_controller();

    println!("measuring switch/process_frame ...");
    let cache_hit = time_ns(|| {
        ctl.inject(0, black_box(&hit)).unwrap();
    });
    let cache_miss = time_ns(|| {
        ctl.inject(0, black_box(&miss)).unwrap();
    });
    let no_program = time_ns(|| {
        ctl.inject(0, black_box(&plain)).unwrap();
    });
    let mut out = ProcessOutcome::empty();
    // With no worker pool installed, the sharded entry point is one
    // `Option` branch away from `inject_into` — this is the sequential
    // path every command takes, measured through the new indirection.
    // The two probes interleave so slow wall-clock drift (this is a
    // shared box) lands on both sides of the ratio equally.
    let mut reused = f64::INFINITY;
    let mut sharded_fallback = f64::INFINITY;
    for _ in 0..3 {
        reused = reused.min(time_ns(|| {
            ctl.inject_into(0, black_box(&hit), &mut out).unwrap();
        }));
        sharded_fallback = sharded_fallback.min(time_ns(|| {
            ctl.inject_sharded_into(0, black_box(&hit), &mut out).unwrap();
        }));
    }

    println!("measuring flight-recorder overhead ...");
    // The `cache_hit` figure above doubles as the tracing-disabled
    // measurement: with no ring attached, tracing is a `None` branch on
    // the same code path. Enable the recorder and re-measure the identical
    // workload; the ring wraps during the window (wraparound is
    // allocation-free) and post-mortem dumps are disabled so the hot loop
    // never touches the filesystem.
    ctl.enable_trace(TraceConfig {
        capacity: 1 << 16,
        postmortem_dir: None,
        ..TraceConfig::default()
    });
    let traced_hit = time_ns(|| {
        ctl.inject(0, black_box(&hit)).unwrap();
    });
    ctl.disable_trace();

    println!("measuring attribution overhead ...");
    // Three states, interleaved so slow wall-clock drift lands on every
    // side of the ratios equally: attribution fully off (telemetry
    // dropped — bit-identical to the plain path), telemetry without
    // attribution (field cleared), and attribution armed. The off probe
    // is the denominator for both overhead figures.
    let mut attr_off_hit = f64::INFINITY;
    let mut telemetry_hit = f64::INFINITY;
    let mut attributed_hit = f64::INFINITY;
    for _ in 0..3 {
        ctl.switch_mut().disable_telemetry();
        ctl.switch_mut().clear_attribution_field();
        attr_off_hit = attr_off_hit.min(time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        }));
        ctl.enable_telemetry();
        telemetry_hit = telemetry_hit.min(time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        }));
        ctl.enable_attribution();
        attributed_hit = attributed_hit.min(time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        }));
    }
    ctl.switch_mut().disable_telemetry();
    ctl.switch_mut().clear_attribution_field();

    println!("measuring table/lookup scaling ...");
    let mut lookups = Vec::new();
    for &n in &[16usize, 256, 4096] {
        let (mut tbl, probes) = exact_fixture(n);
        let mut i = 0;
        let indexed = time_ns(|| {
            i = (i + 1) % probes.len();
            black_box(tbl.lookup(&probes[i]).is_some());
        });
        // Scan mode is the pre-change lookup algorithm, so it doubles as
        // the measured "before" for the same table contents.
        tbl.set_indexed(false);
        let mut i = 0;
        let scan = time_ns(|| {
            i = (i + 1) % probes.len();
            black_box(tbl.lookup(&probes[i]).is_some());
        });
        let (mut tbl, probes) = ternary_fixture(n);
        let mut i = 0;
        let ternary = time_ns(|| {
            i = (i + 1) % probes.len();
            black_box(tbl.lookup(&probes[i]).is_some());
        });
        lookups.push(obj(vec![
            ("entries", Value::U64(n as u64)),
            ("exact_scan_ns", Value::F64(round1(scan))),
            ("exact_indexed_ns", Value::F64(round1(indexed))),
            ("exact_speedup", Value::F64(round1(scan / indexed))),
            ("ternary_scan_ns", Value::F64(round1(ternary))),
        ]));
    }

    println!("measuring parallel replay scaling ...");
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mix = replay_mix();
    let seq_ns = sequential_replay_ns(&mix);
    let worker_counts = [1usize, 2, 4];
    let mut worker_ns = Vec::new();
    let mut scaling_rows = Vec::new();
    for &w in &worker_counts {
        let ns = parallel_replay_ns(&mix, w);
        worker_ns.push(ns);
        scaling_rows.push(obj(vec![
            ("workers", Value::U64(w as u64)),
            ("ns_per_pkt", Value::F64(round1(ns))),
            ("aggregate_mpps", Value::F64(round3(1000.0 / ns))),
            ("speedup_vs_sequential", Value::F64(round3(seq_ns / ns))),
        ]));
    }
    let two_worker_speedup = worker_ns[0] / worker_ns[1];
    let scaling_assert = if host_cores >= 2 {
        assert!(
            two_worker_speedup >= 1.7,
            "2-worker replay only {two_worker_speedup:.2}x of 1-worker on a \
             {host_cores}-core host (need >= 1.7x)"
        );
        format!("ok ({two_worker_speedup:.2}x at 2 workers, >= 1.7x required)")
    } else {
        format!("skipped (host_cores = {host_cores})")
    };
    println!("  2-worker speedup {two_worker_speedup:.2}x on {host_cores} core(s): {scaling_assert}");

    // Single-worker guard: the snapshot indirection must stay a
    // branch-on-None on the sequential path.
    let guard_ratio = cache_hit / HEAD_CACHE_HIT_NS;
    assert!(
        guard_ratio < GUARD_MAX_RATIO,
        "sequential cache-hit regressed to {cache_hit:.1} ns \
         ({guard_ratio:.3}x of the re-anchored pre-change figure \
         {HEAD_CACHE_HIT_NS} ns)"
    );
    // Attribution guard: with the recorder dropped, the per-program
    // machinery is one `Option` branch on the frame path — the headline
    // cache-hit figure (measured with attribution compiled in but
    // disarmed) must stay inside the guard band of the re-anchored
    // pre-attribution figure.
    let attr_guard_ratio = cache_hit / HEAD_CACHE_HIT_NS;
    assert!(
        attr_guard_ratio < GUARD_MAX_RATIO,
        "attribution-disabled cache-hit costs {cache_hit:.1} ns vs the \
         re-anchored {HEAD_CACHE_HIT_NS} ns figure \
         ({attr_guard_ratio:.3}x, branch-on-None broken?)"
    );
    let fallback_ratio = sharded_fallback / reused;
    assert!(
        fallback_ratio < GUARD_MAX_RATIO,
        "inject_sharded fallback costs {sharded_fallback:.1} ns vs \
         {reused:.1} ns direct ({fallback_ratio:.3}x, branch-on-None broken?)"
    );

    println!("measuring snapshot-publish latency ...");
    let plain_deploy = deploy_probe_ns(false, 200);
    let published_deploy = deploy_probe_ns(true, 200);
    let mut publish_fields = vec![
        ("deploy_revoke_ns", Value::F64(round1(plain_deploy))),
        ("deploy_revoke_published_ns", Value::F64(round1(published_deploy))),
        ("publish_overhead_ratio", Value::F64(round3(published_deploy / plain_deploy))),
    ];
    if host_cores >= 2 {
        let (churn_replay_ns, deploy_under_churn_ns) = churned_parallel_replay(&mix, 50);
        let stall_ratio = churn_replay_ns / worker_ns[1];
        assert!(
            stall_ratio < 2.0,
            "deploy churn stalled the 2-worker replay: {churn_replay_ns:.1} ns/pkt \
             vs {:.1} ns/pkt quiet ({stall_ratio:.2}x)",
            worker_ns[1]
        );
        publish_fields.push(("replay_under_churn_ns_per_pkt", Value::F64(round1(churn_replay_ns))));
        publish_fields.push(("deploy_under_churn_ns", Value::F64(round1(deploy_under_churn_ns))));
        publish_fields.push(("worker_stall_ratio", Value::F64(round3(stall_ratio))));
        publish_fields.push((
            "stall_assert",
            Value::Str(format!("ok ({stall_ratio:.2}x, < 2.0x required)")),
        ));
    } else {
        publish_fields.push((
            "stall_assert",
            Value::Str(format!("skipped (host_cores = {host_cores})")),
        ));
    }

    let doc = obj(vec![
        ("bench", Value::Str("dataplane".into())),
        ("units", Value::Str("ns_per_iter".into())),
        (
            "process_frame",
            obj(vec![
                ("cache_hit", before_after(BEFORE_CACHE_HIT_NS, cache_hit)),
                ("cache_miss", before_after(BEFORE_CACHE_MISS_NS, cache_miss)),
                ("no_program", before_after(BEFORE_NO_PROGRAM_NS, no_program)),
                ("reused_outcome_ns", Value::F64(round1(reused))),
                (
                    "tracing",
                    obj(vec![
                        ("disabled_cache_hit_ns", Value::F64(round1(cache_hit))),
                        ("enabled_cache_hit_ns", Value::F64(round1(traced_hit))),
                        ("overhead_ratio", Value::F64(round1(traced_hit / cache_hit))),
                    ]),
                ),
                (
                    "seed_baseline_cache_hit_ns",
                    Value::F64(SEED_BASELINE_CACHE_HIT_NS),
                ),
            ]),
        ),
        ("table_lookup", Value::Array(lookups)),
        (
            "parallel_scaling",
            obj(vec![
                ("host_cores", Value::U64(host_cores as u64)),
                ("replay_packets", Value::U64(REPLAY_PACKETS as u64)),
                ("replay_flows", Value::U64(REPLAY_FLOWS as u64)),
                ("sequential_ns_per_pkt", Value::F64(round1(seq_ns))),
                ("workers", Value::Array(scaling_rows)),
                ("two_worker_speedup", Value::F64(round3(two_worker_speedup))),
                ("scaling_assert", Value::Str(scaling_assert)),
            ]),
        ),
        (
            "single_worker_guard",
            obj(vec![
                ("pr5_cache_hit_ns", Value::F64(PR5_CACHE_HIT_NS)),
                ("pr5_cache_hit_remeasured_ns", Value::F64(PR5_CACHE_HIT_REMEASURED_NS)),
                ("head_cache_hit_ns", Value::F64(HEAD_CACHE_HIT_NS)),
                ("cache_hit_ns", Value::F64(round1(cache_hit))),
                ("ratio_vs_head", Value::F64(round3(guard_ratio))),
                ("inject_into_ns", Value::F64(round1(reused))),
                ("inject_sharded_fallback_ns", Value::F64(round1(sharded_fallback))),
                ("fallback_ratio", Value::F64(round3(fallback_ratio))),
                ("max_ratio", Value::F64(GUARD_MAX_RATIO)),
            ]),
        ),
        (
            "attribution_guard",
            obj(vec![
                ("disabled_cache_hit_ns", Value::F64(round1(cache_hit))),
                ("head_cache_hit_ns", Value::F64(HEAD_CACHE_HIT_NS)),
                ("disabled_ratio", Value::F64(round3(attr_guard_ratio))),
                ("interleaved_off_ns", Value::F64(round1(attr_off_hit))),
                ("telemetry_cache_hit_ns", Value::F64(round1(telemetry_hit))),
                ("telemetry_overhead_ratio", Value::F64(round3(telemetry_hit / attr_off_hit))),
                ("attributed_cache_hit_ns", Value::F64(round1(attributed_hit))),
                ("attribution_overhead_ratio", Value::F64(round3(attributed_hit / attr_off_hit))),
                ("max_ratio", Value::F64(GUARD_MAX_RATIO)),
            ]),
        ),
        ("snapshot_publish", obj(publish_fields)),
    ]);

    let rendered = json::to_string_pretty(&doc);
    std::fs::write("BENCH_dataplane.json", &rendered).expect("write BENCH_dataplane.json");
    println!("{rendered}");
    println!("wrote BENCH_dataplane.json");
}
