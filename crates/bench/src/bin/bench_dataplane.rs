//! Headline data-plane numbers, written to `BENCH_dataplane.json`.
//!
//! This harness seeds the repo's perf trajectory: it re-measures the
//! `switch/process_frame` and `table/lookup` workloads that the Criterion
//! bench (`benches/dataplane.rs`) covers. Every before/after pair is now
//! measured **in the same run**, interleaved via [`bench::measure::ab_min`]:
//! the "before" side forces the pre-change algorithm (priority-ordered
//! scan via `set_indexed(false)`, megaflow cache disarmed) on the same
//! fixture, so the guards assert on ratios only. Absolute figures from
//! earlier PRs survive in the `history` object as context, never as
//! assertion anchors — the hardcoded-ns guards drifted out of band twice
//! (PR-6 and PR-7 both had to re-anchor) before this harness replaced them.
//!
//! Timing is hand-rolled on `std::time::Instant` because Criterion is a
//! dev-dependency (benches only); the methodology matches the vendored
//! Criterion stand-in: warm up, calibrate an iteration count for a fixed
//! wall-time budget, report the best of three windows.
//!
//! Run from the workspace root (`cargo run --release -p bench --bin
//! bench_dataplane`); the JSON lands in the current directory.

use bench::fixtures::{cache_controller, exact_fixture, ternary_fixture, ternary_switch, tss_fixture};
use bench::measure::{ab_min, time_ns};
use rmt_sim::clock::Nanos;
use rmt_sim::switch::ProcessOutcome;
use rmt_sim::trace::TraceConfig;
use serde::{json, Value};
use std::hint::black_box;
use std::time::Instant;
use traffic::replay::{ParallelReplay, Replay, TimedPacket};

/// Any branch-on-None indirection (snapshot lookup, attribution gate,
/// sharded-entry fallback) must stay inside this band of its direct
/// counterpart, measured interleaved in the same run.
const GUARD_MAX_RATIO: f64 = 1.05;
/// Telemetry and attribution do real work per frame; bound their
/// same-run overhead ratios loosely (historically 1.19x and 1.28x).
const ATTR_MAX_RATIO: f64 = 1.6;
/// The tuple-space-search acceptance floor: at 4096 ternary entries in
/// 64 mask groups, the indexed path (with the megaflow result cache
/// armed) must beat the priority-ordered scan by at least this factor.
const TSS_MIN_SPEEDUP_4096: f64 = 10.0;

/// Packets per parallel-scaling replay window.
const REPLAY_PACKETS: usize = 20_000;
/// Distinct five-tuples in the replay mix (all NetCache hits), so the
/// RSS-style shard hash actually spreads flows across workers.
const REPLAY_FLOWS: usize = 64;

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

fn round3(v: f64) -> f64 {
    (v * 1000.0).round() / 1000.0
}

/// The cache-hit replay mix: [`REPLAY_PACKETS`] frames round-robin over
/// [`REPLAY_FLOWS`] distinct five-tuples, every one a NetCache read of
/// the resident key — so per-packet work matches the `cache_hit` probe
/// while the RSS-style shard hash spreads flows across workers.
fn replay_mix() -> Vec<TimedPacket> {
    let flows = traffic::make_flows(9, REPLAY_FLOWS, 0.0);
    let frames: Vec<Vec<u8>> = flows
        .iter()
        .map(|f| traffic::netcache_frame(&f.tuple, netpkt::CacheOp::Read, 0x8888, 0))
        .collect();
    (0..REPLAY_PACKETS)
        .map(|i| TimedPacket {
            t: Nanos(i as u64 * 100),
            port: 0,
            frame: frames[i % frames.len()].clone(),
        })
        .collect()
}

/// ns/packet for the sequential engine over the replay mix (best of 3).
fn sequential_replay_ns(trace: &[TimedPacket]) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (mut ctl, _, _, _) = cache_controller();
        let mut r = Replay::new(trace.to_vec());
        let t = Instant::now();
        r.run_all_into(|port, frame, out| {
            ctl.inject_into(port, frame, out).expect("replay inject");
        });
        best = best.min(t.elapsed().as_nanos() as f64 / trace.len() as f64);
    }
    best
}

/// ns/packet for the threaded engine at `workers` workers (best of 3).
fn parallel_replay_ns(trace: &[TimedPacket], workers: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let (mut ctl, _, _, _) = cache_controller();
        ctl.enable_workers(workers);
        let pr = ParallelReplay::new(trace.to_vec(), workers);
        let pool = ctl.workers_mut().expect("pool installed");
        let t = Instant::now();
        let out = pr.run(pool).expect("parallel replay");
        let ns = t.elapsed().as_nanos() as f64 / out.packets.max(1) as f64;
        assert_eq!(out.packets as usize, trace.len());
        best = best.min(ns);
    }
    best
}

/// Mean wall latency of one deploy+revoke round; with `snapshots` the
/// control channel also publishes every batch as a worker delta, so the
/// two figures bracket the snapshot-publish cost.
fn deploy_probe_ns(snapshots: bool, rounds: usize) -> f64 {
    let (mut ctl, _, _, _) = cache_controller();
    if snapshots {
        ctl.channel_mut().enable_snapshots();
    }
    let t = Instant::now();
    for i in 0..rounds {
        let src = format!(
            "program probe(<hdr.ipv4.dst, 10.77.{}.1, 0xffffffff>) {{ FORWARD(1); }}",
            i % 200
        );
        ctl.deploy(&src).expect("probe deploys");
        ctl.revoke("probe").expect("probe revokes");
    }
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// Drive the 2-worker replay while the master churns deploy/revoke
/// batches on another thread. Returns (replay ns/pkt under churn, mean
/// deploy latency under churn) — the stall ratio against the quiet
/// 2-worker figure is the "publishes never block workers" probe.
fn churned_parallel_replay(trace: &[TimedPacket], deploys: usize) -> (f64, f64) {
    let (mut ctl, _, _, _) = cache_controller();
    ctl.enable_workers(2);
    let mut pool = ctl.disable_workers().expect("pool installed");
    let pr = ParallelReplay::new(trace.to_vec(), 2);
    let mut deploy_total = 0u128;
    let mut replay_ns = 0.0;
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let t = Instant::now();
            let out = pr.run(&mut pool).expect("parallel replay");
            t.elapsed().as_nanos() as f64 / out.packets.max(1) as f64
        });
        for i in 0..deploys {
            let src = format!(
                "program probe(<hdr.ipv4.dst, 10.77.{}.1, 0xffffffff>) {{ FORWARD(1); }}",
                i % 200
            );
            let t = Instant::now();
            ctl.deploy(&src).expect("probe deploys");
            deploy_total += t.elapsed().as_nanos();
            ctl.revoke("probe").expect("probe revokes");
        }
        replay_ns = handle.join().expect("replay thread");
    });
    (replay_ns, deploy_total as f64 / deploys.max(1) as f64)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// A same-run scan-forced vs indexed pair, rendered with the ratio the
/// guards actually assert on.
fn scan_vs_indexed(scan: f64, indexed: f64) -> Value {
    obj(vec![
        ("scan_forced_ns", Value::F64(round1(scan))),
        ("indexed_ns", Value::F64(round1(indexed))),
        ("speedup", Value::F64(round3(scan / indexed))),
    ])
}

fn main() {
    let (mut ctl, hit, miss, plain) = cache_controller();

    println!("measuring switch/process_frame (scan-forced vs indexed, interleaved) ...");
    let (cache_hit_scan, cache_hit) = ab_min(3, |scan| {
        ctl.set_indexed(!scan);
        time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        })
    });
    ctl.set_indexed(true);
    let (cache_miss_scan, cache_miss) = ab_min(3, |scan| {
        ctl.set_indexed(!scan);
        time_ns(|| {
            ctl.inject(0, black_box(&miss)).unwrap();
        })
    });
    ctl.set_indexed(true);
    let (no_program_scan, no_program) = ab_min(3, |scan| {
        ctl.set_indexed(!scan);
        time_ns(|| {
            ctl.inject(0, black_box(&plain)).unwrap();
        })
    });
    ctl.set_indexed(true);
    let mut out = ProcessOutcome::empty();
    // With no worker pool installed, the sharded entry point is one
    // `Option` branch away from `inject_into` — this is the sequential
    // path every command takes, measured through the new indirection.
    // The two probes interleave so slow wall-clock drift (this is a
    // shared box) lands on both sides of the ratio equally.
    let (reused, sharded_fallback) = ab_min(3, |direct| {
        if direct {
            time_ns(|| {
                ctl.inject_into(0, black_box(&hit), &mut out).unwrap();
            })
        } else {
            time_ns(|| {
                ctl.inject_sharded_into(0, black_box(&hit), &mut out).unwrap();
            })
        }
    });

    println!("measuring flight-recorder overhead ...");
    // With no ring attached, tracing is a `None` branch on the same code
    // path. The ring wraps during the window (wraparound is
    // allocation-free) and post-mortem dumps are disabled so the hot loop
    // never touches the filesystem.
    let (untraced_hit, traced_hit) = ab_min(3, |off| {
        if off {
            ctl.disable_trace();
        } else {
            ctl.enable_trace(TraceConfig {
                capacity: 1 << 16,
                postmortem_dir: None,
                ..TraceConfig::default()
            });
        }
        time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        })
    });
    ctl.disable_trace();

    println!("measuring megaflow result cache on the frame path ...");
    // On the NetCache dispatch path every table is small, so the cache's
    // scan-cutoff bypass keeps it out of the way — this side is a
    // branch-on-None guard, not a speedup claim.
    let (megaflow_off_hit, megaflow_hit) = ab_min(3, |off| {
        ctl.set_result_cache(!off);
        time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        })
    });
    ctl.set_result_cache(false);
    let megaflow_ratio = megaflow_hit / megaflow_off_hit;
    // The speedup claim lives on an all-ternary dispatch path: a 4096-entry
    // 64-group TCAM table in front of the forwarding decision, where even
    // the tuple-space search loses to one memoized hash probe.
    let (mut tsw, tframes) = ternary_switch(4096, 64);
    let mut i = 0;
    let (ternary_path_off, ternary_path_on) = ab_min(3, |off| {
        tsw.set_result_cache_all(!off);
        i = 0;
        time_ns(|| {
            i = (i + 1) % tframes.len();
            black_box(tsw.process_frame(0, black_box(&tframes[i])).unwrap());
        })
    });
    let ternary_path_speedup = ternary_path_off / ternary_path_on;
    println!(
        "  all-ternary dispatch: {ternary_path_off:.1} ns uncached vs \
         {ternary_path_on:.1} ns with megaflow cache ({ternary_path_speedup:.2}x)"
    );
    assert!(
        ternary_path_speedup > 1.0,
        "megaflow cache shows no process_frame improvement on the all-ternary \
         path: {ternary_path_off:.1} ns off vs {ternary_path_on:.1} ns on"
    );

    println!("measuring attribution overhead ...");
    // Three states, interleaved so slow wall-clock drift lands on every
    // side of the ratios equally: attribution fully off (telemetry
    // dropped — bit-identical to the plain path), telemetry without
    // attribution (field cleared), and attribution armed. The off probe
    // is the denominator for both overhead figures.
    let mut attr_off_hit = f64::INFINITY;
    let mut telemetry_hit = f64::INFINITY;
    let mut attributed_hit = f64::INFINITY;
    for _ in 0..3 {
        ctl.switch_mut().disable_telemetry();
        ctl.switch_mut().clear_attribution_field();
        attr_off_hit = attr_off_hit.min(time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        }));
        ctl.enable_telemetry();
        telemetry_hit = telemetry_hit.min(time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        }));
        ctl.enable_attribution();
        attributed_hit = attributed_hit.min(time_ns(|| {
            ctl.inject(0, black_box(&hit)).unwrap();
        }));
    }
    ctl.switch_mut().disable_telemetry();
    ctl.switch_mut().clear_attribution_field();

    println!("measuring table/lookup scaling ...");
    let mut lookups = Vec::new();
    for &n in &[16usize, 256, 4096] {
        let (mut tbl, probes) = exact_fixture(n);
        let mut i = 0;
        // Scan mode is the pre-change lookup algorithm, so it doubles as
        // the measured "before" for the same table contents.
        let (exact_scan, exact_indexed) = ab_min(3, |scan| {
            tbl.set_indexed(!scan);
            time_ns(|| {
                i = (i + 1) % probes.len();
                black_box(tbl.lookup(&probes[i]).is_some());
            })
        });
        let (mut tbl, probes) = ternary_fixture(n);
        let mut i = 0;
        let (ternary_scan, ternary_tss) = ab_min(3, |scan| {
            tbl.set_indexed(!scan);
            time_ns(|| {
                i = (i + 1) % probes.len();
                black_box(tbl.lookup(&probes[i]).is_some());
            })
        });
        lookups.push(obj(vec![
            ("entries", Value::U64(n as u64)),
            ("exact_scan_ns", Value::F64(round1(exact_scan))),
            ("exact_indexed_ns", Value::F64(round1(exact_indexed))),
            ("exact_speedup", Value::F64(round1(exact_scan / exact_indexed))),
            ("ternary_scan_ns", Value::F64(round1(ternary_scan))),
            ("ternary_tss_ns", Value::F64(round1(ternary_tss))),
            ("ternary_speedup", Value::F64(round1(ternary_scan / ternary_tss))),
        ]));
    }

    println!("measuring ternary_scaling (tuple-space search vs scan) ...");
    let mut ternary_rows = Vec::new();
    let mut headline_speedup = 0.0;
    let mut headline_cached_speedup = 0.0;
    for &(n, groups) in &[(16usize, 1usize), (256, 8), (4096, 64)] {
        let (mut tbl, probes) = tss_fixture(n, groups);
        assert_eq!(tbl.index_mode(), "tss", "tss_fixture must build a TSS index");
        assert_eq!(tbl.tss_groups(), groups, "fixture mask-group count");
        let mut i = 0;
        let (scan, tss) = ab_min(3, |scan_side| {
            tbl.set_indexed(!scan_side);
            time_ns(|| {
                i = (i + 1) % probes.len();
                black_box(tbl.lookup(&probes[i]).is_some());
            })
        });
        tbl.set_indexed(true);
        tbl.set_result_cache(true);
        let mut i = 0;
        let cached = time_ns(|| {
            i = (i + 1) % probes.len();
            black_box(tbl.lookup(&probes[i]).is_some());
        });
        let tss_speedup = scan / tss;
        let cached_speedup = scan / cached;
        if n == 4096 {
            headline_speedup = tss_speedup;
            headline_cached_speedup = cached_speedup;
        }
        ternary_rows.push(obj(vec![
            ("entries", Value::U64(n as u64)),
            ("mask_groups", Value::U64(groups as u64)),
            ("scan_ns", Value::F64(round1(scan))),
            ("tss_ns", Value::F64(round1(tss))),
            ("tss_speedup", Value::F64(round1(tss_speedup))),
            ("cached_ns", Value::F64(round1(cached))),
            ("cached_speedup", Value::F64(round1(cached_speedup))),
        ]));
        println!(
            "  {n} entries / {groups} group(s): scan {scan:.1} ns, tss {tss:.1} ns \
             ({tss_speedup:.1}x), cached {cached:.1} ns ({cached_speedup:.1}x)"
        );
    }
    let best_4096 = headline_speedup.max(headline_cached_speedup);
    assert!(
        best_4096 >= TSS_MIN_SPEEDUP_4096,
        "ternary 4096/64: tss {headline_speedup:.1}x, cached \
         {headline_cached_speedup:.1}x — need >= {TSS_MIN_SPEEDUP_4096}x over scan"
    );
    let tss_assert = format!(
        "ok (tss {headline_speedup:.1}x, cached {headline_cached_speedup:.1}x at \
         4096 entries / 64 groups, >= {TSS_MIN_SPEEDUP_4096}x required)"
    );
    println!("  4096-entry speedup gate: {tss_assert}");

    println!("measuring parallel replay scaling ...");
    let host_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mix = replay_mix();
    let seq_ns = sequential_replay_ns(&mix);
    let worker_counts = [1usize, 2, 4];
    let mut worker_ns = Vec::new();
    let mut scaling_rows = Vec::new();
    for &w in &worker_counts {
        let ns = parallel_replay_ns(&mix, w);
        worker_ns.push(ns);
        scaling_rows.push(obj(vec![
            ("workers", Value::U64(w as u64)),
            ("ns_per_pkt", Value::F64(round1(ns))),
            ("aggregate_mpps", Value::F64(round3(1000.0 / ns))),
            ("speedup_vs_sequential", Value::F64(round3(seq_ns / ns))),
        ]));
    }
    let two_worker_speedup = worker_ns[0] / worker_ns[1];
    let scaling_assert = if host_cores >= 2 {
        assert!(
            two_worker_speedup >= 1.7,
            "2-worker replay only {two_worker_speedup:.2}x of 1-worker on a \
             {host_cores}-core host (need >= 1.7x)"
        );
        format!("ok ({two_worker_speedup:.2}x at 2 workers, >= 1.7x required)")
    } else {
        format!("skipped (host_cores = {host_cores})")
    };
    println!("  2-worker speedup {two_worker_speedup:.2}x on {host_cores} core(s): {scaling_assert}");

    // Single-worker guard: indexed dispatch must never lose to the scan
    // it replaced, measured on the same fixture in the same run.
    let guard_ratio = cache_hit / cache_hit_scan;
    assert!(
        guard_ratio < GUARD_MAX_RATIO,
        "indexed cache-hit frame costs {cache_hit:.1} ns vs {cache_hit_scan:.1} ns \
         scan-forced in the same run ({guard_ratio:.3}x)"
    );
    let fallback_ratio = sharded_fallback / reused;
    assert!(
        fallback_ratio < GUARD_MAX_RATIO,
        "inject_sharded fallback costs {sharded_fallback:.1} ns vs \
         {reused:.1} ns direct ({fallback_ratio:.3}x, branch-on-None broken?)"
    );
    // Megaflow guard: with every dispatch table under the scan cutoff the
    // armed cache must stay bypassed on the NetCache path.
    assert!(
        megaflow_ratio < GUARD_MAX_RATIO,
        "armed megaflow cache costs {megaflow_hit:.1} ns vs {megaflow_off_hit:.1} ns \
         disarmed on the small-table dispatch path ({megaflow_ratio:.3}x, \
         scan-cutoff bypass broken?)"
    );
    // Attribution guard: both overheads are real per-frame work, bounded
    // loosely against the interleaved off probe from the same run.
    let telemetry_ratio = telemetry_hit / attr_off_hit;
    let attribution_ratio = attributed_hit / attr_off_hit;
    assert!(
        telemetry_ratio < ATTR_MAX_RATIO && attribution_ratio < ATTR_MAX_RATIO,
        "telemetry {telemetry_ratio:.3}x / attribution {attribution_ratio:.3}x of the \
         off probe {attr_off_hit:.1} ns (bound {ATTR_MAX_RATIO}x)"
    );

    println!("measuring snapshot-publish latency ...");
    let plain_deploy = deploy_probe_ns(false, 200);
    let published_deploy = deploy_probe_ns(true, 200);
    let mut publish_fields = vec![
        ("deploy_revoke_ns", Value::F64(round1(plain_deploy))),
        ("deploy_revoke_published_ns", Value::F64(round1(published_deploy))),
        ("publish_overhead_ratio", Value::F64(round3(published_deploy / plain_deploy))),
    ];
    if host_cores >= 2 {
        let (churn_replay_ns, deploy_under_churn_ns) = churned_parallel_replay(&mix, 50);
        let stall_ratio = churn_replay_ns / worker_ns[1];
        assert!(
            stall_ratio < 2.0,
            "deploy churn stalled the 2-worker replay: {churn_replay_ns:.1} ns/pkt \
             vs {:.1} ns/pkt quiet ({stall_ratio:.2}x)",
            worker_ns[1]
        );
        publish_fields.push(("replay_under_churn_ns_per_pkt", Value::F64(round1(churn_replay_ns))));
        publish_fields.push(("deploy_under_churn_ns", Value::F64(round1(deploy_under_churn_ns))));
        publish_fields.push(("worker_stall_ratio", Value::F64(round3(stall_ratio))));
        publish_fields.push((
            "stall_assert",
            Value::Str(format!("ok ({stall_ratio:.2}x, < 2.0x required)")),
        ));
    } else {
        publish_fields.push((
            "stall_assert",
            Value::Str(format!("skipped (host_cores = {host_cores})")),
        ));
    }

    let doc = obj(vec![
        ("bench", Value::Str("dataplane".into())),
        ("units", Value::Str("ns_per_iter".into())),
        (
            "process_frame",
            obj(vec![
                ("cache_hit", scan_vs_indexed(cache_hit_scan, cache_hit)),
                ("cache_miss", scan_vs_indexed(cache_miss_scan, cache_miss)),
                ("no_program", scan_vs_indexed(no_program_scan, no_program)),
                ("reused_outcome_ns", Value::F64(round1(reused))),
                (
                    "tracing",
                    obj(vec![
                        ("disabled_cache_hit_ns", Value::F64(round1(untraced_hit))),
                        ("enabled_cache_hit_ns", Value::F64(round1(traced_hit))),
                        ("overhead_ratio", Value::F64(round3(traced_hit / untraced_hit))),
                    ]),
                ),
                (
                    "megaflow_cache",
                    obj(vec![
                        ("dispatch_off_cache_hit_ns", Value::F64(round1(megaflow_off_hit))),
                        ("dispatch_on_cache_hit_ns", Value::F64(round1(megaflow_hit))),
                        ("dispatch_ratio", Value::F64(round3(megaflow_ratio))),
                        ("ternary_path_off_ns", Value::F64(round1(ternary_path_off))),
                        ("ternary_path_on_ns", Value::F64(round1(ternary_path_on))),
                        ("ternary_path_speedup", Value::F64(round3(ternary_path_speedup))),
                    ]),
                ),
            ]),
        ),
        ("table_lookup", Value::Array(lookups)),
        (
            "ternary_scaling",
            obj(vec![
                ("rows", Value::Array(ternary_rows)),
                ("min_speedup_4096", Value::F64(TSS_MIN_SPEEDUP_4096)),
                ("tss_assert", Value::Str(tss_assert)),
            ]),
        ),
        (
            "parallel_scaling",
            obj(vec![
                ("host_cores", Value::U64(host_cores as u64)),
                ("replay_packets", Value::U64(REPLAY_PACKETS as u64)),
                ("replay_flows", Value::U64(REPLAY_FLOWS as u64)),
                ("sequential_ns_per_pkt", Value::F64(round1(seq_ns))),
                ("workers", Value::Array(scaling_rows)),
                ("two_worker_speedup", Value::F64(round3(two_worker_speedup))),
                ("scaling_assert", Value::Str(scaling_assert)),
            ]),
        ),
        (
            "single_worker_guard",
            obj(vec![
                ("cache_hit_scan_forced_ns", Value::F64(round1(cache_hit_scan))),
                ("cache_hit_indexed_ns", Value::F64(round1(cache_hit))),
                ("indexed_vs_scan_ratio", Value::F64(round3(guard_ratio))),
                ("inject_into_ns", Value::F64(round1(reused))),
                ("inject_sharded_fallback_ns", Value::F64(round1(sharded_fallback))),
                ("fallback_ratio", Value::F64(round3(fallback_ratio))),
                ("max_ratio", Value::F64(GUARD_MAX_RATIO)),
            ]),
        ),
        (
            "attribution_guard",
            obj(vec![
                ("interleaved_off_ns", Value::F64(round1(attr_off_hit))),
                ("telemetry_cache_hit_ns", Value::F64(round1(telemetry_hit))),
                ("telemetry_overhead_ratio", Value::F64(round3(telemetry_ratio))),
                ("attributed_cache_hit_ns", Value::F64(round1(attributed_hit))),
                ("attribution_overhead_ratio", Value::F64(round3(attribution_ratio))),
                ("max_ratio", Value::F64(ATTR_MAX_RATIO)),
            ]),
        ),
        ("snapshot_publish", obj(publish_fields)),
        (
            "history",
            obj(vec![
                (
                    "note",
                    Value::Str(
                        "Absolute ns figures carried from earlier PRs on this host; \
                         informational only. Guards compare interleaved same-run A/B \
                         ratios and never assert against these."
                            .into(),
                    ),
                ),
                ("seed_cache_hit_ns", Value::F64(2450.0)),
                ("pre_fastpath_cache_hit_ns", Value::F64(2900.1)),
                ("pre_fastpath_cache_miss_ns", Value::F64(2656.5)),
                ("pre_fastpath_no_program_ns", Value::F64(876.8)),
                ("pr5_cache_hit_ns", Value::F64(923.6)),
                ("pr5_cache_hit_remeasured_ns", Value::F64(1119.1)),
                ("pre_attribution_cache_hit_ns", Value::F64(1214.5)),
            ]),
        ),
    ]);

    let rendered = json::to_string_pretty(&doc);
    std::fs::write("BENCH_dataplane.json", &rendered).expect("write BENCH_dataplane.json");
    println!("{rendered}");
    println!("wrote BENCH_dataplane.json");
}
