//! Headline data-plane numbers, written to `BENCH_dataplane.json`.
//!
//! This harness seeds the repo's perf trajectory: it re-measures the
//! `switch/process_frame` and `table/lookup` workloads that the Criterion
//! bench (`benches/dataplane.rs`) covers, and records them next to the
//! figures measured *before* the fast-path work (indexed lookups,
//! zero-clone dispatch, buffer reuse, table-driven CRC, byte-wise parser)
//! so a regression shows up as a ratio, not an absent memory.
//!
//! Timing is hand-rolled on `std::time::Instant` because Criterion is a
//! dev-dependency (benches only); the methodology matches the vendored
//! Criterion stand-in: warm up, calibrate an iteration count for a fixed
//! wall-time budget, report the mean.
//!
//! Run from the workspace root (`cargo run --release -p bench --bin
//! bench_dataplane`); the JSON lands in the current directory.

use bench::fixtures::{cache_controller, exact_fixture, ternary_fixture};
use rmt_sim::switch::ProcessOutcome;
use rmt_sim::trace::TraceConfig;
use serde::{json, Value};
use std::hint::black_box;
use std::time::Instant;

/// Measurements taken on this machine immediately before the fast-path
/// changes (same fixtures, same harness methodology). The seed recording in
/// CHANGES.md quotes 2450 ns for the cache-hit frame on the original
/// machine; the figures below are the pre-change numbers re-measured here
/// so before/after share hardware.
const BEFORE_CACHE_HIT_NS: f64 = 2900.1;
const BEFORE_CACHE_MISS_NS: f64 = 2656.5;
const BEFORE_NO_PROGRAM_NS: f64 = 876.8;
const SEED_BASELINE_CACHE_HIT_NS: f64 = 2450.0;

/// Mean ns/iter: warm up, calibrate the iteration count for an ~50 ms
/// measurement window, then report the best of three windows — the minimum
/// is the standard noise filter for wall-clock microbenchmarks (scheduler
/// preemption and cache pollution only ever add time).
fn time_ns(mut f: impl FnMut()) -> f64 {
    const PROBE: u64 = 2_000;
    for _ in 0..PROBE {
        f();
    }
    let probe = Instant::now();
    for _ in 0..PROBE {
        f();
    }
    let per = probe.elapsed().as_nanos() as f64 / PROBE as f64;
    let n = ((50_000_000.0 / per.max(1.0)) as u64).clamp(PROBE, 4_000_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..n {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / n as f64);
    }
    best
}

fn round1(v: f64) -> f64 {
    (v * 10.0).round() / 10.0
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn before_after(before: f64, after: f64) -> Value {
    obj(vec![
        ("before_ns", Value::F64(round1(before))),
        ("after_ns", Value::F64(round1(after))),
        ("speedup", Value::F64(round1(before / after))),
    ])
}

fn main() {
    let (mut ctl, hit, miss, plain) = cache_controller();

    println!("measuring switch/process_frame ...");
    let cache_hit = time_ns(|| {
        ctl.inject(0, black_box(&hit)).unwrap();
    });
    let cache_miss = time_ns(|| {
        ctl.inject(0, black_box(&miss)).unwrap();
    });
    let no_program = time_ns(|| {
        ctl.inject(0, black_box(&plain)).unwrap();
    });
    let mut out = ProcessOutcome::empty();
    let reused = time_ns(|| {
        ctl.inject_into(0, black_box(&hit), &mut out).unwrap();
    });

    println!("measuring flight-recorder overhead ...");
    // The `cache_hit` figure above doubles as the tracing-disabled
    // measurement: with no ring attached, tracing is a `None` branch on
    // the same code path. Enable the recorder and re-measure the identical
    // workload; the ring wraps during the window (wraparound is
    // allocation-free) and post-mortem dumps are disabled so the hot loop
    // never touches the filesystem.
    ctl.enable_trace(TraceConfig {
        capacity: 1 << 16,
        postmortem_dir: None,
        ..TraceConfig::default()
    });
    let traced_hit = time_ns(|| {
        ctl.inject(0, black_box(&hit)).unwrap();
    });
    ctl.disable_trace();

    println!("measuring table/lookup scaling ...");
    let mut lookups = Vec::new();
    for &n in &[16usize, 256, 4096] {
        let (mut tbl, probes) = exact_fixture(n);
        let mut i = 0;
        let indexed = time_ns(|| {
            i = (i + 1) % probes.len();
            black_box(tbl.lookup(&probes[i]).is_some());
        });
        // Scan mode is the pre-change lookup algorithm, so it doubles as
        // the measured "before" for the same table contents.
        tbl.set_indexed(false);
        let mut i = 0;
        let scan = time_ns(|| {
            i = (i + 1) % probes.len();
            black_box(tbl.lookup(&probes[i]).is_some());
        });
        let (mut tbl, probes) = ternary_fixture(n);
        let mut i = 0;
        let ternary = time_ns(|| {
            i = (i + 1) % probes.len();
            black_box(tbl.lookup(&probes[i]).is_some());
        });
        lookups.push(obj(vec![
            ("entries", Value::U64(n as u64)),
            ("exact_scan_ns", Value::F64(round1(scan))),
            ("exact_indexed_ns", Value::F64(round1(indexed))),
            ("exact_speedup", Value::F64(round1(scan / indexed))),
            ("ternary_scan_ns", Value::F64(round1(ternary))),
        ]));
    }

    let doc = obj(vec![
        ("bench", Value::Str("dataplane".into())),
        ("units", Value::Str("ns_per_iter".into())),
        (
            "process_frame",
            obj(vec![
                ("cache_hit", before_after(BEFORE_CACHE_HIT_NS, cache_hit)),
                ("cache_miss", before_after(BEFORE_CACHE_MISS_NS, cache_miss)),
                ("no_program", before_after(BEFORE_NO_PROGRAM_NS, no_program)),
                ("reused_outcome_ns", Value::F64(round1(reused))),
                (
                    "tracing",
                    obj(vec![
                        ("disabled_cache_hit_ns", Value::F64(round1(cache_hit))),
                        ("enabled_cache_hit_ns", Value::F64(round1(traced_hit))),
                        ("overhead_ratio", Value::F64(round1(traced_hit / cache_hit))),
                    ]),
                ),
                (
                    "seed_baseline_cache_hit_ns",
                    Value::F64(SEED_BASELINE_CACHE_HIT_NS),
                ),
            ]),
        ),
        ("table_lookup", Value::Array(lookups)),
    ]);

    let rendered = json::to_string_pretty(&doc);
    std::fs::write("BENCH_dataplane.json", &rendered).expect("write BENCH_dataplane.json");
    println!("{rendered}");
    println!("wrote BENCH_dataplane.json");
}
