//! Table 2: pipeline latency (clock cycles), worst-case power, and the
//! power-budget traffic-limit load, for P4runpro vs ActiveRMT vs FlyMon.

use bench::print_table;
use p4rp_dataplane::provision;
use rmt_sim::power::PowerModel;
use rmt_sim::switch::SwitchConfig;

fn main() {
    println!("Table 2: latency / worst-case power / traffic limit load\n");
    let model = PowerModel::default();

    let (_, dp) = provision(SwitchConfig::default()).unwrap();
    let ours = model.estimate(&dp.report);
    let armt = model.estimate(&baselines::activermt::build_profile().unwrap());
    let fm = model.estimate(&baselines::flymon::build_profile().unwrap());

    let mut rows = Vec::new();
    for (name, e, paper) in [
        ("P4runpro", ours, "306/316/622  19.32/21.42/40.74  98%"),
        ("ActiveRMT", armt, "312/308/620  23.36/20.34/43.70  91%"),
        ("FlyMon", fm, "54/282/336   0/34.05/34.05      100%"),
    ] {
        rows.push(vec![
            name.to_string(),
            format!("{}/{}/{}", e.ingress_cycles, e.egress_cycles, e.total_cycles),
            format!("{:.2}/{:.2}/{:.2}", e.ingress_watts, e.egress_watts, e.total_watts),
            format!("{:.0}%", e.traffic_limit_load * 100.0),
            paper.to_string(),
        ]);
    }
    print_table(
        &["System", "Latency cyc (ig/eg/total)", "Power W (ig/eg/total)", "Load", "Paper (cyc  W  load)"],
        &rows,
    );
}
