//! Figure 11: recirculation impact — throughput loss and normalized RTT
//! versus packet size (128–1500 B) for 0–6 recirculation iterations,
//! cross-validated against the packet-level simulator (a recirculated
//! packet really makes R extra passes and carries the state header).

use bench::print_table;
use p4rp_ctl::Controller;
use rmt_sim::tm::RecircModel;

fn main() {
    println!("Figure 11: recirculation impact\n");
    let model = RecircModel::default();
    let sizes = [128usize, 256, 512, 1024, 1500];

    println!("(a) Throughput loss at full offered load (%)");
    let mut rows = Vec::new();
    for &s in &sizes {
        let mut row = vec![format!("{s}B")];
        for r in 0..=6u8 {
            row.push(format!("{:.1}", model.throughput_loss(s, r) * 100.0));
        }
        rows.push(row);
    }
    print_table(&["pkt size", "R=0", "R=1", "R=2", "R=3", "R=4", "R=5", "R=6"], &rows);

    println!("\n(b) Normalized zero-queue RTT (×)");
    let mut rows = Vec::new();
    for &s in &sizes {
        let mut row = vec![format!("{s}B")];
        for r in 0..=6u8 {
            row.push(format!("{:.3}", model.normalized_rtt(s, r)));
        }
        rows.push(row);
    }
    print_table(&["pkt size", "R=0", "R=1", "R=2", "R=3", "R=4", "R=5", "R=6"], &rows);

    // Cross-check: a two-pass program really recirculates in the
    // packet-level simulator and the state header really rides the wire.
    let mut ctl = Controller::with_defaults().unwrap();
    let src = r#"
@ m 256
program two_pass(<hdr.ipv4.dst, 10.0.0.9, 0xffffffff>) {
    LOADI(mar, 0);
    MEMREAD(m);
    LOADI(mar, 1);
    MEMWRITE(m);
    FORWARD(1);
}
"#;
    let rep = &ctl.deploy(src).unwrap()[0];
    assert_eq!(rep.passes, 2);
    let flows = traffic::make_flows(1, 1, 0.0);
    let mut t = flows[0].tuple;
    t.dst_addr = std::net::Ipv4Addr::new(10, 0, 0, 9);
    let frame = traffic::frame_for(&t, 64);
    let out = ctl.inject(0, &frame).unwrap();
    println!(
        "\npacket-level check: two-pass program consumed {} passes, emitted {} frame(s) on port {}",
        out.passes,
        out.emitted.len(),
        out.emitted[0].0
    );
    println!(
        "state header overhead on the internal wire: {} bytes",
        netpkt::RECIRC_HEADER_LEN - 4
    );
}
