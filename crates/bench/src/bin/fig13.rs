//! Figure 13: the four case studies on (synthetic) campus traffic.
//!
//! (a) runtime deploy/delete churn does not disturb running traffic;
//! (b) in-network cache: deployment delay + steady-state function vs the
//!     conventional P4 workflow (hit rate 0.6 → 40 Mbps reach the server);
//! (c) stateless load balancer: load-imbalance rate, P4runpro vs native;
//! (d) heavy-hitter detector: F1 → 1.0, with the mask-truncated stage CRCs.

use bench::print_series;
use netpkt::FiveTuple;
use p4rp_ctl::Controller;
use p4rp_progs::{instance, sources, Family, WorkloadParams};
use rand::prelude::*;
use rand::rngs::StdRng;
use rmt_sim::clock::{Bandwidth, Nanos};
use std::collections::HashSet;
use traffic::{f1_score, netcache_workload, synthesize, CampusParams, Replay, TimedPacket};

const DEPLOY_AT: f64 = 5.0;
const BUCKET_MS: u64 = 50;

fn main() {
    case_a_impact_on_traffic();
    case_b_cache();
    case_c_lb();
    case_d_hh();
}

/// (a) Deploy and delete a random Table-1 program every 0.5 s from t = 5 s;
/// the RX rate of the running traffic must not move.
fn case_a_impact_on_traffic() {
    println!("Figure 13(a): impact of runtime programming on running traffic\n");
    let p = CampusParams { duration: Nanos::from_secs(12), ..Default::default() };
    let trace = synthesize(&p);

    let mut ctl = Controller::with_defaults().unwrap();
    // Attribution splits the packet-side counters per owning program, so
    // the "churn disturbs nothing" claim can be read off the rows: the
    // carrier program owns every packet, the churned programs own none.
    ctl.enable_attribution();
    // The basic forwarding program (all IPv4 → port 1).
    ctl.deploy("program basefwd(<hdr.ipv4.src, 0.0.0.0, 0x00000000>) { FORWARD(1); }")
        .unwrap();

    let mut replay = Replay::new(trace.packets.clone());
    replay.epoch = ctl.epoch();
    let mut rng = StdRng::seed_from_u64(99);
    let mut deployed: Vec<String> = Vec::new();
    let mut event_t = Nanos::from_secs_f64(DEPLOY_AT);
    let mut churn = 0usize;
    while !replay.done() {
        let until = replay.next_time().map(|t| t.max(event_t)).unwrap_or(event_t);
        replay.run_until_into(event_t.min(until + Nanos(1)), |port, frame, out| {
            ctl.inject_into(port, frame, out).unwrap()
        });
        if replay.done() {
            break;
        }
        // Churn event: alternate deploy / delete of random programs whose
        // filters are independent of the traffic (instance ids ≥ 1000 map
        // to 10.0.x.x addresses; the trace flows live in 10.1/10.2).
        if rng.random::<bool>() || deployed.is_empty() {
            let fam = Family::ALL[rng.random_range(0..15)];
            let src = instance(fam, 1000 + churn, WorkloadParams::default());
            if let Ok(reports) = ctl.deploy(&src) {
                deployed.push(reports[0].name.clone());
            }
        } else {
            let victim = deployed.swap_remove(rng.random_range(0..deployed.len()));
            ctl.revoke(&victim).unwrap();
        }
        churn += 1;
        // Buckets after this point belong to the post-event epoch.
        replay.epoch = ctl.epoch();
        event_t += Nanos::from_millis(500);
    }
    replay.finish();
    let rates: Vec<f64> = replay
        .stats
        .iter()
        .map(|s| s.rx_rate_bps(Nanos::from_millis(BUCKET_MS)) / 1e6)
        .collect();
    print_series("RX rate Mbps (p4runpro, churn from t=5s)", &rates, 24);
    // The epoch tags split the series without timestamp arithmetic: epoch
    // 1 is pre-churn (only basefwd installed), later epochs are mid-churn.
    let split = |pre: bool| -> Vec<f64> {
        replay
            .stats
            .iter()
            .filter(|s| (s.epoch <= 1) == pre)
            .map(|s| s.rx_rate_bps(Nanos::from_millis(BUCKET_MS)) / 1e6)
            .collect()
    };
    let before = bench::mean(&split(true));
    let after = bench::mean(&split(false));
    println!("mean RX before churn: {before:.1} Mbps, during churn: {after:.1} Mbps");
    println!("({churn} deploy/delete events; spikes are large TCP transfers)");
    let report = ctl.telemetry_report();
    let tm = &report.dataplane.as_ref().expect("telemetry enabled").tm;
    println!(
        "telemetry: {} lifecycle spans across {} epochs; TM drops during churn: {} (must be 0)",
        report.spans.len(),
        report.epoch,
        tm.dropped.get()
    );
    // Per-program attribution: the carrier owns the traffic; churned
    // programs (filters on 10.0.x.x, disjoint from the trace) own none.
    println!("per-program attribution:");
    for p in report.programs.iter().filter(|p| p.packets > 0 || p.hits > 0) {
        println!("  {}", p.render());
    }
    println!();
}

/// (b) In-network cache: hit rate 0.6; misses (40 Mbps) reach the server.
fn case_b_cache() {
    println!("Figure 13(b): in-network cache deployment\n");
    let hit_keys: Vec<u64> = (0..8u64).map(|k| 0x8000 + k).collect();
    // Long enough to show the conventional workflow coming back up after
    // its ~8 s reprovisioning blackout.
    let p = CampusParams { duration: Nanos::from_secs(16), ..Default::default() };
    let trace = netcache_workload(&p, &hit_keys, 0x4_0000, 0.6);

    // P4runpro: deploy the cache at t = 5 s (runtime link, ~ms).
    let keys: Vec<(u32, u32)> = hit_keys.iter().map(|k| (*k as u32, *k as u32 & 0xff)).collect();
    let cache_src = sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &keys);

    let mut ctl = Controller::with_defaults().unwrap();
    // Before the cache exists, a forwarding program sends everything to
    // the server behind port 32.
    ctl.deploy("program to_server(<hdr.udp.dst_port, 7777, 0xffff>) { FORWARD(32); }")
        .unwrap();

    let mut replay = Replay::new(trace.packets.clone());
    let deploy_t = Nanos::from_secs_f64(DEPLOY_AT);
    let mut server_bytes_per_bucket: Vec<(f64, u64)> = Vec::new();
    let mut bucket_end = Nanos::from_millis(BUCKET_MS);
    let mut server_bytes = 0u64;
    let mut deployed = false;
    while !replay.done() {
        let t = replay.next_time().unwrap();
        if !deployed && t >= deploy_t {
            // The conventional workflow would reprovision here; P4runpro
            // swaps the programs with two sub-ms updates.
            ctl.revoke("to_server").unwrap();
            let rep = &ctl.deploy(&cache_src).unwrap()[0];
            println!(
                "p4runpro deployment delay: {:.1} ms (conventional: {:.1} s reprovision + port enable)",
                rep.update_delay.as_millis_f64(),
                baselines::ConventionalTiming::default().deployment_delay(true).as_secs_f64()
            );
            deployed = true;
        }
        while t >= bucket_end {
            server_bytes_per_bucket.push((bucket_end.as_secs_f64(), server_bytes));
            server_bytes = 0;
            bucket_end += Nanos::from_millis(BUCKET_MS);
        }
        replay.run_until_into(t + Nanos(1), |port, frame, out| {
            ctl.inject_into(port, frame, out).unwrap();
            for (p, bytes) in &out.emitted {
                if *p == 32 {
                    server_bytes += bytes.len() as u64;
                }
            }
        });
    }
    let series: Vec<f64> = server_bytes_per_bucket
        .iter()
        .map(|(_, b)| *b as f64 * 8.0 / (BUCKET_MS as f64 / 1e3) / 1e6)
        .collect();
    print_series("p4runpro      server RX Mbps", &series, 24);

    // The conventional workflow's timeline for the same intent: all
    // traffic stalls during the reprovision + port enable window, then
    // the identical cache function comes up.
    let conv = baselines::ConventionalTiming::default();
    let down = conv.deployment_delay(true).as_secs_f64();
    let conv_series: Vec<f64> = series
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let t = (i as f64 + 1.0) * BUCKET_MS as f64 / 1e3;
            if t < DEPLOY_AT {
                100.0
            } else if t < DEPLOY_AT + down {
                0.0
            } else {
                40.0
            }
        })
        .collect();
    print_series("conventional  server RX Mbps", &conv_series, 24);

    let after: Vec<f64> = series[110.min(series.len() - 1)..].to_vec();
    println!(
        "steady state after deploy: {:.1} Mbps to the server (paper: 40 Mbps at 0.6 hit rate);\n\
         conventional workflow dark for {down:.1} s during reprovisioning\n",
        bench::mean(&after)
    );
}

/// (c) Stateless load balancer: imbalance between the two DIP ports.
fn case_c_lb() {
    println!("Figure 13(c): stateless load balancer\n");
    // Near-uniform flow mix (the LB spreads *flows*; a heavy-tailed mix
    // measures flow skew rather than balancer quality).
    let p = CampusParams {
        duration: Nanos::from_secs(10),
        zipf_alpha: 0.2,
        burst_probability: 0.005,
        ..Default::default()
    };
    let trace = synthesize(&p);

    let mut ctl = Controller::with_defaults().unwrap();
    let lb_src = sources::lb("lb", "<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>", 256, &[2, 3]);
    ctl.deploy(&lb_src).unwrap();
    // Port pool: alternate the two ports; DIP pool: two server addresses.
    for i in 0..256u32 {
        ctl.write_memory("lb", "port_pool_lb", i, i % 2).unwrap();
        ctl.write_memory("lb", "dip_pool_lb", i, 0x0a09_0901 + (i % 2)).unwrap();
    }

    let mut replay = Replay::new(trace.packets.clone());
    let mut per_bucket: Vec<(u64, u64)> = Vec::new();
    let (mut a, mut b) = (0u64, 0u64);
    let mut bucket_end = Nanos::from_millis(BUCKET_MS);
    while !replay.done() {
        let t = replay.next_time().unwrap();
        while t >= bucket_end {
            per_bucket.push((a, b));
            a = 0;
            b = 0;
            bucket_end += Nanos::from_millis(BUCKET_MS);
        }
        replay.run_until_into(t + Nanos(1), |port, frame, out| {
            ctl.inject_into(port, frame, out).unwrap();
            for (p, bytes) in &out.emitted {
                match p {
                    2 => a += bytes.len() as u64,
                    3 => b += bytes.len() as u64,
                    _ => {}
                }
            }
        });
    }
    let imb: Vec<f64> = per_bucket
        .iter()
        .map(|(x, y)| {
            let (x, y) = (*x as f64, *y as f64);
            if x + y == 0.0 {
                0.0
            } else {
                (x - y).abs() / (x + y)
            }
        })
        .collect();
    print_series("imbalance rate", &imb, 24);
    println!("mean imbalance: {:.3} (native-P4 equivalent yields the same hash spread)\n", bench::mean(&imb));
}

/// (d) Heavy hitters: 100 flows above the 1,024-packet threshold; F1 must
/// reach 1.0 for both the P4runpro program and the native equivalent.
fn case_d_hh() {
    println!("Figure 13(d): heavy hitter detector (CMS+BF, stage CRC16s)\n");
    // Ground truth: 100 heavy flows (1,500 pkts each), 3,996 light (25).
    let flows = traffic::make_flows(7, 4096, 0.7);
    let mut packets: Vec<(usize, FiveTuple)> = Vec::new();
    for (i, f) in flows.iter().enumerate() {
        let n = if i < 100 { 1500 } else { 25 };
        for _ in 0..n {
            packets.push((i, f.tuple));
        }
    }
    let mut rng = StdRng::seed_from_u64(3);
    packets.shuffle(&mut rng);
    let rate = Bandwidth::from_mbps(100.0);
    let mut t = Nanos::ZERO;
    let timed: Vec<TimedPacket> = packets
        .iter()
        .map(|(_, ft)| {
            let frame = traffic::frame_for(ft, 64);
            let len = frame.len();
            let pkt = TimedPacket { t, port: 0, frame };
            t += rate.serialize(len);
            pkt
        })
        .collect();
    let truth: HashSet<FiveTuple> = flows[..100].iter().map(|f| f.tuple).collect();

    // P4runpro hh program (threshold 1024, 1024-bucket rows).
    let mut ctl = Controller::with_defaults().unwrap();
    let hh_src = sources::hh("hh", "<hdr.ipv4.src, 10.1.0.0, 0xffff0000>", 1024, 1024);
    ctl.deploy(&hh_src).unwrap();
    let mut replay = Replay::new(timed.clone());
    let mut f1_series = Vec::new();
    let step = Nanos::from_millis(250);
    let mut next = step;
    while !replay.done() {
        replay.run_until_into(next, |port, frame, out| {
            ctl.inject_into(port, frame, out).unwrap()
        });
        f1_series.push(f1_score(&replay.reported_flows, &truth).f1);
        next += step;
    }
    let ours = f1_score(&replay.reported_flows, &truth);
    print_series("p4runpro F1 over time", &f1_series, 20);
    println!(
        "p4runpro final: precision {:.3} recall {:.3} F1 {:.3}",
        ours.precision, ours.recall, ours.f1
    );

    // Native equivalent.
    let mut native = baselines::NativeHh::build(1024, 1024).unwrap();
    let mut replay = Replay::new(timed);
    replay.run_all_into(|port, frame, out| {
        native.switch.process_frame_into(port, frame, out).unwrap()
    });
    let theirs = f1_score(&replay.reported_flows, &truth);
    println!(
        "native   final: precision {:.3} recall {:.3} F1 {:.3}",
        theirs.precision, theirs.recall, theirs.f1
    );
    println!("(mask-truncated stage CRCs behave like natively narrower hashes)");
}
