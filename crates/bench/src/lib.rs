//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index) and prints
//! the same rows/series the paper reports. `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

use baselines::{ActiveDemand, ActiveRmtAllocator};
use p4rp_ctl::Controller;
use p4rp_progs::{Workload, WorkloadParams};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

/// Scale factor for long experiments: `P4RP_SCALE=quick` trims epoch
/// counts for smoke runs; anything else runs the paper-sized experiment.
pub fn scale() -> f64 {
    match std::env::var("P4RP_SCALE").as_deref() {
        Ok("quick") => 0.1,
        _ => 1.0,
    }
}

/// Scale an epoch count.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()).round() as usize).max(10)
}

/// One deployment epoch's record.
#[derive(Debug, Clone, Copy)]
pub struct EpochRecord {
    /// Epoch.
    pub epoch: usize,
    /// Allocation-scheme computation, milliseconds (0 on failure, matching
    /// the paper's plotting convention).
    pub alloc_ms: f64,
    /// Simulated data plane update, milliseconds.
    pub update_ms: f64,
    /// Ok.
    pub ok: bool,
    /// Mem util.
    pub mem_util: f64,
    /// Te util.
    pub te_util: f64,
}

/// Deploy `epochs` programs of `workload` sequentially (the §6.2.1
/// methodology). Stops early only at `stop_on_failure`.
///
/// Timings and utilization come from the controller's telemetry — the
/// lifecycle span each deploy emits and the resource gauges — rather than
/// the ad-hoc `DeployReport` fields, so the figures read exactly what
/// `status --metrics` reports.
pub fn run_deploy_stream(
    ctl: &mut Controller,
    workload: Workload,
    params: WorkloadParams,
    epochs: usize,
    seed: u64,
    stop_on_failure: bool,
) -> Vec<EpochRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for epoch in 0..epochs {
        let src = workload.program(epoch, rng.random::<u32>() as usize, params);
        let ok = ctl.deploy(&src).is_ok();
        let gauges = p4rp_ctl::ResourceGauges::collect(ctl.resources());
        let span = ctl.lifecycle_spans().last().filter(|_| ok);
        let rec = EpochRecord {
            epoch,
            alloc_ms: span.map_or(0.0, |s| s.solver_wall_ns as f64 / 1e6),
            update_ms: span.map_or(0.0, |s| s.update_delay_ns as f64 / 1e6),
            ok,
            mem_util: gauges.memory_utilization,
            te_util: gauges.entry_utilization,
        };
        let failed = !rec.ok;
        records.push(rec);
        if failed && stop_on_failure {
            break;
        }
    }
    records
}

/// The ActiveRMT demand equivalent of a workload program (same memory,
/// its access count from the program's structure).
pub fn activermt_demand(workload: Workload, params: WorkloadParams, pick: usize) -> ActiveDemand {
    let accesses = match workload {
        Workload::Cache => 1,
        Workload::Lb => 2,
        Workload::Hh => 4,
        Workload::Nc => 3,
        Workload::Mixed => [1, 2, 4][pick % 3],
        Workload::AllMixed => 1 + pick % 4,
    };
    ActiveDemand { mem: params.mem.max(16) * accesses as u32, accesses, elastic: true }
}

/// Run the ActiveRMT side of a deployment stream.
pub fn run_activermt_stream(
    alloc: &mut ActiveRmtAllocator,
    workload: Workload,
    params: WorkloadParams,
    epochs: usize,
    seed: u64,
    stop_on_failure: bool,
) -> Vec<EpochRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for epoch in 0..epochs {
        let demand = activermt_demand(workload, params, rng.random::<u32>() as usize);
        let rec = match alloc.allocate(demand) {
            Some(r) => EpochRecord {
                epoch,
                alloc_ms: r.alloc_wall.as_secs_f64() * 1e3,
                update_ms: r.update_delay.as_millis_f64(),
                ok: true,
                mem_util: alloc.memory_utilization(),
                te_util: 0.0,
            },
            None => EpochRecord {
                epoch,
                alloc_ms: 0.0,
                update_ms: 0.0,
                ok: false,
                mem_util: alloc.memory_utilization(),
                te_util: 0.0,
            },
        };
        let failed = !rec.ok;
        records.push(rec);
        if failed && stop_on_failure {
            break;
        }
    }
    records
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Mean over the successful epochs' allocation delays.
pub fn mean_alloc_ms(records: &[EpochRecord]) -> f64 {
    let xs: Vec<f64> = records.iter().filter(|r| r.ok).map(|r| r.alloc_ms).collect();
    mean(&xs)
}

/// Simple fixed-width table printer.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Sparse text rendering of a series: `label: v v v …` downsampled to
/// `points` values (for the figure binaries' series output).
pub fn print_series(label: &str, xs: &[f64], points: usize) {
    if xs.is_empty() {
        println!("{label}: (empty)");
        return;
    }
    let step = (xs.len() as f64 / points as f64).max(1.0);
    let mut out = String::new();
    let mut i = 0.0;
    while (i as usize) < xs.len() {
        out.push_str(&format!("{:.2} ", xs[i as usize]));
        i += step;
    }
    println!("{label}: {}", out.trim_end());
}

/// Duration → ms helper.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Wall-clock measurement helpers shared by the headline harnesses.
///
/// The guard methodology: never assert a fresh measurement against a
/// nanosecond constant recorded in an earlier session (PR-6 and PR-7 each
/// had to re-anchor those as the host drifted). Instead measure both
/// sides of every guard in the *same run*, interleaved, and assert on
/// the ratio only.
pub mod measure {
    use std::time::Instant;

    /// Mean ns/iter: warm up, calibrate the iteration count for an
    /// ~50 ms measurement window, then report the best of three windows —
    /// the minimum is the standard noise filter for wall-clock
    /// microbenchmarks (scheduler preemption and cache pollution only
    /// ever add time).
    pub fn time_ns(mut f: impl FnMut()) -> f64 {
        const PROBE: u64 = 2_000;
        for _ in 0..PROBE {
            f();
        }
        let probe = Instant::now();
        for _ in 0..PROBE {
            f();
        }
        let per = probe.elapsed().as_nanos() as f64 / PROBE as f64;
        let n = ((50_000_000.0 / per.max(1.0)) as u64).clamp(PROBE, 4_000_000);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..n {
                f();
            }
            best = best.min(t.elapsed().as_nanos() as f64 / n as f64);
        }
        best
    }

    /// Interleaved same-run A/B measurement: `rounds` alternating windows
    /// of `measure(true)` (the A side) and `measure(false)` (the B side),
    /// keeping each side's minimum. Slow wall-clock drift lands on both
    /// sides of the ratio equally, so a guard asserting `a / b` needs no
    /// hardcoded anchor. The closure flips whatever configuration
    /// distinguishes the sides (e.g. `set_indexed_all`) and returns one
    /// [`time_ns`] window.
    pub fn ab_min(rounds: usize, mut measure: impl FnMut(bool) -> f64) -> (f64, f64) {
        let mut a = f64::INFINITY;
        let mut b = f64::INFINITY;
        for _ in 0..rounds {
            a = a.min(measure(true));
            b = b.min(measure(false));
        }
        (a, b)
    }
}

/// Data-plane fixtures shared by the Criterion benches and the
/// `bench_dataplane` headline harness, so both measure exactly the same
/// workloads.
pub mod fixtures {
    use netpkt::CacheOp;
    use p4rp_ctl::Controller;
    use p4rp_progs::sources;
    use rmt_sim::action::{ActionDef, Operand, VliwOp};
    use rmt_sim::parser::{HeaderDef, HeaderField, NextState, ParseState, Parser};
    use rmt_sim::phv::{FieldTable, Phv};
    use rmt_sim::pipeline::{Gress, Pipeline, StageLimits};
    use rmt_sim::switch::{Switch, SwitchConfig};
    use rmt_sim::table::{EntryHandle, KeySpec, MatchKind, MatchValue, Table, TableEntry};

    /// Controller with the cache program deployed, plus (hit, miss, plain)
    /// probe frames for its key space.
    pub fn cache_controller() -> (Controller, Vec<u8>, Vec<u8>, Vec<u8>) {
        let mut ctl = Controller::with_defaults().unwrap();
        let src =
            sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &[(0x8888, 512)]);
        ctl.deploy(&src).unwrap();
        let flows = traffic::make_flows(5, 1, 0.0);
        let hit = traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, 0x8888, 0);
        let miss = traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, 0x9999, 0);
        let plain = traffic::frame_for(&flows[0].tuple, 64);
        (ctl, hit, miss, plain)
    }

    /// An exact-key two-field table with `n` entries, plus probe PHVs
    /// cycling over the stored keys (so the scan cost is the average
    /// position, not the lucky first entry).
    pub fn exact_fixture(n: usize) -> (Table, Vec<Phv>) {
        let mut ft = FieldTable::new();
        let a = ft.register("meta.a", 32).unwrap();
        let b = ft.register("meta.b", 16).unwrap();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("bench_exact", key, vec![ActionDef::noop("hit")], n);
        for i in 0..n as u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![MatchValue::Exact(i * 7 + 1), MatchValue::Exact(i & 0xffff)],
                    priority: 0,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        let probes = (0..64u64)
            .map(|p| {
                let i = (p * 17) % n as u64;
                let mut phv = Phv::new(&ft);
                phv.set(&ft, a, i * 7 + 1);
                phv.set(&ft, b, i & 0xffff);
                phv
            })
            .collect();
        (tbl, probes)
    }

    /// A single-field ternary table with `n` disjoint entries sharing one
    /// mask — the TCAM stand-in. Indexed this is a one-group tuple-space
    /// search; `set_indexed(false)` measures the priority-ordered scan it
    /// replaced.
    pub fn ternary_fixture(n: usize) -> (Table, Vec<Phv>) {
        let mut ft = FieldTable::new();
        let a = ft.register("meta.a", 32).unwrap();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("bench_ternary", key, vec![ActionDef::noop("hit")], n);
        for i in 0..n as u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![MatchValue::Ternary { value: i << 8, mask: 0xffff_ff00 }],
                    priority: 0,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        let probes = (0..64u64)
            .map(|p| {
                let i = (p * 17) % n as u64;
                let mut phv = Phv::new(&ft);
                phv.set(&ft, a, (i << 8) | 0x42);
                phv
            })
            .collect();
        (tbl, probes)
    }

    /// A single-field ternary table with `n` entries spread evenly over
    /// `groups` distinct masks — the tuple-space-search stress workload
    /// (`ternary_scaling` in `BENCH_dataplane.json`). Bits 12–31 identify
    /// the entry, bits 6–11 vary per mask group, bits 0–5 are never
    /// matched (probe noise, which the megaflow union mask must absorb).
    /// Each probe matches exactly one entry.
    pub fn tss_fixture(n: usize, groups: usize) -> (Table, Vec<Phv>) {
        assert!(n.is_multiple_of(groups) && n / groups > 0, "groups must divide n");
        let per = (n / groups) as u64;
        let mut ft = FieldTable::new();
        let a = ft.register("meta.a", 32).unwrap();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("bench_tss", key, vec![ActionDef::noop("hit")], n);
        for g in 0..groups as u64 {
            let mask = 0xffff_f000u64 | (g << 6);
            for i in 0..per {
                tbl.insert(
                    EntryHandle(g * per + i),
                    TableEntry {
                        matches: vec![MatchValue::Ternary { value: (g << 26) | (i << 12), mask }],
                        priority: 0,
                        action: 0,
                        data: vec![g, i],
                    },
                )
                .unwrap();
            }
        }
        let probes = (0..64u64)
            .map(|p| {
                let idx = (p * 17) % n as u64;
                let (g, i) = (idx / per, idx % per);
                let mut phv = Phv::new(&ft);
                phv.set(&ft, a, (g << 26) | (i << 12) | (p & 0x3f));
                phv
            })
            .collect();
        (tbl, probes)
    }

    /// A provisioned one-stage switch whose only ingress table is the
    /// all-ternary [`tss_fixture`] workload keyed on a parsed header field —
    /// the frame-path megaflow-cache probe. Probe frames cycle the same
    /// 64-value mix as the table fixture, each matching exactly one entry,
    /// with low-bit noise the union mask must absorb.
    pub fn ternary_switch(n: usize, groups: usize) -> (Switch, Vec<Vec<u8>>) {
        assert!(n.is_multiple_of(groups) && n / groups > 0, "groups must divide n");
        let per = (n / groups) as u64;
        let mut ft = FieldTable::new();
        let a = ft.register("hdr.key.a", 32).unwrap();
        let valid = ft.register("hdr.key.$valid", 1).unwrap();
        let intr = ft.intrinsics();
        let mut parser = Parser::new();
        let h = parser.add_header(HeaderDef {
            name: "key".into(),
            len_bytes: 4,
            fields: vec![HeaderField { field: a, bit_offset: 0, bits: 32 }],
            presence: valid,
            checksum_at: None,
            bitmap_bit: 0,
        });
        let s = parser.add_state(ParseState {
            header: h,
            select: None,
            transitions: vec![],
            default: NextState::Accept,
        });
        parser.set_start(s);
        let mut ingress = Pipeline::new(Gress::Ingress, 1, StageLimits::default());
        let fwd = ActionDef {
            name: "fwd".into(),
            ops: vec![
                VliwOp::set(intr.egress_spec, Operand::Const(1)),
                VliwOp::set(intr.egress_valid, Operand::Const(1)),
            ],
            hash: None,
            salu: None,
        };
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("tcam", key, vec![fwd], n);
        for g in 0..groups as u64 {
            let mask = 0xffff_f000u64 | (g << 6);
            for i in 0..per {
                tbl.insert(
                    EntryHandle(g * per + i),
                    TableEntry {
                        matches: vec![MatchValue::Ternary { value: (g << 26) | (i << 12), mask }],
                        priority: 0,
                        action: 0,
                        data: vec![],
                    },
                )
                .unwrap();
            }
        }
        tbl.set_default_action(0, vec![]);
        ingress.stage_mut(0).unwrap().add_table(tbl);
        let egress = Pipeline::new(Gress::Egress, 1, StageLimits::default());
        let mut sw = Switch::assemble(SwitchConfig::default(), ft, parser, ingress, egress);
        sw.provision().unwrap();
        let frames = (0..64u64)
            .map(|p| {
                let idx = (p * 17) % n as u64;
                let (g, i) = (idx / per, idx % per);
                (((g << 26) | (i << 12) | (p & 0x3f)) as u32).to_be_bytes().to_vec()
            })
            .collect();
        (sw, frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_stream_records_success_and_utilization() {
        let mut ctl = Controller::with_defaults().unwrap();
        let recs =
            run_deploy_stream(&mut ctl, Workload::Lb, WorkloadParams::default(), 12, 7, true);
        assert_eq!(recs.len(), 12);
        assert!(recs.iter().all(|r| r.ok));
        assert!(recs.last().unwrap().te_util > recs[0].te_util);
        assert!(mean_alloc_ms(&recs) > 0.0);
    }

    #[test]
    fn activermt_stream_eventually_fails() {
        let mut a = ActiveRmtAllocator::new(4096);
        let params = WorkloadParams { mem: 16384, elastic: 2 };
        let recs = run_activermt_stream(&mut a, Workload::Hh, params, 10_000, 3, true);
        assert!(!recs.last().unwrap().ok, "must hit capacity");
        assert!(recs.len() > 5);
    }

    #[test]
    fn helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(scaled(100) >= 10);
    }
}

#[cfg(test)]
mod capacity_probe {
    use super::*;

    #[test]
    fn activermt_cache_capacity_bounded() {
        let mut a = ActiveRmtAllocator::default();
        let recs = run_activermt_stream(
            &mut a,
            p4rp_progs::Workload::Cache,
            p4rp_progs::WorkloadParams::default(),
            100_000,
            11,
            true,
        );
        let ok = recs.iter().filter(|r| r.ok).count();
        println!("capacity {ok}, util {:.3}", a.memory_utilization());
        assert!(ok <= 5120, "cap exceeded: {ok}");
    }
}
