//! Shared experiment harness for the table/figure reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's per-experiment index) and prints
//! the same rows/series the paper reports. `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.

use baselines::{ActiveDemand, ActiveRmtAllocator};
use p4rp_ctl::Controller;
use p4rp_progs::{Workload, WorkloadParams};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

/// Scale factor for long experiments: `P4RP_SCALE=quick` trims epoch
/// counts for smoke runs; anything else runs the paper-sized experiment.
pub fn scale() -> f64 {
    match std::env::var("P4RP_SCALE").as_deref() {
        Ok("quick") => 0.1,
        _ => 1.0,
    }
}

/// Scale an epoch count.
pub fn scaled(n: usize) -> usize {
    ((n as f64 * scale()).round() as usize).max(10)
}

/// One deployment epoch's record.
#[derive(Debug, Clone, Copy)]
pub struct EpochRecord {
    /// Epoch.
    pub epoch: usize,
    /// Allocation-scheme computation, milliseconds (0 on failure, matching
    /// the paper's plotting convention).
    pub alloc_ms: f64,
    /// Simulated data plane update, milliseconds.
    pub update_ms: f64,
    /// Ok.
    pub ok: bool,
    /// Mem util.
    pub mem_util: f64,
    /// Te util.
    pub te_util: f64,
}

/// Deploy `epochs` programs of `workload` sequentially (the §6.2.1
/// methodology). Stops early only at `stop_on_failure`.
///
/// Timings and utilization come from the controller's telemetry — the
/// lifecycle span each deploy emits and the resource gauges — rather than
/// the ad-hoc `DeployReport` fields, so the figures read exactly what
/// `status --metrics` reports.
pub fn run_deploy_stream(
    ctl: &mut Controller,
    workload: Workload,
    params: WorkloadParams,
    epochs: usize,
    seed: u64,
    stop_on_failure: bool,
) -> Vec<EpochRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for epoch in 0..epochs {
        let src = workload.program(epoch, rng.random::<u32>() as usize, params);
        let ok = ctl.deploy(&src).is_ok();
        let gauges = p4rp_ctl::ResourceGauges::collect(ctl.resources());
        let span = ctl.lifecycle_spans().last().filter(|_| ok);
        let rec = EpochRecord {
            epoch,
            alloc_ms: span.map_or(0.0, |s| s.solver_wall_ns as f64 / 1e6),
            update_ms: span.map_or(0.0, |s| s.update_delay_ns as f64 / 1e6),
            ok,
            mem_util: gauges.memory_utilization,
            te_util: gauges.entry_utilization,
        };
        let failed = !rec.ok;
        records.push(rec);
        if failed && stop_on_failure {
            break;
        }
    }
    records
}

/// The ActiveRMT demand equivalent of a workload program (same memory,
/// its access count from the program's structure).
pub fn activermt_demand(workload: Workload, params: WorkloadParams, pick: usize) -> ActiveDemand {
    let accesses = match workload {
        Workload::Cache => 1,
        Workload::Lb => 2,
        Workload::Hh => 4,
        Workload::Nc => 3,
        Workload::Mixed => [1, 2, 4][pick % 3],
        Workload::AllMixed => 1 + pick % 4,
    };
    ActiveDemand { mem: params.mem.max(16) * accesses as u32, accesses, elastic: true }
}

/// Run the ActiveRMT side of a deployment stream.
pub fn run_activermt_stream(
    alloc: &mut ActiveRmtAllocator,
    workload: Workload,
    params: WorkloadParams,
    epochs: usize,
    seed: u64,
    stop_on_failure: bool,
) -> Vec<EpochRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for epoch in 0..epochs {
        let demand = activermt_demand(workload, params, rng.random::<u32>() as usize);
        let rec = match alloc.allocate(demand) {
            Some(r) => EpochRecord {
                epoch,
                alloc_ms: r.alloc_wall.as_secs_f64() * 1e3,
                update_ms: r.update_delay.as_millis_f64(),
                ok: true,
                mem_util: alloc.memory_utilization(),
                te_util: 0.0,
            },
            None => EpochRecord {
                epoch,
                alloc_ms: 0.0,
                update_ms: 0.0,
                ok: false,
                mem_util: alloc.memory_utilization(),
                te_util: 0.0,
            },
        };
        let failed = !rec.ok;
        records.push(rec);
        if failed && stop_on_failure {
            break;
        }
    }
    records
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Mean over the successful epochs' allocation delays.
pub fn mean_alloc_ms(records: &[EpochRecord]) -> f64 {
    let xs: Vec<f64> = records.iter().filter(|r| r.ok).map(|r| r.alloc_ms).collect();
    mean(&xs)
}

/// Simple fixed-width table printer.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i.min(widths.len() - 1)]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Sparse text rendering of a series: `label: v v v …` downsampled to
/// `points` values (for the figure binaries' series output).
pub fn print_series(label: &str, xs: &[f64], points: usize) {
    if xs.is_empty() {
        println!("{label}: (empty)");
        return;
    }
    let step = (xs.len() as f64 / points as f64).max(1.0);
    let mut out = String::new();
    let mut i = 0.0;
    while (i as usize) < xs.len() {
        out.push_str(&format!("{:.2} ", xs[i as usize]));
        i += step;
    }
    println!("{label}: {}", out.trim_end());
}

/// Duration → ms helper.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Data-plane fixtures shared by the Criterion benches and the
/// `bench_dataplane` headline harness, so both measure exactly the same
/// workloads.
pub mod fixtures {
    use netpkt::CacheOp;
    use p4rp_ctl::Controller;
    use p4rp_progs::sources;
    use rmt_sim::action::ActionDef;
    use rmt_sim::phv::{FieldTable, Phv};
    use rmt_sim::table::{EntryHandle, KeySpec, MatchKind, MatchValue, Table, TableEntry};

    /// Controller with the cache program deployed, plus (hit, miss, plain)
    /// probe frames for its key space.
    pub fn cache_controller() -> (Controller, Vec<u8>, Vec<u8>, Vec<u8>) {
        let mut ctl = Controller::with_defaults().unwrap();
        let src =
            sources::cache("cache", "<hdr.udp.dst_port, 7777, 0xffff>", 1024, &[(0x8888, 512)]);
        ctl.deploy(&src).unwrap();
        let flows = traffic::make_flows(5, 1, 0.0);
        let hit = traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, 0x8888, 0);
        let miss = traffic::netcache_frame(&flows[0].tuple, CacheOp::Read, 0x9999, 0);
        let plain = traffic::frame_for(&flows[0].tuple, 64);
        (ctl, hit, miss, plain)
    }

    /// An exact-key two-field table with `n` entries, plus probe PHVs
    /// cycling over the stored keys (so the scan cost is the average
    /// position, not the lucky first entry).
    pub fn exact_fixture(n: usize) -> (Table, Vec<Phv>) {
        let mut ft = FieldTable::new();
        let a = ft.register("meta.a", 32).unwrap();
        let b = ft.register("meta.b", 16).unwrap();
        let key = KeySpec::new(vec![(a, MatchKind::Exact), (b, MatchKind::Exact)]);
        let mut tbl = Table::new("bench_exact", key, vec![ActionDef::noop("hit")], n);
        for i in 0..n as u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![MatchValue::Exact(i * 7 + 1), MatchValue::Exact(i & 0xffff)],
                    priority: 0,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        let probes = (0..64u64)
            .map(|p| {
                let i = (p * 17) % n as u64;
                let mut phv = Phv::new(&ft);
                phv.set(&ft, a, i * 7 + 1);
                phv.set(&ft, b, i & 0xffff);
                phv
            })
            .collect();
        (tbl, probes)
    }

    /// A single-field ternary table with `n` disjoint entries — the TCAM
    /// stand-in, always a priority-ordered scan.
    pub fn ternary_fixture(n: usize) -> (Table, Vec<Phv>) {
        let mut ft = FieldTable::new();
        let a = ft.register("meta.a", 32).unwrap();
        let key = KeySpec::new(vec![(a, MatchKind::Ternary)]);
        let mut tbl = Table::new("bench_ternary", key, vec![ActionDef::noop("hit")], n);
        for i in 0..n as u64 {
            tbl.insert(
                EntryHandle(i),
                TableEntry {
                    matches: vec![MatchValue::Ternary { value: i << 8, mask: 0xffff_ff00 }],
                    priority: 0,
                    action: 0,
                    data: vec![i],
                },
            )
            .unwrap();
        }
        let probes = (0..64u64)
            .map(|p| {
                let i = (p * 17) % n as u64;
                let mut phv = Phv::new(&ft);
                phv.set(&ft, a, (i << 8) | 0x42);
                phv
            })
            .collect();
        (tbl, probes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_stream_records_success_and_utilization() {
        let mut ctl = Controller::with_defaults().unwrap();
        let recs =
            run_deploy_stream(&mut ctl, Workload::Lb, WorkloadParams::default(), 12, 7, true);
        assert_eq!(recs.len(), 12);
        assert!(recs.iter().all(|r| r.ok));
        assert!(recs.last().unwrap().te_util > recs[0].te_util);
        assert!(mean_alloc_ms(&recs) > 0.0);
    }

    #[test]
    fn activermt_stream_eventually_fails() {
        let mut a = ActiveRmtAllocator::new(4096);
        let params = WorkloadParams { mem: 16384, elastic: 2 };
        let recs = run_activermt_stream(&mut a, Workload::Hh, params, 10_000, 3, true);
        assert!(!recs.last().unwrap().ok, "must hit capacity");
        assert!(recs.len() > 5);
    }

    #[test]
    fn helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!(scaled(100) >= 10);
    }
}

#[cfg(test)]
mod capacity_probe {
    use super::*;

    #[test]
    fn activermt_cache_capacity_bounded() {
        let mut a = ActiveRmtAllocator::default();
        let recs = run_activermt_stream(
            &mut a,
            p4rp_progs::Workload::Cache,
            p4rp_progs::WorkloadParams::default(),
            100_000,
            11,
            true,
        );
        let ok = recs.iter().filter(|r| r.ok).count();
        println!("capacity {ok}, util {:.3}", a.memory_utilization());
        assert!(ok <= 5120, "cap exceeded: {ok}");
    }
}
