//! FlyMon baseline (Zheng et al., SIGCOMM '22).
//!
//! FlyMon reconfigures *network measurement* tasks on the fly by composing
//! flow keys and flow attributes over Composable Measurement Units (CMUs).
//! It is deliberately narrow: only measurement tasks exist (the paper's
//! generality comparison), but within that scope reconfiguration is cheap
//! — a handful of entries per task (Table 1's `**` rows) — and the data
//! plane carries no generality overhead (Table 2: no extra ingress logic,
//! no power above its measurement stages).

use rmt_sim::clock::Nanos;
use rmt_sim::control::LatencyModel;
use rmt_sim::error::SimResult;
use rmt_sim::phv::FieldTable;
use rmt_sim::pipeline::{Gress, Pipeline, StageLimits};
use rmt_sim::resources::ChipReport;
use rmt_sim::salu::RegArray;
use rmt_sim::table::{KeySpec, MatchKind, Table};
use rmt_sim::action::{ActionDef, Operand, VliwOp};

/// The measurement tasks FlyMon can host (and nothing else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// CountMinSketch.
    CountMinSketch,
    /// BloomFilter.
    BloomFilter,
    /// SuMax.
    SuMax,
    /// HyperLogLog.
    HyperLogLog,
}

impl TaskKind {
    /// `ALL`.
    pub const ALL: [TaskKind; 4] = [
        TaskKind::CountMinSketch,
        TaskKind::BloomFilter,
        TaskKind::SuMax,
        TaskKind::HyperLogLog,
    ];

    /// Reconfiguration entries: key-composition entries + attribute
    /// entries + CMU steering, per the FlyMon task structure. Entry counts
    /// are chosen so the default control-channel latency model lands on
    /// the Table 1 `**` delays.
    pub fn entries(self) -> usize {
        match self {
            // Table 1: CMS 27.46 ms, BF 32.09 ms, SuMax 22.88 ms,
            // HLL 17.37 ms.
            TaskKind::CountMinSketch => 81,
            TaskKind::BloomFilter => 95,
            TaskKind::SuMax => 67,
            TaskKind::HyperLogLog => 50,
        }
    }
}

/// A FlyMon deployment: a fixed set of CMU groups accepting tasks.
#[derive(Debug, Clone)]
pub struct FlyMon {
    /// Latency.
    pub latency: LatencyModel,
    /// Installed tasks per CMU group.
    tasks: Vec<Option<TaskKind>>,
}

impl Default for FlyMon {
    fn default() -> Self {
        FlyMon::new(9)
    }
}

impl FlyMon {
    /// `groups`: CMU groups available (the FlyMon prototype deploys 9).
    pub fn new(groups: usize) -> FlyMon {
        FlyMon { latency: LatencyModel::default(), tasks: vec![None; groups] }
    }

    /// Attach a measurement task; returns the reconfiguration delay, or
    /// `None` if every CMU group is busy.
    pub fn attach(&mut self, task: TaskKind) -> Option<Nanos> {
        let slot = self.tasks.iter().position(|t| t.is_none())?;
        self.tasks[slot] = Some(task);
        Some(self.reconfig_delay(task))
    }

    /// Detach the first instance of a task.
    pub fn detach(&mut self, task: TaskKind) -> Option<Nanos> {
        let slot = self.tasks.iter().position(|t| *t == Some(task))?;
        self.tasks[slot] = None;
        Some(self.reconfig_delay(task))
    }

    /// Installed.
    pub fn installed(&self) -> usize {
        self.tasks.iter().filter(|t| t.is_some()).count()
    }

    /// Task reconfiguration cost: entry writes through the control
    /// channel.
    pub fn reconfig_delay(&self, task: TaskKind) -> Nanos {
        Nanos(self.latency.per_batch.0 + self.latency.per_insert.0 * task.entries() as u64)
    }
}

/// FlyMon's data plane profile for Figure 10 / Table 2: a nearly-empty
/// ingress (2 stages of steering) and ~10 egress stages of CMUs, each a
/// pair of register arrays driven by hash-selected keys.
pub fn build_profile() -> SimResult<ChipReport> {
    let mut ft = FieldTable::new();
    let key = ft.register("fm.key", 32)?;
    let attr = ft.register("fm.attr", 32)?;

    let limits = StageLimits::default();
    let mut ingress = Pipeline::new(Gress::Ingress, 12, limits);
    let mut egress = Pipeline::new(Gress::Egress, 12, limits);

    // Ingress: key composition (2 stages).
    for idx in 0..2 {
        let stage = ingress.stage_mut(idx)?;
        stage.add_table(Table::new(
            format!("key_comp_{idx}"),
            KeySpec::new(vec![(key, MatchKind::Ternary)]),
            vec![ActionDef {
                name: "compose".into(),
                ops: vec![VliwOp::set(key, Operand::Arg(0))],
                hash: Some(rmt_sim::action::HashCall {
                    spec: rmt_sim::hash::CRC16_BUYPASS,
                    input: rmt_sim::action::HashInput::Fields(vec![key]),
                    dst: attr,
                    mask: None,
                }),
                salu: None,
            }],
            1024,
        ));
    }
    // Egress: 10 stages of CMU groups — three CMUs per stage, each a
    // hash-addressed register array behind its own ternary task table.
    for idx in 0..10 {
        let stage = egress.stage_mut(idx)?;
        for cmu in 0..3 {
            let mut actions = Vec::new();
            for i in 0..8 {
                actions.push(ActionDef {
                    name: format!("cmu{cmu}_op_{i}"),
                    ops: vec![VliwOp::set(attr, Operand::Arg(0))],
                    hash: Some(rmt_sim::action::HashCall {
                        spec: rmt_sim::hash::CRC32,
                        input: rmt_sim::action::HashInput::Fields(vec![key]),
                        dst: attr,
                        mask: None,
                    }),
                    salu: Some(rmt_sim::action::SaluCall {
                        array: cmu,
                        addr: Operand::Field(key),
                        operand: Operand::Field(attr),
                        instr: rmt_sim::salu::SaluInstr::READ,
                        alt_instr: None,
                        select_flag: None,
                        output: Some(attr),
                    }),
                });
            }
            stage.add_table(Table::new(
                format!("cmu_{idx}_{cmu}"),
                KeySpec::new(vec![(key, MatchKind::Ternary), (attr, MatchKind::Ternary)]),
                actions,
                1024,
            ));
            stage.add_array(RegArray::new(format!("cmu_mem_{idx}_{cmu}"), 65_536));
        }
    }
    Ok(ChipReport::build(&ft, &ingress, &egress))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_match_table1_band() {
        let fm = FlyMon::default();
        for (task, paper_ms) in [
            (TaskKind::CountMinSketch, 27.46),
            (TaskKind::BloomFilter, 32.09),
            (TaskKind::SuMax, 22.88),
            (TaskKind::HyperLogLog, 17.37),
        ] {
            let ours = fm.reconfig_delay(task).as_millis_f64();
            let ratio = ours / paper_ms;
            assert!((0.8..=1.25).contains(&ratio), "{task:?}: {ours:.2} vs {paper_ms}");
        }
    }

    #[test]
    fn capacity_limited_by_cmu_groups() {
        let mut fm = FlyMon::new(3);
        assert!(fm.attach(TaskKind::CountMinSketch).is_some());
        assert!(fm.attach(TaskKind::BloomFilter).is_some());
        assert!(fm.attach(TaskKind::SuMax).is_some());
        assert!(fm.attach(TaskKind::HyperLogLog).is_none(), "only 3 CMU groups");
        assert!(fm.detach(TaskKind::BloomFilter).is_some());
        assert!(fm.attach(TaskKind::HyperLogLog).is_some());
        assert_eq!(fm.installed(), 3);
    }

    #[test]
    fn profile_is_ingress_light() {
        let report = build_profile().unwrap();
        assert_eq!(report.active_ingress_stages, 2, "Table 2: ingress ≈54 cycles");
        assert_eq!(report.active_egress_stages, 10);
    }
}
