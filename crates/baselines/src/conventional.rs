//! The conventional P4 workflow baseline (§2.1) and native fixed-function
//! equivalents of the case-study programs (§6.4).
//!
//! Two pieces:
//!
//! * [`ConventionalTiming`] — the deployment timeline of the classic
//!   workflow: compile with P4C (minutes), reprovision the switch
//!   (seconds, suspending *all* programs and traffic), re-enable ports.
//!   Figure 13(b)/(c) compares this against P4runpro's sub-second link.
//! * Native pipelines — the same cache / load-balancer / heavy-hitter
//!   functions written directly against the simulator as dedicated,
//!   compile-time-fixed match-action programs. The case studies assert
//!   functional equivalence between these and the runtime-linked P4runpro
//!   programs.

use p4rp_dataplane::fields;
use rmt_sim::action::{ActionDef, HashCall, HashInput, Operand, SaluCall, VliwOp};
use rmt_sim::clock::Nanos;
use rmt_sim::error::SimResult;
use rmt_sim::hash::{CRC16_AUG_CCITT, CRC16_BUYPASS, CRC16_DDS_110, CRC16_MCRF4XX};
use rmt_sim::pipeline::{Gress, Pipeline, StageLimits};
use rmt_sim::salu::{RegArray, SaluCond, SaluExpr, SaluInstr, SaluOutput};
use rmt_sim::switch::{ControlOp, Switch, SwitchConfig, TableRef};
use rmt_sim::table::{KeySpec, MatchKind, MatchValue, Table, TableEntry};

/// Deployment timing of the conventional P4 workflow.
#[derive(Debug, Clone, Copy)]
pub struct ConventionalTiming {
    /// P4C compile time ("a few or even a dozen minutes", §6.2.1).
    pub compile: Nanos,
    /// Binary reprovisioning (all traffic and programs suspended).
    pub reprovision: Nanos,
    /// Port re-enable after reprovisioning.
    pub port_enable: Nanos,
}

impl Default for ConventionalTiming {
    fn default() -> Self {
        ConventionalTiming {
            compile: Nanos::from_secs(150),
            reprovision: Nanos::from_secs(6),
            port_enable: Nanos::from_secs(2),
        }
    }
}

impl ConventionalTiming {
    /// Time from "operator decides" to "function active".
    /// `precompiled` skips the compile step (the Figure 13 setup deploys a
    /// binary compiled ahead of time).
    pub fn deployment_delay(&self, precompiled: bool) -> Nanos {
        let mut d = self.reprovision + self.port_enable;
        if !precompiled {
            d += self.compile;
        }
        d
    }
}

/// A native (compile-time-fixed) cache switch: the standalone P4 program
/// equivalent of the Figure 2 cache.
pub struct NativeCache {
    /// Switch.
    pub switch: Switch,
    table: TableRef,
    kv: rmt_sim::switch::ArrayRef,
}

impl NativeCache {
    /// Build with the given `(key, bucket)` pairs and the miss port.
    pub fn build(keys: &[(u64, u32)], miss_port: u16) -> SimResult<NativeCache> {
        let (ft, parser, f) = fields::build()?;
        let intr = ft.intrinsics();
        let nc_op = f.lookup("hdr.nc.op").unwrap();
        let nc_key1 = f.lookup("hdr.nc.key1").unwrap();
        let nc_key2 = f.lookup("hdr.nc.key2").unwrap();
        let nc_value = f.lookup("hdr.nc.value").unwrap();

        let limits = StageLimits::default();
        let mut ingress = Pipeline::new(Gress::Ingress, 2, limits);
        let egress = Pipeline::new(Gress::Egress, 1, limits);

        let actions = vec![
            // 0: cache read hit → value from memory, reflect.
            ActionDef {
                name: "read_hit".into(),
                ops: vec![VliwOp::set(intr.return_flag, Operand::Const(1))],
                hash: None,
                salu: Some(SaluCall {
                    array: 0,
                    addr: Operand::Arg(0),
                    operand: Operand::Const(0),
                    instr: SaluInstr::READ,
                    alt_instr: None,
                    select_flag: None,
                    output: Some(nc_value),
                }),
            },
            // 1: cache write hit → store value, consume packet.
            ActionDef {
                name: "write_hit".into(),
                ops: vec![VliwOp::set(intr.drop_flag, Operand::Const(1))],
                hash: None,
                salu: Some(SaluCall {
                    array: 0,
                    addr: Operand::Arg(0),
                    operand: Operand::Field(nc_value),
                    instr: SaluInstr::WRITE,
                    alt_instr: None,
                    select_flag: None,
                    output: None,
                }),
            },
            // 2: miss → to the server.
            ActionDef {
                name: "miss".into(),
                ops: vec![
                    VliwOp::set(intr.egress_spec, Operand::Arg(0)),
                    VliwOp::set(intr.egress_valid, Operand::Const(1)),
                ],
                hash: None,
                salu: None,
            },
        ];
        let mut table = Table::new(
            "cache",
            KeySpec::new(vec![
                (nc_op, MatchKind::Exact),
                (nc_key1, MatchKind::Exact),
                (nc_key2, MatchKind::Exact),
            ]),
            actions,
            1024,
        );
        table.set_default_action(2, vec![u64::from(miss_port)]);
        let stage = ingress.stage_mut(0)?;
        let t_idx = stage.add_table(table);
        stage.add_array(RegArray::new("kv", 65_536));
        let table = TableRef { gress: Gress::Ingress, stage: 0, table: t_idx };
        let kv = rmt_sim::switch::ArrayRef { gress: Gress::Ingress, stage: 0, array: 0 };

        let mut switch = Switch::assemble(SwitchConfig::default(), ft, parser, ingress, egress);
        switch.set_strip_on_emit(vec![f.rc_valid]);
        switch.provision()?;

        let mut nc = NativeCache { switch, table, kv };
        for (key, bucket) in keys {
            nc.add_key(*key, *bucket)?;
        }
        Ok(nc)
    }

    /// Install the read + write entries of one key.
    pub fn add_key(&mut self, key: u64, bucket: u32) -> SimResult<()> {
        let (k1, k2) = ((key >> 32), key & 0xffff_ffff);
        for (op, action) in [(0u64, 0usize), (1, 1)] {
            self.switch.apply_op(&ControlOp::InsertEntry {
                table: self.table,
                entry: TableEntry {
                    matches: vec![
                        MatchValue::Exact(op),
                        MatchValue::Exact(k1),
                        MatchValue::Exact(k2),
                    ],
                    priority: 0,
                    action,
                    data: vec![u64::from(bucket)],
                },
            })?;
        }
        Ok(())
    }

    /// Read bucket.
    pub fn read_bucket(&self, bucket: u32) -> SimResult<u32> {
        self.switch.array(self.kv)?.read(bucket)
    }
}

/// A native stateless load balancer: hash the five-tuple, pick a port and
/// a DIP from per-bucket pools (the standalone equivalent of Figure 16).
pub struct NativeLb {
    /// Switch.
    pub switch: Switch,
    ports: rmt_sim::switch::ArrayRef,
    dips: rmt_sim::switch::ArrayRef,
    /// Pool mask.
    pub pool_mask: u32,
}

impl NativeLb {
    /// Build.
    pub fn build(pool_size: u32) -> SimResult<NativeLb> {
        assert!(pool_size.is_power_of_two());
        let (ft, parser, f) = fields::build()?;
        let intr = ft.intrinsics();
        let ipv4_dst = f.ipv4_dst;
        let scratch = f.scratch;

        let limits = StageLimits::default();
        let mut ingress = Pipeline::new(Gress::Ingress, 2, limits);
        let egress = Pipeline::new(Gress::Egress, 1, limits);

        // Stage 0: hash → scratch; SALU picks the egress port.
        let mut t0 = Table::new(
            "pick_port",
            KeySpec::new(vec![(ipv4_dst, MatchKind::Ternary)]),
            vec![ActionDef {
                name: "port".into(),
                ops: vec![],
                hash: Some(HashCall {
                    spec: CRC16_BUYPASS,
                    input: HashInput::Fields(f.five_tuple()),
                    dst: scratch,
                    mask: Some(Operand::Arg(0)),
                }),
                salu: None,
            }],
            16,
        );
        t0.set_default_action(0, vec![u64::from(pool_size - 1)]);
        ingress.stage_mut(0)?.add_table(t0);

        // Stage 1: port lookup + DIP rewrite (two tables, two arrays).
        let mut t_port = Table::new(
            "port_pool",
            KeySpec::new(vec![(ipv4_dst, MatchKind::Ternary)]),
            vec![ActionDef {
                name: "set_port".into(),
                ops: vec![VliwOp::set(intr.egress_valid, Operand::Const(1))],
                hash: None,
                salu: Some(SaluCall {
                    array: 0,
                    addr: Operand::Field(scratch),
                    operand: Operand::Const(0),
                    instr: SaluInstr::READ,
                    alt_instr: None,
                    select_flag: None,
                    output: Some(intr.egress_spec),
                }),
            }],
            16,
        );
        t_port.set_default_action(0, vec![]);
        let mut t_dip = Table::new(
            "dip_pool",
            KeySpec::new(vec![(ipv4_dst, MatchKind::Ternary)]),
            vec![ActionDef {
                name: "set_dip".into(),
                ops: vec![],
                hash: None,
                salu: Some(SaluCall {
                    array: 1,
                    addr: Operand::Field(scratch),
                    operand: Operand::Const(0),
                    instr: SaluInstr::READ,
                    alt_instr: None,
                    select_flag: None,
                    output: Some(ipv4_dst),
                }),
            }],
            16,
        );
        t_dip.set_default_action(0, vec![]);
        let stage = ingress.stage_mut(1)?;
        stage.add_table(t_port);
        stage.add_table(t_dip);
        stage.add_array(RegArray::new("ports", pool_size as usize));
        stage.add_array(RegArray::new("dips", pool_size as usize));

        let mut switch = Switch::assemble(SwitchConfig::default(), ft, parser, ingress, egress);
        switch.set_strip_on_emit(vec![f.rc_valid]);
        switch.provision()?;
        Ok(NativeLb {
            switch,
            ports: rmt_sim::switch::ArrayRef { gress: Gress::Ingress, stage: 1, array: 0 },
            dips: rmt_sim::switch::ArrayRef { gress: Gress::Ingress, stage: 1, array: 1 },
            pool_mask: pool_size - 1,
        })
    }

    /// Fill bucket `i` with `(port, dip)`.
    pub fn set_bucket(&mut self, i: u32, port: u16, dip: u32) -> SimResult<()> {
        self.switch.apply_op(&ControlOp::WriteReg {
            array: self.ports,
            addr: i,
            value: u32::from(port),
        })?;
        self.switch.apply_op(&ControlOp::WriteReg { array: self.dips, addr: i, value: dip })?;
        Ok(())
    }
}

/// A native heavy-hitter detector: 2-row CMS + 2-row BF across four
/// stages, reporting a flow the first time both counters cross the
/// threshold (the standalone equivalent of Figure 17).
pub struct NativeHh {
    /// Switch.
    pub switch: Switch,
}

impl NativeHh {
    /// Build.
    pub fn build(rows: u32, threshold: u32) -> SimResult<NativeHh> {
        assert!(rows.is_power_of_two());
        let (mut ft, parser, f) = fields::build()?;
        let intr = ft.intrinsics();
        let c1 = ft.register("hhmeta.c1", 32)?;
        let c2 = ft.register("hhmeta.c2", 32)?;
        let b1 = ft.register("hhmeta.b1", 32)?;
        let b2 = ft.register("hhmeta.b2", 32)?;
        let mask = u64::from(rows - 1);

        let limits = StageLimits::default();
        let mut ingress = Pipeline::new(Gress::Ingress, 5, limits);
        let egress = Pipeline::new(Gress::Egress, 1, limits);

        let count_action = |spec, dst| ActionDef {
            name: "count".into(),
            ops: vec![],
            hash: Some(HashCall {
                spec,
                input: HashInput::Fields(f.five_tuple()),
                dst: f.scratch,
                mask: Some(Operand::Const(mask)),
            }),
            salu: Some(SaluCall {
                array: 0,
                addr: Operand::Field(f.scratch),
                operand: Operand::Const(1),
                instr: SaluInstr {
                    cond: SaluCond::Always,
                    update_true: Some(SaluExpr::MemPlusOp),
                    update_false: None,
                    output: SaluOutput::NewMem,
                },
                alt_instr: None,
                select_flag: None,
                output: Some(dst),
            }),
        };
        // Hash ordering hazard: the hash and SALU run in the same action
        // with parallel reads, but the SALU addr comes from `scratch`
        // written by the *same* action's hash — split into hash stage +
        // count stage pairs instead: here we exploit that HashCall output
        // is applied before reads? No — keep it honest: the hash of stage
        // k addresses the SALU of stage k+1. Four rows → four (hash,
        // count) stages would need eight; instead each stage hashes for
        // its own row into `scratch` *in a preceding table of the same
        // stage*, which executes before the counting table.
        let hash_only = |spec| ActionDef {
            name: "hash".into(),
            ops: vec![],
            hash: Some(HashCall {
                spec,
                input: HashInput::Fields(f.five_tuple()),
                dst: f.scratch,
                mask: Some(Operand::Const(mask)),
            }),
            salu: None,
        };
        let _ = count_action; // the split version below supersedes it

        let specs = [CRC16_BUYPASS, CRC16_MCRF4XX, CRC16_AUG_CCITT, CRC16_DDS_110];
        // Stages 0/1: CMS rows; stage 2: BF row 1 (gated on thresholds);
        // stage 3: BF row 2 + report.
        for (idx, dst) in [(0usize, c1), (1, c2)] {
            let stage = ingress.stage_mut(idx)?;
            let mut th = Table::new(
                format!("hash_{idx}"),
                KeySpec::new(vec![(f.ipv4_src, MatchKind::Ternary)]),
                vec![hash_only(specs[idx])],
                4,
            );
            th.set_default_action(0, vec![]);
            stage.add_table(th);
            let mut tc = Table::new(
                format!("cms_{idx}"),
                KeySpec::new(vec![(f.ipv4_src, MatchKind::Ternary)]),
                vec![ActionDef {
                    name: "count".into(),
                    ops: vec![],
                    hash: None,
                    salu: Some(SaluCall {
                        array: 0,
                        addr: Operand::Field(f.scratch),
                        operand: Operand::Const(1),
                        instr: SaluInstr {
                            cond: SaluCond::Always,
                            update_true: Some(SaluExpr::MemPlusOp),
                            update_false: None,
                            output: SaluOutput::NewMem,
                        },
                        alt_instr: None,
                        select_flag: None,
                        output: Some(dst),
                    }),
                }],
                4,
            );
            tc.set_default_action(0, vec![]);
            stage.add_table(tc);
            stage.add_array(RegArray::new(format!("cms_row_{idx}"), rows as usize));
        }
        // Stage 2: both counters over threshold → BF row 1 membership.
        {
            let stage = ingress.stage_mut(2)?;
            let mut th = Table::new(
                "hash_bf1",
                KeySpec::new(vec![(f.ipv4_src, MatchKind::Ternary)]),
                vec![hash_only(specs[2])],
                4,
            );
            th.set_default_action(0, vec![]);
            stage.add_table(th);
            let mut t = Table::new(
                "bf1",
                KeySpec::new(vec![(c1, MatchKind::Range), (c2, MatchKind::Range)]),
                vec![ActionDef {
                    name: "probe_set".into(),
                    ops: vec![],
                    hash: None,
                    salu: Some(SaluCall {
                        array: 0,
                        addr: Operand::Field(f.scratch),
                        operand: Operand::Const(1),
                        instr: SaluInstr {
                            cond: SaluCond::Always,
                            update_true: Some(SaluExpr::MemOrOp),
                            update_false: None,
                            output: SaluOutput::OldMem,
                        },
                        alt_instr: None,
                        select_flag: None,
                        output: Some(b1),
                    }),
                }],
                4,
            );
            t.insert(
                rmt_sim::table::EntryHandle(u64::MAX - 1),
                TableEntry {
                    matches: vec![
                        MatchValue::Range { lo: u64::from(threshold), hi: u64::MAX },
                        MatchValue::Range { lo: u64::from(threshold), hi: u64::MAX },
                    ],
                    priority: 0,
                    action: 0,
                    data: vec![],
                },
            )?;
            stage.add_table(t);
            stage.add_array(RegArray::new("bf_row_1", rows as usize));
        }
        // Stage 3: BF row 2 probe+set; the old bit lands in b2.
        {
            let stage = ingress.stage_mut(3)?;
            let mut th = Table::new(
                "hash_bf2",
                KeySpec::new(vec![(f.ipv4_src, MatchKind::Ternary)]),
                vec![hash_only(specs[3])],
                4,
            );
            th.set_default_action(0, vec![]);
            stage.add_table(th);
            let mut t = Table::new(
                "bf2",
                KeySpec::new(vec![(c1, MatchKind::Range), (c2, MatchKind::Range)]),
                vec![ActionDef {
                    name: "probe_set2".into(),
                    ops: vec![],
                    hash: None,
                    salu: Some(SaluCall {
                        array: 0,
                        addr: Operand::Field(f.scratch),
                        operand: Operand::Const(1),
                        instr: SaluInstr {
                            cond: SaluCond::Always,
                            update_true: Some(SaluExpr::MemOrOp),
                            update_false: None,
                            output: SaluOutput::OldMem,
                        },
                        alt_instr: None,
                        select_flag: None,
                        output: Some(b2),
                    }),
                }],
                4,
            );
            t.insert(
                rmt_sim::table::EntryHandle(u64::MAX - 2),
                TableEntry {
                    matches: vec![
                        MatchValue::Range { lo: u64::from(threshold), hi: u64::MAX },
                        MatchValue::Range { lo: u64::from(threshold), hi: u64::MAX },
                    ],
                    priority: 0,
                    action: 0,
                    data: vec![],
                },
            )?;
            stage.add_table(t);
            stage.add_array(RegArray::new("bf_row_2", rows as usize));
        }
        // Stage 4: report the first sighting — either Bloom row was clear
        // (the second row rescues row-1 false positives, Figure 17).
        {
            let stage = ingress.stage_mut(4)?;
            let mut t = Table::new(
                "report",
                KeySpec::new(vec![
                    (c1, MatchKind::Range),
                    (c2, MatchKind::Range),
                    (b1, MatchKind::Exact),
                    (b2, MatchKind::Exact),
                ]),
                vec![ActionDef {
                    name: "mark_report".into(),
                    ops: vec![VliwOp::set(intr.report_flag, Operand::Const(1))],
                    hash: None,
                    salu: None,
                }],
                4,
            );
            let thr = MatchValue::Range { lo: u64::from(threshold), hi: u64::MAX };
            for (b1v, b2v, prio) in [(Some(0u64), None, 1), (None, Some(0u64), 0)] {
                t.insert(
                    rmt_sim::table::EntryHandle(u64::MAX - 3 - prio as u64),
                    TableEntry {
                        matches: vec![
                            thr,
                            thr,
                            b1v.map(MatchValue::Exact).unwrap_or(MatchValue::Ternary { value: 0, mask: 0 }),
                            b2v.map(MatchValue::Exact).unwrap_or(MatchValue::Ternary { value: 0, mask: 0 }),
                        ],
                        priority: prio,
                        action: 0,
                        data: vec![],
                    },
                )?;
            }
            stage.add_table(t);
        }

        let mut switch = Switch::assemble(SwitchConfig::default(), ft, parser, ingress, egress);
        switch.set_strip_on_emit(vec![f.rc_valid]);
        switch.provision()?;
        Ok(NativeHh { switch })
    }
}

/// A plain forwarding switch (the Figure 13(a) contrast program): every
/// IPv4 packet goes to a fixed port.
pub fn native_forwarder(out_port: u16) -> SimResult<Switch> {
    let (ft, parser, f) = fields::build()?;
    let intr = ft.intrinsics();
    let limits = StageLimits::default();
    let mut ingress = Pipeline::new(Gress::Ingress, 1, limits);
    let egress = Pipeline::new(Gress::Egress, 1, limits);
    let mut t = Table::new(
        "fwd",
        KeySpec::new(vec![(f.ipv4_dst, MatchKind::Ternary)]),
        vec![ActionDef {
            name: "to_port".into(),
            ops: vec![
                VliwOp::set(intr.egress_spec, Operand::Arg(0)),
                VliwOp::set(intr.egress_valid, Operand::Const(1)),
            ],
            hash: None,
            salu: None,
        }],
        16,
    );
    t.set_default_action(0, vec![u64::from(out_port)]);
    ingress.stage_mut(0)?.add_table(t);
    let mut switch = Switch::assemble(SwitchConfig::default(), ft, parser, ingress, egress);
    switch.set_strip_on_emit(vec![f.rc_valid]);
    switch.provision()?;
    Ok(switch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpkt::{CacheOp, ParsedPacket};

    fn cache_frame(op: CacheOp, key: u64, value: u32) -> Vec<u8> {
        let flows = traffic_free_flow();
        traffic_free_nc_frame(&flows, op, key, value)
    }

    // Local frame builders (the traffic crate depends on nothing here, and
    // baselines must not depend on traffic).
    fn traffic_free_flow() -> netpkt::FiveTuple {
        netpkt::FiveTuple {
            src_addr: std::net::Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: std::net::Ipv4Addr::new(10, 0, 0, 2),
            src_port: 4000,
            dst_port: netpkt::NETCACHE_PORT,
            protocol: 17,
        }
    }

    fn traffic_free_nc_frame(t: &netpkt::FiveTuple, op: CacheOp, key: u64, value: u32) -> Vec<u8> {
        ParsedPacket {
            ethernet: netpkt::EthernetRepr {
                dst: netpkt::Mac([1; 6]),
                src: netpkt::Mac([2; 6]),
                ethertype: netpkt::EtherType::Ipv4,
            },
            ipv4: Some(netpkt::Ipv4Repr {
                src_addr: t.src_addr,
                dst_addr: t.dst_addr,
                protocol: netpkt::IpProtocol::Udp,
                ttl: 64,
                dscp: 0,
                ecn: 0,
            }),
            udp: Some(netpkt::UdpRepr { src_port: t.src_port, dst_port: t.dst_port }),
            tcp: None,
            netcache: Some(netpkt::NetCacheRepr { op, key, value }),
            payload_len: 0,
        }
        .emit()
    }

    #[test]
    fn native_cache_serves_hits_and_misses() {
        let mut nc = NativeCache::build(&[(0x8888, 512)], 32).unwrap();
        // Write.
        let out = nc.switch.process_frame(0, &cache_frame(CacheOp::Write, 0x8888, 777)).unwrap();
        assert!(out.dropped);
        assert_eq!(nc.read_bucket(512).unwrap(), 777);
        // Read hit reflects with the value.
        let out = nc.switch.process_frame(5, &cache_frame(CacheOp::Read, 0x8888, 0)).unwrap();
        assert_eq!(out.emitted[0].0, 5);
        let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
        assert_eq!(reply.netcache.unwrap().value, 777);
        // Miss forwards to the server.
        let out = nc.switch.process_frame(5, &cache_frame(CacheOp::Read, 0x9999, 0)).unwrap();
        assert_eq!(out.emitted[0].0, 32);
    }

    #[test]
    fn native_lb_spreads_and_rewrites() {
        let mut lb = NativeLb::build(16).unwrap();
        for i in 0..16 {
            lb.set_bucket(i, (i % 2) as u16, 0x0a00_0a00 + i).unwrap();
        }
        let mut ports_seen = std::collections::HashSet::new();
        for n in 0..32u16 {
            let t = netpkt::FiveTuple {
                src_addr: std::net::Ipv4Addr::new(10, 1, 0, (n % 250 + 1) as u8),
                dst_addr: std::net::Ipv4Addr::new(10, 9, 9, 9),
                src_port: 10_000 + n,
                dst_port: 80,
                protocol: 17,
            };
            let frame = {
                let mut p = ParsedPacket::parse(&traffic_free_nc_frame(&t, CacheOp::Read, 0, 0)).unwrap();
                p.netcache = None;
                p.payload_len = 10;
                p.emit()
            };
            let out = lb.switch.process_frame(0, &frame).unwrap();
            assert_eq!(out.emitted.len(), 1);
            ports_seen.insert(out.emitted[0].0);
            // DIP rewritten into the pool range.
            let fwd = ParsedPacket::parse(&out.emitted[0].1).unwrap();
            let dst = u32::from_be_bytes(fwd.ipv4.unwrap().dst_addr.octets());
            assert_eq!(dst & 0xffff_f000, 0x0a00_0000, "dst {dst:#x} from the DIP pool");
        }
        assert_eq!(ports_seen.len(), 2, "both ports used");
    }

    #[test]
    fn native_hh_reports_exactly_once_per_heavy_flow() {
        let mut hh = NativeHh::build(1024, 10).unwrap();
        // Plain UDP flow (not the cache port — port 7777 would require a
        // cache header for the parser to accept the packet).
        let t = netpkt::FiveTuple { dst_port: 5353, ..traffic_free_flow() };
        let frame = {
            let mut p = ParsedPacket::parse(&traffic_free_nc_frame(&t, CacheOp::Read, 0, 0)).unwrap();
            p.netcache = None;
            p.payload_len = 0;
            p.emit()
        };
        let mut reports = 0;
        for _ in 0..50 {
            let out = hh.switch.process_frame(0, &frame).unwrap();
            reports += out.reports.len();
        }
        assert_eq!(reports, 1, "reported exactly once after crossing the threshold");
    }

    #[test]
    fn forwarder_forwards_everything() {
        let mut sw = native_forwarder(9).unwrap();
        let t = traffic_free_flow();
        let frame = traffic_free_nc_frame(&t, CacheOp::Read, 0, 0);
        let out = sw.process_frame(0, &frame).unwrap();
        assert_eq!(out.emitted[0].0, 9);
    }

    #[test]
    fn conventional_deployment_is_orders_slower() {
        let t = ConventionalTiming::default();
        assert!(t.deployment_delay(true).as_secs_f64() >= 5.0);
        assert!(t.deployment_delay(false).as_secs_f64() >= 100.0);
    }
}

#[cfg(test)]
mod debug_probe {
    use super::*;
    use netpkt::ParsedPacket;

    #[test]
    fn probe_hh_counters() {
        let mut hh = NativeHh::build(1024, 3).unwrap();
        let t = netpkt::FiveTuple {
            src_addr: std::net::Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: std::net::Ipv4Addr::new(10, 0, 0, 2),
            src_port: 4000,
            dst_port: 80,
            protocol: 17,
        };
        let frame = ParsedPacket {
            ethernet: netpkt::EthernetRepr { dst: netpkt::Mac([1;6]), src: netpkt::Mac([2;6]), ethertype: netpkt::EtherType::Ipv4 },
            ipv4: Some(netpkt::Ipv4Repr { src_addr: t.src_addr, dst_addr: t.dst_addr, protocol: netpkt::IpProtocol::Udp, ttl: 64, dscp: 0, ecn: 0 }),
            udp: Some(netpkt::UdpRepr { src_port: t.src_port, dst_port: t.dst_port }),
            tcp: None,
            netcache: None,
            payload_len: 0,
        }.emit();
        let ftab = hh.switch.field_table();
        let c1 = ftab.lookup("hhmeta.c1").unwrap();
        let c2 = ftab.lookup("hhmeta.c2").unwrap();
        let b1 = ftab.lookup("hhmeta.b1").unwrap();
        for i in 0..6 {
            let out = hh.switch.process_frame(0, &frame).unwrap();
            println!("pkt {i}: c1={} c2={} b1={} reports={}", out.phv.get(c1), out.phv.get(c2), out.phv.get(b1), out.reports.len());
        }
    }
}
