//! ActiveRMT baseline (Das & Snoeren, SIGCOMM '23).
//!
//! ActiveRMT runs *active programs* — capsule-carried instruction sequences
//! — over a memory-centric data plane: every stage exposes a register
//! array, and allocation is purely about assigning memory objects to
//! stages. Reproduced here:
//!
//! * the **fair worst-fit allocator with elastic remapping**: candidate
//!   stage combinations are scored by free memory (worst-fit); when space
//!   runs out, *elastic* programs' allocations are halved and remapped —
//!   a pass whose cost scans every installed program, which is why
//!   ActiveRMT's allocation delay grows with the number of allocated
//!   programs and with finer memory granularity (Figure 7);
//! * the **update-delay model**: installing an active program rewrites
//!   per-stage instruction memory and initializes its memory objects, a
//!   roughly constant ≈200 ms (Table 1's `*` rows) plus remap traffic;
//! * the **data plane profile** for the resource/power comparison
//!   (Figure 10, Table 2): 24 gress-stages of instruction tables + maxed
//!   register memory and SALUs, plus the capsule-header throughput tax.

use rmt_sim::clock::Nanos;
use rmt_sim::error::SimResult;
use rmt_sim::phv::FieldTable;
use rmt_sim::pipeline::{Gress, Pipeline, StageLimits};
use rmt_sim::resources::ChipReport;
use rmt_sim::salu::RegArray;
use rmt_sim::table::{KeySpec, MatchKind, Table};
use rmt_sim::action::{ActionDef, AluFunc, Operand, VliwOp};
use std::time::{Duration, Instant};

/// Stages available to active programs (the ActiveRMT prototype spans both
/// gresses of its Tofino).
pub const ACTIVE_STAGES: usize = 20;
/// Register-array buckets per stage (matched to the paper's comparison
/// setup: "we enable ActiveRMT's least constraint allocation model with a
/// memory size of 65,536").
pub const STAGE_MEM: u32 = 65_536;
/// The capsule header prepended to every packet (instruction stream +
/// arguments) — ActiveRMT's per-packet overhead.
pub const CAPSULE_BYTES: usize = 44;

/// A memory demand presented by one active program.
#[derive(Debug, Clone, Copy)]
pub struct ActiveDemand {
    /// Total buckets requested.
    pub mem: u32,
    /// Distinct memory accesses (objects placed in distinct stages).
    pub accesses: usize,
    /// Elastic programs may be shrunk to make room for newcomers.
    pub elastic: bool,
}

/// One installed program's placement.
#[derive(Debug, Clone)]
struct ActiveAlloc {
    #[allow(dead_code)]
    id: u64,
    /// `(stage, buckets)` spans.
    spans: Vec<(usize, u32)>,
    elastic: bool,
}

/// Outcome of one allocation attempt.
#[derive(Debug, Clone)]
pub struct ActiveReport {
    /// Id.
    pub id: u64,
    /// Wall-clock allocation-scheme computation.
    pub alloc_wall: Duration,
    /// Modeled data plane update latency.
    pub update_delay: Nanos,
    /// Buckets moved while remapping elastic programs.
    pub remapped_buckets: u64,
}

/// The fair worst-fit allocator.
#[derive(Debug, Clone)]
pub struct ActiveRmtAllocator {
    free: Vec<u32>,
    progs: Vec<ActiveAlloc>,
    next_id: u64,
    /// Allocation granularity in buckets (finer granularity → more
    /// candidate work, Figure 7(b)).
    pub granularity: u32,
}

impl Default for ActiveRmtAllocator {
    fn default() -> Self {
        ActiveRmtAllocator::new(256)
    }
}

impl ActiveRmtAllocator {
    /// Construct with defaults appropriate to the type.
    pub fn new(granularity: u32) -> ActiveRmtAllocator {
        ActiveRmtAllocator {
            free: vec![STAGE_MEM; ACTIVE_STAGES],
            progs: Vec::new(),
            next_id: 1,
            granularity: granularity.max(1),
        }
    }

    /// Installed.
    pub fn installed(&self) -> usize {
        self.progs.len()
    }

    /// Memory utilization across all stages.
    pub fn memory_utilization(&self) -> f64 {
        let free: u64 = self.free.iter().map(|&f| u64::from(f)).sum();
        1.0 - free as f64 / (u64::from(STAGE_MEM) * ACTIVE_STAGES as u64) as f64
    }

    fn round_up(&self, v: u32) -> u32 {
        v.div_ceil(self.granularity) * self.granularity
    }

    /// The worst-fit score of a candidate stage set, recomputed by
    /// scanning every installed program (the O(programs) inner loop that
    /// makes ActiveRMT's delay grow, Figure 7(a)).
    fn score(&self, stages: &[usize]) -> u64 {
        let mut score = 0u64;
        for &s in stages {
            // Free memory from first principles: total minus every
            // program's span in this stage.
            let mut used = 0u64;
            for p in &self.progs {
                for (ps, len) in &p.spans {
                    if *ps == s {
                        used += u64::from(*len);
                    }
                }
            }
            score += u64::from(STAGE_MEM).saturating_sub(used);
        }
        score
    }

    /// Try to allocate `demand`. Returns `None` when even elastic
    /// remapping cannot make room.
    pub fn allocate(&mut self, demand: ActiveDemand) -> Option<ActiveReport> {
        let t0 = Instant::now();
        let per_access = self.round_up(demand.mem.div_ceil(demand.accesses.max(1) as u32));
        let mut remapped: u64 = 0;
        // Remapping is speculative: restore everything if the allocation
        // ultimately fails, so a failed newcomer cannot shrink incumbents.
        let snapshot = (self.free.clone(), self.progs.clone());

        loop {
            // Enumerate allocation *strategies*: a stage window × a span
            // size, sizes stepping down from the fair share to the
            // granularity (finer granularity ⇒ more strategies ⇒ slower,
            // Figure 7(b)). Each strategy is scored by the least-constraint
            // model: worst-fit free space minus how much it squeezes the
            // installed elastic programs — recomputed by scanning every
            // program (delay grows with installed count, Figure 7(a)).
            let mut best: Option<(u64, Vec<usize>, u32)> = None;
            if demand.accesses <= ACTIVE_STAGES {
                for start in 0..=(ACTIVE_STAGES - demand.accesses) {
                    let stages: Vec<usize> = (start..start + demand.accesses).collect();
                    // Elastic programs take the worst-fit maximum; the
                    // strategy space steps from that maximum down to the
                    // granularity. Inelastic programs get exactly their
                    // fair share.
                    let window_max = stages.iter().map(|&s| self.free[s]).min().unwrap_or(0)
                        / self.granularity
                        * self.granularity;
                    let top = if demand.elastic { window_max.max(per_access) } else { per_access };
                    let mut size = top.min(window_max);
                    while size >= self.granularity && size >= per_access.min(self.granularity) {
                        if stages.iter().all(|&s| self.free[s] >= size) {
                            // Larger spans strictly preferred (worst-fit);
                            // the least-constraint score breaks ties.
                            let score =
                                (u64::from(size) << 32) | (self.score(&stages) >> 8);
                            if best.as_ref().is_none_or(|(b, _, _)| score > *b) {
                                best = Some((score, stages.clone(), size));
                            }
                        }
                        if !demand.elastic || size <= self.granularity {
                            break;
                        }
                        size -= self.granularity;
                    }
                }
            }
            if let Some((_, stages, size)) = best {
                let id = self.next_id;
                self.next_id += 1;
                let spans: Vec<(usize, u32)> = stages.iter().map(|&s| (s, size)).collect();
                for (s, len) in &spans {
                    self.free[*s] -= *len;
                }
                self.progs.push(ActiveAlloc { id, spans, elastic: demand.elastic });
                let update_delay = self.update_delay_model(demand, remapped);
                return Some(ActiveReport {
                    id,
                    alloc_wall: t0.elapsed(),
                    update_delay,
                    remapped_buckets: remapped,
                });
            }

            // Remap: halve the largest elastic spans until something frees
            // up (fair worst-fit). Scans all programs; repeated rounds make
            // the delay superlinear as the plane fills.
            let mut shrunk = false;
            for p in &mut self.progs {
                if !p.elastic {
                    continue;
                }
                for (s, len) in &mut p.spans {
                    // Halve, rounded to granularity, never below one
                    // granule (the minimum elastic allocation).
                    let take = (*len / 2) / self.granularity * self.granularity;
                    if take > 0 && *len - take >= self.granularity {
                        *len -= take;
                        self.free[*s] += take;
                        remapped += u64::from(take);
                        shrunk = true;
                    }
                }
            }
            if !shrunk {
                let (free, progs) = snapshot;
                self.free = free;
                self.progs = progs;
                return None;
            }
        }
    }

    /// ActiveRMT's update-delay model: installing the capsule program's
    /// instruction image is a near-constant cost (the `*` rows of Table 1
    /// sit at ≈195–230 ms regardless of program), plus memory-object
    /// initialization and any remap traffic.
    fn update_delay_model(&self, demand: ActiveDemand, remapped: u64) -> Nanos {
        let base = Nanos::from_micros(185_000);
        let per_access = Nanos::from_micros(9_000);
        let per_bucket_moved = Nanos(300); // DMA-style rewrite per bucket
        Nanos(
            base.0
                + per_access.0 * demand.accesses as u64
                + per_bucket_moved.0 * remapped,
        )
    }
}

/// Build the ActiveRMT data plane profile for the Figure 10 / Table 2
/// comparison: per gress-stage an instruction table (ternary on the
/// capsule opcode/flags), a maximal register array, and the instruction
/// VLIW repertoire.
pub fn build_profile() -> SimResult<ChipReport> {
    let mut ft = FieldTable::new();
    let opcode = ft.register("capsule.opcode", 8)?;
    let flags = ft.register("capsule.flags", 16)?;
    let arg = ft.register("capsule.arg", 32)?;
    let acc = ft.register("capsule.acc", 32)?;
    // The capsule itself consumes PHV: instruction window + args.
    for i in 0..10 {
        ft.register(&format!("capsule.instr{i}"), 32)?;
    }

    let limits = StageLimits::default();
    let mut ingress = Pipeline::new(Gress::Ingress, 12, limits);
    let mut egress = Pipeline::new(Gress::Egress, 12, limits);

    for pipe in [&mut ingress, &mut egress] {
        for idx in 0..pipe.num_stages() {
            let stage = pipe.stage_mut(idx)?;
            // ~30 active instructions, each a small VLIW program; memory
            // instructions drive the stage SALU.
            let mut actions = Vec::new();
            for i in 0..30 {
                actions.push(ActionDef {
                    name: format!("instr_{i}"),
                    ops: vec![
                        VliwOp { dst: acc, func: AluFunc::Add, a: Operand::Field(acc), b: Operand::Field(arg) },
                        VliwOp::set(arg, Operand::Arg(0)),
                        VliwOp { dst: flags, func: AluFunc::Or, a: Operand::Field(flags), b: Operand::Const(1) },
                    ],
                    hash: Some(rmt_sim::action::HashCall {
                        spec: rmt_sim::hash::CRC16_BUYPASS,
                        input: rmt_sim::action::HashInput::Fields(vec![acc]),
                        dst: arg,
                        mask: None,
                    }),
                    salu: Some(rmt_sim::action::SaluCall {
                        array: 0,
                        addr: Operand::Field(arg),
                        operand: Operand::Field(acc),
                        instr: rmt_sim::salu::SaluInstr::READ,
                        alt_instr: None,
                        select_flag: None,
                        output: Some(acc),
                    }),
                });
            }
            stage.add_table(Table::new(
                format!("active_{idx}"),
                KeySpec::new(vec![(opcode, MatchKind::Ternary), (flags, MatchKind::Ternary)]),
                actions,
                4096,
            ));
            // Two memory objects per stage: double arrays, double SALUs.
            stage.add_array(RegArray::new(format!("obj_a_{idx}"), STAGE_MEM as usize));
            stage.add_array(RegArray::new(format!("obj_b_{idx}"), STAGE_MEM as usize));
        }
    }
    Ok(ChipReport::build(&ft, &ingress, &egress))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(mem: u32) -> ActiveDemand {
        ActiveDemand { mem, accesses: 3, elastic: true }
    }

    #[test]
    fn simple_allocation_succeeds() {
        let mut a = ActiveRmtAllocator::default();
        let r = a.allocate(demand(3 * 256)).unwrap();
        assert_eq!(r.remapped_buckets, 0);
        assert!(a.memory_utilization() > 0.0);
        assert!(r.update_delay.as_millis_f64() > 150.0, "capsule install is heavy");
    }

    #[test]
    fn fills_then_remaps_then_fails() {
        let mut a = ActiveRmtAllocator::new(4096);
        let mut count = 0usize;
        let mut saw_remap = false;
        while let Some(r) = a.allocate(ActiveDemand { mem: 3 * 16384, accesses: 3, elastic: true })
        {
            count += 1;
            saw_remap |= r.remapped_buckets > 0;
            assert!(count < 10_000, "must terminate");
        }
        assert!(count > 10, "many programs fit");
        assert!(saw_remap, "elastic remapping kicked in before failure");
        assert!(a.memory_utilization() > 0.7, "remapping drives utilization high");
    }

    #[test]
    fn inelastic_programs_are_never_shrunk() {
        let mut a = ActiveRmtAllocator::new(STAGE_MEM);
        // Fill every stage window with inelastic programs.
        let mut n = 0;
        while a
            .allocate(ActiveDemand { mem: STAGE_MEM * 3, accesses: 3, elastic: false })
            .is_some()
        {
            n += 1;
        }
        assert!(n > 0);
        let util_before = a.memory_utilization();
        assert!(a.allocate(ActiveDemand { mem: STAGE_MEM * 3, accesses: 3, elastic: false }).is_none());
        assert_eq!(a.memory_utilization(), util_before, "no silent shrinking");
    }

    #[test]
    fn allocation_cost_grows_with_installed_programs() {
        // The paper's Figure 7(a): ActiveRMT's allocation time climbs as
        // programs accumulate. Compare the score-scan work early vs late
        // via wall time over batches.
        let mut a = ActiveRmtAllocator::new(64);
        let mut first = Duration::ZERO;
        let mut last = Duration::ZERO;
        for i in 0..400 {
            match a.allocate(ActiveDemand { mem: 3 * 64, accesses: 3, elastic: true }) {
                Some(r) => {
                    if i < 50 {
                        first += r.alloc_wall;
                    }
                    if i >= 350 {
                        last += r.alloc_wall;
                    }
                }
                None => break,
            }
        }
        assert!(
            last > first,
            "late allocations ({last:?}) should be slower than early ({first:?})"
        );
    }

    #[test]
    fn profile_builds_within_limits() {
        let report = build_profile().unwrap();
        // ActiveRMT's SALU/SRAM-heavy profile.
        let pct = report.utilization_pct();
        let [_phv, _hash, sram, tcam, _vliw, salu, _ltid] = pct;
        assert!(salu >= 50.0, "two memory objects per stage: {salu}");
        assert!(sram > 20.0, "register-heavy: {sram}");
        assert!(tcam < 40.0, "instruction matching is narrow: {tcam}");
    }
}

#[cfg(test)]
mod invariant_tests {
    use super::*;

    #[test]
    fn conservation_at_fine_granularity() {
        let g = 256u32;
        let mut a = ActiveRmtAllocator::new(g);
        let cap = (u64::from(STAGE_MEM) * ACTIVE_STAGES as u64 / u64::from(g)) as usize;
        let mut count = 0usize;
        while a.allocate(ActiveDemand { mem: g, accesses: 1, elastic: true }).is_some() {
            count += 1;
            if count > cap {
                let total_spans: u64 = a
                    .progs
                    .iter()
                    .flat_map(|p| p.spans.iter().map(|(_, l)| u64::from(*l)))
                    .sum();
                let free: u64 = a.free.iter().map(|&f| u64::from(f)).sum();
                panic!(
                    "count {count} > cap {cap}; spans {total_spans} free {free} total {}",
                    u64::from(STAGE_MEM) * ACTIVE_STAGES as u64
                );
            }
        }
        assert!(count <= cap);
    }

    #[test]
    fn free_accounting_never_underflows_single_access() {
        // The fig8 cache workload: accesses = 1, elastic, 256-bucket
        // demand. Run to exhaustion; debug overflow checks catch any
        // accounting slip, and live spans must never exceed capacity.
        let g = 8192u32;
        let mut a = ActiveRmtAllocator::new(g);
        let mut count = 0usize;
        while a.allocate(ActiveDemand { mem: g, accesses: 1, elastic: true }).is_some() {
            count += 1;
            assert!(count <= (u64::from(STAGE_MEM) * ACTIVE_STAGES as u64 / u64::from(g)) as usize,
                "more programs than minimum-size spans can exist");
        }
        let total_spans: u64 = a
            .progs
            .iter()
            .flat_map(|p| p.spans.iter().map(|(_, l)| u64::from(*l)))
            .sum();
        let free: u64 = a.free.iter().map(|&f| u64::from(f)).sum();
        assert_eq!(
            total_spans + free,
            u64::from(STAGE_MEM) * ACTIVE_STAGES as u64,
            "conservation of memory"
        );
    }
}
