//! # baselines — the comparison systems of §6
//!
//! * [`activermt`] — ActiveRMT's memory-centric allocator (fair worst-fit
//!   with elastic remapping), capsule update-delay model, and data plane
//!   resource profile;
//! * [`flymon`] — FlyMon's measurement-task framework (CMU groups, cheap
//!   task reconfiguration, measurement-only scope) and profile;
//! * [`conventional`] — the classic P4 workflow's deployment timeline and
//!   native fixed-function equivalents of the case-study programs.

pub mod activermt;
pub mod conventional;
pub mod flymon;

pub use activermt::{ActiveDemand, ActiveReport, ActiveRmtAllocator};
pub use conventional::{native_forwarder, ConventionalTiming, NativeCache, NativeHh, NativeLb};
pub use flymon::{FlyMon, TaskKind};
