//! The naive reference allocator: the §4.3 branch-and-bound exactly as
//! first written, with `String`-keyed maps cloned per DFS node and no
//! pruning beyond the `x_L` bound.
//!
//! [`crate::alloc`] now solves the same model with interned memory ids, a
//! suffix-capacity prune, free-slot dominance, and memoized infeasible
//! frontiers. This module is kept as the semantic authority: the
//! `alloc_equivalence` proptest suite checks the fast solver against it
//! (same feasibility verdict, no-worse `x_L`), and `bench_controlplane`
//! uses it as the "before" measurement. Select it with
//! [`crate::alloc::AllocConfig::reference`].

use crate::alloc::{AllocConfig, AllocView, Allocation, Objective, SlotReq};
use crate::errors::{CompileError, CompileResult};
use crate::ir::ProgramIr;
use p4rp_dataplane::{LogicalRpb, RpbId, NUM_RPBS};
use std::collections::HashMap;

/// Solve with the reference DFS. Prechecks have already run in
/// `alloc::allocate_slots`; this mirrors the solver half only.
pub(crate) fn solve(
    ir: &ProgramIr,
    reqs: &[SlotReq],
    pairs: &[(usize, usize)],
    view: &AllocView,
    cfg: &AllocConfig,
) -> CompileResult<Allocation> {
    let max_index = LogicalRpb::max_index(cfg.max_recirc);
    let l = reqs.len();

    let mut solver = Solver {
        budget: cfg.node_budget,
        reqs,
        pairs,
        sizes: ir.memories.iter().map(|m| (m.name.clone(), m.size)).collect(),
        max_index,
        te_free: view.te_free.clone(),
        te_used: vec![0; NUM_RPBS],
        mem_free: view.mem_free.clone(),
        mem_placed: HashMap::new(),
        nodes: 0,
    };

    let best = match cfg.objective {
        Objective::LastOnly => solver.search_min_xl(None, None).map(|(x, xl)| (x, f64::from(xl))),
        Objective::Hierarchical => {
            // Phase 1: minimal x_L. Phase 2: maximal x_1 holding x_L.
            match solver.search_min_xl(None, None) {
                None => None,
                Some((x0, xl)) => {
                    let mut best: Option<(Vec<u16>, f64)> = Some((x0, f64::from(xl)));
                    for x1 in (2..=max_index.saturating_sub(l as u16 - 1)).rev() {
                        if let Some((x, got_xl)) = solver.search_min_xl(Some(x1), Some(xl)) {
                            debug_assert!(got_xl <= xl);
                            best = Some((x, f64::from(got_xl)));
                            break;
                        }
                    }
                    best
                }
            }
        }
        Objective::WeightedDiff { alpha, beta } => {
            let mut best: Option<(Vec<u16>, f64)> = None;
            // Larger x_1 reduces the objective; iterate descending so the
            // bound prunes early.
            for x1 in (1..=max_index - (l as u16 - 1)).rev() {
                // Best conceivable for this x_1: x_L = x_1 + L − 1.
                let lower = alpha * f64::from(x1 + l as u16 - 1) - beta * f64::from(x1);
                if let Some((_, score)) = &best {
                    if lower >= *score {
                        continue;
                    }
                }
                if let Some((x, xl)) = solver.search_min_xl(Some(x1), None) {
                    let score = alpha * f64::from(xl) - beta * f64::from(x1);
                    if best.as_ref().is_none_or(|(_, s)| score < *s) {
                        best = Some((x, score));
                    }
                }
            }
            best
        }
        Objective::Ratio => {
            // Nonlinear: full enumeration over x_1, no bound pruning — the
            // deliberate cost the paper measures in Figure 12.
            let mut best: Option<(Vec<u16>, f64)> = None;
            for x1 in 1..=max_index - (l as u16 - 1) {
                if let Some((x, xl)) = solver.search_min_xl(Some(x1), None) {
                    let score = f64::from(xl) / f64::from(x1);
                    if best.as_ref().is_none_or(|(_, s)| score < *s) {
                        best = Some((x, score));
                    }
                }
            }
            best
        }
    };

    let nodes = solver.nodes;
    match best {
        None => Err(CompileError::AllocationFailed {
            reason: format!("no feasible placement for {} levels", l),
        }),
        Some((x, objective_value)) => {
            // Recompute memory placement for the winning assignment.
            let mem_rpb = solver.placement_for(&x);
            let passes = x
                .iter()
                .map(|&xi| LogicalRpb::from_index(xi).pass())
                .max()
                .unwrap_or(0)
                + 1;
            Ok(Allocation { x, mem_rpb, passes, objective_value, nodes_explored: nodes })
        }
    }
}

struct Solver<'a> {
    budget: u64,
    reqs: &'a [SlotReq],
    pairs: &'a [(usize, usize)],
    sizes: HashMap<String, u32>,
    max_index: u16,
    te_free: Vec<usize>,
    te_used: Vec<usize>,
    mem_free: Vec<Vec<u32>>,
    /// vmem → (physical rpb index 0-based, last pass used).
    mem_placed: HashMap<String, (usize, u8)>,
    nodes: u64,
}

impl Solver<'_> {
    /// Branch-and-bound minimizing `x_L`, optionally pinning `x_1` and
    /// bounding `x_L`. Returns the best assignment found.
    fn search_min_xl(&mut self, x1: Option<u16>, xl_cap: Option<u16>) -> Option<(Vec<u16>, u16)> {
        let mut best: Option<(Vec<u16>, u16)> = None;
        let mut x = vec![0u16; self.reqs.len()];
        let mut bound = xl_cap.map(|c| c + 1).unwrap_or(self.max_index + 1);
        let deadline = self.nodes.saturating_add(self.budget);
        self.dfs(0, 0, x1, &mut x, &mut best, &mut bound, deadline);
        best
    }

    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        slot: usize,
        prev: u16,
        x1: Option<u16>,
        x: &mut Vec<u16>,
        best: &mut Option<(Vec<u16>, u16)>,
        bound: &mut u16,
        deadline: u64,
    ) {
        if self.nodes >= deadline {
            return;
        }
        let l = self.reqs.len();
        if slot == l {
            let xl = x[l - 1];
            if best.as_ref().is_none_or(|(_, b)| xl < *b) {
                *best = Some((x.clone(), xl));
                *bound = xl;
            }
            return;
        }
        let remaining = (l - 1 - slot) as u16;
        let lo = if slot == 0 { x1.unwrap_or(1) } else { prev + 1 };
        let hi_struct = self.max_index - remaining;
        // Bound: x_L ≥ x_slot + remaining, so x_slot must stay below
        // bound − remaining to improve.
        let hi_bound = bound.saturating_sub(remaining + 1);
        let hi = hi_struct.min(hi_bound);
        let hi = if slot == 0 && x1.is_some() { lo.min(hi) } else { hi };
        if lo > hi {
            return;
        }
        for cand in lo..=hi {
            if slot == 0 {
                if let Some(pin) = x1 {
                    if cand != pin {
                        continue;
                    }
                }
            }
            self.nodes += 1;
            if let Some(undo) = self.try_place(slot, cand, x) {
                x[slot] = cand;
                self.dfs(slot + 1, cand, x1, x, best, bound, deadline);
                x[slot] = 0;
                self.unplace(undo);
            }
        }
    }

    /// Attempt to place `slot` at logical index `cand`; on success return
    /// the undo record.
    fn try_place(&mut self, slot: usize, cand: u16, x: &[u16]) -> Option<Undo> {
        let req = &self.reqs[slot];
        let logical = LogicalRpb::from_index(cand);
        let rpb = logical.rpb();
        let rpb_idx = usize::from(rpb.0) - 1;
        let pass = logical.pass();

        // (4) forwarding only in ingress RPBs.
        if req.is_forwarding && !rpb.is_ingress() {
            return None;
        }
        // (6) same-pass pairs where this slot is the second element.
        for &(a, b) in self.pairs {
            if b == slot {
                let xa = x[a];
                if xa != 0 && LogicalRpb::from_index(xa).pass() != pass {
                    return None;
                }
            }
        }
        // (2) table entries, cumulative per physical RPB.
        if self.te_used[rpb_idx] + req.entries > self.te_free[rpb_idx] {
            return None;
        }
        // (3)+(5) memory.
        let mut mem_undo: Vec<MemUndo> = Vec::new();
        for vmem in &req.mems {
            match self.mem_placed.get(vmem).copied() {
                Some((placed_rpb, last_pass)) => {
                    // Constraint (5): same physical RPB, strictly later pass.
                    if placed_rpb != rpb_idx || pass <= last_pass {
                        for u in mem_undo.drain(..) {
                            self.undo_mem(u);
                        }
                        return None;
                    }
                    let prev = self.mem_placed.insert(vmem.clone(), (rpb_idx, pass));
                    mem_undo.push(MemUndo::Replaced(vmem.clone(), prev.unwrap()));
                }
                None => {
                    let size = self.sizes[vmem];
                    // First-fit over the free partitions.
                    match self.mem_free[rpb_idx].iter().position(|&p| p >= size) {
                        Some(part) => {
                            self.mem_free[rpb_idx][part] -= size;
                            self.mem_placed.insert(vmem.clone(), (rpb_idx, pass));
                            mem_undo.push(MemUndo::Taken(vmem.clone(), rpb_idx, part, size));
                        }
                        None => {
                            for u in mem_undo.drain(..) {
                                self.undo_mem(u);
                            }
                            return None;
                        }
                    }
                }
            }
        }
        self.te_used[rpb_idx] += req.entries;
        Some(Undo { rpb_idx, entries: req.entries, mem: mem_undo })
    }

    fn unplace(&mut self, undo: Undo) {
        self.te_used[undo.rpb_idx] -= undo.entries;
        for u in undo.mem {
            self.undo_mem(u);
        }
    }

    fn undo_mem(&mut self, u: MemUndo) {
        match u {
            MemUndo::Taken(vmem, rpb, part, size) => {
                self.mem_free[rpb][part] += size;
                self.mem_placed.remove(&vmem);
            }
            MemUndo::Replaced(vmem, prev) => {
                self.mem_placed.insert(vmem, prev);
            }
        }
    }

    /// Reconstruct the vmem → RPB mapping implied by an assignment.
    fn placement_for(&self, x: &[u16]) -> HashMap<String, RpbId> {
        let mut out = HashMap::new();
        for (slot, req) in self.reqs.iter().enumerate() {
            let rpb = LogicalRpb::from_index(x[slot]).rpb();
            for vmem in &req.mems {
                out.entry(vmem.clone()).or_insert(rpb);
            }
        }
        out
    }
}

struct Undo {
    rpb_idx: usize,
    entries: usize,
    mem: Vec<MemUndo>,
}

enum MemUndo {
    Taken(String, usize, usize, u32),
    Replaced(String, (usize, u8)),
}
