//! Compiler errors.

use core::fmt;
use p4rp_lang::LangError;

/// Errors from the runtime compiler (§4.3).
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexing / parsing / semantic check failures.
    Lang(Vec<LangError>),
    /// The translated AST is deeper than the logical RPB space
    /// (`M * (R+1)`).
    /// TooDeep.
    TooDeep { depth: usize, max: usize },
    /// A program needs more conditional-branch state than the 16-bit
    /// branch id can hold.
    /// BranchBitsExhausted.
    BranchBitsExhausted { needed: u32 },
    /// The allocation model is infeasible with current resource usage —
    /// the "allocation failure" outcome of §6.2.2/§6.2.3.
    /// AllocationFailed.
    AllocationFailed { reason: String },
    /// A field name could not be resolved against the provisioned parser.
    UnknownField(String),
    /// A memory identifier was used without an annotation.
    UnknownMemory(String),
    /// Not enough free entries in an initialization-block filter table.
    /// InitTableFull.
    InitTableFull { path: String },
    /// Program id space exhausted.
    ProgramIdsExhausted,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Lang(errs) => {
                write!(f, "language errors:")?;
                for e in errs {
                    write!(f, "\n  {e}")?;
                }
                Ok(())
            }
            CompileError::TooDeep { depth, max } => {
                write!(f, "program depth {depth} exceeds logical RPB space {max}")
            }
            CompileError::BranchBitsExhausted { needed } => {
                write!(f, "program needs {needed} branch bits, only 16 available")
            }
            CompileError::AllocationFailed { reason } => {
                write!(f, "allocation failed: {reason}")
            }
            CompileError::UnknownField(name) => write!(f, "unknown field `{name}`"),
            CompileError::UnknownMemory(name) => write!(f, "unknown memory `{name}`"),
            CompileError::InitTableFull { path } => {
                write!(f, "initialization table for path {path} is full")
            }
            CompileError::ProgramIdsExhausted => write!(f, "no free program ids"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<LangError> for CompileError {
    fn from(e: LangError) -> Self {
        CompileError::Lang(vec![e])
    }
}

impl From<Vec<LangError>> for CompileError {
    fn from(e: Vec<LangError>) -> Self {
        CompileError::Lang(e)
    }
}

/// CompileResult.
pub type CompileResult<T> = Result<T, CompileError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = CompileError::TooDeep { depth: 50, max: 44 };
        assert!(e.to_string().contains("50"));
        let e = CompileError::AllocationFailed { reason: "no memory".into() };
        assert!(e.to_string().contains("no memory"));
    }
}
