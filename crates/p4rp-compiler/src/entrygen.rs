//! Entry generation: resolve a lowered, allocated program into the
//! concrete table entries it installs.
//!
//! Inputs: the [`ProgramIr`], the [`Allocation`] (logical RPB per level),
//! the physical memory offsets the resource manager granted, the assigned
//! program id, and the provisioned field universe. Output: a
//! [`ProgramImage`] — everything needed to install, monitor, and later
//! revoke the program.

use crate::alloc::Allocation;
use crate::errors::{CompileError, CompileResult};
use crate::ir::{IrOp, MemDecl, PlacedOp, ProgramIr};
use p4rp_dataplane::LogicalRpb;
use p4rp_dataplane::{init, FilterEntrySpec, P4rpFields, RpbEntrySpec, RpbId, RpbOp};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A granted physical memory region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRegion {
    /// Human-readable name.
    pub name: String,
    /// Rpb.
    pub rpb: RpbId,
    /// First bucket of the region.
    pub offset: u32,
    /// Buckets.
    pub size: u32,
}

/// The installable image of one program.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    /// Prog id.
    pub prog_id: u16,
    /// Human-readable name.
    pub name: String,
    /// RPB entries: `(physical RPB, entry spec)`.
    pub rpb_entries: Vec<(RpbId, RpbEntrySpec)>,
    /// The initialization-block filter entry.
    pub filter: FilterEntrySpec,
    /// Recirculation-block entries to install (`recirc_id` values).
    pub recirc_ids: Vec<u8>,
    /// Granted memory regions.
    pub mem_regions: Vec<MemRegion>,
    /// Pipeline passes the program needs.
    pub passes: u8,
}

impl ProgramImage {
    /// Total data plane entries (for update-delay accounting, Table 1).
    pub fn entry_count(&self) -> usize {
        self.rpb_entries.len() + 1 + self.recirc_ids.len()
    }
}

/// Generate the image of an allocated program.
pub fn generate(
    ir: &ProgramIr,
    alloc: &Allocation,
    offsets: &HashMap<String, (RpbId, u32)>,
    prog_id: u16,
    fields: &P4rpFields,
    ft_universe: &rmt_sim::phv::FieldTable,
) -> CompileResult<ProgramImage> {
    let rpb_entries = body_entries(ir, alloc, offsets, prog_id, fields)?;
    assemble(ir, alloc, offsets, prog_id, fields, ft_universe, rpb_entries)
}

/// The RPB-entry half of [`generate`] (everything the shape cache covers).
fn body_entries(
    ir: &ProgramIr,
    alloc: &Allocation,
    offsets: &HashMap<String, (RpbId, u32)>,
    prog_id: u16,
    fields: &P4rpFields,
) -> CompileResult<Vec<(RpbId, RpbEntrySpec)>> {
    let sizes: HashMap<&str, u32> =
        ir.memories.iter().map(|m| (m.name.as_str(), m.size)).collect();

    let mut rpb_entries = Vec::new();
    for (level_idx, level) in ir.levels.iter().enumerate() {
        let logical = LogicalRpb::from_index(alloc.x[level_idx]);
        let rpb = logical.rpb();
        let pass = logical.pass();
        for placed in level {
            let op = match resolve_op(&placed.op, offsets, &sizes, fields)? {
                Some(op) => op,
                None => continue, // NOP padding installs nothing
            };
            rpb_entries.push((
                rpb,
                RpbEntrySpec {
                    prog_id,
                    branch: placed.branch,
                    recirc_id: pass,
                    regs: placed.regs,
                    priority: placed.priority,
                    op,
                },
            ));
        }
    }
    Ok(rpb_entries)
}

/// The instance-specific half of [`generate`]: filter entry, memory
/// regions, recirculation ids.
fn assemble(
    ir: &ProgramIr,
    alloc: &Allocation,
    offsets: &HashMap<String, (RpbId, u32)>,
    prog_id: u16,
    fields: &P4rpFields,
    ft_universe: &rmt_sim::phv::FieldTable,
    rpb_entries: Vec<(RpbId, RpbEntrySpec)>,
) -> CompileResult<ProgramImage> {
    // The program's filter entry for the unified initialization table.
    let mut conds = Vec::new();
    let mut required_bitmap = 0u16;
    for (name, value, mask) in &ir.filters {
        if !init::supports_field(ft_universe, fields, name) {
            return Err(CompileError::UnknownField(format!(
                "filter field `{name}` is not in the initialization table key"
            )));
        }
        let id = fields
            .lookup(name)
            .ok_or_else(|| CompileError::UnknownField(name.clone()))?;
        required_bitmap |= init::required_bits(name);
        conds.push((id, *value, *mask));
    }
    let filter = FilterEntrySpec { prog_id, required_bitmap, conds, priority: 0 };

    let mem_regions = ir
        .memories
        .iter()
        .map(|m| {
            offsets
                .get(&m.name)
                .map(|(rpb, off)| MemRegion {
                    name: m.name.clone(),
                    rpb: *rpb,
                    offset: *off,
                    size: m.size,
                })
                .ok_or_else(|| CompileError::UnknownMemory(m.name.clone()))
        })
        .collect::<CompileResult<Vec<_>>>()?;

    Ok(ProgramImage {
        prog_id,
        name: ir.name.clone(),
        rpb_entries,
        filter,
        recirc_ids: (0..alloc.passes.saturating_sub(1)).collect(),
        mem_regions,
        passes: alloc.passes,
    })
}

/// Memoizes RPB-entry generation across program *shapes*.
///
/// Deploy streams install many instances of one source template (the §6.2
/// workload families): identical levels, memories, and placement; only the
/// name, filter values, program id, and granted memory offsets differ. The
/// cache keys on the shape — `(levels, memories, x)` hashed with FxHash,
/// verified by full equality on hit — and stores the entry list with a
/// neutral program id and zeroed offsets plus the positions to patch, so a
/// hit clones the template and rewrites `prog_id` and the `MemOffset`
/// offsets instead of re-resolving every op. The filter entry and memory
/// regions are always built fresh (they are instance-specific and cheap).
#[derive(Debug, Default)]
pub struct EntryGenCache {
    map: HashMap<u64, CacheEntry>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that built (and stored) a template.
    pub misses: u64,
}

#[derive(Debug)]
struct CacheEntry {
    levels: Vec<Vec<PlacedOp>>,
    memories: Vec<MemDecl>,
    x: Vec<u16>,
    /// Entries with `prog_id = 0` and `MemOffset` offsets zeroed.
    template: Vec<(RpbId, RpbEntrySpec)>,
    /// `(entry index, memory index in `memories`)` of each offset step.
    patches: Vec<(usize, u16)>,
}

/// Templates kept before the cache resets (shapes are few; this is a
/// safety valve, not an expected eviction path).
const CACHE_CAP: usize = 256;

impl EntryGenCache {
    fn shape_key(ir: &ProgramIr, alloc: &Allocation) -> u64 {
        let mut h = rmt_sim::fxhash::FxHasher::default();
        ir.levels.hash(&mut h);
        ir.memories.hash(&mut h);
        alloc.x.hash(&mut h);
        h.finish()
    }
}

/// [`generate`] through the shape cache: bit-identical output, amortized
/// cost for repeated shapes.
pub fn generate_cached(
    cache: &mut EntryGenCache,
    ir: &ProgramIr,
    alloc: &Allocation,
    offsets: &HashMap<String, (RpbId, u32)>,
    prog_id: u16,
    fields: &P4rpFields,
    ft_universe: &rmt_sim::phv::FieldTable,
) -> CompileResult<ProgramImage> {
    let key = EntryGenCache::shape_key(ir, alloc);
    if let Some(e) = cache.map.get(&key) {
        if e.levels == ir.levels && e.memories == ir.memories && e.x == alloc.x {
            let mut rpb_entries = e.template.clone();
            for (_, spec) in &mut rpb_entries {
                spec.prog_id = prog_id;
            }
            for &(k, mi) in &e.patches {
                let name = &e.memories[usize::from(mi)].name;
                let off = offsets
                    .get(name)
                    .ok_or_else(|| CompileError::UnknownMemory(name.clone()))?
                    .1;
                rpb_entries[k].1.op.data[0] = u64::from(off);
            }
            cache.hits += 1;
            return assemble(ir, alloc, offsets, prog_id, fields, ft_universe, rpb_entries);
        }
    }

    let rpb_entries = body_entries(ir, alloc, offsets, prog_id, fields)?;

    // Patch positions: the k-th non-NOP placed op is the k-th entry.
    let mut patches = Vec::new();
    for (k, placed) in
        ir.levels.iter().flatten().filter(|p| p.op != IrOp::Nop).enumerate()
    {
        if let IrOp::MemOffset { mem, .. } = &placed.op {
            let mi = ir
                .memories
                .iter()
                .position(|m| &m.name == mem)
                .expect("offset step references a declared memory") as u16;
            patches.push((k, mi));
        }
    }
    let mut template = rpb_entries.clone();
    for (_, spec) in &mut template {
        spec.prog_id = 0;
    }
    for &(k, _) in &patches {
        template[k].1.op.data[0] = 0;
    }
    if cache.map.len() >= CACHE_CAP {
        cache.map.clear();
    }
    cache.map.insert(
        key,
        CacheEntry {
            levels: ir.levels.clone(),
            memories: ir.memories.clone(),
            x: alloc.x.clone(),
            template,
            patches,
        },
    );
    cache.misses += 1;
    assemble(ir, alloc, offsets, prog_id, fields, ft_universe, rpb_entries)
}

/// Resolve one IR op into a concrete RPB operation. `None` for NOPs.
fn resolve_op(
    op: &IrOp,
    offsets: &HashMap<String, (RpbId, u32)>,
    sizes: &HashMap<&str, u32>,
    fields: &P4rpFields,
) -> CompileResult<Option<RpbOp>> {
    let field = |name: &str| {
        fields
            .lookup(name)
            .ok_or_else(|| CompileError::UnknownField(name.to_string()))
    };
    let offset_of = |mem: &str| {
        offsets
            .get(mem)
            .map(|(_, off)| *off)
            .ok_or_else(|| CompileError::UnknownMemory(mem.to_string()))
    };
    // The mask step truncates the hash output to the virtual memory's
    // width: `size − 1` (size is a power of two, checked upstream).
    let mask_of = |mem: &str| {
        sizes
            .get(mem)
            .map(|s| s - 1)
            .ok_or_else(|| CompileError::UnknownMemory(mem.to_string()))
    };
    Ok(Some(match op {
        IrOp::Extract { field: f, reg } => RpbOp::extract(field(f)?, *reg),
        IrOp::Modify { field: f, reg } => RpbOp::modify(field(f)?, *reg),
        IrOp::HashHar => RpbOp::hash_har(),
        IrOp::Hash5Tuple => RpbOp::hash_5_tuple(),
        IrOp::HashHarMem { mem } => RpbOp::hash_har_mem(mask_of(mem)?),
        IrOp::Hash5TupleMem { mem } => RpbOp::hash_5_tuple_mem(mask_of(mem)?),
        IrOp::SetBranch { bits } => RpbOp::set_branch(*bits),
        IrOp::MemOffset { mem, kind } => RpbOp::mem_offset(offset_of(mem)?, kind.pair().1),
        IrOp::MemAccess { kind, .. } => RpbOp::mem(*kind),
        IrOp::LoadI { reg, imm } => RpbOp::loadi(*reg, *imm),
        IrOp::AluRR { op, a, b } => RpbOp::alu_rr(*op, *a, *b),
        IrOp::Backup { reg, .. } => RpbOp::backup(*reg),
        IrOp::Restore { reg, .. } => RpbOp::restore(*reg),
        IrOp::Forward { port } => RpbOp::forward(*port),
        IrOp::Multicast { group } => RpbOp::multicast(*group),
        IrOp::Drop => RpbOp::drop(),
        IrOp::Return => RpbOp::return_(),
        IrOp::Report => RpbOp::report(),
        IrOp::Nop => return Ok(None),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{allocate, AllocConfig, AllocView};
    use crate::ir::{lower, MemDecl};
    use p4rp_dataplane::{AtomicAction, RPB_MEM_SIZE, RPB_TABLE_SIZE};
    use p4rp_lang::parse;

    fn build_image(src: &str) -> (ProgramIr, Allocation, ProgramImage) {
        let (ft, _, fields) = p4rp_dataplane::fields::build().unwrap();
        let unit = parse(src).unwrap();
        let mems: Vec<MemDecl> = unit
            .annotations
            .iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();
        let ir = lower(&unit.programs[0], &mems).unwrap();
        let view = AllocView::unconstrained(RPB_TABLE_SIZE, RPB_MEM_SIZE);
        let alloc = allocate(&ir, &view, &AllocConfig::default()).unwrap();
        // Grant offsets: each vmem at bucket 4096 of its chosen RPB.
        let offsets: HashMap<String, (RpbId, u32)> = alloc
            .mem_rpb
            .iter()
            .map(|(n, r)| (n.clone(), (*r, 4096u32)))
            .collect();
        let image = generate(&ir, &alloc, &offsets, 7, &fields, &ft).unwrap();
        (ir, alloc, image)
    }

    const LB: &str = r#"
@ dip_pool 1024
@ port_pool 16
program lb(<hdr.ipv4.dst, 10.0.0.0, 0xffff0000>) {
    HASH_5_TUPLE_MEM(port_pool);
    MEMREAD(port_pool);
    BRANCH:
    case(<sar, 0, 0xffffffff>) {
        FORWARD(0);
    };
    case(<sar, 1, 0xffffffff>) {
        FORWARD(1);
    };
    MEMREAD(dip_pool);
    MODIFY(hdr.ipv4.dst, sar);
}
"#;

    #[test]
    fn lb_image_shape() {
        let (ir, alloc, image) = build_image(LB);
        assert_eq!(image.prog_id, 7);
        assert_eq!(image.rpb_entries.len(), ir.rpb_entry_count());
        // ipv4 filter requires the eth + ipv4 parse-path bits.
        assert_eq!(
            image.filter.required_bitmap,
            init::required_bits("hdr.ipv4.dst")
        );
        assert_eq!(image.mem_regions.len(), 2);
        assert_eq!(u32::from(image.passes), u32::from(alloc.passes));
        // No recirculation needed → no recirc entries.
        if image.passes == 1 {
            assert!(image.recirc_ids.is_empty());
        }
        // Hash-to-memory entries carry the size-derived mask.
        let hash = image
            .rpb_entries
            .iter()
            .find(|(_, e)| e.op.action == AtomicAction::Hash5TupleMem)
            .expect("hash op present");
        assert!(hash.1.op.data == vec![1023] || hash.1.op.data == vec![15]);
        // Offset steps carry the granted physical offset.
        let off = image
            .rpb_entries
            .iter()
            .find(|(_, e)| e.op.action == AtomicAction::MemOffset)
            .unwrap();
        assert_eq!(off.1.op.data[0], 4096);
    }

    #[test]
    fn entry_count_matches_components() {
        let (_, _, image) = build_image(LB);
        assert_eq!(
            image.entry_count(),
            image.rpb_entries.len() + 1 + image.recirc_ids.len()
        );
    }

    #[test]
    fn multipass_program_gets_recirc_entries() {
        let src = r#"
@ m 256
program p(<hdr.ipv4.dst, 1, 1>) {
    LOADI(mar, 0);
    MEMREAD(m);
    LOADI(mar, 1);
    MEMWRITE(m);
}
"#;
        let (_, alloc, image) = build_image(src);
        assert_eq!(alloc.passes, 2);
        assert_eq!(image.recirc_ids, vec![0]);
        // Second-pass entries carry recirc_id 1.
        assert!(image.rpb_entries.iter().any(|(_, e)| e.recirc_id == 1));
    }

    #[test]
    fn cached_generation_is_bit_identical() {
        let (ft, _, fields) = p4rp_dataplane::fields::build().unwrap();
        let mut cache = EntryGenCache::default();
        // Two instances of one shape: same body, different name/filter/
        // prog_id/offsets — the second must hit and still patch correctly.
        for (i, (dst, off)) in [("10.0.0.0", 4096u32), ("10.0.1.0", 8192u32)].iter().enumerate() {
            let src = format!(
                "@ m 256\nprogram p{i}(<hdr.ipv4.dst, {dst}, 0xffffff00>) {{ LOADI(mar, 1); MEMADD(m); FORWARD(7); }}"
            );
            let unit = parse(&src).unwrap();
            let mems: Vec<MemDecl> = unit
                .annotations
                .iter()
                .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
                .collect();
            let ir = lower(&unit.programs[0], &mems).unwrap();
            let view = AllocView::unconstrained(RPB_TABLE_SIZE, RPB_MEM_SIZE);
            let alloc = allocate(&ir, &view, &AllocConfig::default()).unwrap();
            let offsets: HashMap<String, (RpbId, u32)> = alloc
                .mem_rpb
                .iter()
                .map(|(n, r)| (n.clone(), (*r, *off)))
                .collect();
            let prog_id = (i + 3) as u16;
            let plain = generate(&ir, &alloc, &offsets, prog_id, &fields, &ft).unwrap();
            let cached =
                generate_cached(&mut cache, &ir, &alloc, &offsets, prog_id, &fields, &ft)
                    .unwrap();
            assert_eq!(plain.rpb_entries, cached.rpb_entries);
            assert_eq!(plain.filter, cached.filter);
            assert_eq!(plain.mem_regions, cached.mem_regions);
            assert_eq!(plain.recirc_ids, cached.recirc_ids);
            // The patched offset really is this instance's grant.
            let offv = cached
                .rpb_entries
                .iter()
                .find(|(_, e)| e.op.action == AtomicAction::MemOffset)
                .unwrap();
            assert_eq!(offv.1.op.data[0], u64::from(*off));
        }
        assert_eq!((cache.misses, cache.hits), (1, 1), "second instance hit the template");
    }

    #[test]
    fn unsupported_filter_field_rejected() {
        let (ft, _, fields) = p4rp_dataplane::fields::build().unwrap();
        let unit = parse("program p(<hdr.ipv4.ttl, 1, 0xff>) { DROP; }").unwrap();
        let ir = lower(&unit.programs[0], &[]).unwrap();
        let view = AllocView::unconstrained(RPB_TABLE_SIZE, RPB_MEM_SIZE);
        let alloc = allocate(&ir, &view, &AllocConfig::default()).unwrap();
        let err = generate(&ir, &alloc, &HashMap::new(), 1, &fields, &ft).unwrap_err();
        assert!(matches!(err, CompileError::UnknownField(_)));
    }
}
