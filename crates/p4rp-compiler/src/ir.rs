//! Lowering: from the parsed AST to the depth-levelled intermediate form
//! the allocator consumes.
//!
//! Four passes, mirroring §4.3 "Primitive Translation":
//!
//! 1. **Pseudo-primitive expansion** (Figure 14) — every pseudo primitive
//!    becomes a sequence of hardware primitives; when a translation needs a
//!    *supportive register* the expander picks a register not used by the
//!    arguments, preferring a dead one (register-lifetime analysis); a live
//!    supportive register is saved to the scratch container before and
//!    restored after (Figure 4(b)).
//! 2. **Address translation insertion** — each memory-access primitive is
//!    prefixed with its offset step (which also sets the SALU flag); the
//!    mask step is fused into the hash-for-memory operations.
//! 3. **Branch-bit allocation** — each `BRANCH` gets a bit range of the
//!    16-bit branch id; a case's condition is a ternary `(value, mask)`
//!    prefix, so primitives after the branch (outer continuation) run for
//!    every outcome while case bodies run only under their label.
//! 4. **Flattening with memory alignment** — primitives become depth
//!    levels; memory accesses to the same virtual memory in sibling cases
//!    are aligned to the same depth by `NOP` padding (Figure 5(b)), because
//!    the hardware cannot access one stage's memory from another.
//!
//! ## Deviation from the paper
//!
//! Figure 14's printed `SUB` translation (`LOADI(C,m); XOR(B,C); ADD(A,B);
//! XOR(B,C); ADD(A,C)`) computes `A + ~B + m ≡ A − B − 2 (mod 2³²)` — off
//! by two. We implement the corrected 6-primitive sequence that reloads
//! `C = 1` before the final add, which computes `A + ~B + 1 = A − B`
//! exactly.

use crate::errors::{CompileError, CompileResult};
use p4rp_dataplane::{AluRROp, MemOpKind};
use p4rp_lang::{Primitive, PrimitiveKind, ProgramDecl, Reg, RegConds};

/// A referenced virtual memory block.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemDecl {
    /// Human-readable name.
    pub name: String,
    /// Buckets (32-bit words); power of two.
    pub size: u32,
}

/// Lowered hardware operations (a subset of the atomic actions, still with
/// symbolic field / memory names — resolution happens at entry generation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IrOp {
    /// Extract.
    Extract { field: String, reg: Reg },
    /// Modify.
    Modify { field: String, reg: Reg },
    /// HashHar.
    HashHar,
    /// Hash5Tuple.
    Hash5Tuple,
    /// HashHarMem.
    HashHarMem { mem: String },
    /// Hash5TupleMem.
    Hash5TupleMem { mem: String },
    /// OR `bits` into the branch id (one per case of a BRANCH).
    /// SetBranch.
    SetBranch { bits: u16 },
    /// Offset step: pma = mar + offset(mem); salu_flag per `kind`.
    /// MemOffset.
    MemOffset { mem: String, kind: MemOpKind },
    /// MemAccess.
    MemAccess { mem: String, kind: MemOpKind },
    /// LoadI.
    LoadI { reg: Reg, imm: u32 },
    /// AluRR.
    AluRR { op: AluRROp, a: Reg, b: Reg },
    /// Save the supportive register to scratch; `pair` links to the restore.
    /// Backup.
    Backup { reg: Reg, pair: u32 },
    /// Restore.
    Restore { reg: Reg, pair: u32 },
    /// Forward.
    Forward { port: u16 },
    /// Multicast.
    Multicast { group: u16 },
    /// Drop.
    Drop,
    /// Return.
    Return,
    /// Report.
    Report,
    /// Nop.
    Nop,
}

impl IrOp {
    /// Is forwarding.
    pub fn is_forwarding(&self) -> bool {
        matches!(
            self,
            IrOp::Forward { .. } | IrOp::Multicast { .. } | IrOp::Drop | IrOp::Return | IrOp::Report
        )
    }

    /// Mem access.
    pub fn mem_access(&self) -> Option<&str> {
        match self {
            IrOp::MemAccess { mem, .. } => Some(mem),
            _ => None,
        }
    }
}

/// One operation placed at a depth level, with its execution condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlacedOp {
    /// Branch condition `(value, mask)` under which this op executes.
    pub branch: (u16, u16),
    /// Register conditions (SetBranch entries only).
    pub regs: RegConds,
    /// Entry priority (case order within a BRANCH).
    pub priority: i32,
    /// Op.
    pub op: IrOp,
}

impl PlacedOp {
    fn plain(branch: (u16, u16), op: IrOp) -> PlacedOp {
        PlacedOp { branch, regs: RegConds::default(), priority: 0, op }
    }
}

/// The lowered program: depth levels of placed operations.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramIr {
    /// Human-readable name.
    pub name: String,
    /// `(field name, value, mask)` filters.
    pub filters: Vec<(String, u64, u64)>,
    /// Referenced memories with sizes.
    pub memories: Vec<MemDecl>,
    /// Depth levels (index 0 = depth 1 in the paper's notation).
    pub levels: Vec<Vec<PlacedOp>>,
}

impl ProgramIr {
    /// Program depth `L`.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Memory size.
    pub fn memory_size(&self, name: &str) -> Option<u32> {
        self.memories.iter().find(|m| m.name == name).map(|m| m.size)
    }

    /// Count the table entries this program will install into RPBs
    /// (everything except NOP padding).
    pub fn rpb_entry_count(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .filter(|p| p.op != IrOp::Nop)
            .count()
    }
}

/// Lower one program declaration. `memories` is the annotation list of the
/// enclosing source unit.
pub fn lower(prog: &ProgramDecl, memories: &[MemDecl]) -> CompileResult<ProgramIr> {
    let referenced = prog.referenced_memories();
    let mut mems = Vec::new();
    for name in &referenced {
        match memories.iter().find(|m| &m.name == name) {
            Some(m) => mems.push(m.clone()),
            None => return Err(CompileError::UnknownMemory(name.clone())),
        }
    }

    let mut ctx = Lowering { bit_cursor: 0, pair_cursor: 0 };
    let low = ctx.expand_body(&prog.body, &[])?;
    let levels = ctx.flatten(&low, (0, 0))?;

    Ok(ProgramIr {
        name: prog.name.clone(),
        filters: prog.filters.iter().map(|f| (f.field.clone(), f.value, f.mask)).collect(),
        memories: mems,
        levels,
    })
}

/// Expanded (pseudo-free) program tree.
#[derive(Debug, Clone)]
enum LowPrim {
    Op(IrOp),
    Branch { cases: Vec<LowCase> },
}

#[derive(Debug, Clone)]
struct LowCase {
    conds: RegConds,
    body: Vec<LowPrim>,
}

struct Lowering {
    bit_cursor: u32,
    pair_cursor: u32,
}

const REG_MAX: u32 = u32::MAX;

impl Lowering {
    /// Pass 1+2: expand pseudo primitives and insert offset steps.
    /// `outer_cont` is the continuation after the current body (for
    /// register-lifetime analysis across case boundaries).
    fn expand_body(
        &mut self,
        body: &[Primitive],
        outer_cont: &[&Primitive],
    ) -> CompileResult<Vec<LowPrim>> {
        let mut out = Vec::new();
        for (i, prim) in body.iter().enumerate() {
            // Continuation seen from just after this primitive.
            let cont: Vec<&Primitive> =
                body[i + 1..].iter().chain(outer_cont.iter().copied()).collect();
            match &prim.kind {
                PrimitiveKind::Branch { cases } => {
                    let mut low_cases = Vec::new();
                    for case in cases {
                        low_cases.push(LowCase {
                            conds: case.conds,
                            body: self.expand_body(&case.body, &cont)?,
                        });
                    }
                    out.push(LowPrim::Branch { cases: low_cases });
                }
                other => {
                    for op in self.expand_prim(other, &cont) {
                        out.push(LowPrim::Op(op));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Expand one non-branch primitive into hardware operations.
    fn expand_prim(&mut self, kind: &PrimitiveKind, cont: &[&Primitive]) -> Vec<IrOp> {
        use IrOp as O;
        match kind {
            PrimitiveKind::Extract { field, reg } => {
                vec![O::Extract { field: field.clone(), reg: *reg }]
            }
            PrimitiveKind::Modify { field, reg } => {
                vec![O::Modify { field: field.clone(), reg: *reg }]
            }
            PrimitiveKind::Hash5Tuple => vec![O::Hash5Tuple],
            PrimitiveKind::Hash => vec![O::HashHar],
            PrimitiveKind::Hash5TupleMem { mem } => vec![O::Hash5TupleMem { mem: mem.clone() }],
            PrimitiveKind::HashMem { mem } => vec![O::HashHarMem { mem: mem.clone() }],
            PrimitiveKind::MemAdd { mem } => self.mem_pair(mem, MemOpKind::Add),
            PrimitiveKind::MemSub { mem } => self.mem_pair(mem, MemOpKind::Sub),
            PrimitiveKind::MemAnd { mem } => self.mem_pair(mem, MemOpKind::And),
            PrimitiveKind::MemOr { mem } => self.mem_pair(mem, MemOpKind::Or),
            PrimitiveKind::MemRead { mem } => self.mem_pair(mem, MemOpKind::Read),
            PrimitiveKind::MemWrite { mem } => self.mem_pair(mem, MemOpKind::Write),
            PrimitiveKind::MemMax { mem } => self.mem_pair(mem, MemOpKind::Max),
            PrimitiveKind::LoadI { reg, imm } => vec![O::LoadI { reg: *reg, imm: *imm }],
            PrimitiveKind::Add { a, b } => vec![alu(AluRROp::Add, *a, *b)],
            PrimitiveKind::And { a, b } => vec![alu(AluRROp::And, *a, *b)],
            PrimitiveKind::Or { a, b } => vec![alu(AluRROp::Or, *a, *b)],
            PrimitiveKind::Max { a, b } => vec![alu(AluRROp::Max, *a, *b)],
            PrimitiveKind::Min { a, b } => vec![alu(AluRROp::Min, *a, *b)],
            PrimitiveKind::Xor { a, b } => vec![alu(AluRROp::Xor, *a, *b)],
            // Pseudo primitives (Figure 14).
            PrimitiveKind::Move { a, b } => {
                vec![O::LoadI { reg: *a, imm: 0 }, alu(AluRROp::Add, *a, *b)]
            }
            PrimitiveKind::Equal { a, b } => vec![alu(AluRROp::Xor, *a, *b)],
            PrimitiveKind::Sgt { a, b } => {
                vec![alu(AluRROp::Min, *a, *b), alu(AluRROp::Xor, *a, *b)]
            }
            PrimitiveKind::Slt { a, b } => {
                vec![alu(AluRROp::Max, *a, *b), alu(AluRROp::Xor, *a, *b)]
            }
            PrimitiveKind::AddI { reg, imm } => self.imm_expand(AluRROp::Add, *reg, *imm, cont),
            PrimitiveKind::AndI { reg, imm } => self.imm_expand(AluRROp::And, *reg, *imm, cont),
            PrimitiveKind::XorI { reg, imm } => self.imm_expand(AluRROp::Xor, *reg, *imm, cont),
            PrimitiveKind::SubI { reg, imm } => {
                // SUBI(A, i) = LOADI(C, m−i+1); ADD(A, C) — the two's
                // complement of i, computable by the control plane.
                self.imm_expand(AluRROp::Add, *reg, (*imm).wrapping_neg(), cont)
            }
            PrimitiveKind::Not { reg } => {
                self.imm_expand(AluRROp::Xor, *reg, REG_MAX, cont)
            }
            PrimitiveKind::Sub { a, b } => {
                // Corrected Figure 14 translation (see module docs):
                // C = m; B ^= C (→ ~B); A += B; B ^= C (restore);
                // C = 1; A += C.
                let c = supportive(&[*a, *b]);
                let seq = vec![
                    O::LoadI { reg: c, imm: REG_MAX },
                    alu(AluRROp::Xor, *b, c),
                    alu(AluRROp::Add, *a, *b),
                    alu(AluRROp::Xor, *b, c),
                    O::LoadI { reg: c, imm: 1 },
                    alu(AluRROp::Add, *a, c),
                ];
                self.wrap_backup(c, seq, cont)
            }
            PrimitiveKind::Forward { port } => vec![O::Forward { port: *port }],
            PrimitiveKind::Multicast { group } => vec![O::Multicast { group: *group }],
            PrimitiveKind::Drop => vec![O::Drop],
            PrimitiveKind::Return => vec![O::Return],
            PrimitiveKind::Report => vec![O::Report],
            PrimitiveKind::Nop => vec![O::Nop],
            PrimitiveKind::Branch { .. } => unreachable!("handled by expand_body"),
        }
    }

    fn mem_pair(&mut self, mem: &str, kind: MemOpKind) -> Vec<IrOp> {
        vec![
            IrOp::MemOffset { mem: mem.to_string(), kind },
            IrOp::MemAccess { mem: mem.to_string(), kind },
        ]
    }

    /// `A = op(A, immediate)` via a supportive register.
    fn imm_expand(&mut self, op: AluRROp, a: Reg, imm: u32, cont: &[&Primitive]) -> Vec<IrOp> {
        let c = pick_supportive(&[a], cont);
        let seq = vec![IrOp::LoadI { reg: c, imm }, alu(op, a, c)];
        self.wrap_backup(c, seq, cont)
    }

    /// Backup/restore the supportive register around `seq` unless the
    /// register-lifetime analysis proves it dead (§4.2).
    fn wrap_backup(&mut self, c: Reg, seq: Vec<IrOp>, cont: &[&Primitive]) -> Vec<IrOp> {
        if !is_live(c, cont) {
            return seq;
        }
        let pair = self.pair_cursor;
        self.pair_cursor += 1;
        let mut out = Vec::with_capacity(seq.len() + 2);
        out.push(IrOp::Backup { reg: c, pair });
        out.extend(seq);
        out.push(IrOp::Restore { reg: c, pair });
        out
    }

    /// Passes 3+4: branch bits, depth levels, memory alignment.
    fn flatten(&mut self, body: &[LowPrim], cond: (u16, u16)) -> CompileResult<Vec<Vec<PlacedOp>>> {
        let mut levels: Vec<Vec<PlacedOp>> = Vec::new();
        let mut idx = 0usize;
        while idx < body.len() {
            let prim = &body[idx];
            idx += 1;
            match prim {
                LowPrim::Op(op) => {
                    levels.push(vec![PlacedOp::plain(cond, op.clone())]);
                }
                LowPrim::Branch { cases } => {
                    let n = cases.len() as u32;
                    let width = 32 - n.leading_zeros(); // bits for labels 1..=n
                    let offset = self.bit_cursor;
                    self.bit_cursor += width;
                    if self.bit_cursor > 16 {
                        return Err(CompileError::BranchBitsExhausted { needed: self.bit_cursor });
                    }
                    let lvl_mask = ((1u32 << width) - 1) as u16;

                    // The branch level: one SetBranch entry per case.
                    let mut branch_level = Vec::new();
                    let mut case_levels: Vec<Vec<Vec<PlacedOp>>> = Vec::new();
                    for (i, case) in cases.iter().enumerate() {
                        let label = (i + 1) as u16;
                        branch_level.push(PlacedOp {
                            branch: cond,
                            regs: case.conds,
                            priority: (cases.len() - i) as i32,
                            op: IrOp::SetBranch { bits: label << offset },
                        });
                        let case_cond = (
                            cond.0 | (label << offset),
                            cond.1 | (lvl_mask << offset),
                        );
                        case_levels.push(self.flatten(&case.body, case_cond)?);
                    }

                    // Figure 5's depth accounting: when everything after
                    // the BRANCH is a pure forwarding tail (the cache-miss
                    // `FORWARD`) *and every case takes its own forwarding
                    // verdict*, the tail becomes a *default branch* running
                    // in parallel with the cases at lower entry priority —
                    // case packets match their case entry instead, and the
                    // verdict they set (RETURN/DROP/FORWARD) governs at the
                    // traffic manager. If some case sets no verdict, the
                    // tail must run sequentially after the cases so those
                    // packets are still forwarded.
                    // A *verdict* decides the packet's fate at the traffic
                    // manager; REPORT is a copy-to-CPU side effect, not a
                    // verdict — a case ending in bare REPORT still needs
                    // the tail's forwarding.
                    fn body_forwards(body: &[LowPrim]) -> bool {
                        body.iter().any(|p| match p {
                            LowPrim::Op(op) => matches!(
                                op,
                                IrOp::Forward { .. }
                                    | IrOp::Multicast { .. }
                                    | IrOp::Drop
                                    | IrOp::Return
                            ),
                            LowPrim::Branch { cases } => {
                                cases.iter().all(|c| body_forwards(&c.body))
                            }
                        })
                    }
                    let tail = &body[idx..];
                    let tail_is_fwd_only = !tail.is_empty()
                        && tail.iter().all(|p| matches!(p, LowPrim::Op(op) if op.is_forwarding()))
                        && cases.iter().all(|c| body_forwards(&c.body));
                    if tail_is_fwd_only {
                        let default_levels: Vec<Vec<PlacedOp>> = tail
                            .iter()
                            .map(|p| {
                                let LowPrim::Op(op) = p else { unreachable!() };
                                vec![PlacedOp {
                                    branch: cond,
                                    regs: RegConds::default(),
                                    priority: -1,
                                    op: op.clone(),
                                }]
                            })
                            .collect();
                        case_levels.push(default_levels);
                        idx = body.len();
                    }

                    align_memory(&mut case_levels);
                    levels.push(branch_level);
                    let max_len = case_levels.iter().map(|c| c.len()).max().unwrap_or(0);
                    for j in 0..max_len {
                        let mut merged = Vec::new();
                        for c in &mut case_levels {
                            if j < c.len() {
                                merged.append(&mut c[j]);
                            }
                        }
                        levels.push(merged);
                    }
                }
            }
        }
        Ok(levels)
    }
}

fn alu(op: AluRROp, a: Reg, b: Reg) -> IrOp {
    IrOp::AluRR { op, a, b }
}

/// The register not used by the arguments (two-argument pseudo case).
fn supportive(used: &[Reg]) -> Reg {
    Reg::ALL.into_iter().find(|r| !used.contains(r)).expect("at most two registers used")
}

/// For single-argument pseudos there are two candidates: prefer a dead one
/// so no backup is needed.
fn pick_supportive(used: &[Reg], cont: &[&Primitive]) -> Reg {
    let candidates: Vec<Reg> = Reg::ALL.into_iter().filter(|r| !used.contains(r)).collect();
    candidates
        .iter()
        .copied()
        .find(|r| !is_live(*r, cont))
        .unwrap_or(candidates[0])
}

/// Register-lifetime analysis: is `r`'s current value read before being
/// overwritten in the continuation?
fn is_live(r: Reg, cont: &[&Primitive]) -> bool {
    for prim in cont {
        match access(&prim.kind, r) {
            Access::Read => return true,
            Access::Write => return false,
            Access::None => continue,
        }
    }
    false
}

enum Access {
    /// The primitive reads `r` (possibly also writing it afterwards).
    Read,
    /// The primitive overwrites `r` without reading it.
    Write,
    None,
}

/// First-access classification of a primitive with respect to register `r`.
fn access(kind: &PrimitiveKind, r: Reg) -> Access {
    use PrimitiveKind as P;
    use Reg::*;
    let read = Access::Read;
    let write = Access::Write;
    let none = Access::None;
    match kind {
        P::Extract { reg, .. } => {
            if *reg == r {
                write
            } else {
                none
            }
        }
        P::Modify { reg, .. } => {
            if *reg == r {
                read
            } else {
                none
            }
        }
        P::Hash => {
            if r == Har {
                read
            } else {
                none
            }
        }
        P::Hash5Tuple => {
            if r == Har {
                write
            } else {
                none
            }
        }
        P::Hash5TupleMem { .. } => {
            if r == Mar {
                write
            } else {
                none
            }
        }
        P::HashMem { .. } => match r {
            Har => read,
            Mar => write,
            Sar => none,
        },
        // BRANCH compares all three registers.
        P::Branch { .. } => read,
        // Memory ops address through mar; the value operand is sar.
        P::MemAdd { .. } | P::MemSub { .. } | P::MemAnd { .. } | P::MemWrite { .. }
        | P::MemMax { .. } => match r {
            Mar | Sar => read,
            Har => none,
        },
        P::MemOr { .. } => match r {
            // MEMOR reads mar and sar (the OR operand) before overwriting
            // sar with the old bucket value.
            Mar | Sar => read,
            Har => none,
        },
        P::MemRead { .. } => match r {
            Mar => read,
            Sar => write,
            Har => none,
        },
        P::LoadI { reg, .. } => {
            if *reg == r {
                write
            } else {
                none
            }
        }
        P::Add { a, b }
        | P::And { a, b }
        | P::Or { a, b }
        | P::Max { a, b }
        | P::Min { a, b }
        | P::Xor { a, b }
        | P::Sub { a, b }
        | P::Equal { a, b }
        | P::Sgt { a, b }
        | P::Slt { a, b } => {
            if *a == r || *b == r {
                read
            } else {
                none
            }
        }
        P::Move { a, b } => {
            if *b == r {
                read
            } else if *a == r {
                write
            } else {
                none
            }
        }
        P::Not { reg } => {
            if *reg == r {
                read
            } else {
                none
            }
        }
        P::AddI { reg, .. } | P::AndI { reg, .. } | P::XorI { reg, .. } | P::SubI { reg, .. } => {
            if *reg == r {
                read
            } else {
                none
            }
        }
        P::Forward { .. } | P::Multicast { .. } | P::Drop | P::Return | P::Report | P::Nop => none,
    }
}

/// Align memory accesses on the same virtual memory across sibling case
/// level-lists by inserting NOP levels before the offset step (Fig. 5(b)).
fn align_memory(cases: &mut [Vec<Vec<PlacedOp>>]) {
    loop {
        // Collect, per case, the ordered list of (level, vmem) accesses.
        let accesses: Vec<Vec<(usize, String)>> = cases
            .iter()
            .map(|levels| {
                levels
                    .iter()
                    .enumerate()
                    .flat_map(|(d, ops)| {
                        ops.iter()
                            .filter_map(move |p| p.op.mem_access().map(|m| (d, m.to_string())))
                    })
                    .collect()
            })
            .collect();

        // For every vmem and occurrence index, find the per-case depths.
        let mut fix: Option<(usize, usize, usize)> = None; // (case, level, pad)
        let mut vmems: Vec<String> =
            accesses.iter().flatten().map(|(_, m)| m.clone()).collect();
        vmems.sort();
        vmems.dedup();
        'outer: for vmem in &vmems {
            let per_case: Vec<Vec<usize>> = accesses
                .iter()
                .map(|list| {
                    list.iter().filter(|(_, m)| m == vmem).map(|(d, _)| *d).collect()
                })
                .collect();
            let max_occ = per_case.iter().map(|v| v.len()).max().unwrap_or(0);
            for occ in 0..max_occ {
                let depths: Vec<(usize, usize)> = per_case
                    .iter()
                    .enumerate()
                    .filter_map(|(ci, v)| v.get(occ).map(|d| (ci, *d)))
                    .collect();
                if let Some(&(_, max_d)) = depths.iter().max_by_key(|(_, d)| *d) {
                    if let Some(&(ci, d)) = depths.iter().find(|(_, d)| *d < max_d) {
                        fix = Some((ci, d, max_d - d));
                        break 'outer;
                    }
                }
            }
        }

        match fix {
            None => break,
            Some((case_idx, access_level, pad)) => {
                // Insert NOP levels before the offset step (which sits
                // directly before the access when present).
                let levels = &mut cases[case_idx];
                let insert_at = if access_level > 0
                    && levels[access_level - 1]
                        .iter()
                        .any(|p| matches!(p.op, IrOp::MemOffset { .. }))
                {
                    access_level - 1
                } else {
                    access_level
                };
                let cond = levels[access_level]
                    .first()
                    .map(|p| p.branch)
                    .unwrap_or((0, 0));
                for _ in 0..pad {
                    levels.insert(insert_at, vec![PlacedOp::plain(cond, IrOp::Nop)]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4rp_lang::parse;

    fn lower_src(src: &str) -> ProgramIr {
        let unit = parse(src).unwrap();
        let mems: Vec<MemDecl> = unit
            .annotations
            .iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();
        lower(&unit.programs[0], &mems).unwrap()
    }

    #[test]
    fn cache_program_depth_matches_figure5() {
        // Figure 5(b): the translated cache program has depth 10.
        let src = r#"
@ mem1 1024
program cache(<hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);
    EXTRACT(hdr.nc.key1, sar);
    EXTRACT(hdr.nc.key2, mar);
    BRANCH:
    case(<har, 0, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) {
        RETURN;
        LOADI(mar, 512);
        MEMREAD(mem1);
        MODIFY(hdr.nc.value, sar);
    };
    case(<har, 1, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) {
        DROP;
        LOADI(mar, 512);
        EXTRACT(hdr.nc.value, sar);
        MEMWRITE(mem1);
    };
    FORWARD(32);
}
"#;
        let ir = lower_src(src);
        assert_eq!(ir.depth(), 10, "levels: {:#?}", ir.levels);
        // The MEMREAD and MEMWRITE must share a level.
        let mem_level = ir
            .levels
            .iter()
            .position(|l| l.iter().any(|p| p.op.mem_access().is_some()))
            .unwrap();
        let accessing: Vec<&PlacedOp> = ir.levels[mem_level]
            .iter()
            .filter(|p| p.op.mem_access().is_some())
            .collect();
        assert_eq!(accessing.len(), 2, "both branches' accesses aligned");
        // A NOP was inserted in the read branch (shorter prefix).
        assert!(ir
            .levels
            .iter()
            .flat_map(|l| l.iter())
            .any(|p| p.op == IrOp::Nop));
        // FORWARD is the parallel default branch (cache miss): don't-care
        // condition, lower priority than the case entries at its level.
        let fwd = ir
            .levels
            .iter()
            .flat_map(|l| l.iter())
            .find(|p| p.op == IrOp::Forward { port: 32 })
            .unwrap();
        assert_eq!(fwd.branch, (0, 0));
        assert_eq!(fwd.priority, -1);
    }

    #[test]
    fn branch_conditions_are_prefixes() {
        let src = r#"
program p(<hdr.ipv4.dst, 1, 1>) {
    BRANCH:
    case(<sar, 0, 0xffffffff>) {
        BRANCH:
        case(<har, 1, 0xffffffff>) { REPORT; };
    };
    case(<sar, 1, 0xffffffff>) { DROP; };
}
"#;
        let ir = lower_src(src);
        // Outer branch: 2 cases → 2 bits at offset 0; inner: 1 case → 1
        // bit at offset 2.
        let report = ir
            .levels
            .iter()
            .flat_map(|l| l.iter())
            .find(|p| p.op == IrOp::Report)
            .unwrap();
        assert_eq!(report.branch, (0b101, 0b111), "outer label 1 + inner label 1<<2");
        let drop = ir
            .levels
            .iter()
            .flat_map(|l| l.iter())
            .find(|p| p.op == IrOp::Drop)
            .unwrap();
        assert_eq!(drop.branch, (0b10, 0b11));
    }

    #[test]
    fn set_branch_priorities_follow_case_order() {
        let src = r#"
program p(<hdr.ipv4.dst, 1, 1>) {
    BRANCH:
    case(<sar, 0, 0xffffffff>) { DROP; };
    case(<sar, 0, 0x000000ff>) { RETURN; };
}
"#;
        let ir = lower_src(src);
        let branch_level = &ir.levels[0];
        assert_eq!(branch_level.len(), 2);
        assert!(branch_level[0].priority > branch_level[1].priority);
        assert_eq!(branch_level[0].op, IrOp::SetBranch { bits: 1 });
        assert_eq!(branch_level[1].op, IrOp::SetBranch { bits: 2 });
    }

    #[test]
    fn pseudo_move_expands() {
        let ir = lower_src("program p(<f,1,1>) { MOVE(har, sar); }");
        let ops: Vec<&IrOp> = ir.levels.iter().flat_map(|l| l.iter()).map(|p| &p.op).collect();
        assert_eq!(
            ops,
            vec![
                &IrOp::LoadI { reg: Reg::Har, imm: 0 },
                &IrOp::AluRR { op: AluRROp::Add, a: Reg::Har, b: Reg::Sar },
            ]
        );
    }

    #[test]
    fn subi_uses_twos_complement() {
        let ir = lower_src("program p(<f,1,1>) { SUBI(har, 7); }");
        let ops: Vec<&IrOp> = ir.levels.iter().flat_map(|l| l.iter()).map(|p| &p.op).collect();
        assert_eq!(ops[0], &IrOp::LoadI { reg: Reg::Sar, imm: 7u32.wrapping_neg() });
    }

    #[test]
    fn addi_picks_dead_supportive_register_without_backup() {
        // sar is read later → mar is the dead candidate.
        let ir = lower_src("program p(<f,1,1>) { ADDI(har, 5); MODIFY(hdr.nc.value, sar); }");
        let ops: Vec<&IrOp> = ir.levels.iter().flat_map(|l| l.iter()).map(|p| &p.op).collect();
        assert_eq!(ops[0], &IrOp::LoadI { reg: Reg::Mar, imm: 5 });
        assert!(!ops.iter().any(|o| matches!(o, IrOp::Backup { .. })));
    }

    #[test]
    fn live_supportive_register_gets_backup_restore() {
        // Both sar and mar are read later (BRANCH reads all), so the
        // supportive register is live → backup/restore wrap the expansion.
        let src = r#"
program p(<f,1,1>) {
    ADDI(har, 5);
    BRANCH:
    case(<sar, 0, 0xffffffff>) { DROP; };
}
"#;
        let ir = lower_src(src);
        let ops: Vec<&IrOp> = ir.levels.iter().flat_map(|l| l.iter()).map(|p| &p.op).collect();
        assert!(matches!(ops[0], IrOp::Backup { .. }));
        assert!(matches!(ops[3], IrOp::Restore { .. }));
    }

    #[test]
    fn sub_translation_is_exact() {
        let ir = lower_src("program p(<f,1,1>) { SUB(har, sar); }");
        let ops: Vec<&IrOp> = ir.levels.iter().flat_map(|l| l.iter()).map(|p| &p.op).collect();
        // Simulate: A=10, B=3 → expect 7.
        let (mut a, mut b, mut c) = (10u32, 3u32, 0u32);
        for op in ops {
            match op {
                IrOp::LoadI { reg: Reg::Mar, imm } => c = *imm,
                IrOp::AluRR { op: AluRROp::Xor, a: Reg::Sar, b: Reg::Mar } => b ^= c,
                IrOp::AluRR { op: AluRROp::Add, a: Reg::Har, b: Reg::Sar } => {
                    a = a.wrapping_add(b)
                }
                IrOp::AluRR { op: AluRROp::Add, a: Reg::Har, b: Reg::Mar } => {
                    a = a.wrapping_add(c)
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert_eq!(a, 7, "SUB must compute exact subtraction");
        assert_eq!(b, 3, "operand register restored");
    }

    #[test]
    fn memory_ops_get_offset_steps() {
        let ir = lower_src("@ m 256\nprogram p(<f,1,1>) { LOADI(mar, 5); MEMREAD(m); }");
        let ops: Vec<&IrOp> = ir.levels.iter().flat_map(|l| l.iter()).map(|p| &p.op).collect();
        assert_eq!(ops.len(), 3);
        assert!(matches!(ops[1], IrOp::MemOffset { kind: MemOpKind::Read, .. }));
        assert!(matches!(ops[2], IrOp::MemAccess { kind: MemOpKind::Read, .. }));
    }

    #[test]
    fn undeclared_memory_is_an_error() {
        let unit = parse("program p(<f,1,1>) { MEMREAD(ghost); }").unwrap();
        assert!(matches!(
            lower(&unit.programs[0], &[]),
            Err(CompileError::UnknownMemory(_))
        ));
    }

    #[test]
    fn entry_count_excludes_nops() {
        let src = r#"
@ m 64
program p(<f,1,1>) {
    BRANCH:
    case(<sar, 0, 0xffffffff>) {
        LOADI(mar, 1);
        MEMREAD(m);
    };
    case(<sar, 1, 0xffffffff>) {
        LOADI(mar, 1);
        LOADI(har, 2);
        MEMWRITE(m);
    };
}
"#;
        let ir = lower_src(src);
        let total: usize = ir.levels.iter().map(|l| l.len()).sum();
        assert!(ir.rpb_entry_count() < total, "alignment NOPs must not cost entries");
    }

    #[test]
    fn branch_bits_exhaustion_detected() {
        // 9 sequential BRANCHes with 3 cases each need 2 bits apiece = 18.
        let mut body = String::new();
        for _ in 0..9 {
            body.push_str(
                "BRANCH: case(<sar,0,1>) { NOP; }; case(<sar,1,1>) { NOP; }; case(<har,0,1>) { NOP; };\n",
            );
        }
        let src = format!("program p(<f,1,1>) {{ {body} }}");
        let unit = parse(&src).unwrap();
        assert!(matches!(
            lower(&unit.programs[0], &[]),
            Err(CompileError::BranchBitsExhausted { .. })
        ));
    }
}

#[cfg(test)]
mod alignment_tests {
    use super::*;
    use p4rp_lang::parse;

    fn lower_src(src: &str) -> ProgramIr {
        let unit = parse(src).unwrap();
        let mems: Vec<MemDecl> = unit
            .annotations
            .iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();
        lower(&unit.programs[0], &mems).unwrap()
    }

    /// Invariant behind constraint (5): within one program, all accesses
    /// to a virtual memory in *sibling* branches share a depth level.
    #[test]
    fn sibling_accesses_share_levels_even_with_uneven_prefixes() {
        let src = r#"
@ m 64
program p(<f,1,1>) {
    BRANCH:
    case(<sar, 0, 0xffffffff>) {
        LOADI(mar, 1);
        MEMREAD(m);
    };
    case(<sar, 1, 0xffffffff>) {
        LOADI(mar, 2);
        LOADI(har, 1);
        LOADI(har, 2);
        MEMWRITE(m);
    };
    case(<sar, 2, 0xffffffff>) {
        MEMADD(m);
    };
}
"#;
        let ir = lower_src(src);
        let levels_with_m: Vec<usize> = ir
            .levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.iter().any(|p| p.op.mem_access() == Some("m")))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(levels_with_m.len(), 1, "all three accesses aligned: {ir:#?}");
        let level = &ir.levels[levels_with_m[0]];
        assert_eq!(
            level.iter().filter(|p| p.op.mem_access().is_some()).count(),
            3
        );
        // Every offset step sits directly before its access.
        let (reqs, pairs) = crate::alloc::slot_requirements(&ir);
        for (a, b) in pairs {
            assert_eq!(b, a + 1, "offset adjacent to access");
            assert!(!reqs[a].mems.iter().any(|_| false));
        }
    }

    /// Deeply nested branches still align and allocate.
    #[test]
    fn nested_alignment_and_bit_budget() {
        let src = r#"
@ m 64
program p(<f,1,1>) {
    BRANCH:
    case(<sar, 0, 0xffffffff>) {
        BRANCH:
        case(<har, 0, 0xffffffff>) {
            LOADI(mar, 1);
            MEMREAD(m);
        };
        case(<har, 1, 0xffffffff>) {
            MEMWRITE(m);
        };
    };
    case(<sar, 1, 0xffffffff>) {
        LOADI(mar, 5);
        LOADI(sar, 5);
        MEMADD(m);
    };
}
"#;
        let ir = lower_src(src);
        let access_levels: Vec<usize> = ir
            .levels
            .iter()
            .enumerate()
            .filter(|(_, l)| l.iter().any(|p| p.op.mem_access().is_some()))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(access_levels.len(), 1, "nested + sibling all aligned");
    }

    /// The continuation after a branch whose cases do not all forward is
    /// sequential (the ECN shape), so it executes for case-takers too.
    #[test]
    fn non_verdict_cases_keep_sequential_tail() {
        let src = r#"
program p(<f,1,1>) {
    BRANCH:
    case(<har, 1, 0xffffffff>) {
        LOADI(sar, 3);
    };
    FORWARD(4);
}
"#;
        let ir = lower_src(src);
        let fwd_level = ir
            .levels
            .iter()
            .position(|l| l.iter().any(|p| matches!(p.op, IrOp::Forward { .. })))
            .unwrap();
        let case_level = ir
            .levels
            .iter()
            .position(|l| l.iter().any(|p| matches!(p.op, IrOp::LoadI { .. })))
            .unwrap();
        assert!(fwd_level > case_level, "tail after the case body, not parallel");
        assert_eq!(ir.levels[fwd_level][0].branch, (0, 0), "tail runs for all outcomes");
    }
}
