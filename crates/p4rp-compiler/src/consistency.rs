//! Consistent update planning (§4.3, Figure 6).
//!
//! Consistency here means: no packet is ever processed by a half-installed
//! or half-removed program. RMT guarantees atomicity per single-entry
//! update; the unique program id per program does the rest, provided the
//! batches are ordered so the *initialization-block filter* — the only
//! thing that can assign a packet the program's id — flips strictly last
//! on install and strictly first on removal:
//!
//! * **install**: ① RPB entries and recirculation entries (inert without
//!   the program id), ② filter entries (activation);
//! * **remove**: ① filter entries (all downstream components stop matching
//!   at once), ② RPB + recirculation entries, ③ lock and reset the
//!   program's memory regions — the regions stay unavailable for
//!   reallocation until the reset completes (the resource manager enforces
//!   the lock).

use crate::entrygen::{MemRegion, ProgramImage};
use p4rp_dataplane::{encode_filter_entry, encode_recirc_entry, encode_rpb_entry, Dataplane};
use crate::errors::{CompileError, CompileResult};
use rmt_sim::switch::{ControlOp, TableRef};
use rmt_sim::table::EntryHandle;

/// One ordered batch of control operations.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Label.
    pub label: &'static str,
    /// Ops.
    pub ops: Vec<ControlOp>,
}

/// Plan the install batches of a program image (Figure 6 right half).
pub fn plan_install(image: &ProgramImage, dp: &Dataplane, ft: &rmt_sim::phv::FieldTable) -> CompileResult<Vec<Batch>> {
    let mut body_ops = Vec::new();
    for (rpb, spec) in &image.rpb_entries {
        let cat = dp.catalogue(*rpb);
        let entry = encode_rpb_entry(cat, spec).map_err(|e| CompileError::AllocationFailed {
            reason: format!("encode failed: {e}"),
        })?;
        body_ops.push(ControlOp::InsertEntry { table: rpb.table_ref(), entry });
    }
    for &rid in &image.recirc_ids {
        body_ops.push(ControlOp::InsertEntry {
            table: dp.recirc_table,
            entry: encode_recirc_entry(image.prog_id, rid),
        });
    }
    let entry = encode_filter_entry(ft, &dp.fields, &image.filter);
    let filter_ops = vec![ControlOp::InsertEntry { table: dp.init_table, entry }];
    Ok(vec![
        Batch { label: "program components", ops: body_ops },
        Batch { label: "activate filters", ops: filter_ops },
    ])
}

/// The handles recorded when a program was installed, needed for removal.
#[derive(Debug, Clone, Default)]
pub struct InstalledHandles {
    /// Filter handles.
    pub filter_handles: Vec<(TableRef, EntryHandle)>,
    /// Body handles.
    pub body_handles: Vec<(TableRef, EntryHandle)>,
    /// Mem regions.
    pub mem_regions: Vec<MemRegion>,
}

/// Plan the removal batches (Figure 6 left half).
pub fn plan_remove(h: &InstalledHandles) -> Vec<Batch> {
    let filter_ops = h
        .filter_handles
        .iter()
        .map(|(table, handle)| ControlOp::DeleteEntry { table: *table, handle: *handle })
        .collect();
    let body_ops = h
        .body_handles
        .iter()
        .map(|(table, handle)| ControlOp::DeleteEntry { table: *table, handle: *handle })
        .collect();
    let reset_ops = h
        .mem_regions
        .iter()
        .map(|r| ControlOp::ResetRegRange {
            array: r.rpb.array_ref(),
            start: r.offset,
            len: r.size,
        })
        .collect();
    vec![
        Batch { label: "deactivate filters", ops: filter_ops },
        Batch { label: "delete program components", ops: body_ops },
        Batch { label: "lock and reset memory", ops: reset_ops },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4rp_dataplane::RpbId;

    #[test]
    fn removal_order_is_filters_then_body_then_memory() {
        let h = InstalledHandles {
            filter_handles: vec![(RpbId(1).table_ref(), EntryHandle(10))],
            body_handles: vec![(RpbId(2).table_ref(), EntryHandle(11))],
            mem_regions: vec![MemRegion {
                name: "m".into(),
                rpb: RpbId(3),
                offset: 0,
                size: 64,
            }],
        };
        let batches = plan_remove(&h);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].label, "deactivate filters");
        assert_eq!(batches[1].label, "delete program components");
        assert_eq!(batches[2].label, "lock and reset memory");
        assert!(matches!(batches[2].ops[0], ControlOp::ResetRegRange { len: 64, .. }));
    }
}
