//! # p4rp-compiler — the P4runpro runtime compiler (§4.3)
//!
//! Takes P4runpro source (via [`p4rp_lang`]) through:
//!
//! 1. [`ir`] — lowering: pseudo-primitive expansion (Figure 14),
//!    address-translation insertion, branch-bit assignment, depth
//!    flattening with cross-branch memory alignment (Figure 5);
//! 2. [`alloc`] — the §4.3 constraint model, solved by exact
//!    branch-and-bound under any of the four §6.2.4 objectives;
//! 3. [`entrygen`] — concrete table entries for the RPBs, the
//!    initialization block, and the recirculation block;
//! 4. [`consistency`] — the Figure 6 batch ordering that keeps every
//!    intermediate update state invisible to traffic.

pub mod alloc;
mod alloc_reference;
pub mod consistency;
pub mod entrygen;
pub mod errors;
pub mod ir;

pub use alloc::{allocate, AllocConfig, AllocView, Allocation, Objective, SlotReq};
pub use entrygen::{generate, generate_cached, EntryGenCache, ProgramImage};
pub use errors::{CompileError, CompileResult};
pub use ir::{lower, IrOp, MemDecl, PlacedOp, ProgramIr};
