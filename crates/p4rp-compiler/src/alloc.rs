//! Program allocation: the constraint model of §4.3, solved exactly.
//!
//! The model assigns each depth level of the translated program a *logical
//! RPB* `x_i ∈ 1..=M·(R+1)` (physical RPB × recirculation pass), subject to
//! the paper's constraints:
//!
//! 1. strict ordering: `x_i < x_{i+1}`;
//! 2. table entries: the entries a program installs into a physical RPB
//!    (across all its passes) must fit the RPB's free entries;
//! 3. memory: each virtual memory block needs contiguous free memory in
//!    its physical RPB;
//! 4. forwarding primitives only execute in ingress RPBs;
//! 5. two accesses to the same virtual memory at different depths must hit
//!    the same physical RPB on different passes (`x_j = x_i + M·k`) — the
//!    hardware cannot access one stage's memory from another;
//! 6. *(this implementation, see DESIGN.md)* an offset step and its memory
//!    access — and a supportive-register backup and its restore — must land
//!    in the same pass, because the translated address (`pma`) and the
//!    scratch container are not carried in the recirculation header.
//!
//! The prototype hands this model to Z3; here it is solved by exact
//! branch-and-bound (the model is small: `L ≤ 44` variables over a domain
//! of 44 values). All four objective schemes of §6.2.4 are implemented:
//! `f1 = α·x_L − β·x_1`, `f2 = x_L`, `f3 = x_L / x_1`, and the
//! hierarchical scheme (minimize `x_L`, then maximize `x_1`). `f3`'s
//! nonlinear objective defeats the bound pruning and is solved by full
//! enumeration — reproducing its order-of-magnitude-slower solve times
//! (Figure 12).
//!
//! ## The fast solver
//!
//! The default solver works on an *interned* form of the model: virtual
//! memories become small integer ids (their index in `ir.memories`), so
//! `try_place`/`unplace` never clone a `String` or touch a string-keyed
//! map on the hot path. On top of the classic `x_L` bound it adds three
//! sound prunes:
//!
//! - **suffix capacity**: precomputed suffix sums of per-slot entry needs
//!   against the running total of free entries — O(1) per node;
//! - **free-slot dominance**: a slot with no entries, no memories, no
//!   forwarding and no same-pass pair (alignment NOP levels) only ever
//!   tries the smallest legal index — placing it earlier strictly
//!   dominates;
//! - **memoized infeasibility**: an incrementally-maintained zobrist-style
//!   hash of the resource state (entries used, partition lengths, vmem
//!   placements) keyed with the search frontier `(slot, lo, hi)` and the
//!   passes of pending pair anchors. A frontier proven *completely*
//!   infeasible (its range not truncated by the bound and no child cut off
//!   by bound or budget) is recorded and never re-explored — across the
//!   objective schemes' repeated `x_1`-pinned searches this collapses the
//!   re-visited subtrees to a set lookup.
//!
//! Failures are memoized only when *complete* so the memo is
//! bound-independent and safe to reuse across `search_min_xl` calls. The
//! original clone-heavy solver survives as [`crate::alloc_reference`]
//! (selected by [`AllocConfig::reference`]); the `alloc_equivalence`
//! proptest suite keeps the two in lockstep.

use crate::errors::{CompileError, CompileResult};
use crate::ir::{IrOp, ProgramIr};
use p4rp_dataplane::{LogicalRpb, RpbId, NUM_RPBS};
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

/// Per-level requirements extracted from the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotReq {
    /// Table entries this level installs (NOPs cost none).
    pub entries: usize,
    /// Virtual memories accessed at this level.
    pub mems: Vec<String>,
    /// Contains a forwarding primitive (constraint 4).
    pub is_forwarding: bool,
}

/// Extract slot requirements and same-pass pairs from a lowered program.
pub fn slot_requirements(ir: &ProgramIr) -> (Vec<SlotReq>, Vec<(usize, usize)>) {
    let mut reqs = Vec::with_capacity(ir.levels.len());
    let mut pairs = Vec::new();
    let mut backups: HashMap<u32, usize> = HashMap::new();
    for (i, level) in ir.levels.iter().enumerate() {
        let mut mems: Vec<String> = level
            .iter()
            .filter_map(|p| p.op.mem_access().map(str::to_string))
            .collect();
        mems.sort();
        mems.dedup();
        let entries = level.iter().filter(|p| p.op != IrOp::Nop).count();
        let is_forwarding = level.iter().any(|p| p.op.is_forwarding());
        for p in level {
            match &p.op {
                IrOp::MemOffset { .. } => pairs.push((i, i + 1)),
                IrOp::Backup { pair, .. } => {
                    backups.insert(*pair, i);
                }
                IrOp::Restore { pair, .. } => {
                    if let Some(&b) = backups.get(pair) {
                        pairs.push((b, i));
                    }
                }
                _ => {}
            }
        }
        reqs.push(SlotReq { entries, mems, is_forwarding });
    }
    pairs.sort();
    pairs.dedup();
    (reqs, pairs)
}

/// Snapshot of data plane resource availability, supplied by the resource
/// manager (`te_free(x)` / `mem_free(x)` in the paper's formulation).
#[derive(Debug, Clone)]
pub struct AllocView {
    /// Free table entries per physical RPB (index 0 = RPB 1).
    pub te_free: Vec<usize>,
    /// Sizes of the free contiguous memory partitions per physical RPB.
    pub mem_free: Vec<Vec<u32>>,
}

impl AllocView {
    /// A fully-free data plane (for tests and capacity analysis).
    pub fn unconstrained(table_size: usize, mem_size: u32) -> AllocView {
        AllocView {
            te_free: vec![table_size; NUM_RPBS],
            mem_free: vec![vec![mem_size]; NUM_RPBS],
        }
    }
}

/// The §6.2.4 objective schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Objective {
    /// `f1 = α·x_L − β·x_1` (the prototype default, α=0.7, β=0.3).
    /// WeightedDiff.
    WeightedDiff { alpha: f64, beta: f64 },
    /// `f2 = x_L`.
    LastOnly,
    /// `f3 = x_L / x_1` (nonlinear; slow by design).
    Ratio,
    /// Minimize `x_L`, then maximize `x_1` with `x_L` fixed.
    Hierarchical,
}

impl Objective {
    /// The prototype's default: α = 0.7, β = 0.3 (§6.2).
    pub fn paper_default() -> Objective {
        Objective::WeightedDiff { alpha: 0.7, beta: 0.3 }
    }
}

/// Allocator configuration.
#[derive(Debug, Clone, Copy)]
pub struct AllocConfig {
    /// Maximum recirculation iterations `R` (the prototype uses 1).
    pub max_recirc: u8,
    /// Objective.
    pub objective: Objective,
    /// Search-node budget per inner solve. The allocation scheme is
    /// best-effort (§4.3); a search that exhausts the budget without a
    /// solution reports failure, like a Z3 timeout would.
    pub node_budget: u64,
    /// Solve with the naive reference DFS (clone-heavy, no pruning beyond
    /// the `x_L` bound) instead of the interned/memoized fast solver. The
    /// reference is the semantic authority the `alloc_equivalence`
    /// proptest suite checks the fast solver against, and the "before"
    /// side of `bench_controlplane`.
    pub reference: bool,
}

impl Default for AllocConfig {
    fn default() -> Self {
        AllocConfig {
            max_recirc: 1,
            objective: Objective::paper_default(),
            node_budget: 200_000,
            reference: false,
        }
    }
}

/// A successful allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    /// Logical RPB index per level (1-based, length `L`).
    pub x: Vec<u16>,
    /// Physical placement of each virtual memory.
    pub mem_rpb: HashMap<String, RpbId>,
    /// Pipeline passes the program needs (1 = no recirculation).
    pub passes: u8,
    /// Objective value.
    pub objective_value: f64,
    /// Search nodes explored (solver-cost proxy for the benchmarks).
    pub nodes_explored: u64,
}

/// Solve the allocation model for one program.
pub fn allocate(
    ir: &ProgramIr,
    view: &AllocView,
    cfg: &AllocConfig,
) -> CompileResult<Allocation> {
    let (reqs, pairs) = slot_requirements(ir);
    allocate_slots(ir, &reqs, &pairs, view, cfg)
}

fn allocate_slots(
    ir: &ProgramIr,
    reqs: &[SlotReq],
    pairs: &[(usize, usize)],
    view: &AllocView,
    cfg: &AllocConfig,
) -> CompileResult<Allocation> {
    let max_index = LogicalRpb::max_index(cfg.max_recirc);
    let l = reqs.len();
    if l == 0 {
        return Err(CompileError::AllocationFailed { reason: "empty program".into() });
    }
    if l > usize::from(max_index) {
        return Err(CompileError::TooDeep { depth: l, max: usize::from(max_index) });
    }

    // Fast infeasibility prechecks before the search proper.
    let total_entries: usize = reqs.iter().map(|r| r.entries).sum();
    let total_free: usize = view.te_free.iter().sum();
    if total_entries > total_free {
        return Err(CompileError::AllocationFailed {
            reason: format!("needs {total_entries} entries, {total_free} free"),
        });
    }
    let max_te = view.te_free.iter().copied().max().unwrap_or(0);
    for (i, r) in reqs.iter().enumerate() {
        if r.entries > max_te {
            return Err(CompileError::AllocationFailed {
                reason: format!("level {i} needs {} entries, largest RPB has {max_te}", r.entries),
            });
        }
    }
    for m in &ir.memories {
        // A vmem needs one RPB with a large-enough partition *and* enough
        // entries for every level that accesses it.
        let needed: usize = reqs
            .iter()
            .filter(|r| r.mems.iter().any(|v| v == &m.name))
            .map(|r| r.entries)
            .sum();
        let ok = (0..NUM_RPBS).any(|r| {
            view.mem_free[r].iter().any(|&p| p >= m.size) && view.te_free[r] >= needed
        });
        if !ok {
            return Err(CompileError::AllocationFailed {
                reason: format!("no RPB can host memory `{}` ({} buckets)", m.name, m.size),
            });
        }
    }

    if cfg.reference {
        return crate::alloc_reference::solve(ir, reqs, pairs, view, cfg);
    }

    // Intern: virtual memories become their index in `ir.memories` (lower
    // guarantees every accessed memory is declared there), and per-slot
    // requirements carry the ids plus the dominance flag.
    let sizes: Vec<u32> = ir.memories.iter().map(|m| m.size).collect();
    let ireqs: Vec<SlotReqI> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| SlotReqI {
            entries: r.entries,
            mems: r
                .mems
                .iter()
                .map(|m| {
                    ir.memories
                        .iter()
                        .position(|d| &d.name == m)
                        .expect("lowered op references a declared memory")
                        as u16
                })
                .collect(),
            is_forwarding: r.is_forwarding,
            free: r.entries == 0
                && r.mems.is_empty()
                && !r.is_forwarding
                && !pairs.iter().any(|&(a, b)| a == i || b == i),
        })
        .collect();
    let mut entries_suffix = vec![0usize; l + 1];
    for i in (0..l).rev() {
        entries_suffix[i] = entries_suffix[i + 1] + ireqs[i].entries;
    }

    let mut solver = Solver {
        budget: cfg.node_budget,
        reqs: &ireqs,
        pairs,
        sizes: &sizes,
        entries_suffix: &entries_suffix,
        max_index,
        te_free: view.te_free.clone(),
        te_used: vec![0; NUM_RPBS],
        free_total: total_free,
        mem_free: view.mem_free.clone(),
        mem_placed: vec![None; sizes.len()],
        nodes: 0,
        solutions: 0,
        state_hash: 0,
        memo: MemoSet::default(),
    };

    let best = match cfg.objective {
        Objective::LastOnly => solver.search_min_xl(None, None).map(|(x, xl)| (x, f64::from(xl))),
        Objective::Hierarchical => {
            // Phase 1: minimal x_L. Phase 2: maximal x_1 holding x_L.
            match solver.search_min_xl(None, None) {
                None => None,
                Some((x0, xl)) => {
                    let mut best: Option<(Vec<u16>, f64)> = Some((x0, f64::from(xl)));
                    for x1 in (2..=max_index.saturating_sub(l as u16 - 1)).rev() {
                        if let Some((x, got_xl)) = solver.search_min_xl(Some(x1), Some(xl)) {
                            debug_assert!(got_xl <= xl);
                            best = Some((x, f64::from(got_xl)));
                            break;
                        }
                    }
                    best
                }
            }
        }
        Objective::WeightedDiff { alpha, beta } => {
            let mut best: Option<(Vec<u16>, f64)> = None;
            // Larger x_1 reduces the objective; iterate descending so the
            // bound prunes early.
            for x1 in (1..=max_index - (l as u16 - 1)).rev() {
                // Best conceivable for this x_1: x_L = x_1 + L − 1.
                let lower = alpha * f64::from(x1 + l as u16 - 1) - beta * f64::from(x1);
                if let Some((_, score)) = &best {
                    if lower >= *score {
                        continue;
                    }
                }
                if let Some((x, xl)) = solver.search_min_xl(Some(x1), None) {
                    let score = alpha * f64::from(xl) - beta * f64::from(x1);
                    if best.as_ref().is_none_or(|(_, s)| score < *s) {
                        best = Some((x, score));
                    }
                }
            }
            best
        }
        Objective::Ratio => {
            // Nonlinear: full enumeration over x_1, no bound pruning — the
            // deliberate cost the paper measures in Figure 12.
            let mut best: Option<(Vec<u16>, f64)> = None;
            for x1 in 1..=max_index - (l as u16 - 1) {
                if let Some((x, xl)) = solver.search_min_xl(Some(x1), None) {
                    let score = f64::from(xl) / f64::from(x1);
                    if best.as_ref().is_none_or(|(_, s)| score < *s) {
                        best = Some((x, score));
                    }
                }
            }
            best
        }
    };

    let nodes = solver.nodes;
    match best {
        None => Err(CompileError::AllocationFailed {
            reason: format!("no feasible placement for {} levels", l),
        }),
        Some((x, objective_value)) => {
            // Recompute memory placement for the winning assignment.
            let mem_rpb = placement_for(reqs, &x);
            let passes = x
                .iter()
                .map(|&xi| LogicalRpb::from_index(xi).pass())
                .max()
                .unwrap_or(0)
                + 1;
            Ok(Allocation { x, mem_rpb, passes, objective_value, nodes_explored: nodes })
        }
    }
}

/// Reconstruct the vmem → RPB mapping implied by an assignment.
pub(crate) fn placement_for(reqs: &[SlotReq], x: &[u16]) -> HashMap<String, RpbId> {
    let mut out = HashMap::new();
    for (slot, req) in reqs.iter().enumerate() {
        let rpb = LogicalRpb::from_index(x[slot]).rpb();
        for vmem in &req.mems {
            out.entry(vmem.clone()).or_insert(rpb);
        }
    }
    out
}

/// Interned per-level requirements (memories by id, dominance flag).
struct SlotReqI {
    entries: usize,
    mems: Vec<u16>,
    is_forwarding: bool,
    /// No entries, no memories, no forwarding, in no same-pass pair:
    /// the slot only spends a logical index (alignment NOP levels).
    free: bool,
}

/// splitmix64 finalizer — the per-component mixer for the state hash.
#[inline]
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Memo keys are already splitmix-mixed; the set hasher passes them through.
#[derive(Default)]
struct PreMixed(u64);

impl std::hash::Hasher for PreMixed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type MemoSet = HashSet<u64, BuildHasherDefault<PreMixed>>;

struct Solver<'a> {
    budget: u64,
    reqs: &'a [SlotReqI],
    pairs: &'a [(usize, usize)],
    /// vmem id → size.
    sizes: &'a [u32],
    /// `entries_suffix[i]` = entries needed by slots `i..`.
    entries_suffix: &'a [usize],
    max_index: u16,
    te_free: Vec<usize>,
    te_used: Vec<usize>,
    /// Total free entries remaining across all RPBs.
    free_total: usize,
    mem_free: Vec<Vec<u32>>,
    /// vmem id → (physical rpb index 0-based, last pass used).
    mem_placed: Vec<Option<(usize, u8)>>,
    nodes: u64,
    /// Assignments reaching the base case (for memo soundness checks).
    solutions: u64,
    /// Zobrist-style hash of (te_used, mem_free lengths, mem_placed),
    /// maintained incrementally by `try_place`/`unplace`.
    state_hash: u64,
    /// Frontiers proven completely infeasible.
    memo: MemoSet,
}

impl Solver<'_> {
    /// Branch-and-bound minimizing `x_L`, optionally pinning `x_1` and
    /// bounding `x_L`. Returns the best assignment found. The memo is
    /// shared across calls — entries are bound-independent facts.
    fn search_min_xl(&mut self, x1: Option<u16>, xl_cap: Option<u16>) -> Option<(Vec<u16>, u16)> {
        let mut best: Option<(Vec<u16>, u16)> = None;
        let mut x = vec![0u16; self.reqs.len()];
        let mut bound = xl_cap.map(|c| c + 1).unwrap_or(self.max_index + 1);
        let deadline = self.nodes.saturating_add(self.budget);
        self.dfs(0, 0, x1, &mut x, &mut best, &mut bound, deadline);
        best
    }

    /// Returns `true` when the subtree was searched *completely* — its
    /// candidate range not truncated by the `x_L` bound and no descendant
    /// cut off by bound or budget. A complete subtree without a solution
    /// is a bound-independent infeasibility fact, safe to memoize.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        slot: usize,
        prev: u16,
        x1: Option<u16>,
        x: &mut Vec<u16>,
        best: &mut Option<(Vec<u16>, u16)>,
        bound: &mut u16,
        deadline: u64,
    ) -> bool {
        if self.nodes >= deadline {
            return false;
        }
        let l = self.reqs.len();
        if slot == l {
            let xl = x[l - 1];
            self.solutions += 1;
            if best.as_ref().is_none_or(|(_, b)| xl < *b) {
                *best = Some((x.clone(), xl));
                *bound = xl;
            }
            return true;
        }
        // Suffix capacity: entries still to place exceed the total free —
        // infeasible no matter the assignment.
        if self.entries_suffix[slot] > self.free_total {
            return true;
        }
        let remaining = (l - 1 - slot) as u16;
        let lo = if slot == 0 { x1.unwrap_or(1) } else { prev + 1 };
        let mut hi_struct = self.max_index - remaining;
        if slot == 0 && x1.is_some() {
            hi_struct = hi_struct.min(lo);
        }
        if lo > hi_struct {
            return true;
        }
        let key = self.frontier_key(slot, lo, hi_struct, x);
        if self.memo.contains(&key) {
            return true;
        }
        // Bound: x_L ≥ x_slot + remaining, so x_slot must stay below
        // bound − remaining to improve.
        let hi = hi_struct.min(bound.saturating_sub(remaining + 1));
        if lo > hi {
            return false;
        }

        let found_before = self.solutions;
        let mut complete;
        if self.reqs[slot].free {
            // Dominance: placing an unconstrained slot at `lo` strictly
            // dominates any later index (same resources, looser ordering),
            // so one child decides the whole structural range.
            self.nodes += 1;
            x[slot] = lo;
            complete = self.dfs(slot + 1, lo, x1, x, best, bound, deadline);
            x[slot] = 0;
        } else {
            complete = hi == hi_struct;
            for cand in lo..=hi {
                // A solution inside this subtree tightened the bound;
                // re-derive the cutoff (truncation is fine — the memo
                // insert below is already off once a solution exists).
                if cand > bound.saturating_sub(remaining + 1) {
                    complete = false;
                    break;
                }
                self.nodes += 1;
                if let Some(undo) = self.try_place(slot, cand, x) {
                    x[slot] = cand;
                    let child = self.dfs(slot + 1, cand, x1, x, best, bound, deadline);
                    x[slot] = 0;
                    self.unplace(undo);
                    complete &= child;
                }
            }
        }
        if complete && self.solutions == found_before {
            self.memo.insert(key);
        }
        complete
    }

    /// The memo key for a frontier: resource-state hash, the slot, its
    /// candidate range, and the passes of anchors of still-pending
    /// same-pass pairs (the only way already-assigned `x` values reach
    /// into the subtree other than through `lo`).
    fn frontier_key(&self, slot: usize, lo: u16, hi_struct: u16, x: &[u16]) -> u64 {
        let mut h = self.state_hash
            ^ mix(
                0x5000_0000_0000_0000
                    | (slot as u64) << 32
                    | u64::from(lo) << 16
                    | u64::from(hi_struct),
            );
        for &(a, b) in self.pairs {
            if a < slot && b >= slot {
                let pass = LogicalRpb::from_index(x[a]).pass();
                h ^= mix(
                    0x6000_0000_0000_0000
                        | (a as u64) << 32
                        | (b as u64) << 16
                        | u64::from(pass),
                );
            }
        }
        h
    }

    #[inline]
    fn toggle_te(&mut self, rpb_idx: usize) {
        self.state_hash ^= mix(
            0x1000_0000_0000_0000 | (rpb_idx as u64) << 32 | self.te_used[rpb_idx] as u64,
        );
    }

    #[inline]
    fn toggle_part(&mut self, rpb_idx: usize, part: usize) {
        self.state_hash ^= mix(
            0x2000_0000_0000_0000
                | (rpb_idx as u64) << 40
                | (part as u64) << 20
                | u64::from(self.mem_free[rpb_idx][part]),
        );
    }

    #[inline]
    fn toggle_placed(&mut self, mem: usize) {
        if let Some((rpb, pass)) = self.mem_placed[mem] {
            self.state_hash ^= mix(
                0x3000_0000_0000_0000 | (mem as u64) << 32 | (rpb as u64) << 8 | u64::from(pass),
            );
        }
    }

    /// Attempt to place `slot` at logical index `cand`; on success return
    /// the undo record.
    fn try_place(&mut self, slot: usize, cand: u16, x: &[u16]) -> Option<Undo> {
        let req = &self.reqs[slot];
        let logical = LogicalRpb::from_index(cand);
        let rpb = logical.rpb();
        let rpb_idx = usize::from(rpb.0) - 1;
        let pass = logical.pass();

        // (4) forwarding only in ingress RPBs.
        if req.is_forwarding && !rpb.is_ingress() {
            return None;
        }
        // (6) same-pass pairs where this slot is the second element.
        for &(a, b) in self.pairs {
            if b == slot {
                let xa = x[a];
                if xa != 0 && LogicalRpb::from_index(xa).pass() != pass {
                    return None;
                }
            }
        }
        // (2) table entries, cumulative per physical RPB.
        if self.te_used[rpb_idx] + req.entries > self.te_free[rpb_idx] {
            return None;
        }
        // (3)+(5) memory.
        let mut mem_undo: Vec<MemUndo> = Vec::new();
        for &m in &req.mems {
            let mi = usize::from(m);
            match self.mem_placed[mi] {
                Some((placed_rpb, last_pass)) => {
                    // Constraint (5): same physical RPB, strictly later pass.
                    if placed_rpb != rpb_idx || pass <= last_pass {
                        self.rollback(mem_undo);
                        return None;
                    }
                    self.toggle_placed(mi);
                    self.mem_placed[mi] = Some((rpb_idx, pass));
                    self.toggle_placed(mi);
                    mem_undo.push(MemUndo::Replaced(m, (placed_rpb, last_pass)));
                }
                None => {
                    let size = self.sizes[mi];
                    // First-fit over the free partitions.
                    match self.mem_free[rpb_idx].iter().position(|&p| p >= size) {
                        Some(part) => {
                            self.toggle_part(rpb_idx, part);
                            self.mem_free[rpb_idx][part] -= size;
                            self.toggle_part(rpb_idx, part);
                            self.mem_placed[mi] = Some((rpb_idx, pass));
                            self.toggle_placed(mi);
                            mem_undo.push(MemUndo::Taken(m, rpb_idx, part, size));
                        }
                        None => {
                            self.rollback(mem_undo);
                            return None;
                        }
                    }
                }
            }
        }
        if req.entries > 0 {
            self.toggle_te(rpb_idx);
            self.te_used[rpb_idx] += req.entries;
            self.toggle_te(rpb_idx);
            self.free_total -= req.entries;
        }
        Some(Undo { rpb_idx, entries: req.entries, mem: mem_undo })
    }

    fn unplace(&mut self, undo: Undo) {
        if undo.entries > 0 {
            self.toggle_te(undo.rpb_idx);
            self.te_used[undo.rpb_idx] -= undo.entries;
            self.toggle_te(undo.rpb_idx);
            self.free_total += undo.entries;
        }
        self.rollback(undo.mem);
    }

    fn rollback(&mut self, undo: Vec<MemUndo>) {
        for u in undo.into_iter().rev() {
            self.undo_mem(u);
        }
    }

    fn undo_mem(&mut self, u: MemUndo) {
        match u {
            MemUndo::Taken(m, rpb, part, size) => {
                let mi = usize::from(m);
                self.toggle_part(rpb, part);
                self.mem_free[rpb][part] += size;
                self.toggle_part(rpb, part);
                self.toggle_placed(mi);
                self.mem_placed[mi] = None;
            }
            MemUndo::Replaced(m, prev) => {
                let mi = usize::from(m);
                self.toggle_placed(mi);
                self.mem_placed[mi] = Some(prev);
                self.toggle_placed(mi);
            }
        }
    }
}

struct Undo {
    rpb_idx: usize,
    entries: usize,
    mem: Vec<MemUndo>,
}

enum MemUndo {
    Taken(u16, usize, usize, u32),
    Replaced(u16, (usize, u8)),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{lower, MemDecl};
    use p4rp_dataplane::{RPB_MEM_SIZE, RPB_TABLE_SIZE};
    use p4rp_lang::parse;

    fn ir_of(src: &str) -> ProgramIr {
        let unit = parse(src).unwrap();
        let mems: Vec<MemDecl> = unit
            .annotations
            .iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();
        lower(&unit.programs[0], &mems).unwrap()
    }

    fn full_view() -> AllocView {
        AllocView::unconstrained(RPB_TABLE_SIZE, RPB_MEM_SIZE)
    }

    const CACHE: &str = r#"
@ mem1 1024
program cache(<hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);
    EXTRACT(hdr.nc.key1, sar);
    EXTRACT(hdr.nc.key2, mar);
    BRANCH:
    case(<har, 0, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) {
        RETURN;
        LOADI(mar, 512);
        MEMREAD(mem1);
        MODIFY(hdr.nc.value, sar);
    };
    case(<har, 1, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) {
        DROP;
        LOADI(mar, 512);
        EXTRACT(hdr.nc.value, sar);
        MEMWRITE(mem1);
    };
    FORWARD(32);
}
"#;

    #[test]
    fn cache_allocates_without_recirculation_on_empty_plane() {
        let ir = ir_of(CACHE);
        let alloc = allocate(&ir, &full_view(), &AllocConfig::default()).unwrap();
        assert_eq!(alloc.x.len(), 10);
        assert_eq!(alloc.passes, 1, "10 levels fit one pass: {:?}", alloc.x);
        // Strictly increasing.
        for w in alloc.x.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Forwarding levels landed in ingress RPBs.
        let (reqs, _) = slot_requirements(&ir);
        for (slot, req) in reqs.iter().enumerate() {
            if req.is_forwarding {
                assert!(LogicalRpb::from_index(alloc.x[slot]).is_ingress());
            }
        }
        assert!(alloc.mem_rpb.contains_key("mem1"));
    }

    #[test]
    fn forwarding_constraint_forces_ingress() {
        // A long prefix pushes the DROP deep; it must still land in an
        // ingress RPB of some pass.
        let mut body = String::new();
        for i in 0..12 {
            body.push_str(&format!("LOADI(har, {i});\n"));
        }
        body.push_str("DROP;\n");
        let src = format!("program p(<f,1,1>) {{ {body} }}");
        let ir = ir_of(&src);
        let alloc = allocate(&ir, &full_view(), &AllocConfig::default()).unwrap();
        let last = *alloc.x.last().unwrap();
        assert!(LogicalRpb::from_index(last).is_ingress());
        assert_eq!(alloc.passes, 2, "forwarding after depth 12 needs a second pass");
    }

    #[test]
    fn same_memory_twice_requires_recirculation() {
        let src = r#"
@ m 256
program p(<f,1,1>) {
    LOADI(mar, 0);
    MEMREAD(m);
    LOADI(mar, 1);
    MEMWRITE(m);
}
"#;
        let ir = ir_of(src);
        let alloc = allocate(&ir, &full_view(), &AllocConfig::default()).unwrap();
        assert_eq!(alloc.passes, 2, "constraint (5): same vmem → same RPB, next pass");
        let (reqs, _) = slot_requirements(&ir);
        let mem_slots: Vec<usize> = reqs
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.mems.is_empty())
            .map(|(i, _)| i)
            .collect();
        let r0 = LogicalRpb::from_index(alloc.x[mem_slots[0]]);
        let r1 = LogicalRpb::from_index(alloc.x[mem_slots[1]]);
        assert_eq!(r0.rpb(), r1.rpb());
        assert!(r1.pass() > r0.pass());
    }

    #[test]
    fn offset_and_access_share_a_pass() {
        let src = "@ m 64\nprogram p(<f,1,1>) { LOADI(mar, 0); MEMREAD(m); }";
        let ir = ir_of(src);
        let (_, pairs) = slot_requirements(&ir);
        assert_eq!(pairs, vec![(1, 2)]);
        let alloc = allocate(&ir, &full_view(), &AllocConfig::default()).unwrap();
        assert_eq!(
            LogicalRpb::from_index(alloc.x[1]).pass(),
            LogicalRpb::from_index(alloc.x[2]).pass()
        );
    }

    #[test]
    fn memory_exhaustion_fails_cleanly() {
        let ir = ir_of(CACHE);
        let mut view = full_view();
        for parts in &mut view.mem_free {
            *parts = vec![512]; // less than the requested 1024 everywhere
        }
        let err = allocate(&ir, &view, &AllocConfig::default()).unwrap_err();
        assert!(matches!(err, CompileError::AllocationFailed { .. }));
    }

    #[test]
    fn entry_exhaustion_fails_cleanly() {
        let ir = ir_of(CACHE);
        let mut view = full_view();
        for te in &mut view.te_free {
            *te = 1;
        }
        assert!(allocate(&ir, &view, &AllocConfig::default()).is_err());
    }

    #[test]
    fn too_deep_program_rejected() {
        let mut body = String::new();
        for i in 0..45 {
            body.push_str(&format!("LOADI(har, {i});\n"));
        }
        let src = format!("program p(<f,1,1>) {{ {body} }}");
        let ir = ir_of(&src);
        assert!(matches!(
            allocate(&ir, &full_view(), &AllocConfig::default()),
            Err(CompileError::TooDeep { depth: 45, max: 44 })
        ));
    }

    #[test]
    fn objectives_trade_x1_for_xl() {
        let ir = ir_of(CACHE);
        let view = full_view();
        let f2 = allocate(&ir, &view, &AllocConfig { objective: Objective::LastOnly, ..Default::default() })
            .unwrap();
        let f1 = allocate(&ir, &view, &AllocConfig::default()).unwrap();
        let f3 = allocate(&ir, &view, &AllocConfig { objective: Objective::Ratio, ..Default::default() })
            .unwrap();
        let h = allocate(
            &ir,
            &view,
            &AllocConfig { objective: Objective::Hierarchical, ..Default::default() },
        )
        .unwrap();
        // f2 minimizes x_L outright.
        assert!(f2.x.last() <= f1.x.last());
        assert!(f2.x.last() <= f3.x.last());
        // Hierarchical keeps f2's x_L but pushes x_1 as high as possible.
        assert_eq!(h.x.last(), f2.x.last());
        assert!(h.x[0] >= f2.x[0]);
        // f1/f3 start later (larger x_1) than plain f2's greedy start.
        assert!(f1.x[0] >= f2.x[0]);
        assert!(f3.x[0] >= f2.x[0]);
        // Ratio explores the most nodes (slowest scheme, Figure 12).
        assert!(f3.nodes_explored >= f1.nodes_explored);
    }

    #[test]
    fn cumulative_entries_across_passes_respected() {
        // Two accesses to the same vmem force both passes through one
        // physical RPB; its entry budget must absorb both levels.
        let src = r#"
@ m 64
program p(<f,1,1>) {
    LOADI(mar, 0);
    MEMREAD(m);
    LOADI(mar, 1);
    MEMWRITE(m);
}
"#;
        let ir = ir_of(src);
        let mut view = full_view();
        // Every RPB can hold only one entry — the shared RPB needs 2.
        for te in &mut view.te_free {
            *te = 1;
        }
        assert!(allocate(&ir, &view, &AllocConfig::default()).is_err());
    }

    #[test]
    fn r0_disables_recirculation() {
        let src = r#"
@ m 256
program p(<f,1,1>) {
    LOADI(mar, 0);
    MEMREAD(m);
    LOADI(mar, 1);
    MEMWRITE(m);
}
"#;
        let ir = ir_of(src);
        let cfg = AllocConfig { max_recirc: 0, ..Default::default() };
        // Same-vmem-twice needs a second pass; with R = 0 it must fail.
        assert!(allocate(&ir, &full_view(), &cfg).is_err());
    }

    #[test]
    fn two_memories_can_share_an_rpb_or_split() {
        let src = r#"
@ a 1024
@ b 1024
program p(<f,1,1>) {
    HASH_5_TUPLE_MEM(a);
    MEMADD(a);
    HASH_5_TUPLE_MEM(b);
    MEMADD(b);
}
"#;
        let ir = ir_of(src);
        let alloc = allocate(&ir, &full_view(), &AllocConfig::default()).unwrap();
        assert_eq!(alloc.passes, 1);
        assert_eq!(alloc.mem_rpb.len(), 2);
        assert_ne!(alloc.mem_rpb["a"], alloc.mem_rpb["b"], "sequential accesses → distinct RPBs");
    }
}
