//! End-to-end tests: the Figure 2 in-network cache deployed at runtime and
//! exercised with real packets through the full parser → RPB → traffic
//! manager → deparser path.

use netpkt::{CacheOp, EtherType, EthernetRepr, IpProtocol, Ipv4Repr, Mac, NetCacheRepr, ParsedPacket, UdpRepr};
use p4rp_ctl::Controller;
use std::net::Ipv4Addr;

/// The paper's running example (Figure 2), with the key halves arranged so
/// the low word lands in `sar` (the case blocks test `sar == 0x8888`).
const CACHE_SRC: &str = r#"
@ mem1 1024
program cache(
    /*filtering traffic*/
    <hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);   //get opcode
    EXTRACT(hdr.nc.key2, sar); //get key[0:31]
    EXTRACT(hdr.nc.key1, mar); //get key[32:63]
    BRANCH:
    /*cache hit and cache read*/
    case(<har, 0, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) { /*elastic*/
        RETURN;                    //return to client
        LOADI(mar, 512);           //load address
        MEMREAD(mem1);             //read cache
        MODIFY(hdr.nc.value, sar); //write value to header
    };
    /*cache hit and cache write*/
    case(<har, 1, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) { /*elastic*/
        DROP;                      //drop the packet
        LOADI(mar, 512);           //load address
        EXTRACT(hdr.nc.value, sar);//get value
        MEMWRITE(mem1);            //write cache
    };
    FORWARD(32); //cache miss
}
"#;

fn cache_packet(op: CacheOp, key: u64, value: u32) -> Vec<u8> {
    ParsedPacket {
        ethernet: EthernetRepr {
            dst: Mac::from_host_id(1),
            src: Mac::from_host_id(2),
            ethertype: EtherType::Ipv4,
        },
        ipv4: Some(Ipv4Repr {
            src_addr: Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: Ipv4Addr::new(10, 0, 0, 2),
            protocol: IpProtocol::Udp,
            ttl: 64,
            dscp: 0,
            ecn: 0,
        }),
        udp: Some(UdpRepr { src_port: 40000, dst_port: netpkt::NETCACHE_PORT }),
        tcp: None,
        netcache: Some(NetCacheRepr { op, key, value }),
        payload_len: 0,
    }
    .emit()
}

#[test]
fn cache_read_write_miss_cycle() {
    let mut ctl = Controller::with_defaults().unwrap();
    let reports = ctl.deploy(CACHE_SRC).unwrap();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.name, "cache");
    assert_eq!(r.depth, 10, "Figure 5: the translated cache program is 10 deep");
    assert!(r.entries_installed > 10);
    assert!(r.update_delay.as_millis_f64() > 0.5, "update delay is nonzero");

    // 1. Cache write: server fills key 0x8888 with value 4242. The packet
    //    is dropped (consumed by the switch) and the value is stored.
    let out = ctl.inject(0, &cache_packet(CacheOp::Write, 0x8888, 4242)).unwrap();
    assert!(out.dropped, "cache-write packets are consumed");
    let mem = ctl.read_memory("cache", "mem1").unwrap();
    assert_eq!(mem[512], 4242, "MEMWRITE stored the value at virtual bucket 512");

    // 2. Cache read: client asks for key 0x8888; the switch answers
    //    directly, reflecting the packet out its ingress port with the
    //    value embedded.
    let out = ctl.inject(3, &cache_packet(CacheOp::Read, 0x8888, 0)).unwrap();
    assert!(!out.dropped);
    assert_eq!(out.emitted.len(), 1);
    let (port, frame) = &out.emitted[0];
    assert_eq!(*port, 3, "RETURN reflects out the ingress port");
    let reply = ParsedPacket::parse(frame).unwrap();
    assert_eq!(reply.netcache.unwrap().value, 4242, "cache value embedded in the reply");

    // 3. Cache miss: unknown key → forwarded to the server behind port 32.
    let out = ctl.inject(3, &cache_packet(CacheOp::Read, 0x9999, 0)).unwrap();
    assert!(!out.dropped);
    assert_eq!(out.emitted[0].0, 32, "miss forwarded to the server port");
    let fwd = ParsedPacket::parse(&out.emitted[0].1).unwrap();
    assert_eq!(fwd.netcache.unwrap().value, 0, "miss leaves the packet unmodified");

    // 4. Unrelated traffic (different UDP port) never matches the program:
    //    no program id, no egress spec → dropped by the fabric, and no
    //    state is touched.
    let mut stray = cache_packet(CacheOp::Write, 0x8888, 1); // dst port below
    // Rewrite the UDP destination port to 9999 (offset 14+20+2).
    stray[14 + 20 + 2..14 + 20 + 4].copy_from_slice(&9999u16.to_be_bytes());
    let out = ctl.inject(0, &stray).unwrap();
    assert!(out.dropped);
    assert_eq!(ctl.read_memory("cache", "mem1").unwrap()[512], 4242);
}

#[test]
fn revoke_deactivates_and_resets() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy(CACHE_SRC).unwrap();
    ctl.inject(0, &cache_packet(CacheOp::Write, 0x8888, 7)).unwrap();
    assert_eq!(ctl.read_memory("cache", "mem1").unwrap()[512], 7);

    let baseline_mem = ctl.resources().memory_utilization();
    assert!(baseline_mem > 0.0);

    let report = ctl.revoke("cache").unwrap();
    assert!(report.update_delay.as_millis_f64() > 0.0);
    assert!(ctl.program("cache").is_none());
    assert_eq!(ctl.resources().memory_utilization(), 0.0, "memory fully returned");
    assert_eq!(ctl.resources().entry_utilization(), 0.0, "entries fully refunded");

    // Packets no longer match: even well-formed cache traffic is inert.
    let out = ctl.inject(0, &cache_packet(CacheOp::Read, 0x8888, 0)).unwrap();
    assert!(out.dropped);

    // Redeploying works and sees zeroed memory (the Figure 6 reset).
    ctl.deploy(CACHE_SRC).unwrap();
    assert_eq!(ctl.read_memory("cache", "mem1").unwrap()[512], 0);
}

#[test]
fn duplicate_deploy_rejected() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy(CACHE_SRC).unwrap();
    assert!(matches!(
        ctl.deploy(CACHE_SRC),
        Err(p4rp_ctl::CtlError::DuplicateProgram(_))
    ));
}

#[test]
fn control_memory_write_translates_addresses() {
    let mut ctl = Controller::with_defaults().unwrap();
    ctl.deploy(CACHE_SRC).unwrap();
    // Pre-load the cache from the control plane instead of a write packet.
    ctl.write_memory("cache", "mem1", 512, 31337).unwrap();
    let out = ctl.inject(1, &cache_packet(CacheOp::Read, 0x8888, 0)).unwrap();
    let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
    assert_eq!(reply.netcache.unwrap().value, 31337);
    // Out-of-range virtual addresses are rejected at the translation step.
    assert!(ctl.write_memory("cache", "mem1", 1024, 1).is_err());
    assert!(ctl.read_memory("cache", "nope").is_err());
    assert!(ctl.write_memory("ghost", "mem1", 0, 1).is_err());
}

#[test]
fn concurrent_programs_are_isolated() {
    // Two instances of the cache logic, isolated at flow granularity
    // (§4.1.1) by the destination address: both serve the cache port, but
    // cache answers for 10.0.0.2 and cache2 for 10.0.0.3. Their keys and
    // memories differ; neither may observe the other's state.
    let mut ctl = Controller::with_defaults().unwrap();
    const PORT_FILTER: &str = "<hdr.udp.dst_port, 7777, 0xffff>";
    let first = CACHE_SRC.replace(
        PORT_FILTER,
        "<hdr.udp.dst_port, 7777, 0xffff>, <hdr.ipv4.dst, 10.0.0.2, 0xffffffff>",
    );
    ctl.deploy(&first).unwrap();

    let second = CACHE_SRC
        .replace(
            PORT_FILTER,
            "<hdr.udp.dst_port, 7777, 0xffff>, <hdr.ipv4.dst, 10.0.0.3, 0xffffffff>",
        )
        .replace("program cache(", "program cache2(")
        .replace("mem1", "memB")
        .replace("0x8888", "0x1111");
    ctl.deploy(&second).unwrap();

    // Rewrite the IPv4 destination to 10.0.0.3 (offset 14+16), fixing the
    // header checksum (offset 14+10).
    let to_7778 = |op, key, value| {
        let mut f: Vec<u8> = cache_packet(op, key, value);
        f[14 + 19] = 3;
        f[14 + 10] = 0;
        f[14 + 11] = 0;
        let c = netpkt::checksum::checksum(&f[14..34]);
        f[14 + 10..14 + 12].copy_from_slice(&c.to_be_bytes());
        f
    };

    // Write into both programs' caches.
    ctl.inject(0, &cache_packet(CacheOp::Write, 0x8888, 100)).unwrap();
    ctl.inject(0, &to_7778(CacheOp::Write, 0x1111, 200)).unwrap();

    assert_eq!(ctl.read_memory("cache", "mem1").unwrap()[512], 100);
    assert_eq!(ctl.read_memory("cache2", "memB").unwrap()[512], 200);

    // Reads hit the right program.
    let out = ctl.inject(0, &cache_packet(CacheOp::Read, 0x8888, 0)).unwrap();
    assert_eq!(ParsedPacket::parse(&out.emitted[0].1).unwrap().netcache.unwrap().value, 100);
    let out = ctl.inject(0, &to_7778(CacheOp::Read, 0x1111, 0)).unwrap();
    assert_eq!(ParsedPacket::parse(&out.emitted[0].1).unwrap().netcache.unwrap().value, 200);

    // Revoking one leaves the other running.
    ctl.revoke("cache").unwrap();
    let out = ctl.inject(0, &to_7778(CacheOp::Read, 0x1111, 0)).unwrap();
    assert_eq!(ParsedPacket::parse(&out.emitted[0].1).unwrap().netcache.unwrap().value, 200);
    let out = ctl.inject(0, &cache_packet(CacheOp::Read, 0x8888, 0)).unwrap();
    assert!(out.dropped, "revoked program's traffic no longer matches");
}
