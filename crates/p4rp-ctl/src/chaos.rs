//! Seeded chaos scenarios: deterministic fault-injection campaigns over
//! the controller lifecycle (documented in `docs/CHAOS.md`).
//!
//! A scenario interleaves deploy / revoke churn from a generated program
//! pool with traffic bursts, while the control channel runs under an
//! armed [`FaultPlan`]. A fault-free *sentinel* program is deployed
//! before the plan is armed; every burst asserts it still forwards —
//! the packet-visible form of the atomicity guarantee (a half-installed
//! or half-rolled-back neighbour must never disturb a resident program).
//!
//! Everything is driven by one `u64` seed through the vendored
//! deterministic RNG and the simulated clock, so a scenario replays
//! bit-identically: the retained trace ring hashes to the same
//! [`ChaosOutcome::trace_fingerprint`] on every run of the same seed.

use crate::controller::{AuditReport, Controller, CtlError, CtlResult};
use crate::telemetry::{FaultStats, SloThresholds};
use netpkt::{EtherType, EthernetRepr, IpProtocol, Ipv4Repr, Mac, ParsedPacket, UdpRepr};
use rand::prelude::*;
use rand::rngs::StdRng;
use rmt_sim::fault::FaultPlan;
use rmt_sim::trace::TraceConfig;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::net::Ipv4Addr;

/// The port the sentinel program forwards to.
pub const SENTINEL_PORT: u16 = 7;
/// The sentinel's match address.
pub const SENTINEL_DST: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

/// One chaos campaign's knobs. Everything observable is a pure function
/// of this configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed for the action/traffic RNG.
    pub seed: u64,
    /// Scenario steps (each step is one deploy, revoke, burst, or repair).
    pub steps: usize,
    /// Size of the generated program pool.
    pub programs: usize,
    /// Fault plan armed after the sentinel is resident.
    pub faults: FaultPlan,
    /// Packets injected per traffic burst.
    pub packets_per_burst: usize,
    /// Data-plane workers. 1 (the default) runs the sequential engine —
    /// exactly the pre-parallel campaign; more shards every burst across
    /// the multi-worker engine while deploy/revoke churn publishes
    /// snapshot deltas underneath it.
    pub workers: usize,
    /// SLO watchdog thresholds to arm for the campaign. `None` (the
    /// default) runs without a watchdog; `Some` also enables per-program
    /// attribution so the drop-rate SLO evaluates real merged counters.
    /// Because every watchdog input is sim-clock / seeded-state driven,
    /// the emitted `SloViolation` events replay bit-for-bit and enter
    /// [`ChaosOutcome::trace_fingerprint`].
    pub watchdog: Option<SloThresholds>,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 1,
            steps: 40,
            programs: 6,
            faults: FaultPlan::none(),
            packets_per_burst: 4,
            workers: 1,
            watchdog: None,
        }
    }
}

/// What a campaign observed.
#[derive(Debug, Clone, Default)]
pub struct ChaosOutcome {
    /// Steps executed.
    pub steps: usize,
    /// Deploys that committed.
    pub deploys_ok: u64,
    /// Deploys aborted by an injected fault (rolled back or wedged).
    pub deploys_faulted: u64,
    /// Revokes that completed.
    pub revokes_ok: u64,
    /// Revokes interrupted by an injected fault.
    pub revokes_faulted: u64,
    /// Reconcile passes run (including faulted partial passes).
    pub reconcile_passes: u64,
    /// Sentinel packets forwarded to [`SENTINEL_PORT`].
    pub sentinel_hits: u64,
    /// Sentinel packets that went astray while the device was supposed
    /// to be coherent. The atomicity guarantee says this stays 0.
    pub sentinel_misses: u64,
    /// Pool-program packets checked against their expected port.
    pub resident_hits: u64,
    /// Pool-program packets that misforwarded under a coherent device.
    pub resident_misses: u64,
    /// Online invariant-checker violations in the trace ring.
    pub invariant_violations: usize,
    /// Final device-vs-resource-manager audit (after the drain phase).
    pub final_audit: AuditReport,
    /// Final cumulative fault counters.
    pub fault_stats: FaultStats,
    /// Hash over every retained trace event — the determinism receipt.
    pub trace_fingerprint: u64,
    /// The drain phase converged (clean audit, nothing wedged).
    pub converged: bool,
    /// `SloViolation` events in the merged trace ring (0 when no
    /// watchdog was armed, or when no threshold was breached).
    pub slo_violations: u64,
}

/// Build a minimal UDP frame addressed to `dst` (what the pool programs
/// and the sentinel match on).
pub fn frame_to(dst: Ipv4Addr) -> Vec<u8> {
    ParsedPacket {
        ethernet: EthernetRepr {
            dst: Mac::from_host_id(u32::from_be_bytes(dst.octets())),
            src: Mac::from_host_id(0x0a00_0001),
            ethertype: EtherType::Ipv4,
        },
        ipv4: Some(Ipv4Repr {
            src_addr: Ipv4Addr::new(10, 0, 0, 1),
            dst_addr: dst,
            protocol: IpProtocol::Udp,
            ttl: 64,
            dscp: 0,
            ecn: 0,
        }),
        udp: Some(UdpRepr { src_port: 40000, dst_port: 4791 }),
        tcp: None,
        netcache: None,
        payload_len: 16,
    }
    .emit()
}

/// The address pool program `i` matches.
pub fn pool_dst(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, (i % 200) as u8, 1)
}

/// The port pool program `i` forwards to.
pub fn pool_port(i: usize) -> u16 {
    (i % 4) as u16 + 1
}

/// P4runpro source for pool program `i`. Even indices are pure
/// forwarders; odd indices carry a 64-bucket virtual memory (a cache-like
/// program whose install batch includes body entries across stages), so
/// fault sweeps hit both shapes.
pub fn pool_source(i: usize) -> String {
    let dst = pool_dst(i);
    let port = pool_port(i);
    if i.is_multiple_of(2) {
        format!("program c{i}(<hdr.ipv4.dst, {dst}, 0xffffffff>) {{ FORWARD({port}); }}")
    } else {
        format!(
            "@ m{i} 64\nprogram c{i}(<hdr.ipv4.dst, {dst}, 0xffffffff>) \
             {{ LOADI(mar, 5); MEMREAD(m{i}); FORWARD({port}); }}"
        )
    }
}

/// The sentinel program's source.
pub fn sentinel_source() -> String {
    format!(
        "program sentinel(<hdr.ipv4.dst, {SENTINEL_DST}, 0xffffffff>) \
         {{ FORWARD({SENTINEL_PORT}); }}"
    )
}

/// Hash every retained trace event into one fingerprint. Only simulated
/// time appears in the ring, so the same seed reproduces the same value.
pub fn trace_fingerprint(ctl: &Controller) -> u64 {
    let mut h = DefaultHasher::new();
    // The *merged* ring: with workers, packet events live on per-worker
    // rings and the merge is deterministic (global timestamp/packet-id
    // order); without, this is a clone of the master ring, so sequential
    // fingerprints are unchanged.
    if let Some(t) = ctl.merged_trace() {
        for ev in t.events() {
            ev.seq.hash(&mut h);
            ev.t_ns.hash(&mut h);
            ev.epoch.hash(&mut h);
            ev.render().hash(&mut h);
        }
    }
    h.finish()
}

/// Invariant-checker violations across every live ring (master plus
/// workers). Checkers run per-ring at record time; the merge never
/// re-checks, so this is the authoritative count.
pub fn total_violations(ctl: &Controller) -> usize {
    let master = ctl.trace().map_or(0, |t| t.violations().len());
    let workers = ctl.workers().map_or(0, |p| {
        p.workers()
            .iter()
            .filter_map(|w| w.switch().trace())
            .map(|t| t.violations().len())
            .sum()
    });
    master + workers
}

/// Run one campaign. See the module docs for the scenario shape; the
/// returned outcome carries both the liveness counters and the final
/// consistency verdicts.
pub fn run(cfg: &ChaosConfig) -> CtlResult<ChaosOutcome> {
    let mut ctl = Controller::with_defaults()?;
    ctl.set_fast_path(true);
    ctl.enable_trace(TraceConfig {
        capacity: 8192,
        postmortem_dir: None,
        ..TraceConfig::default()
    });
    let mut out = ChaosOutcome::default();

    // The sentinel goes in before any fault can fire.
    ctl.deploy(&sentinel_source())?;
    // Fork the worker pool *after* the sentinel is resident: workers
    // inherit it in the fork, and every later deploy/revoke reaches them
    // as one atomic snapshot delta. `inject_sharded` falls back to the
    // sequential engine when no pool exists, so `workers: 1` replays the
    // pre-parallel campaign bit-for-bit.
    // Watchdog campaigns also enable per-program attribution (before the
    // worker fork, so every worker inherits it): the drop-rate SLO then
    // evaluates the real merged TM counters and a breach event names the
    // heaviest-dropping program.
    if let Some(t) = &cfg.watchdog {
        ctl.enable_attribution();
        ctl.arm_watchdog(t.clone());
    }
    if cfg.workers > 1 {
        ctl.enable_workers(cfg.workers);
    }
    ctl.set_fault_plan(cfg.faults.clone());

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Pool indices currently resident (deploy committed, not yet revoked).
    let mut resident: Vec<usize> = Vec::new();
    // Pool indices wedged (cleanup parked); their names stay taken.
    let mut stuck: Vec<usize> = Vec::new();

    for step in 0..cfg.steps {
        out.steps = step + 1;
        match rng.random_range(0u32..100) {
            // Deploy the first pool program that is neither resident nor
            // wedged.
            0..=39 => {
                let Some(i) = (0..cfg.programs)
                    .find(|i| !resident.contains(i) && !stuck.contains(i))
                else {
                    continue;
                };
                match ctl.deploy(&pool_source(i)) {
                    Ok(_) => {
                        out.deploys_ok += 1;
                        resident.push(i);
                    }
                    Err(CtlError::Wedged { .. }) => {
                        out.deploys_faulted += 1;
                        stuck.push(i);
                    }
                    Err(CtlError::DeployFault { .. }) => out.deploys_faulted += 1,
                    Err(e) => return Err(e),
                }
            }
            // Revoke a random resident program, or retry a wedged one.
            40..=64 => {
                let total = resident.len() + stuck.len();
                if total == 0 {
                    continue;
                }
                let k = rng.random_range(0..total);
                let (i, was_stuck) = if k < resident.len() {
                    (resident[k], false)
                } else {
                    (stuck[k - resident.len()], true)
                };
                match ctl.revoke(&format!("c{i}")) {
                    Ok(_) => {
                        out.revokes_ok += 1;
                        if was_stuck {
                            stuck.retain(|&j| j != i);
                        } else {
                            resident.retain(|&j| j != i);
                        }
                    }
                    Err(CtlError::Wedged { .. }) => {
                        out.revokes_faulted += 1;
                        if !was_stuck {
                            resident.retain(|&j| j != i);
                            stuck.push(i);
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
            // Traffic burst: the sentinel plus random resident programs.
            65..=89 => {
                // A device reset legitimately blanks resident programs
                // until a reconcile repairs them; only a coherent device
                // owes correct forwarding.
                let coherent = !ctl.needs_reconcile();
                for p in 0..cfg.packets_per_burst {
                    let (dst, port, sentinel) = if p == 0 || resident.is_empty() {
                        (SENTINEL_DST, SENTINEL_PORT, true)
                    } else {
                        let i = resident[rng.random_range(0..resident.len())];
                        (pool_dst(i), pool_port(i), false)
                    };
                    let outcome = ctl.inject_sharded(0, &frame_to(dst))?;
                    let hit = outcome.emitted.iter().any(|&(pt, _)| pt == port);
                    if !coherent {
                        continue;
                    }
                    match (sentinel, hit) {
                        (true, true) => out.sentinel_hits += 1,
                        (true, false) => out.sentinel_misses += 1,
                        (false, true) => out.resident_hits += 1,
                        (false, false) => out.resident_misses += 1,
                    }
                }
            }
            // Repair tick: reconcile if the device diverged.
            _ => {
                if ctl.needs_reconcile() {
                    out.reconcile_passes += 1;
                    let _ = ctl.reconcile();
                }
            }
        }
    }

    // Drain: retry wedged cleanups and reconcile until the device and the
    // resource manager agree. Every trigger is one-shot, so once the plan
    // exhausts each pass makes strict progress.
    let budget = 16 + cfg.faults.triggers().len();
    let mut converged = false;
    for _ in 0..budget {
        // Each drain pass re-evaluates the armed SLOs (a no-op when
        // disarmed): faults that accumulated during the campaign breach
        // here at a deterministic sim-clock instant.
        ctl.slo_check();
        if !ctl.channel().is_connected() {
            ctl.channel_mut().reconnect();
        }
        let mut wedged: Vec<String> = ctl.wedged_programs().cloned().collect();
        wedged.sort();
        for name in wedged {
            match ctl.revoke(&name) {
                Ok(_) => out.revokes_ok += 1,
                Err(CtlError::Wedged { .. }) => out.revokes_faulted += 1,
                Err(e) => return Err(e),
            }
        }
        if ctl.needs_reconcile() || !ctl.audit()?.clean() {
            out.reconcile_passes += 1;
            let _ = ctl.reconcile();
            continue;
        }
        converged = true;
        break;
    }
    out.converged = converged;

    // Post-drain burst: the sentinel and every surviving program must
    // forward again.
    resident.retain(|i| ctl.program(&format!("c{i}")).is_some());
    let outcome = ctl.inject_sharded(0, &frame_to(SENTINEL_DST))?;
    if outcome.emitted.iter().any(|&(pt, _)| pt == SENTINEL_PORT) {
        out.sentinel_hits += 1;
    } else {
        out.sentinel_misses += 1;
    }
    for &i in &resident {
        let outcome = ctl.inject_sharded(0, &frame_to(pool_dst(i)))?;
        if outcome.emitted.iter().any(|&(pt, _)| pt == pool_port(i)) {
            out.resident_hits += 1;
        } else {
            out.resident_misses += 1;
        }
    }

    // Final SLO pass over the post-drain state, then count the emitted
    // violation events straight from the merged ring — the same ring the
    // fingerprint hashes, so breaches are part of the determinism receipt.
    ctl.slo_check();
    out.slo_violations = ctl.merged_trace().map_or(0, |t| {
        t.events()
            .filter(|e| matches!(e.kind, rmt_sim::trace::TraceEventKind::SloViolation { .. }))
            .count() as u64
    });

    out.final_audit = ctl.audit()?;
    out.fault_stats = ctl.fault_stats();
    out.invariant_violations = total_violations(&ctl);
    out.trace_fingerprint = trace_fingerprint(&ctl);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::fault::FaultPlan;

    #[test]
    fn fault_free_campaign_is_clean_and_deterministic() {
        let cfg = ChaosConfig { seed: 7, steps: 30, ..ChaosConfig::default() };
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.sentinel_misses, 0);
        assert_eq!(a.resident_misses, 0);
        assert_eq!(a.invariant_violations, 0);
        assert!(a.converged);
        assert!(a.final_audit.clean());
        assert!(a.deploys_ok > 0);
        assert_eq!(a.trace_fingerprint, b.trace_fingerprint);
    }

    #[test]
    fn seeded_fault_campaign_converges_with_sentinel_intact() {
        let cfg = ChaosConfig {
            seed: 11,
            steps: 60,
            faults: FaultPlan::random(11, 6, 400),
            ..ChaosConfig::default()
        };
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.sentinel_misses, 0, "sentinel misforwarded: {a:?}");
        assert_eq!(a.resident_misses, 0, "resident program misforwarded: {a:?}");
        assert_eq!(a.invariant_violations, 0);
        assert!(a.converged, "drain did not converge: {a:?}");
        assert!(a.final_audit.clean(), "device diverged: {:?}", a.final_audit);
        assert_eq!(a.trace_fingerprint, b.trace_fingerprint, "same seed, different trace");
    }

    #[test]
    fn clean_campaign_with_armed_watchdog_emits_no_violations() {
        let cfg = ChaosConfig {
            seed: 7,
            steps: 30,
            watchdog: Some(SloThresholds {
                max_deploy_failures: Some(0),
                max_p99_write_ns: Some(u64::MAX),
                ..SloThresholds::default()
            }),
            ..ChaosConfig::default()
        };
        let out = run(&cfg).unwrap();
        assert_eq!(out.slo_violations, 0, "{out:?}");
        assert!(out.converged);
        assert!(out.final_audit.clean());
    }

    #[test]
    fn breaching_faults_produce_deterministic_slo_violations() {
        let cfg = ChaosConfig {
            seed: 11,
            steps: 60,
            faults: FaultPlan::random(11, 6, 400),
            watchdog: Some(SloThresholds {
                max_deploy_failures: Some(0),
                max_drop_ppm: Some(0),
                ..SloThresholds::default()
            }),
            ..ChaosConfig::default()
        };
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert!(
            a.deploys_faulted + a.revokes_faulted > 0,
            "campaign should hit faults: {a:?}"
        );
        assert!(a.slo_violations > 0, "breaching thresholds must emit events: {a:?}");
        assert_eq!(a.slo_violations, b.slo_violations);
        assert_eq!(
            a.trace_fingerprint, b.trace_fingerprint,
            "SloViolation events must replay bit-for-bit"
        );
        assert!(a.converged, "{a:?}");
    }

    #[test]
    fn parallel_campaign_is_clean_and_deterministic() {
        let cfg = ChaosConfig {
            seed: 13,
            steps: 40,
            workers: 2,
            faults: FaultPlan::random(13, 4, 300),
            ..ChaosConfig::default()
        };
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.sentinel_misses, 0, "sentinel misforwarded under workers: {a:?}");
        assert_eq!(a.resident_misses, 0, "resident misforwarded under workers: {a:?}");
        assert_eq!(a.invariant_violations, 0);
        assert!(a.converged, "drain did not converge: {a:?}");
        assert!(a.final_audit.clean(), "device diverged: {:?}", a.final_audit);
        assert_eq!(a.trace_fingerprint, b.trace_fingerprint, "same seed, different trace");
    }
}
