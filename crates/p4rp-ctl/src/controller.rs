//! The P4runpro controller: the deploy / revoke / monitor lifecycle
//! (§3.1, §3.2).
//!
//! `deploy` runs the full runtime-compilation pipeline — parse, semantic
//! check, lowering, constraint-based allocation against the live resource
//! state, memory granting, entry generation, and the consistent two-batch
//! install of Figure 6 — then records everything needed to later revoke
//! the program. Timings are split the way the paper reports them: parse
//! and allocation are measured wall-clock (real computation, Figure 7);
//! the data plane update advances the simulated `bfrt`-calibrated control
//! channel (Table 1).

use crate::resman::ResourceManager;
use crate::telemetry::{LifecycleSpan, ResourceGauges, TelemetryReport};
use p4rp_compiler::alloc::{allocate, AllocConfig, AllocView, Allocation};
use p4rp_compiler::consistency::{plan_install, plan_remove, InstalledHandles};
use p4rp_compiler::entrygen::{generate_cached, EntryGenCache, ProgramImage};
use p4rp_compiler::ir::{lower, IrOp, MemDecl, ProgramIr};
use p4rp_compiler::CompileError;
use p4rp_dataplane::{provision, Dataplane, LogicalRpb, RpbId, NUM_RPBS, RPB_MEM_SIZE};
use p4rp_lang::{check, parse, CheckContext};
use rmt_sim::clock::Nanos;
use rmt_sim::control::{ControlChannel, LatencyModel};
use rmt_sim::error::SimError;
use rmt_sim::switch::{ControlOp, OpResult, ProcessOutcome, Switch, SwitchConfig, TableRef};
use rmt_sim::trace::{LifecycleKind, TraceBuffer, TraceConfig, TraceStats};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Controller errors.
#[derive(Debug)]
pub enum CtlError {
    /// Compile.
    Compile(CompileError),
    /// Sim.
    Sim(SimError),
    /// DuplicateProgram.
    DuplicateProgram(String),
    /// NoSuchProgram.
    NoSuchProgram(String),
    /// NoSuchMemory.
    NoSuchMemory { program: String, memory: String },
    /// AddressOutOfRange.
    AddressOutOfRange { memory: String, addr: u32, size: u32 },
}

impl core::fmt::Display for CtlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CtlError::Compile(e) => write!(f, "compile error: {e}"),
            CtlError::Sim(e) => write!(f, "data plane error: {e}"),
            CtlError::DuplicateProgram(n) => write!(f, "program `{n}` is already deployed"),
            CtlError::NoSuchProgram(n) => write!(f, "no deployed program `{n}`"),
            CtlError::NoSuchMemory { program, memory } => {
                write!(f, "program `{program}` has no memory `{memory}`")
            }
            CtlError::AddressOutOfRange { memory, addr, size } => {
                write!(f, "address {addr} out of range for `{memory}` (size {size})")
            }
        }
    }
}

impl std::error::Error for CtlError {}

impl From<CompileError> for CtlError {
    fn from(e: CompileError) -> Self {
        CtlError::Compile(e)
    }
}

impl From<SimError> for CtlError {
    fn from(e: SimError) -> Self {
        CtlError::Sim(e)
    }
}

/// CtlResult.
pub type CtlResult<T> = Result<T, CtlError>;

/// A deployed program's full record.
#[derive(Debug, Clone)]
pub struct InstalledProgram {
    /// Image.
    pub image: ProgramImage,
    /// Handles.
    pub handles: InstalledHandles,
    /// Allocation.
    pub allocation: Allocation,
}

/// What `deploy` reports per program (the Figure 7 / Table 1 quantities).
#[derive(Debug, Clone)]
pub struct DeployReport {
    /// Human-readable name.
    pub name: String,
    /// Prog id.
    pub prog_id: u16,
    /// Wall-clock parse + check time (≈2 ms in the paper, negligible).
    pub parse_wall: Duration,
    /// Wall-clock allocation-scheme computation (Figure 7).
    pub alloc_wall: Duration,
    /// Alloc nodes.
    pub alloc_nodes: u64,
    /// Wall-clock spent applying batches through the control channel
    /// (entry encode + table mutation on this side of the simulated
    /// `bfrt` latency, which is reported separately as `update_delay`).
    pub channel_wall: Duration,
    /// Simulated data plane update latency (Table 1).
    pub update_delay: Nanos,
    /// Entries installed.
    pub entries_installed: usize,
    /// Depth.
    pub depth: usize,
    /// Passes.
    pub passes: u8,
}

/// A program compiled and speculatively allocated but not yet committed
/// to the data plane. Produced by the parse → check → lower → allocate
/// front half of `deploy`; consumed by the validate-commit back half.
///
/// The allocation inside may have been computed against a *snapshot* of
/// the resource view (the concurrent `deploy_many` path); `commit` with
/// `revalidate` re-checks it against the live view and re-runs the
/// solver if the speculation lost a conflict.
#[derive(Debug, Clone)]
struct CompiledProgram {
    name: String,
    ir: ProgramIr,
    allocation: Allocation,
    parse_wall: Duration,
    alloc_wall: Duration,
}

/// What `revoke` reports.
#[derive(Debug, Clone)]
pub struct RevokeReport {
    /// Human-readable name.
    pub name: String,
    /// Update delay.
    pub update_delay: Nanos,
}

/// The assembled control plane.
pub struct Controller {
    switch: Switch,
    dp: Dataplane,
    channel: ControlChannel,
    resman: ResourceManager,
    programs: HashMap<String, InstalledProgram>,
    next_prog_id: u16,
    free_ids: Vec<u16>,
    alloc_cfg: AllocConfig,
    check_ctx: CheckContext,
    /// Telemetry epoch: bumped at every lifecycle event that mutates the
    /// data plane, mirrored into the switch's recorder when enabled.
    epoch: u64,
    spans: Vec<LifecycleSpan>,
    /// Opt-in deploy fast path: vectored (single-batch, marginal-cost)
    /// channel application and shape-cached entry generation. Off by
    /// default so the Table 1 / Figure 13 per-op latency reproductions
    /// keep their calibrated costs.
    fast_path: bool,
    entry_cache: EntryGenCache,
    /// Speculative allocations that failed validation at commit time and
    /// were re-solved against the live view (`deploy_many` conflicts).
    spec_conflicts: u64,
}

impl Controller {
    /// Provision the P4runpro data plane and initialize the control plane.
    pub fn new(switch_cfg: SwitchConfig, alloc_cfg: AllocConfig) -> CtlResult<Controller> {
        let (switch, dp) = provision(switch_cfg)?;
        let mut check_ctx = CheckContext::with_fields(dp.fields.field_names());
        check_ctx.max_memory = u64::from(RPB_MEM_SIZE);
        Ok(Controller {
            switch,
            dp,
            channel: ControlChannel::new(LatencyModel::default()),
            resman: ResourceManager::new(),
            programs: HashMap::new(),
            next_prog_id: 1,
            free_ids: Vec::new(),
            alloc_cfg,
            check_ctx,
            epoch: 0,
            spans: Vec::new(),
            fast_path: false,
            entry_cache: EntryGenCache::default(),
            spec_conflicts: 0,
        })
    }

    /// Provision with the paper's default configuration (R = 1, f1 with
    /// α = 0.7 / β = 0.3).
    pub fn with_defaults() -> CtlResult<Controller> {
        Controller::new(SwitchConfig::default(), AllocConfig::default())
    }

    /// Switch.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Switch mut.
    pub fn switch_mut(&mut self) -> &mut Switch {
        &mut self.switch
    }

    /// Dataplane.
    pub fn dataplane(&self) -> &Dataplane {
        &self.dp
    }

    /// Resources.
    pub fn resources(&self) -> &ResourceManager {
        &self.resman
    }

    /// Channel.
    pub fn channel(&self) -> &ControlChannel {
        &self.channel
    }

    /// Alloc config.
    pub fn alloc_config(&self) -> &AllocConfig {
        &self.alloc_cfg
    }

    /// Set alloc config.
    pub fn set_alloc_config(&mut self, cfg: AllocConfig) {
        self.alloc_cfg = cfg;
    }

    /// Is the deploy fast path (vectored channel batches, cached entry
    /// generation) enabled?
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enable / disable the deploy fast path. `deploy_many` always uses
    /// it regardless of this flag.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Speculative allocations that lost a conflict at commit time and
    /// were re-solved against the live resource view.
    pub fn spec_conflicts(&self) -> u64 {
        self.spec_conflicts
    }

    /// Entry-generation shape-cache hit/miss counters.
    pub fn entry_cache_stats(&self) -> (u64, u64) {
        (self.entry_cache.hits, self.entry_cache.misses)
    }

    /// Deployed programs.
    pub fn deployed_programs(&self) -> impl Iterator<Item = (&String, &InstalledProgram)> {
        self.programs.iter()
    }

    /// Program.
    pub fn program(&self, name: &str) -> Option<&InstalledProgram> {
        self.programs.get(name)
    }

    /// Turn on packet-side telemetry in the switch, synchronized to the
    /// controller's current epoch.
    pub fn enable_telemetry(&mut self) {
        let epoch = self.epoch;
        self.switch.enable_telemetry().epoch = epoch;
    }

    /// Current telemetry epoch (number of lifecycle events so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Turn on the flight recorder, synchronized to the controller's
    /// current epoch and the control channel's simulated clock.
    pub fn enable_trace(&mut self, cfg: TraceConfig) -> &mut TraceBuffer {
        let epoch = self.epoch;
        let now = self.channel.clock.now();
        let t = self.switch.enable_trace(cfg);
        t.set_epoch(epoch);
        t.set_now(now);
        t
    }

    /// Turn the flight recorder off, returning the final ring.
    pub fn disable_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.switch.disable_trace()
    }

    /// The flight recorder, if enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.switch.trace()
    }

    /// Mutable access to the flight recorder, if enabled.
    pub fn trace_mut(&mut self) -> Option<&mut TraceBuffer> {
        self.switch.trace_mut()
    }

    /// Flight-recorder stats (the disabled sentinel when tracing is off).
    pub fn trace_stats(&self) -> TraceStats {
        self.switch.trace_stats()
    }

    /// Every lifecycle span recorded so far, oldest first.
    pub fn lifecycle_spans(&self) -> &[LifecycleSpan] {
        &self.spans
    }

    /// Snapshot the full telemetry report: spans + gauges + control-channel
    /// latency + (when enabled) the data plane's packet-side counters.
    pub fn telemetry_report(&self) -> TelemetryReport {
        TelemetryReport {
            epoch: self.epoch,
            programs_deployed: self.programs.len() as u64,
            spans: self.spans.clone(),
            resources: ResourceGauges::collect(&self.resman),
            control_write_latency: self.channel.write_latency.clone(),
            dataplane: self.switch.telemetry().cloned(),
            trace: self.switch.trace_stats(),
        }
    }

    /// A lifecycle event is about to mutate the data plane: open a new
    /// epoch so packet-side series split at this boundary.
    fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        let epoch = self.epoch;
        if let Some(rec) = self.switch.telemetry_mut() {
            rec.epoch = epoch;
        }
        // The bump lands in the trace *outside* any batch (the install /
        // remove batches follow it), which is exactly what the
        // epoch-splits-batch invariant demands.
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.note_epoch(epoch);
        }
        epoch
    }

    fn take_prog_id(&mut self) -> CtlResult<u16> {
        if let Some(id) = self.free_ids.pop() {
            return Ok(id);
        }
        if self.next_prog_id == u16::MAX {
            return Err(CtlError::Compile(CompileError::ProgramIdsExhausted));
        }
        let id = self.next_prog_id;
        self.next_prog_id += 1;
        Ok(id)
    }

    /// Deploy every program in a P4runpro source string.
    ///
    /// Programs are deployed sequentially, best-effort: an error aborts at
    /// the failing program, leaving earlier ones installed (first-come-
    /// first-serve, §4.3).
    pub fn deploy(&mut self, source: &str) -> CtlResult<Vec<DeployReport>> {
        let t0 = Instant::now();
        let unit = parse(source).map_err(CompileError::from)?;
        check(&unit, &self.check_ctx).map_err(CompileError::from)?;
        let parse_wall = t0.elapsed();
        let mems: Vec<MemDecl> = unit
            .annotations
            .iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();

        let mut reports = Vec::new();
        for prog in &unit.programs {
            if self.programs.contains_key(&prog.name) {
                return Err(CtlError::DuplicateProgram(prog.name.clone()));
            }
            let ir = lower(prog, &mems)?;

            // Allocation against the live resource view (Figure 7 timing).
            let t_alloc = Instant::now();
            let allocation = allocate(&ir, self.resman.alloc_view(), &self.alloc_cfg)?;
            let alloc_wall = t_alloc.elapsed();

            let compiled = CompiledProgram {
                name: prog.name.clone(),
                ir,
                allocation,
                parse_wall,
                alloc_wall,
            };
            let vectored = self.fast_path;
            reports.push(self.commit(compiled, false, vectored)?);
        }
        Ok(reports)
    }

    /// Deploy many independent source strings concurrently.
    ///
    /// The compile front half (parse, check, lower, allocate) of every
    /// source runs on worker threads against a *snapshot* of the resource
    /// view taken at entry; commits stay serialized on the control
    /// channel, in input order, so §4.3's first-come-first-serve
    /// semantics hold by index. Each commit revalidates its speculative
    /// allocation against the live view and re-runs the solver if an
    /// earlier commit took the resources it was counting on
    /// ([`Controller::spec_conflicts`] counts the losers). A speculation
    /// that found *no* placement is reported as failure directly:
    /// resources only shrink while the batch commits, and feasibility is
    /// monotone in resources.
    ///
    /// Returns one result per source, each carrying one report per
    /// program in that source. Always uses the vectored channel path.
    pub fn deploy_many(&mut self, sources: &[String]) -> Vec<CtlResult<Vec<DeployReport>>> {
        let n = sources.len();
        if n == 0 {
            return Vec::new();
        }
        let snapshot = self.resman.alloc_view().clone();
        let cfg = self.alloc_cfg;
        let ctx = &self.check_ctx;
        // At least two workers even on a single-core host: the pipeline's
        // cross-thread handoff should be exercised wherever it runs, and
        // the interleaving overhead is noise next to a solver call.
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(2, 8)
            .min(n);
        let mut compiled: Vec<Option<CtlResult<Vec<CompiledProgram>>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            // The vendored channel is single-consumer, so work is handed
            // out by striding indices rather than through a shared queue.
            let (tx, rx) = crossbeam::channel::unbounded();
            for w in 0..workers {
                let tx = tx.clone();
                let snapshot = &snapshot;
                s.spawn(move || {
                    let mut i = w;
                    while i < n {
                        let r = compile_source(&sources[i], ctx, snapshot, &cfg);
                        let _ = tx.send((i, r));
                        i += workers;
                    }
                });
            }
            drop(tx);
            for (i, r) in rx.iter() {
                compiled[i] = Some(r);
            }
        });
        compiled
            .into_iter()
            .map(|r| {
                let cs = r.expect("every index was compiled")?;
                let mut reps = Vec::with_capacity(cs.len());
                for c in cs {
                    reps.push(self.commit(c, true, true)?);
                }
                Ok(reps)
            })
            .collect()
    }

    /// Does a speculative allocation still fit the live resource view?
    /// Mirrors what `commit` is about to do: cumulative entry needs per
    /// physical RPB, and first-fit placement of every virtual memory in
    /// the RPB the solver chose for it.
    fn validates(&self, c: &CompiledProgram) -> bool {
        let view = self.resman.alloc_view();
        let mut need = [0usize; NUM_RPBS];
        for (slot, level) in c.ir.levels.iter().enumerate() {
            let n = level.iter().filter(|p| p.op != IrOp::Nop).count();
            let idx = usize::from(LogicalRpb::from_index(c.allocation.x[slot]).rpb().0) - 1;
            need[idx] += n;
        }
        if need.iter().zip(&view.te_free).any(|(n, f)| n > f) {
            return false;
        }
        let mut free: HashMap<usize, Vec<u32>> = HashMap::new();
        for m in &c.ir.memories {
            let idx = usize::from(c.allocation.mem_rpb[&m.name].0) - 1;
            let parts = free.entry(idx).or_insert_with(|| view.mem_free[idx].clone());
            match parts.iter().position(|&p| p >= m.size) {
                Some(pi) => parts[pi] -= m.size,
                None => return false,
            }
        }
        true
    }

    /// Commit a compiled program to the data plane: grant memory, generate
    /// entries (through the shape cache), charge budgets, and install via
    /// the Figure 6 consistent batch order. With `revalidate`, first check
    /// the (possibly stale) speculative allocation against the live view
    /// and re-run the solver on conflict. With `vectored`, the install
    /// goes out as one ordered batch at marginal per-op cost.
    fn commit(
        &mut self,
        mut c: CompiledProgram,
        revalidate: bool,
        vectored: bool,
    ) -> CtlResult<DeployReport> {
        if self.programs.contains_key(&c.name) {
            return Err(CtlError::DuplicateProgram(c.name.clone()));
        }
        if revalidate && !self.validates(&c) {
            self.spec_conflicts += 1;
            let t = Instant::now();
            c.allocation = allocate(&c.ir, self.resman.alloc_view(), &self.alloc_cfg)?;
            c.alloc_wall += t.elapsed();
        }

        // Grant physical memory where the solver placed each vmem.
        let mut offsets: HashMap<String, (RpbId, u32)> = HashMap::new();
        let mut granted: Vec<(RpbId, u32, u32)> = Vec::new();
        for m in &c.ir.memories {
            let rpb = c.allocation.mem_rpb[&m.name];
            match self.resman.grant_memory(rpb, m.size) {
                Some(off) => {
                    offsets.insert(m.name.clone(), (rpb, off));
                    granted.push((rpb, off, m.size));
                }
                None => {
                    for (r, o, s) in granted {
                        self.resman.unlock_memory(r, o, s);
                    }
                    return Err(CtlError::Compile(CompileError::AllocationFailed {
                        reason: format!("memory grant for `{}` failed", m.name),
                    }));
                }
            }
        }

        let prog_id = self.take_prog_id()?;
        let image = match generate_cached(
            &mut self.entry_cache,
            &c.ir,
            &c.allocation,
            &offsets,
            prog_id,
            &self.dp.fields,
            self.switch.field_table(),
        ) {
            Ok(i) => i,
            Err(e) => {
                for (r, o, s) in granted {
                    self.resman.unlock_memory(r, o, s);
                }
                self.free_ids.push(prog_id);
                return Err(e.into());
            }
        };

        // Charge entry budgets: RPBs (validated by the solver),
        // initialization paths, and the recirculation block.
        let mut per_rpb: HashMap<RpbId, usize> = HashMap::new();
        for (rpb, _) in &image.rpb_entries {
            *per_rpb.entry(*rpb).or_insert(0) += 1;
        }
        let init_ok = self.resman.charge_init(1);
        if !init_ok || !self.resman.charge_recirc(image.recirc_ids.len()) {
            if init_ok {
                self.resman.refund_init(1);
            }
            for (r, o, s) in granted {
                self.resman.unlock_memory(r, o, s);
            }
            self.free_ids.push(prog_id);
            return Err(CtlError::Compile(CompileError::InitTableFull {
                path: "initialization/recirculation block".into(),
            }));
        }
        for (rpb, n) in &per_rpb {
            // Solver-validated; charge unconditionally.
            let ok = self.resman.charge_entries(*rpb, *n);
            debug_assert!(ok, "solver and resource manager disagree");
        }

        // Consistent install: program components first, filters last.
        // The install mutates the data plane, so it opens a new
        // telemetry epoch before the first batch lands.
        let memory_claimed: u64 = c.ir.memories.iter().map(|m| u64::from(m.size)).sum();
        let epoch = self.bump_epoch();
        let mut batches = plan_install(&image, &self.dp, self.switch.field_table())?;
        let t_chan = Instant::now();
        let mut update_delay = Nanos::ZERO;
        let mut entries_written = 0u64;
        let mut handles = InstalledHandles {
            mem_regions: image.mem_regions.clone(),
            ..Default::default()
        };
        if vectored {
            // One ordered batch: body entries first, filter last, so the
            // activation still flips strictly after every component is in
            // place, at marginal per-op cost.
            let filters = batches.pop().expect("plan_install returns two batches");
            let body = batches.pop().expect("plan_install returns two batches");
            let boundary = body.ops.len();
            let mut ops = body.ops;
            ops.extend(filters.ops);
            let (results, cost) = self.channel.apply_batch_vectored(&mut self.switch, &ops)?;
            update_delay += cost;
            for (k, (op, res)) in ops.iter().zip(&results).enumerate() {
                if let (ControlOp::InsertEntry { table, .. }, OpResult::Inserted(h)) = (op, res) {
                    entries_written += 1;
                    let rec: &mut Vec<(TableRef, _)> = if k < boundary {
                        &mut handles.body_handles
                    } else {
                        &mut handles.filter_handles
                    };
                    rec.push((*table, *h));
                }
            }
        } else {
            for (bi, batch) in batches.iter().enumerate() {
                let (results, cost) = self.channel.apply_batch(&mut self.switch, &batch.ops)?;
                update_delay += cost;
                for (op, res) in batch.ops.iter().zip(&results) {
                    if let (ControlOp::InsertEntry { table, .. }, OpResult::Inserted(h)) = (op, res)
                    {
                        entries_written += 1;
                        let rec: &mut Vec<(TableRef, _)> = if bi == 0 {
                            &mut handles.body_handles
                        } else {
                            &mut handles.filter_handles
                        };
                        rec.push((*table, *h));
                    }
                }
            }
        }
        let channel_wall = t_chan.elapsed();

        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.lifecycle(LifecycleKind::Deploy, prog_id, epoch, update_delay);
        }

        self.spans.push(LifecycleSpan {
            seq: self.spans.len() as u64,
            kind: "deploy".into(),
            program: c.name.clone(),
            prog_id: u64::from(prog_id),
            epoch,
            parse_wall_ns: c.parse_wall.as_nanos() as u64,
            solver_wall_ns: c.alloc_wall.as_nanos() as u64,
            solver_nodes: c.allocation.nodes_explored,
            channel_wall_ns: channel_wall.as_nanos() as u64,
            entries_written,
            entries_revoked: 0,
            memory_claimed,
            memory_released: 0,
            update_delay_ns: update_delay.0,
        });

        let report = DeployReport {
            name: c.name.clone(),
            prog_id,
            parse_wall: c.parse_wall,
            alloc_wall: c.alloc_wall,
            alloc_nodes: c.allocation.nodes_explored,
            channel_wall,
            update_delay,
            entries_installed: image.entry_count(),
            depth: c.ir.depth(),
            passes: image.passes,
        };
        self.programs
            .insert(c.name, InstalledProgram { image, handles, allocation: c.allocation });
        Ok(report)
    }

    /// Revoke a deployed program (Figure 6 left half): filters first, then
    /// components, then lock + reset + release its memory.
    pub fn revoke(&mut self, name: &str) -> CtlResult<RevokeReport> {
        let vectored = self.fast_path;
        self.revoke_impl(name, vectored)
    }

    /// Revoke many programs, best-effort: one result per name, always on
    /// the vectored channel path.
    pub fn revoke_many(&mut self, names: &[String]) -> Vec<CtlResult<RevokeReport>> {
        names.iter().map(|n| self.revoke_impl(n, true)).collect()
    }

    fn revoke_impl(&mut self, name: &str, vectored: bool) -> CtlResult<RevokeReport> {
        let installed = self
            .programs
            .remove(name)
            .ok_or_else(|| CtlError::NoSuchProgram(name.to_string()))?;

        // Lock regions before the reset batch touches them.
        for r in &installed.handles.mem_regions {
            self.resman.lock_memory(r.rpb, r.offset, r.size);
        }

        // The remove batches mutate the data plane: new telemetry epoch.
        let epoch = self.bump_epoch();
        let batches = plan_remove(&installed.handles);
        let t_chan = Instant::now();
        let mut update_delay = Nanos::ZERO;
        let mut entries_revoked = 0u64;
        if vectored {
            // One ordered batch; the filter deletions still come first, so
            // the program stops matching before any component disappears.
            let ops: Vec<ControlOp> = batches.into_iter().flat_map(|b| b.ops).collect();
            let (_, cost) = self.channel.apply_batch_vectored(&mut self.switch, &ops)?;
            update_delay += cost;
            entries_revoked += ops
                .iter()
                .filter(|op| matches!(op, ControlOp::DeleteEntry { .. }))
                .count() as u64;
        } else {
            for batch in &batches {
                let (_, cost) = self.channel.apply_batch(&mut self.switch, &batch.ops)?;
                update_delay += cost;
                entries_revoked += batch
                    .ops
                    .iter()
                    .filter(|op| matches!(op, ControlOp::DeleteEntry { .. }))
                    .count() as u64;
            }
        }
        let channel_wall = t_chan.elapsed();

        // Reset complete → return memory to the free lists.
        for r in &installed.handles.mem_regions {
            self.resman.unlock_memory(r.rpb, r.offset, r.size);
        }
        // Refund entry budgets.
        let mut per_rpb: HashMap<RpbId, usize> = HashMap::new();
        for (rpb, _) in &installed.image.rpb_entries {
            *per_rpb.entry(*rpb).or_insert(0) += 1;
        }
        for (rpb, n) in per_rpb {
            self.resman.refund_entries(rpb, n);
        }
        self.resman.refund_init(1);
        self.resman.refund_recirc(installed.image.recirc_ids.len());
        self.free_ids.push(installed.image.prog_id);

        let memory_released: u64 = installed
            .handles
            .mem_regions
            .iter()
            .map(|r| u64::from(r.size))
            .sum();
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.lifecycle(LifecycleKind::Revoke, installed.image.prog_id, epoch, update_delay);
        }
        self.spans.push(LifecycleSpan {
            seq: self.spans.len() as u64,
            kind: "revoke".into(),
            program: name.to_string(),
            prog_id: u64::from(installed.image.prog_id),
            epoch,
            parse_wall_ns: 0,
            solver_wall_ns: 0,
            solver_nodes: 0,
            channel_wall_ns: channel_wall.as_nanos() as u64,
            entries_written: 0,
            entries_revoked,
            memory_claimed: 0,
            memory_released,
            update_delay_ns: update_delay.0,
        });

        Ok(RevokeReport { name: name.to_string(), update_delay })
    }

    /// Incremental update of a running program (§7 "Incremental Update"):
    /// implemented the way the prototype does it — revoke the old program
    /// and allocate the new one through the compiler. Returns the combined
    /// deploy report with the revocation's update delay folded in.
    pub fn update(&mut self, name: &str, new_source: &str) -> CtlResult<DeployReport> {
        let revoke = self.revoke(name)?;
        let mut reports = self.deploy(new_source)?;
        let mut report = reports.remove(0);
        report.update_delay += revoke.update_delay;
        Ok(report)
    }

    /// Read a program's virtual memory through the monitoring path
    /// (virtual → physical address translation, §3.2).
    pub fn read_memory(&mut self, program: &str, memory: &str) -> CtlResult<Vec<u32>> {
        let region = self.find_region(program, memory)?;
        let op = ControlOp::ReadRegRange {
            array: region.0.array_ref(),
            start: region.1,
            len: region.2,
        };
        let (mut results, _) = self.channel.apply_batch(&mut self.switch, &[op])?;
        match results.pop() {
            Some(OpResult::ReadRange(v)) => Ok(v),
            _ => unreachable!("read returns a range"),
        }
    }

    /// Write one bucket of a program's virtual memory (raw-API bucket
    /// updates, e.g. filling the load balancer's DIP pool, Appendix B.2).
    pub fn write_memory(&mut self, program: &str, memory: &str, vaddr: u32, value: u32) -> CtlResult<()> {
        let (rpb, offset, size) = self.find_region(program, memory)?;
        if vaddr >= size {
            return Err(CtlError::AddressOutOfRange { memory: memory.into(), addr: vaddr, size });
        }
        let op = ControlOp::WriteReg { array: rpb.array_ref(), addr: offset + vaddr, value };
        self.channel.apply_batch(&mut self.switch, &[op])?;
        Ok(())
    }

    fn find_region(&self, program: &str, memory: &str) -> CtlResult<(RpbId, u32, u32)> {
        let p = self
            .programs
            .get(program)
            .ok_or_else(|| CtlError::NoSuchProgram(program.to_string()))?;
        p.image
            .mem_regions
            .iter()
            .find(|r| r.name == memory)
            .map(|r| (r.rpb, r.offset, r.size))
            .ok_or_else(|| CtlError::NoSuchMemory {
                program: program.to_string(),
                memory: memory.to_string(),
            })
    }

    /// Configure a traffic-manager multicast group (§7 extension).
    pub fn set_multicast_group(&mut self, group: u16, ports: Vec<u16>) -> CtlResult<()> {
        Ok(self.switch.set_multicast_group(group, ports)?)
    }

    /// Process one frame through the switch (traffic path).
    pub fn inject(&mut self, port: u16, frame: &[u8]) -> CtlResult<ProcessOutcome> {
        Ok(self.switch.process_frame(port, frame)?)
    }

    /// [`Controller::inject`] into a caller-owned outcome — the allocation-free
    /// variant used by replay loops that reuse one outcome across packets.
    pub fn inject_into(
        &mut self,
        port: u16,
        frame: &[u8],
        outcome: &mut ProcessOutcome,
    ) -> CtlResult<()> {
        Ok(self.switch.process_frame_into(port, frame, outcome)?)
    }
}

/// The compile front half of a deploy — parse, check, lower, allocate —
/// against a caller-supplied (possibly snapshot) resource view. Runs on
/// `deploy_many` worker threads; touches no controller state.
fn compile_source(
    source: &str,
    ctx: &CheckContext,
    view: &AllocView,
    cfg: &AllocConfig,
) -> CtlResult<Vec<CompiledProgram>> {
    let t0 = Instant::now();
    let unit = parse(source).map_err(CompileError::from)?;
    check(&unit, ctx).map_err(CompileError::from)?;
    let parse_wall = t0.elapsed();
    let mems: Vec<MemDecl> = unit
        .annotations
        .iter()
        .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
        .collect();
    let mut out = Vec::with_capacity(unit.programs.len());
    for prog in &unit.programs {
        let ir = lower(prog, &mems)?;
        let t_alloc = Instant::now();
        let allocation = allocate(&ir, view, cfg)?;
        out.push(CompiledProgram {
            name: prog.name.clone(),
            ir,
            allocation,
            parse_wall,
            alloc_wall: t_alloc.elapsed(),
        });
    }
    Ok(out)
}
