//! The P4runpro controller: the deploy / revoke / monitor lifecycle
//! (§3.1, §3.2).
//!
//! `deploy` runs the full runtime-compilation pipeline — parse, semantic
//! check, lowering, constraint-based allocation against the live resource
//! state, memory granting, entry generation, and the consistent two-batch
//! install of Figure 6 — then records everything needed to later revoke
//! the program. Timings are split the way the paper reports them: parse
//! and allocation are measured wall-clock (real computation, Figure 7);
//! the data plane update advances the simulated `bfrt`-calibrated control
//! channel (Table 1).

use crate::resman::ResourceManager;
use crate::telemetry::{
    FaultStats, LifecycleSpan, ParallelStats, ProgramUsage, ResourceGauges, SeriesRing,
    ServerStats, SloStatus, SloThresholds, TelemetryReport, SCHEMA_VERSION,
};
use p4rp_compiler::alloc::{allocate, AllocConfig, AllocView, Allocation};
use p4rp_compiler::consistency::{plan_install, plan_remove, InstalledHandles};
use p4rp_compiler::entrygen::{generate_cached, EntryGenCache, ProgramImage};
use p4rp_compiler::ir::{lower, IrOp, MemDecl, ProgramIr};
use p4rp_compiler::CompileError;
use p4rp_dataplane::{provision, Dataplane, LogicalRpb, RpbId, NUM_RPBS, RPB_MEM_SIZE};
use p4rp_lang::{check, parse, CheckContext};
use rmt_sim::clock::Nanos;
use rmt_sim::control::{BatchOutcome, ControlChannel, LatencyModel};
use rmt_sim::error::SimError;
use rmt_sim::fault::FaultPlan;
use rmt_sim::parallel::WorkerPool;
use rmt_sim::switch::{ControlOp, OpResult, ProcessOutcome, Switch, SwitchConfig, TableRef};
use rmt_sim::table::{EntryHandle, TableEntry};
use rmt_sim::telemetry::{MetricsRecorder, ProgramMetrics};
use rmt_sim::trace::{LifecycleKind, SloKind, TraceBuffer, TraceConfig, TraceStats};
use std::collections::{BTreeMap, HashMap};
use std::time::{Duration, Instant};

/// How many times a transient channel fault (timeout, drop) is retried
/// before the surrounding plan gives up.
const MAX_RETRIES: u32 = 3;

/// Controller errors.
#[derive(Debug)]
pub enum CtlError {
    /// Compile.
    Compile(CompileError),
    /// Sim.
    Sim(SimError),
    /// DuplicateProgram.
    DuplicateProgram(String),
    /// NoSuchProgram.
    NoSuchProgram(String),
    /// NoSuchMemory.
    NoSuchMemory { program: String, memory: String },
    /// AddressOutOfRange.
    AddressOutOfRange { memory: String, addr: u32, size: u32 },
    /// A mid-plan channel fault aborted this deploy; every applied
    /// operation was rolled back (or wiped by the device reset), so the
    /// device and the resource manager are unchanged. After a device
    /// reset, [`Controller::needs_reconcile`] is set.
    /// DeployFault.
    DeployFault { program: String, fault: SimError },
    /// Cleanup itself faulted (a double fault): the program's inert
    /// remnants stay parked on the device and its resources stay charged.
    /// `revoke` of the program retries the cleanup; `reconcile()` also
    /// retires it.
    /// Wedged.
    Wedged { program: String, fault: SimError },
}

impl core::fmt::Display for CtlError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CtlError::Compile(e) => write!(f, "compile error: {e}"),
            CtlError::Sim(e) => write!(f, "data plane error: {e}"),
            CtlError::DuplicateProgram(n) => write!(f, "program `{n}` is already deployed"),
            CtlError::NoSuchProgram(n) => write!(f, "no deployed program `{n}`"),
            CtlError::NoSuchMemory { program, memory } => {
                write!(f, "program `{program}` has no memory `{memory}`")
            }
            CtlError::AddressOutOfRange { memory, addr, size } => {
                write!(f, "address {addr} out of range for `{memory}` (size {size})")
            }
            CtlError::DeployFault { program, fault } => {
                write!(f, "deploy of `{program}` aborted and rolled back: {fault}")
            }
            CtlError::Wedged { program, fault } => {
                write!(f, "program `{program}` is wedged (cleanup faulted: {fault}); retry revoke")
            }
        }
    }
}

impl std::error::Error for CtlError {}

impl From<CompileError> for CtlError {
    fn from(e: CompileError) -> Self {
        CtlError::Compile(e)
    }
}

impl From<SimError> for CtlError {
    fn from(e: SimError) -> Self {
        CtlError::Sim(e)
    }
}

/// CtlResult.
pub type CtlResult<T> = Result<T, CtlError>;

/// A deployed program's full record.
#[derive(Debug, Clone)]
pub struct InstalledProgram {
    /// Image.
    pub image: ProgramImage,
    /// Handles.
    pub handles: InstalledHandles,
    /// Allocation.
    pub allocation: Allocation,
}

/// What `deploy` reports per program (the Figure 7 / Table 1 quantities).
#[derive(Debug, Clone)]
pub struct DeployReport {
    /// Human-readable name.
    pub name: String,
    /// Prog id.
    pub prog_id: u16,
    /// Wall-clock parse + check time (≈2 ms in the paper, negligible).
    pub parse_wall: Duration,
    /// Wall-clock allocation-scheme computation (Figure 7).
    pub alloc_wall: Duration,
    /// Alloc nodes.
    pub alloc_nodes: u64,
    /// Wall-clock spent applying batches through the control channel
    /// (entry encode + table mutation on this side of the simulated
    /// `bfrt` latency, which is reported separately as `update_delay`).
    pub channel_wall: Duration,
    /// Simulated data plane update latency (Table 1).
    pub update_delay: Nanos,
    /// Entries installed.
    pub entries_installed: usize,
    /// Depth.
    pub depth: usize,
    /// Passes.
    pub passes: u8,
}

/// A program compiled and speculatively allocated but not yet committed
/// to the data plane. Produced by the parse → check → lower → allocate
/// front half of `deploy`; consumed by the validate-commit back half.
///
/// The allocation inside may have been computed against a *snapshot* of
/// the resource view (the concurrent `deploy_many` path); `commit` with
/// `revalidate` re-checks it against the live view and re-runs the
/// solver if the speculation lost a conflict.
#[derive(Debug, Clone)]
struct CompiledProgram {
    name: String,
    ir: ProgramIr,
    allocation: Allocation,
    parse_wall: Duration,
    alloc_wall: Duration,
}

/// What `revoke` reports.
#[derive(Debug, Clone)]
pub struct RevokeReport {
    /// Human-readable name.
    pub name: String,
    /// Update delay.
    pub update_delay: Nanos,
}

/// A program whose cleanup double-faulted: its undo (or removal) plan is
/// parked here, its resources stay charged, and every retry of `revoke`
/// re-applies whatever is still pending. The filter deletions sort first
/// in the pending list, so a wedged program stops matching packets at the
/// first successful retry step.
#[derive(Debug, Clone)]
struct WedgedProgram {
    image: ProgramImage,
    pending_ops: Vec<ControlOp>,
}

/// One device-resident entry in an audit/reconcile snapshot: its handle,
/// its content, and whether a resident program has claimed it.
type DevicePoolEntry = (EntryHandle, TableEntry, bool);

/// What `audit` reports: the device's entry population compared, by
/// content, against what the resource manager says should be installed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditReport {
    /// Entries the installed programs' plans expect on the device.
    pub expected: usize,
    /// Expected entries found (content match, handle reclaimed).
    pub present: usize,
    /// Expected entries absent (e.g. wiped by a device reset).
    pub missing: usize,
    /// Device entries no installed program claims (e.g. wedged remnants).
    pub unexpected: usize,
    /// Programs parked in the wedged state.
    pub wedged: usize,
}

impl AuditReport {
    /// Device state and resource-manager state agree exactly.
    pub fn clean(&self) -> bool {
        self.missing == 0 && self.unexpected == 0 && self.wedged == 0
    }
}

/// What `reconcile` reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReconcileReport {
    /// Entries re-installed for surviving programs.
    pub reinstalled: usize,
    /// Divergent device entries garbage-collected.
    pub deleted: usize,
    /// Wedged programs retired (entries gc'd, resources refunded).
    pub wedged_cleared: usize,
    /// Simulated channel time the repair batches took.
    pub update_delay: Nanos,
}

/// The assembled control plane.
pub struct Controller {
    switch: Switch,
    dp: Dataplane,
    channel: ControlChannel,
    resman: ResourceManager,
    programs: HashMap<String, InstalledProgram>,
    next_prog_id: u16,
    free_ids: Vec<u16>,
    alloc_cfg: AllocConfig,
    check_ctx: CheckContext,
    /// Telemetry epoch: bumped at every lifecycle event that mutates the
    /// data plane, mirrored into the switch's recorder when enabled.
    epoch: u64,
    spans: Vec<LifecycleSpan>,
    /// Opt-in deploy fast path: vectored (single-batch, marginal-cost)
    /// channel application and shape-cached entry generation. Off by
    /// default so the Table 1 / Figure 13 per-op latency reproductions
    /// keep their calibrated costs.
    fast_path: bool,
    entry_cache: EntryGenCache,
    /// Speculative allocations that failed validation at commit time and
    /// were re-solved against the live view (`deploy_many` conflicts).
    spec_conflicts: u64,
    /// Programs whose cleanup double-faulted; disjoint from `programs`.
    wedged: HashMap<String, WedgedProgram>,
    /// Cumulative fault/recovery counters. `faults_injected` only carries
    /// counts from *retired* fault plans; the armed plan's count and the
    /// live wedged / generation figures are folded in by `fault_stats()`.
    fault_stats: FaultStats,
    /// A device reset left the controller's view divergent from the
    /// device; cleared by a successful `reconcile()`.
    needs_reconcile: bool,
    /// The sharded multi-worker data plane, when enabled
    /// ([`Controller::enable_workers`]). `None` keeps the sequential
    /// engine on a branch-not-taken.
    workers: Option<WorkerPool>,
    /// Windowed time series over the merged dataplane counters; fed on
    /// epoch bumps and explicit [`Controller::tick_series`] calls.
    series: Option<SeriesRing>,
    /// The armed SLO watchdog ([`Controller::arm_watchdog`]).
    watchdog: Option<Watchdog>,
    /// Counters from the most recent / live `p4rp-ctl::server` run on
    /// this controller; `None` until a server has served it.
    server_stats: Option<ServerStats>,
}

/// The armed SLO watchdog: thresholds plus per-kind breach latches, so a
/// breach that persists across checks emits exactly one `SloViolation`
/// trace event per non-breach → breach transition.
#[derive(Debug, Clone, Default)]
struct Watchdog {
    thresholds: SloThresholds,
    /// Latched breach state, indexed drop-rate / deploy-failure / p99.
    breached: [bool; 3],
    violations: u64,
}

impl Watchdog {
    fn status(&self) -> SloStatus {
        let names = ["drop_rate", "deploy_failure", "p99_latency"];
        SloStatus {
            thresholds: self.thresholds.clone(),
            violations: self.violations,
            breached: self
                .breached
                .iter()
                .zip(names)
                .filter(|(b, _)| **b)
                .map(|(_, n)| n.to_string())
                .collect(),
        }
    }
}

impl Controller {
    /// Provision the P4runpro data plane and initialize the control plane.
    pub fn new(switch_cfg: SwitchConfig, alloc_cfg: AllocConfig) -> CtlResult<Controller> {
        let (switch, dp) = provision(switch_cfg)?;
        let mut check_ctx = CheckContext::with_fields(dp.fields.field_names());
        check_ctx.max_memory = u64::from(RPB_MEM_SIZE);
        Ok(Controller {
            switch,
            dp,
            channel: ControlChannel::new(LatencyModel::default()),
            resman: ResourceManager::new(),
            programs: HashMap::new(),
            next_prog_id: 1,
            free_ids: Vec::new(),
            alloc_cfg,
            check_ctx,
            epoch: 0,
            spans: Vec::new(),
            fast_path: false,
            entry_cache: EntryGenCache::default(),
            spec_conflicts: 0,
            wedged: HashMap::new(),
            fault_stats: FaultStats::default(),
            needs_reconcile: false,
            workers: None,
            series: None,
            watchdog: None,
            server_stats: None,
        })
    }

    /// Provision with the paper's default configuration (R = 1, f1 with
    /// α = 0.7 / β = 0.3).
    pub fn with_defaults() -> CtlResult<Controller> {
        Controller::new(SwitchConfig::default(), AllocConfig::default())
    }

    /// Switch.
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Switch mut.
    pub fn switch_mut(&mut self) -> &mut Switch {
        &mut self.switch
    }

    /// Dataplane.
    pub fn dataplane(&self) -> &Dataplane {
        &self.dp
    }

    /// Resources.
    pub fn resources(&self) -> &ResourceManager {
        &self.resman
    }

    /// Channel.
    pub fn channel(&self) -> &ControlChannel {
        &self.channel
    }

    /// Mutable channel access (arming fault plans, advancing the clock,
    /// reconnecting after a drop in tests and chaos scenarios).
    pub fn channel_mut(&mut self) -> &mut ControlChannel {
        &mut self.channel
    }

    /// Arm the control channel with a deterministic fault plan. The
    /// previously armed plan's fired count is folded into the cumulative
    /// stats before it is replaced.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_stats.faults_injected += self.channel.fault.faults_fired();
        self.channel.fault = plan;
    }

    /// The armed fault plan.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.channel.fault
    }

    /// Faults fired over the controller's lifetime, across every plan
    /// ever armed.
    fn faults_fired_total(&self) -> u64 {
        self.fault_stats.faults_injected + self.channel.fault.faults_fired()
    }

    /// Cumulative fault / recovery counters (live snapshot).
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            faults_injected: self.faults_fired_total(),
            wedged: self.wedged.len() as u64,
            device_generation: self.switch.generation(),
            ..self.fault_stats.clone()
        }
    }

    /// Did a device reset (or a fault while repairing one) leave the
    /// controller's view divergent from the device? Cleared by a
    /// successful [`Controller::reconcile`].
    pub fn needs_reconcile(&self) -> bool {
        self.needs_reconcile
    }

    /// Names of wedged programs, in no particular order.
    pub fn wedged_programs(&self) -> impl Iterator<Item = &String> {
        self.wedged.keys()
    }

    /// Alloc config.
    pub fn alloc_config(&self) -> &AllocConfig {
        &self.alloc_cfg
    }

    /// Set alloc config.
    pub fn set_alloc_config(&mut self, cfg: AllocConfig) {
        self.alloc_cfg = cfg;
    }

    /// Is the deploy fast path (vectored channel batches, cached entry
    /// generation) enabled?
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    /// Enable / disable the deploy fast path. `deploy_many` always uses
    /// it regardless of this flag.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Speculative allocations that lost a conflict at commit time and
    /// were re-solved against the live resource view.
    pub fn spec_conflicts(&self) -> u64 {
        self.spec_conflicts
    }

    /// Entry-generation shape-cache hit/miss counters.
    pub fn entry_cache_stats(&self) -> (u64, u64) {
        (self.entry_cache.hits, self.entry_cache.misses)
    }

    /// Deployed programs.
    pub fn deployed_programs(&self) -> impl Iterator<Item = (&String, &InstalledProgram)> {
        self.programs.iter()
    }

    /// Program.
    pub fn program(&self, name: &str) -> Option<&InstalledProgram> {
        self.programs.get(name)
    }

    /// Turn on packet-side telemetry in the switch, synchronized to the
    /// controller's current epoch.
    pub fn enable_telemetry(&mut self) {
        let epoch = self.epoch;
        self.switch.enable_telemetry().epoch = epoch;
    }

    /// Turn on per-program attribution: packet-side events accumulate
    /// into per-program slots keyed by the `p4rp.prog_id` PHV field the
    /// initialization filter's `set_prog` action writes (slot 0 catches
    /// everything observed before the filter binds — stage-0 lookups,
    /// unmatched packets). Implies [`Controller::enable_telemetry`].
    /// Workers forked afterwards inherit the attribution field; enabling
    /// after `enable_workers` upgrades the live pool too.
    pub fn enable_attribution(&mut self) {
        self.enable_telemetry();
        let f = self.dp.fields.prog_id;
        self.switch.set_attribution_field(f);
        if let Some(pool) = &mut self.workers {
            for w in pool.workers_mut() {
                w.switch_mut().set_attribution_field(f);
            }
        }
    }

    /// Is per-program attribution on?
    pub fn attribution_enabled(&self) -> bool {
        self.switch.telemetry().is_some_and(|m| m.is_attributing())
    }

    /// Turn on windowed time-series collection retaining the most recent
    /// `capacity` points. Buckets are cut on every epoch bump and every
    /// explicit [`Controller::tick_series`] call (event-driven — the
    /// simulator has no background clock). No-op if already on.
    pub fn enable_series(&mut self, capacity: usize) {
        if self.series.is_none() {
            self.series = Some(SeriesRing::new(capacity));
        }
    }

    /// Cut one series bucket at the channel clock's current instant.
    /// Replay drivers call this at tick boundaries; `bump_epoch` calls it
    /// on every lifecycle event. No-op when series collection is off.
    pub fn tick_series(&mut self) {
        if self.series.is_none() {
            return;
        }
        let dp = self.merged_dataplane();
        let p99 = self.channel.write_latency.quantile(0.99).unwrap_or(0);
        let t_ns = self.channel.clock.now().0;
        let epoch = self.epoch;
        if let Some(s) = &mut self.series {
            s.sample(t_ns, epoch, dp.as_ref(), p99);
        }
    }

    /// The collected time series, if enabled.
    pub fn series(&self) -> Option<&SeriesRing> {
        self.series.as_ref()
    }

    /// Arm (or re-arm) the SLO watchdog. Re-arming resets the breach
    /// latches and the violation count.
    pub fn arm_watchdog(&mut self, thresholds: SloThresholds) {
        self.watchdog = Some(Watchdog { thresholds, ..Watchdog::default() });
    }

    /// Disarm the watchdog, returning its final status.
    pub fn disarm_watchdog(&mut self) -> Option<SloStatus> {
        self.watchdog.take().map(|w| w.status())
    }

    /// Watchdog state, `None` when disarmed.
    pub fn watchdog_status(&self) -> Option<SloStatus> {
        self.watchdog.as_ref().map(Watchdog::status)
    }

    /// Evaluate the armed SLO thresholds against current counters,
    /// emitting one `SloViolation` trace event per non-breach → breach
    /// transition (a breach that clears re-arms its latch). Returns the
    /// number of new violations this check produced; 0 when disarmed.
    ///
    /// Every input is a sim-clock / seeded-state quantity — merged TM
    /// verdicts, fault counters, the simulated write-latency histogram —
    /// so a chaos replay of the same seed produces bit-identical events
    /// (see `docs/CHAOS.md`).
    pub fn slo_check(&mut self) -> u64 {
        let Some(w) = self.watchdog.as_ref() else { return 0 };
        let t = w.thresholds.clone();
        // (latch index, kind, attributed program, observed, limit)
        let mut checks: Vec<(usize, SloKind, u16, u64, u64)> = Vec::new();
        if let Some(limit) = t.max_drop_ppm {
            let mut observed = 0u64;
            let mut prog = 0u16;
            if let Some(m) = self.merged_dataplane() {
                let drops = m.tm.dropped.get();
                let total = drops
                    + m.tm.forwarded.get()
                    + m.tm.returned.get()
                    + m.tm.multicast.get();
                observed = drops.saturating_mul(1_000_000).checked_div(total).unwrap_or(0);
                // Attribute the breach to the heaviest dropper (ties →
                // lowest id; 0 when attribution is off).
                if let Some(pp) = &m.per_prog {
                    let mut best = 0u64;
                    for (id, slot) in pp.iter().enumerate() {
                        let d = slot.drops.get();
                        if d > best {
                            best = d;
                            prog = id as u16;
                        }
                    }
                }
            }
            checks.push((0, SloKind::DropRate, prog, observed, limit));
        }
        if let Some(limit) = t.max_deploy_failures {
            checks.push((1, SloKind::DeployFailure, 0, self.fault_stats().deploy_faults, limit));
        }
        if let Some(limit) = t.max_p99_write_ns {
            let observed = self.channel.write_latency.quantile(0.99).unwrap_or(0);
            checks.push((2, SloKind::P99Latency, 0, observed, limit));
        }
        let now = self.channel.clock.now();
        let w = self.watchdog.as_mut().expect("armed above");
        let mut emit: Vec<(SloKind, u16, u64, u64)> = Vec::new();
        for (idx, kind, prog, observed, limit) in checks {
            let breach = observed > limit;
            if breach && !w.breached[idx] {
                w.violations += 1;
                emit.push((kind, prog, observed, limit));
            }
            w.breached[idx] = breach;
        }
        let fresh = emit.len() as u64;
        if !emit.is_empty() {
            if let Some(tr) = self.switch.trace_mut() {
                tr.set_now(now);
                for (kind, prog, observed, limit) in emit {
                    tr.slo_violation(kind, prog, observed, limit);
                }
            }
        }
        fresh
    }

    /// Runtime-control server counters, `None` until a server has served
    /// this controller.
    pub fn server_stats(&self) -> Option<&ServerStats> {
        self.server_stats.as_ref()
    }

    /// Install/replace the runtime-control server counters (called by
    /// `server::serve` at every service tick so `status --json` reads
    /// fresh numbers even while the server is live).
    pub fn set_server_stats(&mut self, stats: ServerStats) {
        self.server_stats = Some(stats);
    }

    /// Current telemetry epoch (number of lifecycle events so far).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Turn on the flight recorder, synchronized to the controller's
    /// current epoch and the control channel's simulated clock.
    pub fn enable_trace(&mut self, cfg: TraceConfig) -> &mut TraceBuffer {
        let epoch = self.epoch;
        let now = self.channel.clock.now();
        let t = self.switch.enable_trace(cfg);
        t.set_epoch(epoch);
        t.set_now(now);
        t
    }

    /// Turn the flight recorder off, returning the final ring.
    pub fn disable_trace(&mut self) -> Option<Box<TraceBuffer>> {
        self.switch.disable_trace()
    }

    /// The flight recorder, if enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.switch.trace()
    }

    /// Mutable access to the flight recorder, if enabled.
    pub fn trace_mut(&mut self) -> Option<&mut TraceBuffer> {
        self.switch.trace_mut()
    }

    /// Flight-recorder stats (the disabled sentinel when tracing is off).
    pub fn trace_stats(&self) -> TraceStats {
        self.switch.trace_stats()
    }

    /// Every lifecycle span recorded so far, oldest first.
    pub fn lifecycle_spans(&self) -> &[LifecycleSpan] {
        &self.spans
    }

    /// Snapshot the full telemetry report: spans + gauges + control-channel
    /// latency + (when enabled) the data plane's packet-side counters.
    pub fn telemetry_report(&self) -> TelemetryReport {
        // With the parallel engine on, packet-side counters are the
        // master's merged with every worker's — the report reads the
        // same whatever the worker count.
        let dataplane = self.merged_dataplane();
        let programs = self.program_usage(dataplane.as_ref());
        TelemetryReport {
            schema_version: SCHEMA_VERSION,
            epoch: self.epoch,
            programs_deployed: self.programs.len() as u64,
            spans: self.spans.clone(),
            resources: ResourceGauges::collect(&self.resman),
            control_write_latency: self.channel.write_latency.clone(),
            dataplane,
            trace: self.switch.trace_stats(),
            faults: self.fault_stats(),
            parallel: self.workers.as_ref().map(|pool| ParallelStats {
                workers: pool.len() as u64,
                snapshot_generation: self.channel.snapshot_generation(),
                per_worker: pool.stats(),
            }),
            programs,
            slo: self.watchdog.as_ref().map(Watchdog::status),
            series: self.series.clone(),
            tables: self.switch.table_index_stats(),
            server: self.server_stats.clone(),
        }
    }

    /// Arm or drop the megaflow result cache on every table of the master
    /// switch and any live workers (forked workers inherit the master's
    /// setting). See `rmt_sim::table::Table::set_result_cache`.
    pub fn set_result_cache(&mut self, on: bool) {
        self.switch.set_result_cache_all(on);
        if let Some(pool) = self.workers.as_mut() {
            for w in pool.workers_mut() {
                w.switch_mut().set_result_cache_all(on);
            }
        }
    }

    /// Force every table (master and workers) onto the priority-ordered
    /// scan (`false`) or its maintained index (`true`) — the scan-authority
    /// toggle for bit-identical replay comparisons.
    pub fn set_indexed(&mut self, on: bool) {
        self.switch.set_indexed_all(on);
        if let Some(pool) = self.workers.as_mut() {
            for w in pool.workers_mut() {
                w.switch_mut().set_indexed_all(on);
            }
        }
    }

    /// Per-program usage rows: control-side residency (entries, memory)
    /// joined with the merged attributed packet counters. Row order is
    /// deterministic (ascending program id, the synthetic slot 0 first).
    /// Empty when attribution is off.
    fn program_usage(&self, dp: Option<&MetricsRecorder>) -> Vec<ProgramUsage> {
        let Some(pp) = dp.and_then(|m| m.per_prog.as_deref()) else {
            return Vec::new();
        };
        let mut resident: BTreeMap<u64, (&str, u64, u64)> = BTreeMap::new();
        for (name, p) in &self.programs {
            let mem: u64 = p.image.mem_regions.iter().map(|r| u64::from(r.size)).sum();
            resident.insert(
                u64::from(p.image.prog_id),
                (name.as_str(), p.image.entry_count() as u64, mem),
            );
        }
        let total_res: u64 = resident.values().map(|(_, e, m)| e + m).sum();
        let max_resident = resident.keys().next_back().map_or(0, |id| *id as usize + 1);
        let slots = pp.len().max(max_resident).max(1);
        let empty = ProgramMetrics::default();
        let mut rows = Vec::new();
        for id in 0..slots {
            let m = pp.get(id).unwrap_or(&empty);
            let (name, entries, memory) = match resident.get(&(id as u64)) {
                Some((n, e, mm)) => ((*n).to_string(), *e, *mm),
                None if id == 0 => ("(unattributed)".to_string(), 0, 0),
                None => {
                    // A revoked program's slot: keep the row only if it
                    // actually observed traffic.
                    if m.packets.get() + m.forwarded.get() + m.drops.get() + m.hits() == 0 {
                        continue;
                    }
                    ("(retired)".to_string(), 0, 0)
                }
            };
            rows.push(ProgramUsage {
                name,
                prog_id: id as u64,
                packets: m.packets.get(),
                forwarded: m.forwarded.get(),
                drops: m.drops.get(),
                recirc_passes: m.recirc_passes.get(),
                hits: m.hits(),
                salu_rmws: m.salu_rmws(),
                entries,
                memory,
                resource_share: if total_res == 0 {
                    0.0
                } else {
                    (entries + memory) as f64 / total_res as f64
                },
            });
        }
        rows
    }

    /// A lifecycle event is about to mutate the data plane: open a new
    /// epoch so packet-side series split at this boundary.
    fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        let epoch = self.epoch;
        if let Some(rec) = self.switch.telemetry_mut() {
            rec.epoch = epoch;
        }
        // The bump lands in the trace *outside* any batch (the install /
        // remove batches follow it), which is exactly what the
        // epoch-splits-batch invariant demands.
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.note_epoch(epoch);
        }
        // Every lifecycle boundary cuts a time-series bucket and runs an
        // SLO check — both no-ops when the feature is off.
        self.tick_series();
        self.slo_check();
        epoch
    }

    fn take_prog_id(&mut self) -> CtlResult<u16> {
        if let Some(id) = self.free_ids.pop() {
            return Ok(id);
        }
        if self.next_prog_id == u16::MAX {
            return Err(CtlError::Compile(CompileError::ProgramIdsExhausted));
        }
        let id = self.next_prog_id;
        self.next_prog_id += 1;
        Ok(id)
    }

    /// Apply one batch through the channel, absorbing transient faults
    /// (timeout, channel drop) with a reconnect and bounded exponential
    /// backoff on the simulated clock. Transient faults apply nothing,
    /// so re-sending the whole batch is safe. Returns the final outcome
    /// and the number of retries taken.
    fn apply_with_retry(&mut self, ops: &[ControlOp], vectored: bool) -> (BatchOutcome, u64) {
        let mut retries = 0u64;
        loop {
            let out = self.channel.apply_batch_checked(&mut self.switch, ops, vectored);
            match out.error {
                Some(SimError::ChannelTimeout) | Some(SimError::ChannelDown)
                    if retries < u64::from(MAX_RETRIES) =>
                {
                    if !self.channel.is_connected() {
                        self.channel.reconnect();
                    }
                    self.channel.clock.advance(Nanos::from_micros(500 << retries));
                    retries += 1;
                }
                _ => {
                    self.fault_stats.retries += retries;
                    return (out, retries);
                }
            }
        }
    }

    /// Return every resource a program image holds: its memory regions,
    /// entry budgets, init/recirc charges, and its program id.
    fn refund_program(&mut self, image: &ProgramImage) {
        for r in &image.mem_regions {
            self.resman.unlock_memory(r.rpb, r.offset, r.size);
        }
        let mut per_rpb: HashMap<RpbId, usize> = HashMap::new();
        for (rpb, _) in &image.rpb_entries {
            *per_rpb.entry(*rpb).or_insert(0) += 1;
        }
        for (rpb, n) in per_rpb {
            self.resman.refund_entries(rpb, n);
        }
        self.resman.refund_init(1);
        self.resman.refund_recirc(image.recirc_ids.len());
        self.free_ids.push(image.prog_id);
    }

    /// Undo the applied prefix of a faulted install with its own
    /// epoch-guarded batch. Returns how many undo ops landed, plus the
    /// leftover ops and the second fault if the rollback itself faulted
    /// (short of a device reset, which finishes the job by wiping).
    fn rollback(
        &mut self,
        prog_id: u16,
        undo: Vec<ControlOp>,
    ) -> (u64, Option<(Vec<ControlOp>, SimError)>) {
        if undo.is_empty() {
            self.fault_stats.rollbacks += 1;
            return (0, None);
        }
        self.bump_epoch();
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.rollback_begin(prog_id);
        }
        let (out, _) = self.apply_with_retry(&undo, true);
        let undone = out.results.len() as u64;
        self.fault_stats.rollback_ops += undone;
        let double = match out.error {
            None => None,
            Some(SimError::DeviceReset { .. }) => {
                // The wipe took the rest of the prefix with it.
                self.needs_reconcile = true;
                None
            }
            Some(f) => Some((undo[out.results.len()..].to_vec(), f)),
        };
        let complete = double.is_none();
        if complete {
            self.fault_stats.rollbacks += 1;
        }
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.rollback_end(prog_id, undone as u32, complete);
        }
        (undone, double)
    }

    /// Deploy every program in a P4runpro source string.
    ///
    /// Programs are deployed sequentially, best-effort: an error aborts at
    /// the failing program, leaving earlier ones installed (first-come-
    /// first-serve, §4.3).
    pub fn deploy(&mut self, source: &str) -> CtlResult<Vec<DeployReport>> {
        let t0 = Instant::now();
        let unit = parse(source).map_err(CompileError::from)?;
        check(&unit, &self.check_ctx).map_err(CompileError::from)?;
        let parse_wall = t0.elapsed();
        let mems: Vec<MemDecl> = unit
            .annotations
            .iter()
            .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
            .collect();

        let mut reports = Vec::new();
        for prog in &unit.programs {
            if self.programs.contains_key(&prog.name) || self.wedged.contains_key(&prog.name) {
                return Err(CtlError::DuplicateProgram(prog.name.clone()));
            }
            let ir = lower(prog, &mems)?;

            // Allocation against the live resource view (Figure 7 timing).
            let t_alloc = Instant::now();
            let allocation = allocate(&ir, self.resman.alloc_view(), &self.alloc_cfg)?;
            let alloc_wall = t_alloc.elapsed();

            let compiled = CompiledProgram {
                name: prog.name.clone(),
                ir,
                allocation,
                parse_wall,
                alloc_wall,
            };
            let vectored = self.fast_path;
            reports.push(self.commit(compiled, false, vectored)?);
        }
        Ok(reports)
    }

    /// Deploy many independent source strings concurrently.
    ///
    /// The compile front half (parse, check, lower, allocate) of every
    /// source runs on worker threads against a *snapshot* of the resource
    /// view taken at entry; commits stay serialized on the control
    /// channel, in input order, so §4.3's first-come-first-serve
    /// semantics hold by index. Each commit revalidates its speculative
    /// allocation against the live view and re-runs the solver if an
    /// earlier commit took the resources it was counting on
    /// ([`Controller::spec_conflicts`] counts the losers). A speculation
    /// that found *no* placement is reported as failure directly:
    /// resources only shrink while the batch commits, and feasibility is
    /// monotone in resources.
    ///
    /// Returns one result per source, each carrying one report per
    /// program in that source. Always uses the vectored channel path.
    pub fn deploy_many(&mut self, sources: &[String]) -> Vec<CtlResult<Vec<DeployReport>>> {
        let n = sources.len();
        if n == 0 {
            return Vec::new();
        }
        let snapshot = self.resman.alloc_view().clone();
        let cfg = self.alloc_cfg;
        let ctx = &self.check_ctx;
        // At least two workers even on a single-core host: the pipeline's
        // cross-thread handoff should be exercised wherever it runs, and
        // the interleaving overhead is noise next to a solver call.
        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(2, 8)
            .min(n);
        let mut compiled: Vec<Option<CtlResult<Vec<CompiledProgram>>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            // The vendored channel is single-consumer, so work is handed
            // out by striding indices rather than through a shared queue.
            let (tx, rx) = crossbeam::channel::unbounded();
            for w in 0..workers {
                let tx = tx.clone();
                let snapshot = &snapshot;
                s.spawn(move || {
                    let mut i = w;
                    while i < n {
                        let r = compile_source(&sources[i], ctx, snapshot, &cfg);
                        let _ = tx.send((i, r));
                        i += workers;
                    }
                });
            }
            drop(tx);
            for (i, r) in rx.iter() {
                compiled[i] = Some(r);
            }
        });
        compiled
            .into_iter()
            .map(|r| {
                let cs = r.expect("every index was compiled")?;
                let mut reps = Vec::with_capacity(cs.len());
                for c in cs {
                    reps.push(self.commit(c, true, true)?);
                }
                Ok(reps)
            })
            .collect()
    }

    /// Does a speculative allocation still fit the live resource view?
    /// Mirrors what `commit` is about to do: cumulative entry needs per
    /// physical RPB, and first-fit placement of every virtual memory in
    /// the RPB the solver chose for it.
    fn validates(&self, c: &CompiledProgram) -> bool {
        let view = self.resman.alloc_view();
        let mut need = [0usize; NUM_RPBS];
        for (slot, level) in c.ir.levels.iter().enumerate() {
            let n = level.iter().filter(|p| p.op != IrOp::Nop).count();
            let idx = usize::from(LogicalRpb::from_index(c.allocation.x[slot]).rpb().0) - 1;
            need[idx] += n;
        }
        if need.iter().zip(&view.te_free).any(|(n, f)| n > f) {
            return false;
        }
        let mut free: HashMap<usize, Vec<u32>> = HashMap::new();
        for m in &c.ir.memories {
            let idx = usize::from(c.allocation.mem_rpb[&m.name].0) - 1;
            let parts = free.entry(idx).or_insert_with(|| view.mem_free[idx].clone());
            match parts.iter().position(|&p| p >= m.size) {
                Some(pi) => parts[pi] -= m.size,
                None => return false,
            }
        }
        true
    }

    /// Commit a compiled program to the data plane: grant memory, generate
    /// entries (through the shape cache), charge budgets, and install via
    /// the Figure 6 consistent batch order. With `revalidate`, first check
    /// the (possibly stale) speculative allocation against the live view
    /// and re-run the solver on conflict. With `vectored`, the install
    /// goes out as one ordered batch at marginal per-op cost.
    fn commit(
        &mut self,
        mut c: CompiledProgram,
        revalidate: bool,
        vectored: bool,
    ) -> CtlResult<DeployReport> {
        if self.programs.contains_key(&c.name) || self.wedged.contains_key(&c.name) {
            return Err(CtlError::DuplicateProgram(c.name.clone()));
        }
        if revalidate && !self.validates(&c) {
            self.spec_conflicts += 1;
            let t = Instant::now();
            c.allocation = allocate(&c.ir, self.resman.alloc_view(), &self.alloc_cfg)?;
            c.alloc_wall += t.elapsed();
        }

        // Grant physical memory where the solver placed each vmem.
        let mut offsets: HashMap<String, (RpbId, u32)> = HashMap::new();
        let mut granted: Vec<(RpbId, u32, u32)> = Vec::new();
        for m in &c.ir.memories {
            let rpb = c.allocation.mem_rpb[&m.name];
            match self.resman.grant_memory(rpb, m.size) {
                Some(off) => {
                    offsets.insert(m.name.clone(), (rpb, off));
                    granted.push((rpb, off, m.size));
                }
                None => {
                    for (r, o, s) in granted {
                        self.resman.unlock_memory(r, o, s);
                    }
                    return Err(CtlError::Compile(CompileError::AllocationFailed {
                        reason: format!("memory grant for `{}` failed", m.name),
                    }));
                }
            }
        }

        let prog_id = self.take_prog_id()?;
        let image = match generate_cached(
            &mut self.entry_cache,
            &c.ir,
            &c.allocation,
            &offsets,
            prog_id,
            &self.dp.fields,
            self.switch.field_table(),
        ) {
            Ok(i) => i,
            Err(e) => {
                for (r, o, s) in granted {
                    self.resman.unlock_memory(r, o, s);
                }
                self.free_ids.push(prog_id);
                return Err(e.into());
            }
        };

        // Charge entry budgets: RPBs (validated by the solver),
        // initialization paths, and the recirculation block.
        let mut per_rpb: HashMap<RpbId, usize> = HashMap::new();
        for (rpb, _) in &image.rpb_entries {
            *per_rpb.entry(*rpb).or_insert(0) += 1;
        }
        let init_ok = self.resman.charge_init(1);
        if !init_ok || !self.resman.charge_recirc(image.recirc_ids.len()) {
            if init_ok {
                self.resman.refund_init(1);
            }
            for (r, o, s) in granted {
                self.resman.unlock_memory(r, o, s);
            }
            self.free_ids.push(prog_id);
            return Err(CtlError::Compile(CompileError::InitTableFull {
                path: "initialization/recirculation block".into(),
            }));
        }
        for (rpb, n) in &per_rpb {
            // Solver-validated; charge unconditionally.
            let ok = self.resman.charge_entries(*rpb, *n);
            debug_assert!(ok, "solver and resource manager disagree");
        }

        // Consistent install: program components first, filters last.
        // The install mutates the data plane, so it opens a new
        // telemetry epoch before the first batch lands.
        let memory_claimed: u64 = c.ir.memories.iter().map(|m| u64::from(m.size)).sum();
        let faults_before = self.faults_fired_total();
        let epoch = self.bump_epoch();
        let mut batches = plan_install(&image, &self.dp, self.switch.field_table())?;
        let t_chan = Instant::now();
        let mut update_delay = Nanos::ZERO;
        let mut entries_written = 0u64;
        let mut retries_total = 0u64;
        let mut fault: Option<SimError> = None;
        let mut handles = InstalledHandles {
            mem_regions: image.mem_regions.clone(),
            ..Default::default()
        };
        if vectored {
            // One ordered batch: body entries first, filter last, so the
            // activation still flips strictly after every component is in
            // place, at marginal per-op cost.
            let filters = batches.pop().expect("plan_install returns two batches");
            let body = batches.pop().expect("plan_install returns two batches");
            let boundary = body.ops.len();
            let mut ops = body.ops;
            ops.extend(filters.ops);
            let (out, retries) = self.apply_with_retry(&ops, true);
            retries_total += retries;
            update_delay += out.cost;
            for (k, (op, res)) in ops.iter().zip(&out.results).enumerate() {
                if let (ControlOp::InsertEntry { table, .. }, OpResult::Inserted(h)) = (op, res) {
                    entries_written += 1;
                    let rec: &mut Vec<(TableRef, _)> = if k < boundary {
                        &mut handles.body_handles
                    } else {
                        &mut handles.filter_handles
                    };
                    rec.push((*table, *h));
                }
            }
            fault = out.error;
        } else {
            for (bi, batch) in batches.iter().enumerate() {
                let (out, retries) = self.apply_with_retry(&batch.ops, false);
                retries_total += retries;
                update_delay += out.cost;
                for (op, res) in batch.ops.iter().zip(&out.results) {
                    if let (ControlOp::InsertEntry { table, .. }, OpResult::Inserted(h)) = (op, res)
                    {
                        entries_written += 1;
                        let rec: &mut Vec<(TableRef, _)> = if bi == 0 {
                            &mut handles.body_handles
                        } else {
                            &mut handles.filter_handles
                        };
                        rec.push((*table, *h));
                    }
                }
                if out.error.is_some() {
                    fault = out.error;
                    break;
                }
            }
        }
        let channel_wall = t_chan.elapsed();

        if let Some(fault) = fault {
            // Mid-install fault. The filter activation is always the last
            // op of the plan, so the half-installed program was never
            // packet-visible; undoing the applied prefix (filters first,
            // then body in reverse) restores the device exactly, and a
            // device reset has already wiped it wholesale.
            self.fault_stats.deploy_faults += 1;
            let mut rollback_ops = 0u64;
            let mut parked: Option<SimError> = None;
            if matches!(fault, SimError::DeviceReset { .. }) {
                self.needs_reconcile = true;
            } else {
                let mut undo: Vec<ControlOp> =
                    Vec::with_capacity(handles.filter_handles.len() + handles.body_handles.len());
                for &(table, handle) in handles.filter_handles.iter().rev() {
                    undo.push(ControlOp::DeleteEntry { table, handle });
                }
                for &(table, handle) in handles.body_handles.iter().rev() {
                    undo.push(ControlOp::DeleteEntry { table, handle });
                }
                let (undone, double) = self.rollback(prog_id, undo);
                rollback_ops = undone;
                if let Some((mut pending, second)) = double {
                    // Double fault: park the leftovers. The regions were
                    // zero at grant time, but a partially active filter
                    // could see traffic before the retry lands — reset
                    // them as part of the parked cleanup.
                    for r in &image.mem_regions {
                        pending.push(ControlOp::ResetRegRange {
                            array: r.rpb.array_ref(),
                            start: r.offset,
                            len: r.size,
                        });
                    }
                    self.wedged.insert(
                        c.name.clone(),
                        WedgedProgram { image: image.clone(), pending_ops: pending },
                    );
                    parked = Some(second);
                }
            }
            if parked.is_none() {
                self.refund_program(&image);
            }
            self.spans.push(LifecycleSpan {
                seq: self.spans.len() as u64,
                kind: "deploy-fault".into(),
                program: c.name.clone(),
                prog_id: u64::from(prog_id),
                epoch,
                parse_wall_ns: c.parse_wall.as_nanos() as u64,
                solver_wall_ns: c.alloc_wall.as_nanos() as u64,
                solver_nodes: c.allocation.nodes_explored,
                channel_wall_ns: channel_wall.as_nanos() as u64,
                entries_written,
                entries_revoked: rollback_ops,
                memory_claimed: 0,
                memory_released: 0,
                update_delay_ns: update_delay.0,
                faults: self.faults_fired_total() - faults_before,
                retries: retries_total,
                rollback_ops,
            });
            return Err(match parked {
                Some(second) => CtlError::Wedged { program: c.name, fault: second },
                None => CtlError::DeployFault { program: c.name, fault },
            });
        }

        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.lifecycle(LifecycleKind::Deploy, prog_id, epoch, update_delay);
        }

        self.spans.push(LifecycleSpan {
            seq: self.spans.len() as u64,
            kind: "deploy".into(),
            program: c.name.clone(),
            prog_id: u64::from(prog_id),
            epoch,
            parse_wall_ns: c.parse_wall.as_nanos() as u64,
            solver_wall_ns: c.alloc_wall.as_nanos() as u64,
            solver_nodes: c.allocation.nodes_explored,
            channel_wall_ns: channel_wall.as_nanos() as u64,
            entries_written,
            entries_revoked: 0,
            memory_claimed,
            memory_released: 0,
            update_delay_ns: update_delay.0,
            faults: self.faults_fired_total() - faults_before,
            retries: retries_total,
            rollback_ops: 0,
        });

        let report = DeployReport {
            name: c.name.clone(),
            prog_id,
            parse_wall: c.parse_wall,
            alloc_wall: c.alloc_wall,
            alloc_nodes: c.allocation.nodes_explored,
            channel_wall,
            update_delay,
            entries_installed: image.entry_count(),
            depth: c.ir.depth(),
            passes: image.passes,
        };
        self.programs
            .insert(c.name, InstalledProgram { image, handles, allocation: c.allocation });
        Ok(report)
    }

    /// Revoke a deployed program (Figure 6 left half): filters first, then
    /// components, then lock + reset + release its memory.
    pub fn revoke(&mut self, name: &str) -> CtlResult<RevokeReport> {
        let vectored = self.fast_path;
        self.revoke_impl(name, vectored)
    }

    /// Revoke many programs, best-effort: one result per name, always on
    /// the vectored channel path.
    pub fn revoke_many(&mut self, names: &[String]) -> Vec<CtlResult<RevokeReport>> {
        names.iter().map(|n| self.revoke_impl(n, true)).collect()
    }

    fn revoke_impl(&mut self, name: &str, vectored: bool) -> CtlResult<RevokeReport> {
        if self.wedged.contains_key(name) {
            return self.finish_wedged(name);
        }
        let installed = self
            .programs
            .remove(name)
            .ok_or_else(|| CtlError::NoSuchProgram(name.to_string()))?;

        // Lock regions before the reset batch touches them.
        for r in &installed.handles.mem_regions {
            self.resman.lock_memory(r.rpb, r.offset, r.size);
        }

        // The remove batches mutate the data plane: new telemetry epoch.
        let faults_before = self.faults_fired_total();
        let epoch = self.bump_epoch();
        let batches = plan_remove(&installed.handles);
        let t_chan = Instant::now();
        let mut update_delay = Nanos::ZERO;
        let mut entries_revoked = 0u64;
        let mut retries_total = 0u64;
        let mut fault: Option<SimError> = None;
        let mut remaining: Vec<ControlOp> = Vec::new();
        if vectored {
            // One ordered batch; the filter deletions still come first, so
            // the program stops matching before any component disappears.
            let ops: Vec<ControlOp> = batches.into_iter().flat_map(|b| b.ops).collect();
            let (out, retries) = self.apply_with_retry(&ops, true);
            retries_total += retries;
            update_delay += out.cost;
            entries_revoked +=
                out.results.iter().filter(|r| matches!(r, OpResult::Deleted)).count() as u64;
            if out.error.is_some() {
                fault = out.error;
                remaining = ops[out.results.len()..].to_vec();
            }
        } else {
            let mut it = batches.into_iter();
            for batch in it.by_ref() {
                let (out, retries) = self.apply_with_retry(&batch.ops, false);
                retries_total += retries;
                update_delay += out.cost;
                entries_revoked +=
                    out.results.iter().filter(|r| matches!(r, OpResult::Deleted)).count() as u64;
                if out.error.is_some() {
                    fault = out.error;
                    remaining = batch.ops[out.results.len()..].to_vec();
                    break;
                }
            }
            for batch in it {
                remaining.extend(batch.ops);
            }
        }
        let channel_wall = t_chan.elapsed();

        if let Some(f) = fault {
            self.fault_stats.revoke_faults += 1;
            if matches!(f, SimError::DeviceReset { .. }) {
                // Forward recovery: the wipe finished the removal (it also
                // zeroed the locked regions), so fall through to the
                // refunds. Other programs diverged, though.
                self.needs_reconcile = true;
            } else {
                // Park the rest of the plan: the program's resources stay
                // charged (regions stay locked) until a retried revoke or
                // a reconcile retires it.
                let prog_id = installed.image.prog_id;
                self.wedged.insert(
                    name.to_string(),
                    WedgedProgram { image: installed.image, pending_ops: remaining },
                );
                self.spans.push(LifecycleSpan {
                    seq: self.spans.len() as u64,
                    kind: "revoke-fault".into(),
                    program: name.to_string(),
                    prog_id: u64::from(prog_id),
                    epoch,
                    parse_wall_ns: 0,
                    solver_wall_ns: 0,
                    solver_nodes: 0,
                    channel_wall_ns: channel_wall.as_nanos() as u64,
                    entries_written: 0,
                    entries_revoked,
                    memory_claimed: 0,
                    memory_released: 0,
                    update_delay_ns: update_delay.0,
                    faults: self.faults_fired_total() - faults_before,
                    retries: retries_total,
                    rollback_ops: 0,
                });
                return Err(CtlError::Wedged { program: name.to_string(), fault: f });
            }
        }

        self.refund_program(&installed.image);

        let memory_released: u64 = installed
            .handles
            .mem_regions
            .iter()
            .map(|r| u64::from(r.size))
            .sum();
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.lifecycle(LifecycleKind::Revoke, installed.image.prog_id, epoch, update_delay);
        }
        self.spans.push(LifecycleSpan {
            seq: self.spans.len() as u64,
            kind: "revoke".into(),
            program: name.to_string(),
            prog_id: u64::from(installed.image.prog_id),
            epoch,
            parse_wall_ns: 0,
            solver_wall_ns: 0,
            solver_nodes: 0,
            channel_wall_ns: channel_wall.as_nanos() as u64,
            entries_written: 0,
            entries_revoked,
            memory_claimed: 0,
            memory_released,
            update_delay_ns: update_delay.0,
            faults: self.faults_fired_total() - faults_before,
            retries: retries_total,
            rollback_ops: 0,
        });

        Ok(RevokeReport { name: name.to_string(), update_delay })
    }

    /// Retry a wedged program's parked cleanup. Idempotent: every call
    /// re-applies whatever is still pending (deletes whose handles a
    /// device reset already wiped are satisfied trivially and dropped);
    /// once the device is clean the program's resources are refunded and
    /// the name becomes free again.
    fn finish_wedged(&mut self, name: &str) -> CtlResult<RevokeReport> {
        let w = self.wedged.remove(name).expect("caller checked the wedged map");
        let pending: Vec<ControlOp> = w
            .pending_ops
            .into_iter()
            .filter(|op| match op {
                ControlOp::DeleteEntry { table, handle } => self
                    .switch
                    .table(*table)
                    .map(|t| t.contains(*handle))
                    .unwrap_or(false),
                _ => true,
            })
            .collect();
        let faults_before = self.faults_fired_total();
        let epoch = self.bump_epoch();
        let prog_id = w.image.prog_id;
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.rollback_begin(prog_id);
        }
        let t_chan = Instant::now();
        let (out, retries) = self.apply_with_retry(&pending, true);
        let update_delay = out.cost;
        let undone = out.results.len() as u64;
        self.fault_stats.rollback_ops += undone;
        let complete = match &out.error {
            None => true,
            Some(SimError::DeviceReset { .. }) => {
                self.needs_reconcile = true;
                true
            }
            Some(_) => false,
        };
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.rollback_end(prog_id, undone as u32, complete);
        }
        if !complete {
            let f = out.error.expect("incomplete cleanup carries its fault");
            self.wedged.insert(
                name.to_string(),
                WedgedProgram {
                    image: w.image,
                    pending_ops: pending[out.results.len()..].to_vec(),
                },
            );
            return Err(CtlError::Wedged { program: name.to_string(), fault: f });
        }
        self.fault_stats.rollbacks += 1;
        self.refund_program(&w.image);
        let channel_wall = t_chan.elapsed();
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.lifecycle(LifecycleKind::Revoke, prog_id, epoch, update_delay);
        }
        self.spans.push(LifecycleSpan {
            seq: self.spans.len() as u64,
            kind: "revoke".into(),
            program: name.to_string(),
            prog_id: u64::from(prog_id),
            epoch,
            parse_wall_ns: 0,
            solver_wall_ns: 0,
            solver_nodes: 0,
            channel_wall_ns: channel_wall.as_nanos() as u64,
            entries_written: 0,
            entries_revoked: out
                .results
                .iter()
                .filter(|r| matches!(r, OpResult::Deleted))
                .count() as u64,
            memory_claimed: 0,
            memory_released: w.image.mem_regions.iter().map(|r| u64::from(r.size)).sum(),
            update_delay_ns: update_delay.0,
            faults: self.faults_fired_total() - faults_before,
            retries,
            rollback_ops: undone,
        });
        Ok(RevokeReport { name: name.to_string(), update_delay })
    }

    /// Snapshot the device's per-table entry population, with claim marks
    /// for the content-matching passes.
    fn device_pool(&self) -> CtlResult<HashMap<TableRef, Vec<DevicePoolEntry>>> {
        let mut pool = HashMap::new();
        for tref in self.switch.table_refs() {
            let t = self.switch.table(tref)?;
            let v: Vec<_> = t.iter_entries().map(|(h, e)| (h, e.clone(), false)).collect();
            if !v.is_empty() {
                pool.insert(tref, v);
            }
        }
        Ok(pool)
    }

    /// Audit the device against the resource manager's view: re-derive
    /// every installed program's install plan and content-match it against
    /// the entries actually on the device. Read-only; `reconcile()` is
    /// the mutating counterpart.
    pub fn audit(&self) -> CtlResult<AuditReport> {
        let mut pool = self.device_pool()?;
        let mut rep = AuditReport { wedged: self.wedged.len(), ..Default::default() };
        let mut names: Vec<&String> = self.programs.keys().collect();
        names.sort();
        for name in names {
            let p = &self.programs[name];
            let batches = plan_install(&p.image, &self.dp, self.switch.field_table())?;
            for batch in &batches {
                for op in &batch.ops {
                    if let ControlOp::InsertEntry { table, entry } = op {
                        rep.expected += 1;
                        let found = pool
                            .get_mut(table)
                            .and_then(|v| v.iter_mut().find(|(_, e, c)| !*c && e == entry));
                        match found {
                            Some(slot) => {
                                slot.2 = true;
                                rep.present += 1;
                            }
                            None => rep.missing += 1,
                        }
                    }
                }
            }
        }
        rep.unexpected =
            pool.values().flat_map(|v| v.iter()).filter(|(_, _, c)| !*c).count();
        Ok(rep)
    }

    fn trace_reconcile_end(&mut self, reinstalled: u32, deleted: u32) {
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.reconcile_end(reinstalled, deleted);
        }
    }

    /// Repair the device after a reset (or any other divergence): retire
    /// wedged programs, garbage-collect device entries no installed
    /// program claims, and re-install what the surviving programs are
    /// missing — body entries first, filter activation last, so a program
    /// under repair is never half packet-visible. Register *contents* are
    /// not restored (a reset zeroes them, exactly like a freshly granted
    /// region); programs rebuild that state from traffic.
    ///
    /// One pass converges when no fault interferes; under an armed fault
    /// plan a pass can itself fault (the error is returned, partial
    /// progress is kept and recorded), so callers loop until
    /// [`Controller::audit`] reports clean.
    pub fn reconcile(&mut self) -> CtlResult<ReconcileReport> {
        let generation = self.switch.generation();
        self.bump_epoch();
        let now = self.channel.clock.now();
        if let Some(t) = self.switch.trace_mut() {
            t.set_now(now);
            t.reconcile_begin(generation);
        }
        let mut rep = ReconcileReport::default();

        // Retire wedged programs: refund now, sweep their leftover entries
        // as "unexpected" below, and reset their regions in the gc batch.
        let mut wedge_resets: Vec<ControlOp> = Vec::new();
        let mut wnames: Vec<String> = self.wedged.keys().cloned().collect();
        wnames.sort();
        for n in &wnames {
            let w = self.wedged.remove(n).expect("key was just listed");
            for r in &w.image.mem_regions {
                wedge_resets.push(ControlOp::ResetRegRange {
                    array: r.rpb.array_ref(),
                    start: r.offset,
                    len: r.size,
                });
            }
            self.refund_program(&w.image);
            rep.wedged_cleared += 1;
        }

        // Content-match the device against every installed program's
        // re-derived plan, splitting each into kept handles and missing ops.
        struct Repair {
            name: String,
            keep: [Vec<(TableRef, EntryHandle)>; 2],
            missing: [Vec<ControlOp>; 2],
        }
        let mut pool = self.device_pool()?;
        let mut names: Vec<String> = self.programs.keys().cloned().collect();
        names.sort();
        let mut repairs: Vec<Repair> = Vec::new();
        for name in &names {
            let p = &self.programs[name];
            let batches = plan_install(&p.image, &self.dp, self.switch.field_table())?;
            let mut rp = Repair {
                name: name.clone(),
                keep: [Vec::new(), Vec::new()],
                missing: [Vec::new(), Vec::new()],
            };
            for (sec, batch) in batches.iter().enumerate().take(2) {
                for op in &batch.ops {
                    if let ControlOp::InsertEntry { table, entry } = op {
                        let found = pool
                            .get_mut(table)
                            .and_then(|v| v.iter_mut().find(|(_, e, c)| !*c && e == entry));
                        match found {
                            Some(slot) => {
                                slot.2 = true;
                                rp.keep[sec].push((*table, slot.0));
                            }
                            None => rp.missing[sec].push(op.clone()),
                        }
                    }
                }
            }
            repairs.push(rp);
        }

        // Garbage-collect unclaimed entries (deterministic device order)
        // plus the retired wedged programs' register regions.
        let mut gc: Vec<ControlOp> = Vec::new();
        for tref in self.switch.table_refs() {
            if let Some(v) = pool.get(&tref) {
                for (h, _, claimed) in v {
                    if !claimed {
                        gc.push(ControlOp::DeleteEntry { table: tref, handle: *h });
                    }
                }
            }
        }
        gc.extend(wedge_resets);
        if !gc.is_empty() {
            let (out, _) = self.apply_with_retry(&gc, true);
            rep.update_delay += out.cost;
            rep.deleted +=
                out.results.iter().filter(|r| matches!(r, OpResult::Deleted)).count();
            if let Some(f) = out.error {
                // Partial sweep; the next pass finds the rest again.
                self.trace_reconcile_end(rep.reinstalled as u32, rep.deleted as u32);
                return Err(CtlError::Sim(f));
            }
        }

        // Repair each surviving program and rebuild its handle record
        // from the claims plus the fresh inserts.
        for rp in repairs {
            let boundary = rp.missing[0].len();
            let ops: Vec<ControlOp> =
                rp.missing[0].iter().chain(rp.missing[1].iter()).cloned().collect();
            let mut keep = rp.keep;
            let mut err = None;
            if !ops.is_empty() {
                let (out, _) = self.apply_with_retry(&ops, true);
                rep.update_delay += out.cost;
                for (k, (op, res)) in ops.iter().zip(&out.results).enumerate() {
                    if let (ControlOp::InsertEntry { table, .. }, OpResult::Inserted(h)) = (op, res)
                    {
                        rep.reinstalled += 1;
                        keep[usize::from(k >= boundary)].push((*table, *h));
                    }
                }
                err = out.error;
            }
            let [body, filters] = keep;
            let p = self.programs.get_mut(&rp.name).expect("program is installed");
            p.handles.body_handles = body;
            p.handles.filter_handles = filters;
            if let Some(f) = err {
                // Partially repaired: what landed is recorded, so the next
                // pass claims it by content and continues from there.
                self.trace_reconcile_end(rep.reinstalled as u32, rep.deleted as u32);
                return Err(CtlError::Sim(f));
            }
        }

        self.needs_reconcile = false;
        self.fault_stats.reconciles += 1;
        self.trace_reconcile_end(rep.reinstalled as u32, rep.deleted as u32);
        Ok(rep)
    }

    /// Incremental update of a running program (§7 "Incremental Update"):
    /// implemented the way the prototype does it — revoke the old program
    /// and allocate the new one through the compiler. Returns the combined
    /// deploy report with the revocation's update delay folded in.
    pub fn update(&mut self, name: &str, new_source: &str) -> CtlResult<DeployReport> {
        let revoke = self.revoke(name)?;
        let mut reports = self.deploy(new_source)?;
        let mut report = reports.remove(0);
        report.update_delay += revoke.update_delay;
        Ok(report)
    }

    /// Read a program's virtual memory through the monitoring path
    /// (virtual → physical address translation, §3.2).
    pub fn read_memory(&mut self, program: &str, memory: &str) -> CtlResult<Vec<u32>> {
        let region = self.find_region(program, memory)?;
        let op = ControlOp::ReadRegRange {
            array: region.0.array_ref(),
            start: region.1,
            len: region.2,
        };
        let (mut results, _) = self.channel.apply_batch(&mut self.switch, &[op])?;
        match results.pop() {
            Some(OpResult::ReadRange(v)) => Ok(v),
            _ => unreachable!("read returns a range"),
        }
    }

    /// Write one bucket of a program's virtual memory (raw-API bucket
    /// updates, e.g. filling the load balancer's DIP pool, Appendix B.2).
    pub fn write_memory(&mut self, program: &str, memory: &str, vaddr: u32, value: u32) -> CtlResult<()> {
        let (rpb, offset, size) = self.find_region(program, memory)?;
        if vaddr >= size {
            return Err(CtlError::AddressOutOfRange { memory: memory.into(), addr: vaddr, size });
        }
        let op = ControlOp::WriteReg { array: rpb.array_ref(), addr: offset + vaddr, value };
        self.channel.apply_batch(&mut self.switch, &[op])?;
        Ok(())
    }

    fn find_region(&self, program: &str, memory: &str) -> CtlResult<(RpbId, u32, u32)> {
        let p = self
            .programs
            .get(program)
            .ok_or_else(|| CtlError::NoSuchProgram(program.to_string()))?;
        p.image
            .mem_regions
            .iter()
            .find(|r| r.name == memory)
            .map(|r| (r.rpb, r.offset, r.size))
            .ok_or_else(|| CtlError::NoSuchMemory {
                program: program.to_string(),
                memory: memory.to_string(),
            })
    }

    /// Configure a traffic-manager multicast group (§7 extension).
    pub fn set_multicast_group(&mut self, group: u16, ports: Vec<u16>) -> CtlResult<()> {
        Ok(self.switch.set_multicast_group(group, ports)?)
    }

    /// Process one frame through the switch (traffic path).
    pub fn inject(&mut self, port: u16, frame: &[u8]) -> CtlResult<ProcessOutcome> {
        Ok(self.switch.process_frame(port, frame)?)
    }

    /// [`Controller::inject`] into a caller-owned outcome — the allocation-free
    /// variant used by replay loops that reuse one outcome across packets.
    pub fn inject_into(
        &mut self,
        port: u16,
        frame: &[u8],
        outcome: &mut ProcessOutcome,
    ) -> CtlResult<()> {
        Ok(self.switch.process_frame_into(port, frame, outcome)?)
    }

    /// Turn on the sharded multi-worker data plane with `n` workers.
    ///
    /// Enables snapshot publication on the control channel (so every
    /// subsequent deploy/revoke batch flows to workers as one atomic
    /// delta) and forks `n` worker switches from the master's current
    /// state. Call *after* enabling telemetry/tracing so the workers
    /// inherit recorders. With `n <= 1` this still routes injections
    /// through one worker — use it only when you want the parallel
    /// engine's code path; the default (`None`) costs the sequential
    /// path one branch.
    pub fn enable_workers(&mut self, n: usize) -> &WorkerPool {
        let publisher = &*self.channel.enable_snapshots();
        self.workers = Some(WorkerPool::new(&self.switch, publisher, n));
        self.workers.as_ref().expect("just installed")
    }

    /// Tear the worker pool down, returning it for final inspection. The
    /// master switch is untouched (it never processed the workers'
    /// packets).
    pub fn disable_workers(&mut self) -> Option<WorkerPool> {
        self.workers.take()
    }

    /// The worker pool, if the parallel engine is on.
    pub fn workers(&self) -> Option<&WorkerPool> {
        self.workers.as_ref()
    }

    /// The worker pool, mutably (threaded replay drivers borrow the
    /// workers through this).
    pub fn workers_mut(&mut self) -> Option<&mut WorkerPool> {
        self.workers.as_mut()
    }

    /// Inject one frame through the active engine: with a worker pool,
    /// the frame is sharded to its flow's worker under a globally
    /// assigned packet id (so traces stay worker-count-independent);
    /// without one, this is exactly [`Controller::inject_into`].
    pub fn inject_sharded_into(
        &mut self,
        port: u16,
        frame: &[u8],
        outcome: &mut ProcessOutcome,
    ) -> CtlResult<()> {
        let Some(pool) = self.workers.as_mut() else {
            return Ok(self.switch.process_frame_into(port, frame, outcome)?);
        };
        // The master's packet-id cursor stays the single id authority:
        // advance it per injection so sequential and parallel runs hand
        // out identical ids, whatever the interleaving of engines.
        let id = self.switch.next_packet_id();
        self.switch.set_next_packet_id(id + 1);
        let now = self.channel.clock.now();
        let shard = pool.shard_for(frame);
        let w = pool.worker_mut(shard);
        if let Some(t) = w.switch_mut().trace_mut() {
            t.set_now(now);
        }
        Ok(w.inject_at(id, port, frame, outcome)?)
    }

    /// [`Controller::inject_sharded_into`] allocating a fresh outcome.
    pub fn inject_sharded(&mut self, port: u16, frame: &[u8]) -> CtlResult<ProcessOutcome> {
        let mut out = ProcessOutcome::empty();
        self.inject_sharded_into(port, frame, &mut out)?;
        Ok(out)
    }

    /// Packet-side telemetry with every worker's counters folded in
    /// (master ∪ workers); identical to the master's recorder when the
    /// parallel engine is off. `None` when telemetry is disabled.
    pub fn merged_dataplane(&self) -> Option<MetricsRecorder> {
        let mut merged = self.switch.telemetry().cloned()?;
        if let Some(pool) = &self.workers {
            for w in pool.workers() {
                if let Some(m) = w.switch().telemetry() {
                    merged.merge(m);
                }
            }
        }
        Some(merged)
    }

    /// The flight-recorder ring with every worker's packet events merged
    /// in deterministic order (see `rmt_sim::trace::merge_rings`);
    /// a clone of the master's ring when the parallel engine is off.
    /// `None` when tracing is disabled.
    pub fn merged_trace(&self) -> Option<TraceBuffer> {
        match &self.workers {
            Some(pool) => pool.merged_trace(&self.switch),
            None => self.switch.trace().cloned(),
        }
    }
}

/// The compile front half of a deploy — parse, check, lower, allocate —
/// against a caller-supplied (possibly snapshot) resource view. Runs on
/// `deploy_many` worker threads; touches no controller state.
fn compile_source(
    source: &str,
    ctx: &CheckContext,
    view: &AllocView,
    cfg: &AllocConfig,
) -> CtlResult<Vec<CompiledProgram>> {
    let t0 = Instant::now();
    let unit = parse(source).map_err(CompileError::from)?;
    check(&unit, ctx).map_err(CompileError::from)?;
    let parse_wall = t0.elapsed();
    let mems: Vec<MemDecl> = unit
        .annotations
        .iter()
        .map(|a| MemDecl { name: a.name.clone(), size: a.size as u32 })
        .collect();
    let mut out = Vec::with_capacity(unit.programs.len());
    for prog in &unit.programs {
        let ir = lower(prog, &mems)?;
        let t_alloc = Instant::now();
        let allocation = allocate(&ir, view, cfg)?;
        out.push(CompiledProgram {
            name: prog.name.clone(),
            ir,
            allocation,
            parse_wall,
            alloc_wall: t_alloc.elapsed(),
        });
    }
    Ok(out)
}
