//! Control-plane telemetry: program lifecycle spans, resource-utilization
//! gauges, and the unified [`TelemetryReport`] that joins them with the
//! data plane's packet-side counters.
//!
//! The split mirrors the paper's measurement methodology: Figure 7 and
//! Table 1 are *control-side* quantities (solver wall-clock, update
//! delay), Figures 8/18/19 are *resource* gauges, and the case studies of
//! §6.4 correlate *packet-side* series with lifecycle events. The
//! [`LifecycleSpan`] carries the telemetry **epoch** so those series can
//! be cut at exactly the right packet (see `rmt_sim::telemetry` and
//! `traffic::replay::BucketStats::epoch`).
//!
//! Everything serializes to one JSON document through the workspace
//! `serde`; `docs/TELEMETRY.md` documents the schema.

use crate::resman::ResourceManager;
use p4rp_dataplane::{INIT_TABLE_SIZE, RECIRC_TABLE_SIZE};
use rmt_sim::parallel::WorkerStats;
use rmt_sim::switch::TableIndexStats;
use rmt_sim::telemetry::{Histogram, MetricsRecorder};
use rmt_sim::trace::TraceStats;
use std::collections::BTreeMap;

/// Version of the `status --json` document. Bump on any field addition,
/// removal, or rename, and keep `docs/TELEMETRY.md`'s schema section in
/// step. Version 1 retroactively names the document as it stood before
/// explicit versioning; version 2 added `schema_version` itself plus the
/// per-program (`programs`), SLO (`slo`), and time-series (`series`)
/// sections; version 3 added the per-table lookup-structure section
/// (`tables`); version 4 added the runtime-control server section
/// (`server`, see `docs/SERVER.md`).
pub const SCHEMA_VERSION: u64 = 4;

/// One program lifecycle event as the controller executed it.
///
/// A `deploy` span carries the compile-side timings and what it wrote; a
/// `revoke` span carries what it removed. `update` is revoke + deploy and
/// therefore emits two spans. All durations are nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LifecycleSpan {
    /// Monotonic span index within this controller.
    pub seq: u64,
    /// `"deploy"` or `"revoke"`.
    pub kind: String,
    /// Program name.
    pub program: String,
    /// Program identifier carried in recirculation headers.
    pub prog_id: u64,
    /// Telemetry epoch active *after* this event: packet-side series
    /// tagged with this epoch saw the post-event data plane.
    pub epoch: u64,
    /// Wall-clock parse + semantic check time (deploy only).
    pub parse_wall_ns: u64,
    /// Wall-clock allocation-scheme computation (Figure 7; deploy only).
    pub solver_wall_ns: u64,
    /// Branch-and-bound nodes the solver explored (deploy only).
    pub solver_nodes: u64,
    /// Wall-clock spent applying batches through the control channel —
    /// the controller-side cost of the install/remove, as opposed to the
    /// simulated device latency in `update_delay_ns`.
    pub channel_wall_ns: u64,
    /// Table entries inserted through the control channel.
    pub entries_written: u64,
    /// Table entries deleted through the control channel.
    pub entries_revoked: u64,
    /// Register-memory buckets granted from the free lists.
    pub memory_claimed: u64,
    /// Register-memory buckets returned to the free lists after reset.
    pub memory_released: u64,
    /// Simulated data plane update latency (Table 1).
    pub update_delay_ns: u64,
    /// Channel faults this event hit mid-plan (injected or real).
    pub faults: u64,
    /// Transient-fault retries this event consumed.
    pub retries: u64,
    /// Undo operations applied rolling back this event's partial state.
    pub rollback_ops: u64,
}

serde::impl_serde_struct!(LifecycleSpan {
    seq,
    kind,
    program,
    prog_id,
    epoch,
    parse_wall_ns,
    solver_wall_ns,
    solver_nodes,
    channel_wall_ns,
    entries_written,
    entries_revoked,
    memory_claimed,
    memory_released,
    update_delay_ns,
    faults,
    retries,
    rollback_ops,
});

impl LifecycleSpan {
    /// One human-readable row (the `status --metrics` rendering).
    pub fn render(&self) -> String {
        let mut row = format!(
            "#{} {:<6} {:<12} id {:<3} epoch {:<3} +{} entries, -{} entries, \
             +{}/-{} buckets, alloc {:.2} ms, apply {:.2} ms, update {:.2} ms",
            self.seq,
            self.kind,
            self.program,
            self.prog_id,
            self.epoch,
            self.entries_written,
            self.entries_revoked,
            self.memory_claimed,
            self.memory_released,
            self.solver_wall_ns as f64 / 1e6,
            self.channel_wall_ns as f64 / 1e6,
            self.update_delay_ns as f64 / 1e6,
        );
        if self.faults + self.retries + self.rollback_ops > 0 {
            row.push_str(&format!(
                ", {} fault(s), {} retries, {} undo ops",
                self.faults, self.retries, self.rollback_ops
            ));
        }
        row
    }
}

/// Point-in-time utilization gauges from the resource manager (the
/// Figure 8 / 18 / 19 quantities).
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceGauges {
    /// Fraction of RPB register memory allocated, whole data plane.
    pub memory_utilization: f64,
    /// Fraction of RPB table entries in use, whole data plane.
    pub entry_utilization: f64,
    /// Per-RPB memory utilization (Figure 18 heatmap rows).
    pub memory_per_rpb: Vec<f64>,
    /// Per-RPB entry utilization (Figure 19 heatmap rows).
    pub entries_per_rpb: Vec<f64>,
    /// Initialization-table filter entries in use.
    pub init_used: u64,
    /// Initialization-table capacity.
    pub init_capacity: u64,
    /// Recirculation-block filter entries in use.
    pub recirc_used: u64,
    /// Recirculation-block capacity.
    pub recirc_capacity: u64,
}

serde::impl_serde_struct!(ResourceGauges {
    memory_utilization,
    entry_utilization,
    memory_per_rpb,
    entries_per_rpb,
    init_used,
    init_capacity,
    recirc_used,
    recirc_capacity,
});

impl ResourceGauges {
    /// Snapshot the gauges from a live resource manager.
    pub fn collect(rm: &ResourceManager) -> ResourceGauges {
        ResourceGauges {
            memory_utilization: rm.memory_utilization(),
            entry_utilization: rm.entry_utilization(),
            memory_per_rpb: rm.memory_utilization_per_rpb(),
            entries_per_rpb: rm.entry_utilization_per_rpb(),
            init_used: rm.init_entries_used() as u64,
            init_capacity: INIT_TABLE_SIZE as u64,
            recirc_used: rm.recirc_entries_used() as u64,
            recirc_capacity: RECIRC_TABLE_SIZE as u64,
        }
    }
}

/// Fault-injection and recovery counters (see `docs/CHAOS.md`): how often
/// the control channel misbehaved and what the transactional controller
/// did about it. All zeros when no fault plan is armed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Triggers the channel's fault plan has fired.
    pub faults_injected: u64,
    /// Deploys that hit a mid-install fault (rolled back or wedged).
    pub deploy_faults: u64,
    /// Revokes that hit a mid-remove fault (finished by reconcile or a
    /// later retry).
    pub revoke_faults: u64,
    /// Transient-fault batch retries (timeouts, channel drops).
    pub retries: u64,
    /// Rollbacks executed after a mid-plan fault.
    pub rollbacks: u64,
    /// Undo operations applied across all rollbacks.
    pub rollback_ops: u64,
    /// Reconciliation passes completed.
    pub reconciles: u64,
    /// Programs currently wedged (cleanup itself faulted; a later revoke
    /// or reconcile retires them).
    pub wedged: u64,
    /// Device generation last observed (bumped by every device reset).
    pub device_generation: u64,
}

serde::impl_serde_struct!(FaultStats {
    faults_injected,
    deploy_faults,
    revoke_faults,
    retries,
    rollbacks,
    rollback_ops,
    reconciles,
    wedged,
    device_generation,
});

/// Sharded multi-worker engine status (see `docs/PERF.md`): how many
/// workers are active, the snapshot generation the control plane has
/// published up to, and each worker's packet/trace counters. The
/// `dataplane` section of the enclosing report already carries the
/// *merged* counters, so this section is purely the per-worker breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelStats {
    /// Active worker count (0 = sequential engine).
    pub workers: u64,
    /// Latest control-state snapshot generation published to workers.
    pub snapshot_generation: u64,
    /// Per-worker counters, in worker order.
    pub per_worker: Vec<WorkerStats>,
}

serde::impl_serde_struct!(ParallelStats {
    workers,
    snapshot_generation,
    per_worker,
});

/// Runtime-control server counters (see `docs/SERVER.md`): connection
/// accept/refuse totals, per-request outcome counters split by rejection
/// reason, batching effectiveness, HTTP scrape handling, and the
/// sim-clock submit→response latency histogram. `None` in the enclosing
/// report when no server has run on this controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Connections accepted into client sessions.
    pub accepted: u64,
    /// Connections refused at accept because `max_clients` sessions were
    /// already live.
    pub rejected_max_clients: u64,
    /// Requests admitted to the service queue.
    pub requests: u64,
    /// Responses whose operation executed successfully.
    pub responses_ok: u64,
    /// Responses whose operation executed and failed (e.g. a deploy the
    /// allocator refused) — distinct from rejections, which never execute.
    pub responses_err: u64,
    /// Requests refused by backpressure (bounded in-flight queue full).
    pub rejected_busy: u64,
    /// Requests refused by the per-client token-bucket rate limit.
    pub rejected_rate_limited: u64,
    /// Requests that sat queued past their timeout before execution.
    pub rejected_timeout: u64,
    /// Requests refused because the server was draining.
    pub rejected_draining: u64,
    /// Request lines that failed to parse (malformed JSON, unknown op,
    /// bad field types).
    pub parse_errors: u64,
    /// Service ticks that executed at least one operation.
    pub batches: u64,
    /// Deploys coalesced into `deploy_many` batches.
    pub batched_deploys: u64,
    /// Revokes coalesced into `revoke_many` batches.
    pub batched_revokes: u64,
    /// One-shot HTTP `GET /metrics` scrapes answered `200 OK`.
    pub http_gets: u64,
    /// One-shot HTTP requests refused (`405` non-GET, `404` other path).
    pub http_rejected: u64,
    /// Sim-clock submit→response latency over executed requests, ns.
    pub request_latency: Histogram,
}

serde::impl_serde_struct!(ServerStats {
    accepted,
    rejected_max_clients,
    requests,
    responses_ok,
    responses_err,
    rejected_busy,
    rejected_rate_limited,
    rejected_timeout,
    rejected_draining,
    parse_errors,
    batches,
    batched_deploys,
    batched_revokes,
    http_gets,
    http_rejected,
    request_latency,
});

impl ServerStats {
    /// Zeroed counters with the same latency-bucket shape as the control
    /// channel's write histogram.
    pub fn new() -> ServerStats {
        ServerStats {
            accepted: 0,
            rejected_max_clients: 0,
            requests: 0,
            responses_ok: 0,
            responses_err: 0,
            rejected_busy: 0,
            rejected_rate_limited: 0,
            rejected_timeout: 0,
            rejected_draining: 0,
            parse_errors: 0,
            batches: 0,
            batched_deploys: 0,
            batched_revokes: 0,
            http_gets: 0,
            http_rejected: 0,
            request_latency: Histogram::exponential(10_000, 2, 12),
        }
    }

    /// Total requests refused without executing.
    pub fn rejected(&self) -> u64 {
        self.rejected_busy
            + self.rejected_rate_limited
            + self.rejected_timeout
            + self.rejected_draining
    }
}

impl Default for ServerStats {
    fn default() -> ServerStats {
        ServerStats::new()
    }
}

/// One resident program's resource footprint joined with its attributed
/// packet-side counters — the row type behind `p4rp top` and the
/// `programs` section of `status --json`.
///
/// Slot `prog_id == 0` is the synthetic `(unattributed)` program: packet
/// events observed before the initialization filter binds a program id
/// (stage-0 filter lookups, packets matching no resident program). Its
/// `entries`/`memory`/`resource_share` are always zero.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProgramUsage {
    /// Program name (`"(unattributed)"` for slot 0).
    pub name: String,
    /// Program identifier carried in recirculation headers.
    pub prog_id: u64,
    /// Packets attributed to this program (attribution at packet end).
    pub packets: u64,
    /// TM forward/return/multicast verdicts attributed to this program.
    pub forwarded: u64,
    /// TM drop verdicts attributed to this program.
    pub drops: u64,
    /// Recirculation passes attributed to this program.
    pub recirc_passes: u64,
    /// Match-table hits (ingress + egress) attributed to this program.
    pub hits: u64,
    /// Stateful-ALU read-modify-writes attributed to this program.
    pub salu_rmws: u64,
    /// Table entries this program holds (control-side residency).
    pub entries: u64,
    /// Register-memory buckets this program holds.
    pub memory: u64,
    /// This program's fraction of all program-held entries + buckets,
    /// in `[0, 1]`; zero when nothing is allocated.
    pub resource_share: f64,
}

serde::impl_serde_struct!(ProgramUsage {
    name,
    prog_id,
    packets,
    forwarded,
    drops,
    recirc_passes,
    hits,
    salu_rmws,
    entries,
    memory,
    resource_share,
});

impl ProgramUsage {
    /// One human-readable row (the `p4rp top` / `status --metrics`
    /// rendering).
    pub fn render(&self) -> String {
        format!(
            "{:<16} id {:<3} pkts {:<8} fwd {:<8} drop {:<6} recirc {:<6} \
             hits {:<8} salu {:<6} entries {:<4} mem {:<5} share {:.1}%",
            self.name,
            self.prog_id,
            self.packets,
            self.forwarded,
            self.drops,
            self.recirc_passes,
            self.hits,
            self.salu_rmws,
            self.entries,
            self.memory,
            self.resource_share * 100.0
        )
    }
}

/// SLO watchdog thresholds. Each limit is optional; the watchdog is
/// *armed* when at least one is set. Rates use integer parts-per-million
/// and latencies integer nanoseconds so evaluation is bit-exact across
/// replays of the same seed (see `docs/CHAOS.md`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloThresholds {
    /// Maximum TM drop rate in parts-per-million of terminal verdicts.
    pub max_drop_ppm: Option<u64>,
    /// Maximum faulted deploys (`FaultStats::deploy_faults`).
    pub max_deploy_failures: Option<u64>,
    /// Maximum p99 control-channel write latency in nanoseconds.
    pub max_p99_write_ns: Option<u64>,
}

serde::impl_serde_struct!(SloThresholds {
    max_drop_ppm,
    max_deploy_failures,
    max_p99_write_ns,
});

impl SloThresholds {
    /// True when at least one limit is set.
    pub fn is_armed(&self) -> bool {
        self.max_drop_ppm.is_some()
            || self.max_deploy_failures.is_some()
            || self.max_p99_write_ns.is_some()
    }
}

/// Watchdog state as reported by `status --json` / `watchdog status`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SloStatus {
    /// The armed thresholds.
    pub thresholds: SloThresholds,
    /// Total `SloViolation` trace events emitted (breach *transitions*,
    /// not checks: a breach that persists across checks counts once until
    /// it clears).
    pub violations: u64,
    /// SLO kinds currently in breach (`"drop_rate"`,
    /// `"deploy_failure"`, `"p99_latency"`), stable order.
    pub breached: Vec<String>,
}

serde::impl_serde_struct!(SloStatus {
    thresholds,
    violations,
    breached,
});

/// One bucket of the telemetry time series: counter *deltas* since the
/// previous point plus latency snapshots, cut at a sim-clock instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Sim-clock timestamp of the cut (nanoseconds).
    pub t_ns: u64,
    /// Telemetry epoch active at the cut.
    pub epoch: u64,
    /// TM forwarded-verdict delta since the previous point.
    pub forwarded: u64,
    /// TM drop-verdict delta since the previous point.
    pub drops: u64,
    /// TM recirculation-verdict delta since the previous point.
    pub recirc: u64,
    /// p99 control-channel write latency at the cut (snapshot, ns; 0
    /// when no writes have been observed).
    pub ctl_write_p99_ns: u64,
    /// Per-program packet deltas, keyed by decimal program id. Only
    /// programs with a nonzero delta appear; empty when attribution is
    /// off.
    pub per_prog_packets: BTreeMap<String, u64>,
}

serde::impl_serde_struct!(SeriesPoint {
    t_ns,
    epoch,
    forwarded,
    drops,
    recirc,
    ctl_write_p99_ns,
    per_prog_packets,
});

/// Fixed-capacity windowed time series over the merged dataplane
/// counters. Fed on epoch bumps and replay ticks (event-driven — the
/// simulator has no background clock); keeps the most recent
/// `capacity` points and evicts the oldest beyond that. The `last_*`
/// fields are the internal cumulative cursor the deltas are computed
/// against; they serialize so a report round-trips losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesRing {
    /// Maximum retained points.
    pub capacity: u64,
    /// Points evicted so far (total samples = `evicted + points.len()`).
    pub evicted: u64,
    /// Retained points, oldest first.
    pub points: Vec<SeriesPoint>,
    /// Cumulative-counter cursor: TM forwarded at the last cut.
    pub last_forwarded: u64,
    /// Cumulative-counter cursor: TM drops at the last cut.
    pub last_drops: u64,
    /// Cumulative-counter cursor: TM recirculations at the last cut.
    pub last_recirc: u64,
    /// Cumulative-counter cursor: per-program packets at the last cut,
    /// indexed by program id.
    pub last_per_prog: Vec<u64>,
}

serde::impl_serde_struct!(SeriesRing {
    capacity,
    evicted,
    points,
    last_forwarded,
    last_drops,
    last_recirc,
    last_per_prog,
});

impl SeriesRing {
    /// An empty ring retaining at most `capacity` points (min 1).
    pub fn new(capacity: usize) -> SeriesRing {
        SeriesRing {
            capacity: capacity.max(1) as u64,
            evicted: 0,
            points: Vec::new(),
            last_forwarded: 0,
            last_drops: 0,
            last_recirc: 0,
            last_per_prog: Vec::new(),
        }
    }

    /// Cut one bucket at sim-time `t_ns`: push the counter deltas since
    /// the previous cut (computed against the internal cumulative
    /// cursor) and the current p99 write latency, evicting the oldest
    /// point if the ring is full. A cut with no traffic still records a
    /// point — gaps in the series are real idle windows.
    pub fn sample(
        &mut self,
        t_ns: u64,
        epoch: u64,
        dp: Option<&MetricsRecorder>,
        ctl_write_p99_ns: u64,
    ) {
        let (fwd, drops, recirc) = match dp {
            Some(m) => (
                m.tm.forwarded.get() + m.tm.returned.get() + m.tm.multicast.get(),
                m.tm.dropped.get(),
                m.tm.recirculated.get(),
            ),
            None => (self.last_forwarded, self.last_drops, self.last_recirc),
        };
        let mut per_prog_packets = BTreeMap::new();
        if let Some(pp) = dp.and_then(|m| m.per_prog.as_ref()) {
            if self.last_per_prog.len() < pp.len() {
                self.last_per_prog.resize(pp.len(), 0);
            }
            for (id, (slot, last)) in pp.iter().zip(self.last_per_prog.iter_mut()).enumerate() {
                let now = slot.packets.get();
                if now > *last {
                    per_prog_packets.insert(id.to_string(), now - *last);
                }
                *last = now;
            }
        }
        self.points.push(SeriesPoint {
            t_ns,
            epoch,
            forwarded: fwd.saturating_sub(self.last_forwarded),
            drops: drops.saturating_sub(self.last_drops),
            recirc: recirc.saturating_sub(self.last_recirc),
            ctl_write_p99_ns,
            per_prog_packets,
        });
        self.last_forwarded = fwd;
        self.last_drops = drops;
        self.last_recirc = recirc;
        while self.points.len() as u64 > self.capacity {
            self.points.remove(0);
            self.evicted += 1;
        }
    }
}

/// The single JSON document `status --metrics` is built from: control
/// spans + resource gauges + control-channel write latency + (when
/// enabled) the data plane's packet-side counters.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Document version ([`SCHEMA_VERSION`]); see `docs/TELEMETRY.md`.
    pub schema_version: u64,
    /// Current telemetry epoch (number of lifecycle events so far).
    pub epoch: u64,
    /// Programs currently deployed.
    pub programs_deployed: u64,
    /// Every lifecycle event, oldest first.
    pub spans: Vec<LifecycleSpan>,
    /// Resource-manager gauges at snapshot time.
    pub resources: ResourceGauges,
    /// Latency histogram over every mutating control-channel operation.
    pub control_write_latency: Histogram,
    /// Packet-side counters; `None` when dataplane telemetry is disabled.
    pub dataplane: Option<MetricsRecorder>,
    /// Flight-recorder statistics (`TraceStats::disabled()` when the
    /// flight recorder is off — see `docs/TRACING.md`).
    pub trace: TraceStats,
    /// Fault-injection and recovery counters (`docs/CHAOS.md`).
    pub faults: FaultStats,
    /// Multi-worker engine status; `None` when running sequentially.
    pub parallel: Option<ParallelStats>,
    /// Per-program usage rows, one per resident program plus the
    /// synthetic `(unattributed)` slot 0; empty when attribution is off.
    pub programs: Vec<ProgramUsage>,
    /// SLO watchdog state; `None` when the watchdog is disarmed.
    pub slo: Option<SloStatus>,
    /// Windowed time series; `None` when series collection is off.
    pub series: Option<SeriesRing>,
    /// Per-table lookup-structure rows (index mode, tuple-space groups,
    /// result-cache effectiveness), in pipeline order.
    pub tables: Vec<TableIndexStats>,
    /// Runtime-control server counters; `None` when no server has run on
    /// this controller (`docs/SERVER.md`).
    pub server: Option<ServerStats>,
}

serde::impl_serde_struct!(TelemetryReport {
    schema_version,
    epoch,
    programs_deployed,
    spans,
    resources,
    control_write_latency,
    dataplane,
    trace,
    faults,
    parallel,
    programs,
    slo,
    series,
    tables,
    server,
});

impl TelemetryReport {
    /// Serialize to the canonical pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse a document produced by [`TelemetryReport::to_json`].
    pub fn from_json(text: &str) -> Result<TelemetryReport, serde::Error> {
        serde::json::from_str(text)
    }

    /// The human-readable multi-section summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "telemetry epoch {} | programs deployed: {}\n",
            self.epoch, self.programs_deployed
        ));
        let r = &self.resources;
        out.push_str(&format!(
            "resources: memory {:.1}% | entries {:.1}% | init {}/{} | recirc {}/{}\n",
            r.memory_utilization * 100.0,
            r.entry_utilization * 100.0,
            r.init_used,
            r.init_capacity,
            r.recirc_used,
            r.recirc_capacity
        ));
        let h = &self.control_write_latency;
        match h.mean() {
            Some(mean) => out.push_str(&format!(
                "control writes: {} ops, mean {:.1} µs, p99 ≤ {:.0} µs, max {:.0} µs\n",
                h.count(),
                mean / 1e3,
                h.quantile(0.99).unwrap_or(0) as f64 / 1e3,
                h.max().unwrap_or(0) as f64 / 1e3
            )),
            None => out.push_str("control writes: none\n"),
        }
        if self.spans.is_empty() {
            out.push_str("lifecycle spans: none\n");
        } else {
            out.push_str("lifecycle spans:\n");
            for s in &self.spans {
                out.push_str("  ");
                out.push_str(&s.render());
                out.push('\n');
            }
        }
        let fs = &self.faults;
        if fs == &FaultStats::default() {
            out.push_str("faults: none\n");
        } else {
            out.push_str(&format!(
                "faults: {} injected | deploys {} / revokes {} hit | {} retries | \
                 {} rollbacks ({} undo ops) | {} reconciles | {} wedged | device gen {}\n",
                fs.faults_injected,
                fs.deploy_faults,
                fs.revoke_faults,
                fs.retries,
                fs.rollbacks,
                fs.rollback_ops,
                fs.reconciles,
                fs.wedged,
                fs.device_generation
            ));
        }
        if self.trace.enabled {
            out.push_str(&format!(
                "flight recorder: {} recorded, {} dropped, {} retained (capacity {}), \
                 {} violations\n",
                self.trace.recorded,
                self.trace.dropped,
                self.trace.retained,
                self.trace.capacity,
                self.trace.violations
            ));
        } else {
            out.push_str("flight recorder: disabled\n");
        }
        match &self.dataplane {
            None => out.push_str("dataplane telemetry: disabled\n"),
            Some(dp) => {
                let ig = dp.ingress.total();
                let eg = dp.egress.total();
                out.push_str(&format!(
                    "dataplane (epoch {}): ingress {} hits / {} misses / {} salu writes, \
                     egress {} hits, tm fwd {} drop {} recirc {} report {}\n",
                    dp.epoch,
                    ig.hits.get(),
                    ig.misses.get(),
                    ig.salu_writes.get(),
                    eg.hits.get(),
                    dp.tm.forwarded.get(),
                    dp.tm.dropped.get(),
                    dp.tm.recirculated.get(),
                    dp.tm.reports.get()
                ));
                if !dp.parser_paths.is_empty() {
                    let paths: Vec<String> = dp
                        .parser_paths
                        .iter()
                        .map(|(k, v)| format!("{k}×{v}"))
                        .collect();
                    out.push_str(&format!("parser paths: {}\n", paths.join(" ")));
                }
            }
        }
        if !self.programs.is_empty() {
            out.push_str("per-program:\n");
            for p in &self.programs {
                out.push_str("  ");
                out.push_str(&p.render());
                out.push('\n');
            }
        }
        match &self.slo {
            None => out.push_str("slo watchdog: disarmed\n"),
            Some(slo) => {
                let t = &slo.thresholds;
                let mut limits = Vec::new();
                if let Some(v) = t.max_drop_ppm {
                    limits.push(format!("drop ≤ {v} ppm"));
                }
                if let Some(v) = t.max_deploy_failures {
                    limits.push(format!("deploy faults ≤ {v}"));
                }
                if let Some(v) = t.max_p99_write_ns {
                    limits.push(format!("write p99 ≤ {v} ns"));
                }
                out.push_str(&format!(
                    "slo watchdog: armed ({}) | {} violation(s){}\n",
                    limits.join(", "),
                    slo.violations,
                    if slo.breached.is_empty() {
                        String::new()
                    } else {
                        format!(" | in breach: {}", slo.breached.join(", "))
                    }
                ));
            }
        }
        if let Some(s) = &self.series {
            out.push_str(&format!(
                "series: {} point(s) retained (capacity {}, {} evicted)\n",
                s.points.len(),
                s.capacity,
                s.evicted
            ));
        }
        if let Some(sv) = &self.server {
            out.push_str(&format!(
                "server: {} session(s) accepted ({} refused) | {} requests, \
                 {} ok / {} err / {} rejected ({} busy, {} rate-limited, \
                 {} timed out, {} draining) | {} parse error(s) | \
                 {} batch(es): {} deploys + {} revokes | http {} scraped / {} refused\n",
                sv.accepted,
                sv.rejected_max_clients,
                sv.requests,
                sv.responses_ok,
                sv.responses_err,
                sv.rejected(),
                sv.rejected_busy,
                sv.rejected_rate_limited,
                sv.rejected_timeout,
                sv.rejected_draining,
                sv.parse_errors,
                sv.batches,
                sv.batched_deploys,
                sv.batched_revokes,
                sv.http_gets,
                sv.http_rejected
            ));
            if let Some(mean) = sv.request_latency.mean() {
                out.push_str(&format!(
                    "server latency: mean {:.1} µs, p99 ≤ {:.0} µs, max {:.0} µs\n",
                    mean / 1e3,
                    sv.request_latency.quantile(0.99).unwrap_or(0) as f64 / 1e3,
                    sv.request_latency.max().unwrap_or(0) as f64 / 1e3
                ));
            }
        }
        let occupied: Vec<&TableIndexStats> = self
            .tables
            .iter()
            .filter(|t| t.entries > 0 || t.hits + t.misses > 0)
            .collect();
        if !occupied.is_empty() {
            out.push_str("table indexes:\n");
            for t in occupied {
                out.push_str(&format!(
                    "  {}[{}].{}: {} entries, {}{}, {} hits / {} misses",
                    t.gress, t.stage, t.name, t.entries,
                    if t.indexed { "" } else { "scan-forced " },
                    t.mode,
                    t.hits, t.misses
                ));
                if t.tss_groups > 0 {
                    out.push_str(&format!(", {} mask group(s)", t.tss_groups));
                }
                if t.cache {
                    out.push_str(&format!(
                        ", cache {} line(s) {} hits / {} misses",
                        t.cache_entries, t.cache_hits, t.cache_misses
                    ));
                }
                out.push('\n');
            }
        }
        if let Some(p) = &self.parallel {
            out.push_str(&format!(
                "parallel engine: {} workers | snapshot generation {}\n",
                p.workers, p.snapshot_generation
            ));
            for w in &p.per_worker {
                out.push_str(&format!(
                    "  worker {}: {} pkts, {} drops, {} recirc passes, gen {}, \
                     trace {} recorded / {} dropped\n",
                    w.worker,
                    w.packets,
                    w.drops,
                    w.recirc_passes,
                    w.snapshot_generation,
                    w.trace_recorded,
                    w.trace_dropped
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(seq: u64, kind: &str) -> LifecycleSpan {
        LifecycleSpan {
            seq,
            kind: kind.into(),
            program: "p".into(),
            prog_id: 1,
            epoch: seq + 1,
            parse_wall_ns: 80_000,
            solver_wall_ns: 1_500_000,
            solver_nodes: 42,
            channel_wall_ns: 120_000,
            entries_written: if kind == "deploy" { 9 } else { 0 },
            entries_revoked: if kind == "revoke" { 9 } else { 0 },
            memory_claimed: if kind == "deploy" { 64 } else { 0 },
            memory_released: if kind == "revoke" { 64 } else { 0 },
            update_delay_ns: 4_000_000,
            faults: 0,
            retries: 0,
            rollback_ops: 0,
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let mut h = Histogram::exponential(10_000, 2, 12);
        h.observe(330_000);
        h.observe(25_000);
        let mut ring = SeriesRing::new(4);
        ring.sample(1_000, 1, None, 25_000);
        let report = TelemetryReport {
            schema_version: SCHEMA_VERSION,
            epoch: 2,
            programs_deployed: 0,
            spans: vec![span(0, "deploy"), span(1, "revoke")],
            resources: ResourceGauges::collect(&ResourceManager::new()),
            control_write_latency: h,
            dataplane: Some(MetricsRecorder::new()),
            trace: TraceStats {
                enabled: true,
                capacity: 1 << 18,
                recorded: 1234,
                dropped: 0,
                retained: 1234,
                violations: 0,
            },
            faults: FaultStats {
                faults_injected: 3,
                deploy_faults: 1,
                revoke_faults: 0,
                retries: 2,
                rollbacks: 1,
                rollback_ops: 7,
                reconciles: 1,
                wedged: 0,
                device_generation: 1,
            },
            parallel: Some(ParallelStats {
                workers: 2,
                snapshot_generation: 5,
                per_worker: vec![
                    WorkerStats {
                        worker: 0,
                        packets: 10,
                        drops: 1,
                        recirc_passes: 2,
                        snapshot_generation: 5,
                        trace_recorded: 40,
                        trace_dropped: 0,
                    },
                    WorkerStats { worker: 1, packets: 7, ..WorkerStats::default() },
                ],
            }),
            programs: vec![ProgramUsage {
                name: "cache".into(),
                prog_id: 1,
                packets: 17,
                forwarded: 15,
                drops: 2,
                recirc_passes: 3,
                hits: 34,
                salu_rmws: 5,
                entries: 9,
                memory: 1024,
                resource_share: 1.0,
            }],
            slo: Some(SloStatus {
                thresholds: SloThresholds {
                    max_drop_ppm: Some(100_000),
                    max_deploy_failures: None,
                    max_p99_write_ns: Some(500_000),
                },
                violations: 1,
                breached: vec!["drop_rate".into()],
            }),
            series: Some(ring),
            tables: vec![TableIndexStats {
                gress: "ingress".into(),
                stage: 1,
                table: 0,
                name: "rpb1".into(),
                mode: "tss".into(),
                indexed: true,
                entries: 12,
                tss_groups: 3,
                hits: 100,
                misses: 4,
                cache: true,
                cache_entries: 7,
                cache_hits: 90,
                cache_misses: 14,
            }],
            server: Some({
                let mut sv = ServerStats::new();
                sv.accepted = 4;
                sv.requests = 20;
                sv.responses_ok = 17;
                sv.responses_err = 1;
                sv.rejected_busy = 2;
                sv.batches = 6;
                sv.batched_deploys = 5;
                sv.batched_revokes = 3;
                sv.request_latency.observe(80_000);
                sv
            }),
        };
        let text = report.to_json();
        let back = TelemetryReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // And with the optional sections disabled.
        let disabled = TelemetryReport {
            dataplane: None,
            parallel: None,
            slo: None,
            series: None,
            programs: Vec::new(),
            tables: Vec::new(),
            server: None,
            ..report
        };
        let back = TelemetryReport::from_json(&disabled.to_json()).unwrap();
        assert_eq!(back, disabled);
    }

    #[test]
    fn summary_renders_every_section() {
        let report = TelemetryReport {
            schema_version: SCHEMA_VERSION,
            epoch: 2,
            programs_deployed: 1,
            spans: vec![span(0, "deploy")],
            resources: ResourceGauges::collect(&ResourceManager::new()),
            control_write_latency: Histogram::exponential(10_000, 2, 12),
            dataplane: None,
            trace: TraceStats::disabled(),
            faults: FaultStats::default(),
            parallel: None,
            programs: Vec::new(),
            slo: None,
            series: None,
            tables: Vec::new(),
            server: None,
        };
        let s = report.summary();
        assert!(s.contains("telemetry epoch 2"), "{s}");
        assert!(s.contains("deploy"), "{s}");
        assert!(s.contains("+9 entries"), "{s}");
        assert!(s.contains("control writes: none"), "{s}");
        assert!(s.contains("faults: none"), "{s}");
        assert!(s.contains("flight recorder: disabled"), "{s}");
        assert!(s.contains("dataplane telemetry: disabled"), "{s}");
        assert!(s.contains("slo watchdog: disarmed"), "{s}");
    }

    #[test]
    fn summary_renders_program_slo_and_series_sections() {
        let mut ring = SeriesRing::new(2);
        ring.sample(1_000, 1, None, 0);
        ring.sample(2_000, 1, None, 0);
        ring.sample(3_000, 2, None, 0);
        let report = TelemetryReport {
            schema_version: SCHEMA_VERSION,
            epoch: 2,
            programs_deployed: 1,
            spans: Vec::new(),
            resources: ResourceGauges::collect(&ResourceManager::new()),
            control_write_latency: Histogram::exponential(10_000, 2, 12),
            dataplane: None,
            trace: TraceStats::disabled(),
            faults: FaultStats::default(),
            parallel: None,
            programs: vec![ProgramUsage {
                name: "heavyhitter".into(),
                prog_id: 2,
                packets: 420,
                drops: 7,
                resource_share: 0.375,
                ..ProgramUsage::default()
            }],
            slo: Some(SloStatus {
                thresholds: SloThresholds {
                    max_drop_ppm: Some(1_000),
                    max_deploy_failures: Some(2),
                    max_p99_write_ns: None,
                },
                violations: 3,
                breached: vec!["drop_rate".into()],
            }),
            series: Some(ring),
            tables: Vec::new(),
            server: Some({
                let mut sv = ServerStats::new();
                sv.accepted = 3;
                sv.requests = 12;
                sv.responses_ok = 9;
                sv.rejected_busy = 2;
                sv.rejected_rate_limited = 1;
                sv.request_latency.observe(40_000);
                sv
            }),
        };
        let s = report.summary();
        assert!(s.contains("per-program:"), "{s}");
        assert!(s.contains("heavyhitter"), "{s}");
        assert!(s.contains("share 37.5%"), "{s}");
        assert!(s.contains("slo watchdog: armed"), "{s}");
        assert!(s.contains("drop ≤ 1000 ppm"), "{s}");
        assert!(s.contains("3 violation(s)"), "{s}");
        assert!(s.contains("in breach: drop_rate"), "{s}");
        assert!(s.contains("series: 2 point(s) retained (capacity 2, 1 evicted)"), "{s}");
        assert!(s.contains("server: 3 session(s) accepted"), "{s}");
        assert!(s.contains("12 requests"), "{s}");
        assert!(s.contains("2 busy, 1 rate-limited"), "{s}");
        assert!(s.contains("server latency:"), "{s}");
    }

    #[test]
    fn series_ring_buckets_deltas_and_evicts_oldest() {
        let mut dp = MetricsRecorder::new();
        dp.enable_attribution();
        let mut ring = SeriesRing::new(2);
        dp.tm.forwarded.add(10);
        dp.tm.dropped.add(1);
        dp.prog_metrics_mut(1).unwrap().packets.add(4);
        ring.sample(1_000, 1, Some(&dp), 111);
        dp.tm.forwarded.add(5);
        dp.tm.recirculated.add(2);
        dp.prog_metrics_mut(1).unwrap().packets.add(1);
        dp.prog_metrics_mut(2).unwrap().packets.add(6);
        ring.sample(2_000, 1, Some(&dp), 222);
        // Idle cut: still records a (zero-delta) point and evicts the
        // oldest because capacity is 2.
        ring.sample(3_000, 2, Some(&dp), 222);
        assert_eq!(ring.points.len(), 2);
        assert_eq!(ring.evicted, 1);
        let p = &ring.points[0];
        assert_eq!((p.t_ns, p.forwarded, p.drops, p.recirc), (2_000, 5, 0, 2));
        assert_eq!(p.ctl_write_p99_ns, 222);
        assert_eq!(p.per_prog_packets.get("1"), Some(&1));
        assert_eq!(p.per_prog_packets.get("2"), Some(&6));
        let idle = &ring.points[1];
        assert_eq!((idle.forwarded, idle.drops, idle.recirc), (0, 0, 0));
        assert!(idle.per_prog_packets.is_empty());
        assert_eq!(idle.epoch, 2);
    }

    #[test]
    fn fault_summary_and_span_counters_render_when_nonzero() {
        let mut sp = span(0, "deploy");
        sp.faults = 1;
        sp.retries = 2;
        sp.rollback_ops = 5;
        let row = sp.render();
        assert!(row.contains("1 fault(s), 2 retries, 5 undo ops"), "{row}");
        let report = TelemetryReport {
            schema_version: SCHEMA_VERSION,
            epoch: 1,
            programs_deployed: 0,
            spans: vec![sp],
            resources: ResourceGauges::collect(&ResourceManager::new()),
            control_write_latency: Histogram::exponential(10_000, 2, 12),
            dataplane: None,
            trace: TraceStats::disabled(),
            faults: FaultStats { faults_injected: 4, wedged: 1, ..FaultStats::default() },
            parallel: Some(ParallelStats {
                workers: 2,
                snapshot_generation: 3,
                per_worker: vec![WorkerStats::default()],
            }),
            programs: Vec::new(),
            slo: None,
            series: None,
            tables: Vec::new(),
            server: None,
        };
        let s = report.summary();
        assert!(s.contains("4 injected"), "{s}");
        assert!(s.contains("1 wedged"), "{s}");
        assert!(s.contains("parallel engine: 2 workers"), "{s}");
        assert!(s.contains("snapshot generation 3"), "{s}");
    }

    #[test]
    fn gauges_track_resource_manager() {
        use p4rp_dataplane::RpbId;
        let mut rm = ResourceManager::new();
        rm.grant_memory(RpbId(1), 1024).unwrap();
        rm.charge_init(2);
        rm.charge_recirc(3);
        let g = ResourceGauges::collect(&rm);
        assert!(g.memory_utilization > 0.0);
        assert_eq!(g.init_used, 2);
        assert_eq!(g.recirc_used, 3);
        assert_eq!(g.init_capacity, INIT_TABLE_SIZE as u64);
        assert!(g.memory_per_rpb[0] > 0.0 && g.memory_per_rpb[1] == 0.0);
    }
}
