//! Prometheus-style metrics export, the `p4rp top` ranking view, and a
//! minimal loopback `/metrics` endpoint.
//!
//! [`render_prometheus`] flattens a [`TelemetryReport`] into the
//! Prometheus text exposition format (version 0.0.4): `# HELP` / `# TYPE`
//! comment pairs, counters suffixed `_total`, gauges bare, and the
//! control-channel write-latency histogram as cumulative `_bucket{le=…}`
//! rows plus `_sum` / `_count`. [`parse_prometheus`] is the matching
//! strict parser — CI uses it to assert every exported line is
//! well-formed and that counter values survive a round trip.
//!
//! [`serve_once`] answers exactly one HTTP request on an already-bound
//! `std::net::TcpListener` — enough for `p4rp metrics serve` to expose
//! the live report to a scraper on loopback without pulling in an HTTP
//! stack. Routing (405 for non-GET, 404 off `/metrics`) lives in
//! [`http_response`], shared with the persistent `server` module; the
//! always-on multi-client endpoint is `p4rp serve` (`docs/SERVER.md`).

use crate::telemetry::TelemetryReport;
use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::TcpListener;

/// One parsed exposition sample: metric name, label pairs (sorted as
/// written), and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name.
    pub name: String,
    /// Label key/value pairs, in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

fn escape_label(v: &str) -> String {
    // Backslash first so the escapes it introduces aren't re-escaped.
    // `\r` must be escaped too: a raw CR inside a label value survives an
    // in-memory round trip (`str::lines` only splits on `\n`), but the
    // exposition travels over HTTP where proxies and scrapers split on
    // `\r\n` — a bare CR silently truncates the label value on the wire.
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n").replace('\r', "\\r")
}

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn sample(out: &mut String, name: &str, labels: &[(&str, String)], value: f64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let body: Vec<String> =
            labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
        let _ = writeln!(out, "{name}{{{}}} {value}", body.join(","));
    }
}

/// Flatten a telemetry report into the Prometheus text exposition format.
pub fn render_prometheus(report: &TelemetryReport) -> String {
    let mut out = String::new();

    header(&mut out, "p4rp_schema_version", "status --json document version.", "gauge");
    sample(&mut out, "p4rp_schema_version", &[], report.schema_version as f64);
    header(&mut out, "p4rp_epoch", "Telemetry epoch (lifecycle events so far).", "gauge");
    sample(&mut out, "p4rp_epoch", &[], report.epoch as f64);
    header(&mut out, "p4rp_programs_deployed", "Programs currently deployed.", "gauge");
    sample(&mut out, "p4rp_programs_deployed", &[], report.programs_deployed as f64);

    let r = &report.resources;
    header(&mut out, "p4rp_memory_utilization", "Fraction of RPB register memory in use.", "gauge");
    sample(&mut out, "p4rp_memory_utilization", &[], r.memory_utilization);
    header(&mut out, "p4rp_entry_utilization", "Fraction of RPB table entries in use.", "gauge");
    sample(&mut out, "p4rp_entry_utilization", &[], r.entry_utilization);
    header(&mut out, "p4rp_filter_entries_used", "Filter-table entries in use, by table.", "gauge");
    sample(&mut out, "p4rp_filter_entries_used", &[("table", "init".into())], r.init_used as f64);
    sample(
        &mut out,
        "p4rp_filter_entries_used",
        &[("table", "recirc".into())],
        r.recirc_used as f64,
    );

    if let Some(dp) = &report.dataplane {
        header(&mut out, "p4rp_tm_verdicts_total", "Traffic-manager verdicts, by kind.", "counter");
        for (kind, v) in [
            ("forwarded", dp.tm.forwarded.get()),
            ("returned", dp.tm.returned.get()),
            ("dropped", dp.tm.dropped.get()),
            ("recirculated", dp.tm.recirculated.get()),
            ("multicast", dp.tm.multicast.get()),
            ("report", dp.tm.reports.get()),
        ] {
            sample(&mut out, "p4rp_tm_verdicts_total", &[("verdict", kind.into())], v as f64);
        }
        header(&mut out, "p4rp_table_hits_total", "Match-table hits, by gress.", "counter");
        header(&mut out, "p4rp_table_misses_total", "Match-table misses, by gress.", "counter");
        header(&mut out, "p4rp_salu_rmws_total", "Stateful-ALU read-modify-writes, by gress.", "counter");
        for (gress, m) in [("ingress", dp.ingress.total()), ("egress", dp.egress.total())] {
            let labels = [("gress", gress.to_string())];
            sample(&mut out, "p4rp_table_hits_total", &labels, m.hits.get() as f64);
            sample(&mut out, "p4rp_table_misses_total", &labels, m.misses.get() as f64);
            sample(&mut out, "p4rp_salu_rmws_total", &labels, m.salu_reads.get() as f64);
        }
    }

    if !report.programs.is_empty() {
        header(&mut out, "p4rp_program_packets_total", "Packets attributed per program.", "counter");
        header(&mut out, "p4rp_program_forwarded_total", "Forwarded verdicts per program.", "counter");
        header(&mut out, "p4rp_program_drops_total", "Drop verdicts per program.", "counter");
        header(&mut out, "p4rp_program_recirc_passes_total", "Recirculation passes per program.", "counter");
        header(&mut out, "p4rp_program_hits_total", "Match-table hits per program.", "counter");
        header(&mut out, "p4rp_program_salu_rmws_total", "Stateful-ALU RMWs per program.", "counter");
        header(&mut out, "p4rp_program_entries", "Table entries held per program.", "gauge");
        header(&mut out, "p4rp_program_memory_buckets", "Register buckets held per program.", "gauge");
        header(&mut out, "p4rp_program_resource_share", "Share of program-held resources.", "gauge");
        for p in &report.programs {
            let labels = [("program", p.name.clone()), ("prog_id", p.prog_id.to_string())];
            sample(&mut out, "p4rp_program_packets_total", &labels, p.packets as f64);
            sample(&mut out, "p4rp_program_forwarded_total", &labels, p.forwarded as f64);
            sample(&mut out, "p4rp_program_drops_total", &labels, p.drops as f64);
            sample(&mut out, "p4rp_program_recirc_passes_total", &labels, p.recirc_passes as f64);
            sample(&mut out, "p4rp_program_hits_total", &labels, p.hits as f64);
            sample(&mut out, "p4rp_program_salu_rmws_total", &labels, p.salu_rmws as f64);
            sample(&mut out, "p4rp_program_entries", &labels, p.entries as f64);
            sample(&mut out, "p4rp_program_memory_buckets", &labels, p.memory as f64);
            sample(&mut out, "p4rp_program_resource_share", &labels, p.resource_share);
        }
    }

    // Control-channel write latency as a cumulative Prometheus histogram.
    histogram_rows(
        &mut out,
        "p4rp_control_write_latency_ns",
        "Mutating control-channel operation latency.",
        &report.control_write_latency,
    );

    let fs = &report.faults;
    header(&mut out, "p4rp_faults_injected_total", "Control-channel faults fired.", "counter");
    sample(&mut out, "p4rp_faults_injected_total", &[], fs.faults_injected as f64);
    header(&mut out, "p4rp_deploy_faults_total", "Deploys aborted by a mid-plan fault.", "counter");
    sample(&mut out, "p4rp_deploy_faults_total", &[], fs.deploy_faults as f64);
    header(&mut out, "p4rp_rollbacks_total", "Rollbacks executed after faults.", "counter");
    sample(&mut out, "p4rp_rollbacks_total", &[], fs.rollbacks as f64);

    if let Some(slo) = &report.slo {
        header(&mut out, "p4rp_slo_violations_total", "SLO breach transitions observed.", "counter");
        sample(&mut out, "p4rp_slo_violations_total", &[], slo.violations as f64);
        header(&mut out, "p4rp_slo_breached", "1 when the SLO kind is currently in breach.", "gauge");
        for kind in ["drop_rate", "deploy_failure", "p99_latency"] {
            let breached = slo.breached.iter().any(|b| b == kind);
            sample(
                &mut out,
                "p4rp_slo_breached",
                &[("slo", kind.into())],
                if breached { 1.0 } else { 0.0 },
            );
        }
    }

    if let Some(sv) = &report.server {
        header(&mut out, "p4rp_server_sessions_total", "Client connections, by accept outcome.", "counter");
        sample(&mut out, "p4rp_server_sessions_total", &[("outcome", "accepted".into())], sv.accepted as f64);
        sample(
            &mut out,
            "p4rp_server_sessions_total",
            &[("outcome", "rejected".into())],
            sv.rejected_max_clients as f64,
        );
        header(&mut out, "p4rp_server_requests_total", "Requests admitted to the service queue.", "counter");
        sample(&mut out, "p4rp_server_requests_total", &[], sv.requests as f64);
        header(&mut out, "p4rp_server_responses_total", "Executed requests, by outcome.", "counter");
        sample(&mut out, "p4rp_server_responses_total", &[("outcome", "ok".into())], sv.responses_ok as f64);
        sample(&mut out, "p4rp_server_responses_total", &[("outcome", "error".into())], sv.responses_err as f64);
        header(&mut out, "p4rp_server_rejected_total", "Requests refused unexecuted, by reason.", "counter");
        for (reason, v) in [
            ("busy", sv.rejected_busy),
            ("rate_limited", sv.rejected_rate_limited),
            ("timeout", sv.rejected_timeout),
            ("draining", sv.rejected_draining),
        ] {
            sample(&mut out, "p4rp_server_rejected_total", &[("reason", reason.into())], v as f64);
        }
        header(&mut out, "p4rp_server_parse_errors_total", "Malformed request lines.", "counter");
        sample(&mut out, "p4rp_server_parse_errors_total", &[], sv.parse_errors as f64);
        header(&mut out, "p4rp_server_batches_total", "Service ticks that executed operations.", "counter");
        sample(&mut out, "p4rp_server_batches_total", &[], sv.batches as f64);
        header(&mut out, "p4rp_server_batched_ops_total", "Operations coalesced into vectored batches.", "counter");
        sample(&mut out, "p4rp_server_batched_ops_total", &[("op", "deploy".into())], sv.batched_deploys as f64);
        sample(&mut out, "p4rp_server_batched_ops_total", &[("op", "revoke".into())], sv.batched_revokes as f64);
        header(&mut out, "p4rp_server_http_total", "One-shot HTTP scrape requests, by outcome.", "counter");
        sample(&mut out, "p4rp_server_http_total", &[("outcome", "scraped".into())], sv.http_gets as f64);
        sample(&mut out, "p4rp_server_http_total", &[("outcome", "rejected".into())], sv.http_rejected as f64);
        histogram_rows(
            &mut out,
            "p4rp_server_request_latency_ns",
            "Sim-clock submit-to-response request latency.",
            &sv.request_latency,
        );
    }
    out
}

/// One cumulative Prometheus histogram: `_bucket{le=…}` rows ending at
/// `+Inf`, plus `_sum` and `_count`.
fn histogram_rows(out: &mut String, base: &str, help: &str, h: &rmt_sim::telemetry::Histogram) {
    header(out, base, help, "histogram");
    let mut cum = 0u64;
    for (edge, c) in h.bounds().iter().zip(h.bucket_counts()) {
        cum += c;
        sample(out, &format!("{base}_bucket"), &[("le", edge.to_string())], cum as f64);
    }
    sample(out, &format!("{base}_bucket"), &[("le", "+Inf".into())], h.count() as f64);
    sample(out, &format!("{base}_sum"), &[], h.sum() as f64);
    sample(out, &format!("{base}_count"), &[], h.count() as f64);
}

fn valid_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Parse a text exposition document back into samples, validating metric
/// and label syntax strictly. Returns a line-tagged error on the first
/// malformed row.
pub fn parse_prometheus(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let c = comment.trim_start();
            if !(c.starts_with("HELP ") || c.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment form: {raw}", lineno + 1));
            }
            continue;
        }
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {}: unterminated label set", lineno + 1))?;
                (&line[..brace], Some((&line[brace + 1..close], &line[close + 1..])))
            }
            None => match line.split_once(char::is_whitespace) {
                Some((n, v)) => (n, Some(("", v))),
                None => return Err(format!("line {}: missing value: {raw}", lineno + 1)),
            },
        };
        if !valid_metric_name(name_part) {
            return Err(format!("line {}: bad metric name `{name_part}`", lineno + 1));
        }
        let (label_body, value_part) = rest.expect("set above");
        let mut labels = Vec::new();
        if !label_body.is_empty() {
            let mut chars = label_body.chars().peekable();
            loop {
                let mut key = String::new();
                while let Some(&c) = chars.peek() {
                    if c == '=' {
                        break;
                    }
                    key.push(c);
                    chars.next();
                }
                if chars.next() != Some('=') {
                    return Err(format!("line {}: label without `=`", lineno + 1));
                }
                if !valid_label_name(&key) {
                    return Err(format!("line {}: bad label name `{key}`", lineno + 1));
                }
                if chars.next() != Some('"') {
                    return Err(format!("line {}: unquoted label value", lineno + 1));
                }
                let mut val = String::new();
                loop {
                    match chars.next() {
                        Some('\\') => match chars.next() {
                            Some('\\') => val.push('\\'),
                            Some('"') => val.push('"'),
                            Some('n') => val.push('\n'),
                            Some('r') => val.push('\r'),
                            other => {
                                return Err(format!(
                                    "line {}: bad escape `\\{}`",
                                    lineno + 1,
                                    other.map(String::from).unwrap_or_default()
                                ))
                            }
                        },
                        Some('"') => break,
                        Some(c) => val.push(c),
                        None => {
                            return Err(format!("line {}: unterminated label value", lineno + 1))
                        }
                    }
                }
                labels.push((key, val));
                match chars.next() {
                    Some(',') => continue,
                    None => break,
                    Some(c) => {
                        return Err(format!("line {}: expected `,` or `}}`, got `{c}`", lineno + 1))
                    }
                }
            }
        }
        let value_text = value_part.trim();
        if value_text.is_empty() {
            return Err(format!("line {}: missing value: {raw}", lineno + 1));
        }
        let value = match value_text {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("line {}: bad value `{v}`", lineno + 1))?,
        };
        samples.push(Sample { name: name_part.to_string(), labels, value });
    }
    Ok(samples)
}

/// The `p4rp top` view: resident programs ranked by attributed packets
/// (ties: hits, then program id), over a short global header. Returns a
/// hint to enable attribution when the report carries no program rows.
pub fn render_top(report: &TelemetryReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "p4rp top — epoch {} | {} program(s) deployed",
        report.epoch, report.programs_deployed
    ));
    if let Some(dp) = &report.dataplane {
        out.push_str(&format!(
            " | tm fwd {} drop {} recirc {}",
            dp.tm.forwarded.get(),
            dp.tm.dropped.get(),
            dp.tm.recirculated.get()
        ));
    }
    out.push('\n');
    if let Some(slo) = &report.slo {
        out.push_str(&format!(
            "slo: {} violation(s){}\n",
            slo.violations,
            if slo.breached.is_empty() {
                String::new()
            } else {
                format!(" | IN BREACH: {}", slo.breached.join(", "))
            }
        ));
    }
    if report.programs.is_empty() {
        out.push_str("no per-program rows — enable attribution (`p4rp top` does, or `Controller::enable_attribution`) and replay traffic\n");
        return out;
    }
    let mut rows = report.programs.clone();
    rows.sort_by(|a, b| {
        b.packets.cmp(&a.packets).then(b.hits.cmp(&a.hits)).then(a.prog_id.cmp(&b.prog_id))
    });
    out.push_str(&format!(
        "{:<16} {:>4} {:>10} {:>10} {:>8} {:>8} {:>10} {:>8} {:>8} {:>7} {:>7}\n",
        "PROGRAM", "ID", "PACKETS", "FWD", "DROPS", "RECIRC", "HITS", "SALU", "ENTRIES", "MEM", "SHARE"
    ));
    for p in &rows {
        out.push_str(&format!(
            "{:<16} {:>4} {:>10} {:>10} {:>8} {:>8} {:>10} {:>8} {:>8} {:>7} {:>6.1}%\n",
            p.name,
            p.prog_id,
            p.packets,
            p.forwarded,
            p.drops,
            p.recirc_passes,
            p.hits,
            p.salu_rmws,
            p.entries,
            p.memory,
            p.resource_share * 100.0
        ));
    }
    out
}

/// Route one raw HTTP request head against the single `/metrics`
/// endpoint and build the full response document. Returns the status
/// code alongside the wire bytes so callers can count outcomes:
///
/// * `GET /metrics` → `200` with `body` as `text/plain; version=0.0.4`,
/// * any other method → `405 Method Not Allowed` (with `Allow: GET`),
/// * any other path → `404 Not Found`,
/// * anything that isn't an HTTP request line → `400 Bad Request`.
///
/// Used by both [`serve_once`] and the persistent `server` module, which
/// answers scrapers on the same port as the line-framed JSON protocol.
pub fn http_response(request_head: &str, body: &str) -> (u16, String) {
    let request_line = request_head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path, version) =
        (parts.next().unwrap_or(""), parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let respond = |status: u16, reason: &str, extra: &str, content_type: &str, payload: &str| {
        (
            status,
            format!(
                "HTTP/1.1 {status} {reason}\r\n{extra}Content-Type: {content_type}\r\n\
                 Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
                payload.len()
            ),
        )
    };
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/") {
        return respond(400, "Bad Request", "", "text/plain", "bad request\n");
    }
    if method != "GET" {
        return respond(405, "Method Not Allowed", "Allow: GET\r\n", "text/plain", "method not allowed\n");
    }
    if path != "/metrics" {
        return respond(404, "Not Found", "", "text/plain", "not found; scrape /metrics\n");
    }
    respond(200, "OK", "", "text/plain; version=0.0.4", body)
}

/// Answer exactly one HTTP request on an already-bound listener with the
/// given body as `text/plain; version=0.0.4` (routing — 405 for non-GET,
/// 404 off `/metrics` — per [`http_response`]). Blocks until a client
/// connects. The caller binds (so it can report the ephemeral port) and
/// decides whether to loop.
pub fn serve_once(listener: &TcpListener, body: &str) -> std::io::Result<()> {
    let (mut stream, _) = listener.accept()?;
    // Drain the request line + headers; a scraper always sends a small
    // GET so one read is enough for our purposes.
    let mut buf = [0u8; 4096];
    let n = stream.read(&mut buf)?;
    let head = String::from_utf8_lossy(&buf[..n]);
    let (_, response) = http_response(&head, body);
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resman::ResourceManager;
    use crate::telemetry::{
        FaultStats, ProgramUsage, ResourceGauges, ServerStats, SloStatus, SloThresholds,
        SCHEMA_VERSION,
    };
    use rmt_sim::telemetry::{Histogram, MetricsRecorder};
    use rmt_sim::trace::TraceStats;
    use crate::telemetry::TelemetryReport;

    fn report() -> TelemetryReport {
        let mut h = Histogram::exponential(10_000, 2, 8);
        h.observe(15_000);
        h.observe(400_000);
        let mut dp = MetricsRecorder::new();
        dp.tm.forwarded.add(90);
        dp.tm.dropped.add(10);
        TelemetryReport {
            schema_version: SCHEMA_VERSION,
            epoch: 3,
            programs_deployed: 1,
            spans: Vec::new(),
            resources: ResourceGauges::collect(&ResourceManager::new()),
            control_write_latency: h,
            dataplane: Some(dp),
            trace: TraceStats::disabled(),
            faults: FaultStats::default(),
            parallel: None,
            programs: vec![ProgramUsage {
                name: "cache \"v2\"".into(),
                prog_id: 1,
                packets: 100,
                forwarded: 90,
                drops: 10,
                recirc_passes: 4,
                hits: 200,
                salu_rmws: 7,
                entries: 9,
                memory: 64,
                resource_share: 1.0,
            }],
            slo: Some(SloStatus {
                thresholds: SloThresholds { max_drop_ppm: Some(1_000), ..Default::default() },
                violations: 2,
                breached: vec!["drop_rate".into()],
            }),
            series: None,
            tables: Vec::new(),
            server: None,
        }
    }

    #[test]
    fn exposition_round_trips_counter_values() {
        let r = report();
        let text = render_prometheus(&r);
        let samples = parse_prometheus(&text).expect("well-formed exposition");
        let find = |name: &str, key: &str, val: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.label(key) == Some(val))
                .unwrap_or_else(|| panic!("missing {name}{{{key}={val}}}"))
                .value
        };
        assert_eq!(find("p4rp_tm_verdicts_total", "verdict", "dropped"), 10.0);
        assert_eq!(find("p4rp_program_packets_total", "prog_id", "1"), 100.0);
        // Label escaping survives the round trip.
        assert_eq!(
            samples
                .iter()
                .find(|s| s.name == "p4rp_program_drops_total")
                .and_then(|s| s.label("program")),
            Some("cache \"v2\"")
        );
        // Histogram buckets are cumulative and end at +Inf == _count.
        let inf = find("p4rp_control_write_latency_ns_bucket", "le", "+Inf");
        let count = samples
            .iter()
            .find(|s| s.name == "p4rp_control_write_latency_ns_count")
            .unwrap()
            .value;
        assert_eq!(inf, count);
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|s| s.name == "p4rp_control_write_latency_ns_bucket")
            .map(|s| s.value)
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]), "buckets must be monotone: {buckets:?}");
        assert_eq!(find("p4rp_slo_breached", "slo", "drop_rate"), 1.0);
        assert_eq!(find("p4rp_slo_breached", "slo", "p99_latency"), 0.0);
    }

    #[test]
    fn carriage_returns_in_label_values_are_escaped() {
        // Regression: a raw CR inside a label value used to pass through
        // `escape_label` untouched — wire-safe framing (and symmetry with
        // the `\n` escape) requires it rendered as `\r`.
        let mut r = report();
        r.programs[0].name = "cr\rlf\nmix \"q\" \\ end".into();
        let text = render_prometheus(&r);
        assert!(!text.contains('\r'), "raw CR leaked into the exposition");
        let samples = parse_prometheus(&text).expect("well-formed exposition");
        let name = samples
            .iter()
            .find(|s| s.name == "p4rp_program_packets_total")
            .and_then(|s| s.label("program"))
            .expect("program label");
        assert_eq!(name, "cr\rlf\nmix \"q\" \\ end");
    }

    #[test]
    fn server_rows_render_and_round_trip() {
        let mut r = report();
        let mut sv = ServerStats::new();
        sv.accepted = 5;
        sv.rejected_max_clients = 2;
        sv.requests = 40;
        sv.responses_ok = 30;
        sv.responses_err = 4;
        sv.rejected_busy = 3;
        sv.rejected_rate_limited = 2;
        sv.rejected_timeout = 1;
        sv.parse_errors = 6;
        sv.batches = 9;
        sv.batched_deploys = 12;
        sv.batched_revokes = 7;
        sv.http_gets = 2;
        sv.http_rejected = 1;
        sv.request_latency.observe(55_000);
        sv.request_latency.observe(90_000);
        r.server = Some(sv);
        let text = render_prometheus(&r);
        let samples = parse_prometheus(&text).expect("well-formed exposition");
        let find = |name: &str, key: &str, val: &str| {
            samples
                .iter()
                .find(|s| s.name == name && s.label(key) == Some(val))
                .unwrap_or_else(|| panic!("missing {name}{{{key}={val}}}"))
                .value
        };
        assert_eq!(find("p4rp_server_sessions_total", "outcome", "accepted"), 5.0);
        assert_eq!(find("p4rp_server_sessions_total", "outcome", "rejected"), 2.0);
        assert_eq!(find("p4rp_server_responses_total", "outcome", "ok"), 30.0);
        assert_eq!(find("p4rp_server_rejected_total", "reason", "busy"), 3.0);
        assert_eq!(find("p4rp_server_rejected_total", "reason", "rate_limited"), 2.0);
        assert_eq!(find("p4rp_server_batched_ops_total", "op", "deploy"), 12.0);
        assert_eq!(find("p4rp_server_http_total", "outcome", "scraped"), 2.0);
        assert_eq!(find("p4rp_server_request_latency_ns_bucket", "le", "+Inf"), 2.0);
        // A report without server stats renders none of the rows.
        let bare = render_prometheus(&report());
        assert!(!bare.contains("p4rp_server_"), "{bare}");
    }

    #[test]
    fn http_response_routes_by_method_and_path() {
        // Regression: the old endpoint answered 200 OK to *any* bytes.
        let body = "p4rp_epoch 3\n";
        let (status, resp) = http_response("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n", body);
        assert_eq!(status, 200);
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        assert!(resp.ends_with(body), "{resp}");
        let (status, resp) = http_response("POST /metrics HTTP/1.1\r\n\r\n", body);
        assert_eq!(status, 405);
        assert!(resp.contains("Allow: GET"), "{resp}");
        assert!(!resp.contains("p4rp_epoch"), "{resp}");
        let (status, resp) = http_response("DELETE /metrics HTTP/1.1\r\n\r\n", body);
        assert_eq!(status, 405, "{resp}");
        let (status, resp) = http_response("GET /other HTTP/1.1\r\n\r\n", body);
        assert_eq!(status, 404);
        assert!(!resp.contains("p4rp_epoch"), "{resp}");
        let (status, _) = http_response("GET / HTTP/1.1\r\n\r\n", body);
        assert_eq!(status, 404);
        let (status, _) = http_response("garbage bytes\r\n\r\n", body);
        assert_eq!(status, 400);
        let (status, _) = http_response("", body);
        assert_eq!(status, 400);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_prometheus("9bad_name 1").is_err());
        assert!(parse_prometheus("m{label=unquoted} 1").is_err());
        assert!(parse_prometheus("m{l=\"open} 1").is_err());
        assert!(parse_prometheus("m{2l=\"x\"} 1").is_err());
        assert!(parse_prometheus("m one").is_err());
        assert!(parse_prometheus("m").is_err());
        assert!(parse_prometheus("# BOGUS comment").is_err());
        assert_eq!(
            parse_prometheus("ok{a=\"b\"} 2").unwrap(),
            vec![Sample { name: "ok".into(), labels: vec![("a".into(), "b".into())], value: 2.0 }]
        );
    }

    #[test]
    fn top_ranks_by_packets_and_flags_breaches() {
        let mut r = report();
        r.programs.push(ProgramUsage {
            name: "heavy".into(),
            prog_id: 2,
            packets: 500,
            ..ProgramUsage::default()
        });
        let top = render_top(&r);
        let heavy = top.find("heavy").unwrap();
        let cache = top.find("cache").unwrap();
        assert!(heavy < cache, "rows must rank by packets:\n{top}");
        assert!(top.contains("IN BREACH: drop_rate"), "{top}");
        r.programs.clear();
        assert!(render_top(&r).contains("enable attribution"));
    }

    #[test]
    fn serve_once_answers_one_http_get() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            use std::io::{Read, Write};
            let mut s = std::net::TcpStream::connect(addr).expect("connect");
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            resp
        });
        serve_once(&listener, "p4rp_epoch 3\n").expect("serve");
        let resp = handle.join().expect("client thread");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        let body = resp.split("\r\n\r\n").nth(1).unwrap();
        assert!(parse_prometheus(body).is_ok(), "{body}");
    }

    #[test]
    fn serve_once_refuses_posts_on_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            use std::io::{Read, Write};
            let mut s = std::net::TcpStream::connect(addr).expect("connect");
            s.write_all(b"POST /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut resp = String::new();
            s.read_to_string(&mut resp).unwrap();
            resp
        });
        serve_once(&listener, "p4rp_epoch 3\n").expect("serve");
        let resp = handle.join().expect("client thread");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        assert!(!resp.contains("p4rp_epoch"), "{resp}");
    }
}
