//! The resource manager (§3.1): dynamic resource usage tracking.
//!
//! Maintains, per RPB: the free-memory partition list (the paper uses
//! bidirectional linked lists of free partitions supporting only
//! *continuous* allocation; an address-ordered vector of `(offset, len)`
//! spans is the idiomatic Rust equivalent with identical semantics), the
//! table-entry occupancy, and the set of *locked* regions — memory being
//! reset during program termination, unavailable for reallocation until
//! the reset completes (Figure 6 step ④).

use p4rp_compiler::alloc::AllocView;
use p4rp_dataplane::{RpbId, NUM_RPBS, RPB_MEM_SIZE, RPB_TABLE_SIZE};
use p4rp_dataplane::{INIT_TABLE_SIZE, RECIRC_TABLE_SIZE};

/// Memory/entry bookkeeping for the whole data plane.
#[derive(Debug, Clone)]
pub struct ResourceManager {
    /// Address-ordered free spans per RPB.
    free: Vec<Vec<(u32, u32)>>,
    /// Regions locked pending reset.
    locked: Vec<Vec<(u32, u32)>>,
    te_used: Vec<usize>,
    init_used: usize,
    recirc_used: usize,
    mem_size: u32,
    table_size: usize,
    /// The allocator's view, maintained incrementally: `te_free` updated
    /// O(1) on entry charges/refunds, `mem_free` re-derived only for the
    /// RPB whose span list changed. Deploys used to rebuild the whole
    /// 22-RPB snapshot from scratch on every allocation.
    view: AllocView,
}

impl Default for ResourceManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceManager {
    /// Construct with defaults appropriate to the type.
    pub fn new() -> ResourceManager {
        ResourceManager {
            free: vec![vec![(0, RPB_MEM_SIZE)]; NUM_RPBS],
            locked: vec![Vec::new(); NUM_RPBS],
            te_used: vec![0; NUM_RPBS],
            init_used: 0,
            recirc_used: 0,
            mem_size: RPB_MEM_SIZE,
            table_size: RPB_TABLE_SIZE,
            view: AllocView {
                te_free: vec![RPB_TABLE_SIZE; NUM_RPBS],
                mem_free: vec![vec![RPB_MEM_SIZE]; NUM_RPBS],
            },
        }
    }

    fn idx(rpb: RpbId) -> usize {
        usize::from(rpb.0) - 1
    }

    /// The allocator's view of current availability (incrementally
    /// maintained; clone it for a speculative snapshot).
    pub fn alloc_view(&self) -> &AllocView {
        &self.view
    }

    /// Re-derive the cached partition lengths of one RPB from its span
    /// list (reusing the existing buffer).
    fn sync_mem_view(&mut self, i: usize) {
        let dst = &mut self.view.mem_free[i];
        dst.clear();
        dst.extend(self.free[i].iter().map(|(_, len)| *len));
    }

    /// First-fit contiguous allocation of `size` buckets in `rpb`.
    pub fn grant_memory(&mut self, rpb: RpbId, size: u32) -> Option<u32> {
        let spans = &mut self.free[Self::idx(rpb)];
        let pos = spans.iter().position(|(_, len)| *len >= size)?;
        let (off, len) = spans[pos];
        if len == size {
            spans.remove(pos);
        } else {
            spans[pos] = (off + size, len - size);
        }
        self.sync_mem_view(Self::idx(rpb));
        Some(off)
    }

    /// Lock a region for reset: it is neither free nor usable.
    pub fn lock_memory(&mut self, rpb: RpbId, offset: u32, size: u32) {
        self.locked[Self::idx(rpb)].push((offset, size));
    }

    /// Reset finished: merge the region back into the free list.
    pub fn unlock_memory(&mut self, rpb: RpbId, offset: u32, size: u32) {
        let locked = &mut self.locked[Self::idx(rpb)];
        if let Some(pos) = locked.iter().position(|&(o, s)| o == offset && s == size) {
            locked.remove(pos);
        }
        let spans = &mut self.free[Self::idx(rpb)];
        let insert_at = spans.partition_point(|&(o, _)| o < offset);
        spans.insert(insert_at, (offset, size));
        // Coalesce neighbours.
        let mut i = insert_at.saturating_sub(1);
        while i + 1 < spans.len() {
            let (o0, l0) = spans[i];
            let (o1, l1) = spans[i + 1];
            if o0 + l0 == o1 {
                spans[i] = (o0, l0 + l1);
                spans.remove(i + 1);
            } else {
                i += 1;
            }
        }
        self.sync_mem_view(Self::idx(rpb));
    }

    /// Charge `n` table entries to an RPB; `false` if it would overflow.
    pub fn charge_entries(&mut self, rpb: RpbId, n: usize) -> bool {
        let i = Self::idx(rpb);
        if self.te_used[i] + n > self.table_size {
            return false;
        }
        self.te_used[i] += n;
        self.view.te_free[i] = self.table_size - self.te_used[i];
        true
    }

    /// Refund entries.
    pub fn refund_entries(&mut self, rpb: RpbId, n: usize) {
        let i = Self::idx(rpb);
        self.te_used[i] = self.te_used[i].saturating_sub(n);
        self.view.te_free[i] = self.table_size - self.te_used[i];
    }

    /// Charge initialization-table filter entries.
    pub fn charge_init(&mut self, n: usize) -> bool {
        if self.init_used + n > INIT_TABLE_SIZE {
            return false;
        }
        self.init_used += n;
        true
    }

    /// Refund init.
    pub fn refund_init(&mut self, n: usize) {
        self.init_used = self.init_used.saturating_sub(n);
    }

    /// Filter entries currently installed in the initialization table.
    pub fn init_entries_used(&self) -> usize {
        self.init_used
    }

    /// Filter entries currently installed in the recirculation block.
    pub fn recirc_entries_used(&self) -> usize {
        self.recirc_used
    }

    /// Charge recirc.
    pub fn charge_recirc(&mut self, n: usize) -> bool {
        if self.recirc_used + n > RECIRC_TABLE_SIZE {
            return false;
        }
        self.recirc_used += n;
        true
    }

    /// Refund recirc.
    pub fn refund_recirc(&mut self, n: usize) {
        self.recirc_used = self.recirc_used.saturating_sub(n);
    }

    // ---- utilization reporting (Figures 8, 18, 19) --------------------------

    /// Fraction of RPB memory allocated, over the whole data plane.
    pub fn memory_utilization(&self) -> f64 {
        let total = self.mem_size as f64 * NUM_RPBS as f64;
        let free: u64 = self
            .free
            .iter()
            .flat_map(|s| s.iter().map(|(_, l)| u64::from(*l)))
            .sum();
        let locked: u64 = self
            .locked
            .iter()
            .flat_map(|s| s.iter().map(|(_, l)| u64::from(*l)))
            .sum();
        1.0 - (free + locked) as f64 / total
    }

    /// Fraction of RPB table entries in use.
    pub fn entry_utilization(&self) -> f64 {
        let used: usize = self.te_used.iter().sum();
        used as f64 / (self.table_size * NUM_RPBS) as f64
    }

    /// Per-RPB memory utilization (Figure 18 heatmap rows).
    pub fn memory_utilization_per_rpb(&self) -> Vec<f64> {
        (0..NUM_RPBS)
            .map(|i| {
                let free: u64 = self.free[i].iter().map(|(_, l)| u64::from(*l)).sum();
                let locked: u64 = self.locked[i].iter().map(|(_, l)| u64::from(*l)).sum();
                1.0 - (free + locked) as f64 / f64::from(self.mem_size)
            })
            .collect()
    }

    /// Per-RPB entry utilization (Figure 19 heatmap rows).
    pub fn entry_utilization_per_rpb(&self) -> Vec<f64> {
        self.te_used.iter().map(|u| *u as f64 / self.table_size as f64).collect()
    }

    /// Entries used.
    pub fn entries_used(&self, rpb: RpbId) -> usize {
        self.te_used[Self::idx(rpb)]
    }

    /// Largest free contiguous region in an RPB.
    pub fn largest_free(&self, rpb: RpbId) -> u32 {
        self.free[Self::idx(rpb)].iter().map(|(_, l)| *l).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fit_and_coalescing() {
        let mut rm = ResourceManager::new();
        let r = RpbId(3);
        let a = rm.grant_memory(r, 1024).unwrap();
        let b = rm.grant_memory(r, 1024).unwrap();
        let c = rm.grant_memory(r, 2048).unwrap();
        assert_eq!((a, b, c), (0, 1024, 2048));
        // Free the middle region: fragmentation.
        rm.lock_memory(r, b, 1024);
        rm.unlock_memory(r, b, 1024);
        // A 2048 request skips the 1024 hole (first-fit, contiguous only).
        let d = rm.grant_memory(r, 2048).unwrap();
        assert_eq!(d, 4096);
        // The 1024 hole serves a 1024 request.
        assert_eq!(rm.grant_memory(r, 1024), Some(1024));
        // Free a and the hole: coalescing reconstructs [0, 2048).
        rm.unlock_memory(r, 0, 1024);
        rm.unlock_memory(r, 1024, 1024);
        assert_eq!(rm.grant_memory(r, 2048), Some(0));
    }

    #[test]
    fn locked_memory_not_reallocatable() {
        let mut rm = ResourceManager::new();
        let r = RpbId(1);
        // Exhaust the array.
        let off = rm.grant_memory(r, RPB_MEM_SIZE).unwrap();
        assert_eq!(rm.grant_memory(r, 1), None);
        rm.lock_memory(r, off, RPB_MEM_SIZE);
        // Still locked → still unavailable.
        assert_eq!(rm.grant_memory(r, 1), None);
        rm.unlock_memory(r, off, RPB_MEM_SIZE);
        assert_eq!(rm.grant_memory(r, 1), Some(0));
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut rm = ResourceManager::new();
        let r = RpbId(7);
        assert!(rm.grant_memory(r, RPB_MEM_SIZE + 1).is_none());
        rm.grant_memory(r, RPB_MEM_SIZE).unwrap();
        assert!(rm.grant_memory(r, 1).is_none());
    }

    #[test]
    fn entry_accounting() {
        let mut rm = ResourceManager::new();
        let r = RpbId(5);
        assert!(rm.charge_entries(r, RPB_TABLE_SIZE));
        assert!(!rm.charge_entries(r, 1));
        rm.refund_entries(r, 10);
        assert!(rm.charge_entries(r, 10));
        assert_eq!(rm.entries_used(r), RPB_TABLE_SIZE);
    }

    #[test]
    fn utilization_metrics() {
        let mut rm = ResourceManager::new();
        assert_eq!(rm.memory_utilization(), 0.0);
        assert_eq!(rm.entry_utilization(), 0.0);
        rm.grant_memory(RpbId(1), RPB_MEM_SIZE).unwrap();
        let per = rm.memory_utilization_per_rpb();
        assert_eq!(per[0], 1.0);
        assert_eq!(per[1], 0.0);
        assert!((rm.memory_utilization() - 1.0 / NUM_RPBS as f64).abs() < 1e-12);
        rm.charge_entries(RpbId(2), RPB_TABLE_SIZE / 2);
        assert_eq!(rm.entry_utilization_per_rpb()[1], 0.5);
    }

    #[test]
    fn alloc_view_reflects_state() {
        let mut rm = ResourceManager::new();
        rm.grant_memory(RpbId(1), 1024).unwrap();
        rm.charge_entries(RpbId(2), 100);
        let v = rm.alloc_view();
        assert_eq!(v.mem_free[0], vec![RPB_MEM_SIZE - 1024]);
        assert_eq!(v.te_free[1], RPB_TABLE_SIZE - 100);
    }

    #[test]
    fn incremental_view_matches_full_rebuild() {
        let mut rm = ResourceManager::new();
        // A churny sequence: grants, locks, unlocks, charges, refunds.
        let a = rm.grant_memory(RpbId(4), 1024).unwrap();
        let b = rm.grant_memory(RpbId(4), 512).unwrap();
        rm.grant_memory(RpbId(9), 4096).unwrap();
        rm.charge_entries(RpbId(4), 37);
        rm.charge_entries(RpbId(22), 5);
        rm.lock_memory(RpbId(4), a, 1024);
        rm.unlock_memory(RpbId(4), a, 1024);
        rm.refund_entries(RpbId(4), 17);
        rm.lock_memory(RpbId(4), b, 512);
        rm.unlock_memory(RpbId(4), b, 512);
        let rebuilt = AllocView {
            te_free: rm.te_used.iter().map(|u| rm.table_size - u).collect(),
            mem_free: rm
                .free
                .iter()
                .map(|spans| spans.iter().map(|(_, len)| *len).collect())
                .collect(),
        };
        let v = rm.alloc_view();
        assert_eq!(v.te_free, rebuilt.te_free);
        assert_eq!(v.mem_free, rebuilt.mem_free);
    }

    #[test]
    fn init_and_recirc_budgets() {
        let mut rm = ResourceManager::new();
        assert!(rm.charge_init(INIT_TABLE_SIZE));
        assert!(!rm.charge_init(1));
        rm.refund_init(5);
        assert!(rm.charge_init(5));
        assert_eq!(rm.init_entries_used(), INIT_TABLE_SIZE);
        assert!(rm.charge_recirc(RECIRC_TABLE_SIZE));
        assert!(!rm.charge_recirc(1));
    }
}
