//! # p4rp-ctl — the P4runpro control plane (§3.1)
//!
//! * [`resman`] — dynamic resource tracking: per-RPB free-memory partition
//!   lists (contiguous, first-fit), table-entry budgets for RPBs /
//!   initialization paths / recirculation block, and the lock-until-reset
//!   discipline of Figure 6;
//! * [`controller`] — the deploy / revoke / monitor lifecycle, tying
//!   together the language front end, the runtime compiler, the resource
//!   manager, and the `bfrt`-calibrated control channel;
//! * [`telemetry`] — lifecycle spans, resource gauges, and the unified
//!   [`TelemetryReport`] joining control-side and packet-side series
//!   (rendered by `status --metrics`, documented in `docs/TELEMETRY.md`);
//! * [`server`] — the persistent multi-client runtime-control server
//!   (line-framed JSON over TCP, batching into `deploy_many` /
//!   `revoke_many`, explicit backpressure; `docs/SERVER.md`).

pub mod chaos;
pub mod cli;
pub mod controller;
pub mod metrics;
pub mod resman;
pub mod server;
pub mod telemetry;

pub use chaos::{ChaosConfig, ChaosOutcome};
pub use cli::Cli;
pub use controller::{
    AuditReport, Controller, CtlError, CtlResult, DeployReport, InstalledProgram, ReconcileReport,
    RevokeReport,
};
pub use metrics::{http_response, parse_prometheus, render_prometheus, render_top, serve_once, Sample};
pub use resman::ResourceManager;
pub use server::{serve, Client, ServerConfig};
pub use telemetry::{
    FaultStats, LifecycleSpan, ProgramUsage, ResourceGauges, SeriesPoint, SeriesRing, ServerStats,
    SloStatus, SloThresholds, TelemetryReport, SCHEMA_VERSION,
};
