//! The persistent runtime-control server: a multi-client, line-framed
//! JSON protocol over `std::net::TcpListener`, batching concurrent
//! deploy/revoke requests into the controller's vectored fast paths.
//!
//! The paper's control plane is an always-on service taking runtime
//! program deployments from many operators at once. This module is that
//! entry point for the reproduction: every accepted connection becomes a
//! *session* (reader + writer thread pair), every request line becomes a
//! command on a single service queue, and the service loop — the only
//! code that touches the [`Controller`] — drains the queue one *tick* at
//! a time, coalescing all deploys in the tick into one
//! [`Controller::deploy_many`] call and all revokes into one
//! [`Controller::revoke_many`] call. Per-entry atomicity and
//! epoch-before-batch consistency are untouched: the server sits wholly
//! in front of the controller, it never reaches around it.
//!
//! Overload is explicit, never silent:
//!
//! * each session has a bounded in-flight window; a request past it is
//!   answered `busy` immediately (429-style) instead of buffering,
//! * an optional per-session token bucket on the **sim clock** answers
//!   `rate_limited`,
//! * an optional queue-age bound answers `timeout` at dispatch,
//! * `shutdown` drains: queued work completes, new connections are
//!   refused, open sessions see `draining`.
//!
//! A connection that opens with an HTTP request line is served as a
//! one-shot Prometheus scrape through [`crate::metrics::http_response`]
//! (405 off GET, 404 off `/metrics`) and closed.
//!
//! Protocol grammar, knobs, and drain semantics: `docs/SERVER.md`.

use crate::controller::{Controller, DeployReport, RevokeReport};
use crate::metrics::{http_response, render_prometheus};
use crate::telemetry::ServerStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rmt_sim::trace::{RejectReason, RequestOp};
use serde::Value;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tuning knobs for [`serve`]. `Default` matches the CLI's defaults.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent client sessions; further connections are refused with
    /// a one-line `busy` reply.
    pub max_clients: usize,
    /// Per-session in-flight request bound; a request submitted past it
    /// is answered `busy` without queueing.
    pub queue_depth: usize,
    /// Per-session token-bucket rate limit in requests per *simulated*
    /// second (burst = one second's worth, minimum 1). `None` disables.
    pub rate: Option<u64>,
    /// Maximum simulated queue age before a request is answered
    /// `timeout` at dispatch instead of executing. `None` disables.
    pub request_timeout_ns: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { max_clients: 8, queue_depth: 8, rate: None, request_timeout_ns: None }
    }
}

/// One parsed request operation.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    Deploy { source: String },
    Revoke { name: String },
    Status { full: bool },
    Metrics,
    Trace,
    Ping,
    Shutdown,
}

impl Op {
    fn kind(&self) -> RequestOp {
        match self {
            Op::Deploy { .. } => RequestOp::Deploy,
            Op::Revoke { .. } => RequestOp::Revoke,
            Op::Status { .. } => RequestOp::Status,
            Op::Metrics => RequestOp::Metrics,
            Op::Trace => RequestOp::Trace,
            Op::Ping => RequestOp::Ping,
            Op::Shutdown => RequestOp::Shutdown,
        }
    }
}

/// One framed reply travelling from the service (or the session's own
/// reader) to the session's writer thread.
struct Reply {
    text: String,
    /// Write the bytes verbatim (HTTP documents carry their own `\r\n`
    /// framing); line replies get a trailing `\n` appended.
    raw: bool,
    /// Shut the connection down after writing (one-shot HTTP).
    close: bool,
}

impl Reply {
    fn line(text: String) -> Reply {
        Reply { text, raw: false, close: false }
    }
}

/// One command on the service queue.
enum Command {
    /// An admitted request to execute.
    Request {
        client: u32,
        request: u64,
        /// Sim clock at submission, read from the service's published
        /// stamp — the latency figure and the timeout check both measure
        /// simulated queue time, not wall time.
        submit_ns: u64,
        op: Op,
        reply: Sender<Reply>,
        /// The session's in-flight window; decremented when the reply is
        /// queued.
        inflight: Arc<AtomicUsize>,
    },
    /// A session-side refusal (busy / draining / parse) already answered
    /// by the reader — forwarded so it lands in stats and the flight
    /// recorder.
    Rejected { client: u32, request: u64, reason: RejectReason },
    /// An accepted connection that opened with an HTTP request head.
    Http { head: String, reply: Sender<Reply> },
    /// A connection refused at accept because `max_clients` sessions
    /// were live.
    ConnRefused,
}

/// Everything the accept/reader/writer threads share with the service.
struct Shared {
    shutdown: AtomicBool,
    live_clients: AtomicUsize,
    /// Total sessions ever accepted, stamped by the accept thread and
    /// folded into [`ServerStats::accepted`] each tick.
    accepted: AtomicU64,
    /// Sim clock published by the service after every tick; sessions
    /// stamp submissions with it.
    sim_now: AtomicU64,
    /// One half-open clone per live connection, so drain can unblock
    /// readers parked in `read_line`.
    conns: Mutex<Vec<TcpStream>>,
}

/// Parse one request line. `lineno` is 1-based within the connection;
/// errors carry it the way `parse_prometheus` errors do.
fn parse_request(line: &str, lineno: u64) -> Result<(u64, Op), String> {
    let doc = serde::json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
    if doc.as_object().is_none() {
        return Err(format!("line {lineno}: request must be a JSON object"));
    }
    let id = match doc.get("id") {
        Some(Value::U64(n)) => *n,
        Some(_) => return Err(format!("line {lineno}: `id` must be an unsigned integer")),
        None => return Err(format!("line {lineno}: missing `id`")),
    };
    let op_name = match doc.get("op") {
        Some(Value::Str(s)) => s.as_str(),
        Some(_) => return Err(format!("line {lineno}: `op` must be a string")),
        None => return Err(format!("line {lineno}: missing `op`")),
    };
    let need_str = |field: &str| match doc.get(field) {
        Some(Value::Str(s)) => Ok(s.clone()),
        Some(_) => Err(format!("line {lineno}: `{field}` must be a string")),
        None => Err(format!("line {lineno}: `{op_name}` requires a string `{field}`")),
    };
    let op = match op_name {
        "deploy" => Op::Deploy { source: need_str("source")? },
        "revoke" => Op::Revoke { name: need_str("name")? },
        "status" => Op::Status { full: matches!(doc.get("full"), Some(Value::Bool(true))) },
        "metrics" => Op::Metrics,
        "trace" => Op::Trace,
        "ping" => Op::Ping,
        "shutdown" => Op::Shutdown,
        other => {
            return Err(format!(
                "line {lineno}: unknown op `{other}` (expected deploy, revoke, status, \
                 metrics, trace, ping, or shutdown)"
            ))
        }
    };
    Ok((id, op))
}

/// A request admitted past admission control, waiting in a tick batch:
/// `(request id, submit ns, client id, payload, reply lane, in-flight
/// window)`.
type Admitted<T> = (u64, u64, u32, T, Sender<Reply>, Arc<AtomicUsize>);

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn error_reply(id: u64, error: &str, detail: &str) -> String {
    serde::json::to_string(&obj(vec![
        ("id", Value::U64(id)),
        ("ok", Value::Bool(false)),
        ("error", Value::Str(error.to_string())),
        ("detail", Value::Str(detail.to_string())),
    ]))
}

/// Only deterministic (simulated / structural) fields go on the wire:
/// responses from equivalent runs must compare bit-for-bit, and wall
/// times never replay.
fn deploy_value(r: &DeployReport) -> Value {
    obj(vec![
        ("name", Value::Str(r.name.clone())),
        ("prog_id", Value::U64(u64::from(r.prog_id))),
        ("entries_installed", Value::U64(r.entries_installed as u64)),
        ("depth", Value::U64(r.depth as u64)),
        ("passes", Value::U64(u64::from(r.passes))),
        ("update_delay_ns", Value::U64(r.update_delay.0)),
    ])
}

fn revoke_value(r: &RevokeReport) -> Value {
    obj(vec![
        ("name", Value::Str(r.name.clone())),
        ("update_delay_ns", Value::U64(r.update_delay.0)),
    ])
}

/// Per-session token bucket on the sim clock.
struct Bucket {
    tokens: f64,
    last_ns: u64,
}

struct Service<'a> {
    ctl: &'a mut Controller,
    cfg: &'a ServerConfig,
    stats: ServerStats,
    buckets: HashMap<u32, Bucket>,
    draining: bool,
}

impl Service<'_> {
    fn now_ns(&self) -> u64 {
        self.ctl.channel().clock.now().0
    }

    fn trace_rejected(&mut self, client: u32, request: u64, reason: RejectReason) {
        let now = self.ctl.channel().clock.now();
        if let Some(tr) = self.ctl.trace_mut() {
            tr.set_now(now);
            tr.request_rejected(client, request, reason);
        }
    }

    fn count_rejection(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::Busy => self.stats.rejected_busy += 1,
            RejectReason::RateLimited => self.stats.rejected_rate_limited += 1,
            RejectReason::Timeout => self.stats.rejected_timeout += 1,
            RejectReason::Draining => self.stats.rejected_draining += 1,
            RejectReason::Parse => self.stats.parse_errors += 1,
        }
    }

    /// Take one token from `client`'s bucket, refilled at `rate` per
    /// simulated second since the last take.
    fn take_token(&mut self, client: u32, rate: u64) -> bool {
        let now = self.now_ns();
        let burst = rate.max(1) as f64;
        let b = self
            .buckets
            .entry(client)
            .or_insert(Bucket { tokens: burst, last_ns: now });
        let dt = now.saturating_sub(b.last_ns) as f64 / 1e9;
        b.tokens = (b.tokens + dt * rate as f64).min(burst);
        b.last_ns = now;
        if b.tokens >= 1.0 {
            b.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Execute one service tick over everything that was queued.
    ///
    /// Admission (timeout, rate limit) runs per request in arrival
    /// order; admitted deploys then execute as ONE `deploy_many` batch,
    /// admitted revokes as ONE `revoke_many` batch, and everything else
    /// in arrival order after them. Replies restate the request id, so
    /// clients correlate however the tick reordered.
    fn tick(&mut self, batch: Vec<Command>) {
        let mut deploys: Vec<Admitted<String>> = Vec::new();
        let mut revokes: Vec<Admitted<String>> = Vec::new();
        let mut others: Vec<Admitted<Op>> = Vec::new();
        for cmd in batch {
            match cmd {
                Command::Rejected { client, request, reason } => {
                    self.count_rejection(reason);
                    self.trace_rejected(client, request, reason);
                }
                Command::ConnRefused => self.stats.rejected_max_clients += 1,
                Command::Http { head, reply } => {
                    let body = render_prometheus(&self.ctl.telemetry_report());
                    let (status, text) = http_response(&head, &body);
                    if status == 200 {
                        self.stats.http_gets += 1;
                    } else {
                        self.stats.http_rejected += 1;
                    }
                    let _ = reply.send(Reply { text, raw: true, close: true });
                }
                Command::Request { client, request, submit_ns, op, reply, inflight } => {
                    self.stats.requests += 1;
                    let now = self.now_ns();
                    // `shutdown` is exempt from admission control: the
                    // sim clock only advances on control-channel work,
                    // so a fully rate-limited session must still be able
                    // to drain the server.
                    let exempt = matches!(op, Op::Shutdown);
                    let mut reject = None;
                    if !exempt {
                        if let Some(limit) = self.cfg.request_timeout_ns {
                            if now.saturating_sub(submit_ns) > limit {
                                reject = Some(RejectReason::Timeout);
                            }
                        }
                        if reject.is_none() {
                            if let Some(rate) = self.cfg.rate {
                                if !self.take_token(client, rate) {
                                    reject = Some(RejectReason::RateLimited);
                                }
                            }
                        }
                    }
                    if let Some(reason) = reject {
                        self.count_rejection(reason);
                        self.trace_rejected(client, request, reason);
                        let _ = reply.send(Reply::line(error_reply(
                            request,
                            reason.name(),
                            &format!("request {request} rejected: {}", reason.name()),
                        )));
                        inflight.fetch_sub(1, Ordering::SeqCst);
                        continue;
                    }
                    match op {
                        Op::Deploy { source } => {
                            deploys.push((request, submit_ns, client, source, reply, inflight))
                        }
                        Op::Revoke { name } => {
                            revokes.push((request, submit_ns, client, name, reply, inflight))
                        }
                        other => others.push((request, submit_ns, client, other, reply, inflight)),
                    }
                }
            }
        }

        if !(deploys.is_empty() && revokes.is_empty() && others.is_empty()) {
            self.stats.batches += 1;
        }

        // Deploys first: a revoke in the same tick naming a program the
        // tick also deploys sees it resident, mirroring arrival causality
        // for the common deploy→revoke sequence.
        if !deploys.is_empty() {
            self.stats.batched_deploys += deploys.len() as u64;
            self.begin_all(deploys.iter().map(|d| (d.2, d.0, RequestOp::Deploy)));
            // A batch of one skips the vectored path: `deploy_many`
            // clones the allocator snapshot and spins worker threads,
            // which is pure overhead when there is nothing to overlap.
            let results = if deploys.len() == 1 {
                vec![self.ctl.deploy(&deploys[0].3)]
            } else {
                let sources: Vec<String> = deploys.iter().map(|d| d.3.clone()).collect();
                self.ctl.deploy_many(&sources)
            };
            for ((request, submit_ns, client, _, reply, inflight), result) in
                deploys.into_iter().zip(results)
            {
                let text = match &result {
                    Ok(reports) => serde::json::to_string(&obj(vec![
                        ("id", Value::U64(request)),
                        ("ok", Value::Bool(true)),
                        ("op", Value::Str("deploy".into())),
                        ("reports", Value::Array(reports.iter().map(deploy_value).collect())),
                    ])),
                    Err(e) => error_reply(request, "failed", &e.to_string()),
                };
                self.finish(client, request, RequestOp::Deploy, result.is_ok(), submit_ns);
                let _ = reply.send(Reply::line(text));
                inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }

        if !revokes.is_empty() {
            self.stats.batched_revokes += revokes.len() as u64;
            self.begin_all(revokes.iter().map(|r| (r.2, r.0, RequestOp::Revoke)));
            let names: Vec<String> = revokes.iter().map(|r| r.3.clone()).collect();
            let results = self.ctl.revoke_many(&names);
            for ((request, submit_ns, client, _, reply, inflight), result) in
                revokes.into_iter().zip(results)
            {
                let text = match &result {
                    Ok(report) => serde::json::to_string(&obj(vec![
                        ("id", Value::U64(request)),
                        ("ok", Value::Bool(true)),
                        ("op", Value::Str("revoke".into())),
                        ("report", revoke_value(report)),
                    ])),
                    Err(e) => error_reply(request, "failed", &e.to_string()),
                };
                self.finish(client, request, RequestOp::Revoke, result.is_ok(), submit_ns);
                let _ = reply.send(Reply::line(text));
                inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }

        for (request, submit_ns, client, op, reply, inflight) in others {
            let kind = op.kind();
            self.begin_all(std::iter::once((client, request, kind)));
            let text = self.execute_other(request, op);
            self.finish(client, request, kind, true, submit_ns);
            let _ = reply.send(Reply::line(text));
            inflight.fetch_sub(1, Ordering::SeqCst);
        }

        // Publish fresh counters so `status --json` / scrapes read the
        // live server even mid-session.
        self.ctl.set_server_stats(self.stats.clone());
    }

    fn begin_all(&mut self, reqs: impl Iterator<Item = (u32, u64, RequestOp)>) {
        let now = self.ctl.channel().clock.now();
        if let Some(tr) = self.ctl.trace_mut() {
            tr.set_now(now);
            for (client, request, op) in reqs {
                tr.request_begin(client, request, op);
            }
        }
    }

    fn finish(&mut self, client: u32, request: u64, op: RequestOp, ok: bool, submit_ns: u64) {
        let now = self.ctl.channel().clock.now();
        let dur_ns = now.0.saturating_sub(submit_ns);
        if ok {
            self.stats.responses_ok += 1;
        } else {
            self.stats.responses_err += 1;
        }
        self.stats.request_latency.observe(dur_ns);
        if let Some(tr) = self.ctl.trace_mut() {
            tr.set_now(now);
            tr.request_end(client, request, op, ok, dur_ns);
        }
    }

    fn execute_other(&mut self, request: u64, op: Op) -> String {
        match op {
            Op::Status { full } => {
                let report = self.ctl.telemetry_report();
                let mut fields = vec![
                    ("id", Value::U64(request)),
                    ("ok", Value::Bool(true)),
                    ("op", Value::Str("status".into())),
                    ("schema_version", Value::U64(report.schema_version)),
                    ("epoch", Value::U64(report.epoch)),
                    ("programs_deployed", Value::U64(report.programs_deployed)),
                ];
                if full {
                    fields.push(("report", serde::json::parse(&report.to_json()).expect(
                        "a rendered telemetry report always re-parses",
                    )));
                }
                serde::json::to_string(&obj(fields))
            }
            Op::Metrics => {
                let body = render_prometheus(&self.ctl.telemetry_report());
                serde::json::to_string(&obj(vec![
                    ("id", Value::U64(request)),
                    ("ok", Value::Bool(true)),
                    ("op", Value::Str("metrics".into())),
                    ("exposition", Value::Str(body)),
                ]))
            }
            Op::Trace => {
                let t = self.ctl.trace_stats();
                serde::json::to_string(&obj(vec![
                    ("id", Value::U64(request)),
                    ("ok", Value::Bool(true)),
                    ("op", Value::Str("trace".into())),
                    ("enabled", Value::Bool(t.enabled)),
                    ("recorded", Value::U64(t.recorded)),
                    ("dropped", Value::U64(t.dropped)),
                    ("retained", Value::U64(t.retained)),
                    ("violations", Value::U64(t.violations)),
                ]))
            }
            Op::Ping => serde::json::to_string(&obj(vec![
                ("id", Value::U64(request)),
                ("ok", Value::Bool(true)),
                ("op", Value::Str("ping".into())),
                ("epoch", Value::U64(self.ctl.epoch())),
                ("now_ns", Value::U64(self.now_ns())),
            ])),
            Op::Shutdown => {
                self.draining = true;
                serde::json::to_string(&obj(vec![
                    ("id", Value::U64(request)),
                    ("ok", Value::Bool(true)),
                    ("op", Value::Str("shutdown".into())),
                    ("draining", Value::Bool(true)),
                ]))
            }
            Op::Deploy { .. } | Op::Revoke { .. } => unreachable!("batched above"),
        }
    }
}

/// Run the server until a client requests `shutdown`. The service loop
/// owns the calling thread (and the exclusive [`Controller`] borrow);
/// accept and per-session threads live inside one `std::thread::scope`.
/// Returns the final counters, which are also left on the controller
/// ([`Controller::server_stats`]).
pub fn serve(
    ctl: &mut Controller,
    listener: TcpListener,
    cfg: &ServerConfig,
) -> std::io::Result<ServerStats> {
    listener.set_nonblocking(true)?;
    let shared = Shared {
        shutdown: AtomicBool::new(false),
        live_clients: AtomicUsize::new(0),
        accepted: AtomicU64::new(0),
        sim_now: AtomicU64::new(ctl.channel().clock.now().0),
        conns: Mutex::new(Vec::new()),
    };
    let shared = &shared;
    let mut service =
        Service { ctl, cfg, stats: ServerStats::new(), buckets: HashMap::new(), draining: false };

    let listener_ref = &listener;
    std::thread::scope(|s| {
        let (tx, rx): (Sender<Command>, Receiver<Command>) = unbounded();
        {
            let tx = tx.clone();
            s.spawn(move || accept_loop(s, listener_ref, tx, shared, cfg));
        }
        drop(tx);

        // The service loop: block for the first command, drain the rest
        // of the queue into the same tick.
        while let Ok(first) = rx.recv() {
            let mut batch = vec![first];
            while let Ok(more) = rx.try_recv() {
                batch.push(more);
            }
            service.stats.accepted = shared.accepted.load(Ordering::SeqCst);
            service.tick(batch);
            shared.sim_now.store(service.now_ns(), Ordering::SeqCst);
            if service.draining && !shared.shutdown.swap(true, Ordering::SeqCst) {
                // First tick after the shutdown request: stop accepting,
                // then unblock every parked reader so sessions wind down.
                // Close only the read half — writers still hold queued
                // replies (including the shutdown acknowledgement) that
                // must flush before the stream drops. Queued commands
                // keep draining through the loop above until every
                // sender is gone.
                for conn in shared.conns.lock().unwrap().drain(..) {
                    let _ = conn.shutdown(Shutdown::Read);
                }
            }
        }
        service.ctl.set_server_stats(service.stats.clone());
    });
    Ok(service.stats)
}

fn accept_loop<'scope>(
    s: &'scope std::thread::Scope<'scope, '_>,
    listener: &'scope TcpListener,
    tx: Sender<Command>,
    shared: &'scope Shared,
    cfg: &'scope ServerConfig,
) {
    let mut next_client: u32 = 1;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Request/reply lines are tiny; Nagle + delayed ACK
                // would add ~40 ms per round trip.
                let _ = stream.set_nodelay(true);
                if shared.live_clients.load(Ordering::SeqCst) >= cfg.max_clients {
                    let _ = tx.send(Command::ConnRefused);
                    let mut stream = stream;
                    let _ = stream.write_all(
                        format!("{}\n", error_reply(0, "busy", "server full: max clients reached"))
                            .as_bytes(),
                    );
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                let client = next_client;
                next_client += 1;
                shared.live_clients.fetch_add(1, Ordering::SeqCst);
                shared.accepted.fetch_add(1, Ordering::SeqCst);
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().push(clone);
                }
                let (reply_tx, reply_rx) = unbounded::<Reply>();
                let writer_stream = stream.try_clone().expect("clone accepted stream");
                s.spawn(move || writer_loop(writer_stream, reply_rx));
                let tx = tx.clone();
                s.spawn(move || {
                    session_loop(client, stream, tx, reply_tx, shared, cfg);
                    shared.live_clients.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Reply>) {
    let mut out = BufWriter::new(stream);
    while let Ok(reply) = rx.recv() {
        let _ = out.write_all(reply.text.as_bytes());
        if !reply.raw {
            let _ = out.write_all(b"\n");
        }
        let _ = out.flush();
        if reply.close {
            let _ = out.get_ref().shutdown(Shutdown::Both);
            return;
        }
    }
}

/// One session's reader: sniffs HTTP, then parses request lines, applies
/// backpressure, and feeds the service queue. Replies it produces itself
/// (busy / draining / parse errors) still flow through the writer thread
/// so output stays serialized.
fn session_loop(
    client: u32,
    stream: TcpStream,
    tx: Sender<Command>,
    reply_tx: Sender<Reply>,
    shared: &Shared,
    cfg: &ServerConfig,
) {
    let mut reader = BufReader::new(stream);
    let inflight = Arc::new(AtomicUsize::new(0));
    let mut lineno: u64 = 0;
    let mut first = true;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        lineno += 1;
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if first {
            first = false;
            // An HTTP scrape opens with `<METHOD> <path> HTTP/x.y`.
            if trimmed.contains(" HTTP/") {
                // Drain the header block, then hand the head to the
                // service for a one-shot routed response.
                let head = trimmed.to_string();
                let mut hdr = String::new();
                while reader.read_line(&mut hdr).is_ok() {
                    if hdr.trim_end_matches(['\r', '\n']).is_empty() || hdr.is_empty() {
                        break;
                    }
                    hdr.clear();
                }
                let _ = tx.send(Command::Http { head, reply: reply_tx });
                return;
            }
        }
        if trimmed.is_empty() {
            continue;
        }
        let (request, op) = match parse_request(trimmed, lineno) {
            Ok(parsed) => parsed,
            Err(detail) => {
                let _ = reply_tx.send(Reply::line(error_reply(0, "parse", &detail)));
                let _ = tx.send(Command::Rejected {
                    client,
                    request: 0,
                    reason: RejectReason::Parse,
                });
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            let _ = reply_tx.send(Reply::line(error_reply(
                request,
                "draining",
                "server is shutting down; request refused",
            )));
            let _ = tx.send(Command::Rejected { client, request, reason: RejectReason::Draining });
            continue;
        }
        // Backpressure: refuse past the in-flight window instead of
        // buffering without bound.
        if inflight.load(Ordering::SeqCst) >= cfg.queue_depth {
            let _ = reply_tx.send(Reply::line(error_reply(
                request,
                "busy",
                &format!("in-flight window full ({} requests)", cfg.queue_depth),
            )));
            let _ = tx.send(Command::Rejected { client, request, reason: RejectReason::Busy });
            continue;
        }
        inflight.fetch_add(1, Ordering::SeqCst);
        let cmd = Command::Request {
            client,
            request,
            submit_ns: shared.sim_now.load(Ordering::SeqCst),
            op,
            reply: reply_tx.clone(),
            inflight: Arc::clone(&inflight),
        };
        if tx.send(cmd).is_err() {
            return;
        }
    }
}

/// A minimal loopback client for the line protocol — what the `p4rp
/// client` subcommand and the end-to-end tests drive the server with.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer, next_id: 1 })
    }

    /// Send one raw request line and read one reply line.
    pub fn request_line(&mut self, line: &str) -> std::io::Result<String> {
        let mut framed = Vec::with_capacity(line.len() + 1);
        framed.extend_from_slice(line.as_bytes());
        framed.push(b'\n');
        self.writer.write_all(&framed)?;
        self.writer.flush()?;
        let mut reply = String::new();
        self.reader.read_line(&mut reply)?;
        if reply.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }

    fn request(&mut self, mut fields: Vec<(&str, Value)>) -> std::io::Result<String> {
        let id = self.next_id;
        self.next_id += 1;
        fields.insert(0, ("id", Value::U64(id)));
        let line = serde::json::to_string(&obj(fields));
        self.request_line(&line)
    }

    /// `deploy` the given program source.
    pub fn deploy(&mut self, source: &str) -> std::io::Result<String> {
        self.request(vec![
            ("op", Value::Str("deploy".into())),
            ("source", Value::Str(source.to_string())),
        ])
    }

    /// `revoke` the named program.
    pub fn revoke(&mut self, name: &str) -> std::io::Result<String> {
        self.request(vec![
            ("op", Value::Str("revoke".into())),
            ("name", Value::Str(name.to_string())),
        ])
    }

    /// Compact `status`.
    pub fn status(&mut self) -> std::io::Result<String> {
        self.request(vec![("op", Value::Str("status".into()))])
    }

    /// Prometheus exposition snapshot.
    pub fn metrics(&mut self) -> std::io::Result<String> {
        self.request(vec![("op", Value::Str("metrics".into()))])
    }

    /// Flight-recorder statistics.
    pub fn trace(&mut self) -> std::io::Result<String> {
        self.request(vec![("op", Value::Str("trace".into()))])
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<String> {
        self.request(vec![("op", Value::Str("ping".into()))])
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> std::io::Result<String> {
        self.request(vec![("op", Value::Str("shutdown".into()))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parser_is_strict_and_line_numbered() {
        let (id, op) = parse_request(r#"{"id": 7, "op": "ping"}"#, 3).unwrap();
        assert_eq!(id, 7);
        assert_eq!(op, Op::Ping);
        let (_, op) =
            parse_request(r#"{"id": 1, "op": "deploy", "source": "program x() {}"}"#, 1).unwrap();
        assert_eq!(op, Op::Deploy { source: "program x() {}".into() });
        let (_, op) = parse_request(r#"{"id": 1, "op": "status", "full": true}"#, 1).unwrap();
        assert_eq!(op, Op::Status { full: true });

        let err = parse_request("not json", 4).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        let err = parse_request(r#"{"op": "ping"}"#, 9).unwrap_err();
        assert!(err.contains("line 9") && err.contains("missing `id`"), "{err}");
        let err = parse_request(r#"{"id": -3, "op": "ping"}"#, 2).unwrap_err();
        assert!(err.contains("unsigned integer"), "{err}");
        let err = parse_request(r#"{"id": 1, "op": "warp"}"#, 5).unwrap_err();
        assert!(err.contains("unknown op `warp`"), "{err}");
        let err = parse_request(r#"{"id": 1, "op": "deploy"}"#, 6).unwrap_err();
        assert!(err.contains("requires a string `source`"), "{err}");
        let err = parse_request(r#"{"id": 1, "op": "revoke", "name": 4}"#, 7).unwrap_err();
        assert!(err.contains("`name` must be a string"), "{err}");
        let err = parse_request("[1, 2]", 8).unwrap_err();
        assert!(err.contains("JSON object"), "{err}");
    }

    #[test]
    fn error_replies_are_single_line_json() {
        let text = error_reply(3, "busy", "line 1: too much");
        assert!(!text.contains('\n'), "{text}");
        let doc = serde::json::parse(&text).unwrap();
        assert_eq!(doc.get("id"), Some(&Value::U64(3)));
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(doc.get("error"), Some(&Value::Str("busy".into())));
    }
}
