//! A runtime command-line interface over the controller — the analogue of
//! the prototype's runtime CLI (§5 "We implement a runtime CLI to interact
//! with the P4runpro data plane").
//!
//! Commands (one per line):
//!
//! ```text
//! deploy <inline source…>      link a program (source until end of line;
//!                              use \n escapes or `deploy-file` in shells)
//! revoke <name>                unlink a program
//! update <name> <source…>      incremental update: revoke + redeploy
//! programs                     list deployed programs
//! status                       resource-manager summary
//! status --metrics             full telemetry summary (spans, gauges,
//!                              latency, dataplane counters)
//! status --json                the same report as one JSON document
//! mem <program> <memory>       dump a program's virtual memory (non-zero)
//! memwrite <prog> <mem> <addr> <value>
//! help                         this text
//! ```
//!
//! Every command returns its output as a `String`, so the CLI is equally
//! usable from a REPL binary, tests, or scripts.

use crate::controller::{Controller, CtlResult};

/// The command interpreter.
pub struct Cli {
    /// Ctl.
    pub ctl: Controller,
}

impl Cli {
    /// Construct with defaults appropriate to the type.
    pub fn new(ctl: Controller) -> Cli {
        Cli { ctl }
    }

    /// Execute one command line.
    pub fn exec(&mut self, line: &str) -> String {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let result: CtlResult<String> = match cmd {
            "" | "help" => Ok(HELP.to_string()),
            "deploy" => self.deploy(rest),
            "revoke" => self.ctl.revoke(rest).map(|r| {
                format!("revoked `{}` in {:.2} ms", r.name, r.update_delay.as_millis_f64())
            }),
            "update" => self.update(rest),
            "programs" => Ok(self.programs()),
            "status" => Ok(match rest {
                "--metrics" => self.ctl.telemetry_report().summary(),
                "--json" => self.ctl.telemetry_report().to_json(),
                _ => self.status(),
            }),
            "mem" => self.mem(rest),
            "memwrite" => self.memwrite(rest),
            other => Ok(format!("unknown command `{other}` — try `help`")),
        };
        result.unwrap_or_else(|e| format!("error: {e}"))
    }

    fn deploy(&mut self, source: &str) -> CtlResult<String> {
        let source = source.replace("\\n", "\n");
        let reports = self.ctl.deploy(&source)?;
        Ok(reports
            .iter()
            .map(|r| {
                format!(
                    "linked `{}` (id {}): {} entries, depth {}, {} pass(es), alloc {:.2} ms, update {:.2} ms",
                    r.name,
                    r.prog_id,
                    r.entries_installed,
                    r.depth,
                    r.passes,
                    r.alloc_wall.as_secs_f64() * 1e3,
                    r.update_delay.as_millis_f64()
                )
            })
            .collect::<Vec<_>>()
            .join("\n"))
    }

    fn update(&mut self, rest: &str) -> CtlResult<String> {
        let (name, source) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| crate::controller::CtlError::NoSuchProgram(rest.to_string()))?;
        let source = source.replace("\\n", "\n");
        let r = self.ctl.update(name, &source)?;
        Ok(format!(
            "updated `{}` → `{}` in {:.2} ms total",
            name,
            r.name,
            r.update_delay.as_millis_f64()
        ))
    }

    fn programs(&self) -> String {
        let mut rows: Vec<String> = self
            .ctl
            .deployed_programs()
            .map(|(name, p)| {
                format!(
                    "  {name:<16} id {:<5} entries {:<4} passes {} memories {}",
                    p.image.prog_id,
                    p.image.entry_count(),
                    p.image.passes,
                    p.image.mem_regions.len()
                )
            })
            .collect();
        rows.sort();
        if rows.is_empty() {
            "no programs deployed".to_string()
        } else {
            format!("{} program(s):\n{}", rows.len(), rows.join("\n"))
        }
    }

    fn status(&self) -> String {
        let rm = self.ctl.resources();
        format!(
            "memory: {:.1}% used | rpb entries: {:.1}% used | init filters: {} | programs: {}",
            rm.memory_utilization() * 100.0,
            rm.entry_utilization() * 100.0,
            rm.init_entries_used(),
            self.ctl.deployed_programs().count()
        )
    }

    fn mem(&mut self, rest: &str) -> CtlResult<String> {
        let mut it = rest.split_whitespace();
        let (prog, mem) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
        let values = self.ctl.read_memory(prog, mem)?;
        let nonzero: Vec<String> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0)
            .take(32)
            .map(|(i, v)| format!("[{i}]={v}"))
            .collect();
        Ok(format!(
            "{}/{} buckets non-zero: {}",
            values.iter().filter(|v| **v != 0).count(),
            values.len(),
            nonzero.join(" ")
        ))
    }

    fn memwrite(&mut self, rest: &str) -> CtlResult<String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        if parts.len() != 4 {
            return Ok("usage: memwrite <program> <memory> <addr> <value>".into());
        }
        let addr: u32 = parts[2].parse().unwrap_or(u32::MAX);
        let value: u32 = parts[3].parse().unwrap_or(0);
        self.ctl.write_memory(parts[0], parts[1], addr, value)?;
        Ok(format!("{}:{}[{addr}] = {value}", parts[0], parts[1]))
    }
}

const HELP: &str = "commands: deploy <src> | revoke <name> | update <name> <src> | programs | status [--metrics|--json] | mem <prog> <mem> | memwrite <prog> <mem> <addr> <val> | help";

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program p(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) { FORWARD(3); }";

    fn cli() -> Cli {
        Cli::new(Controller::with_defaults().unwrap())
    }

    #[test]
    fn deploy_list_revoke_cycle() {
        let mut cli = cli();
        let out = cli.exec(&format!("deploy {SRC}"));
        assert!(out.contains("linked `p`"), "{out}");
        let out = cli.exec("programs");
        assert!(out.contains("1 program(s)"), "{out}");
        let out = cli.exec("status");
        assert!(out.contains("programs: 1"), "{out}");
        let out = cli.exec("revoke p");
        assert!(out.contains("revoked `p`"), "{out}");
        assert!(cli.exec("programs").contains("no programs"));
    }

    #[test]
    fn update_replaces_program() {
        let mut cli = cli();
        cli.exec(&format!("deploy {SRC}"));
        let new_src = SRC.replace("FORWARD(3)", "FORWARD(9)");
        let out = cli.exec(&format!("update p {new_src}"));
        assert!(out.contains("updated `p`"), "{out}");
        assert_eq!(cli.ctl.deployed_programs().count(), 1);
    }

    #[test]
    fn memory_commands() {
        let mut cli = cli();
        cli.exec("deploy @ m 64\\nprogram q(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) { LOADI(mar, 5); MEMREAD(m); }");
        let out = cli.exec("memwrite q m 5 42");
        assert!(out.contains("= 42"), "{out}");
        let out = cli.exec("mem q m");
        assert!(out.contains("[5]=42"), "{out}");
        assert!(cli.exec("mem q ghost").starts_with("error:"));
    }

    #[test]
    fn status_metrics_renders_lifecycle_spans() {
        let mut cli = cli();
        cli.ctl.enable_telemetry();
        cli.exec(&format!("deploy {SRC}"));
        let out = cli.exec("status --metrics");
        assert!(out.contains("telemetry epoch 1"), "{out}");
        assert!(out.contains("#0 deploy"), "{out}");
        assert!(out.contains("entries"), "{out}");
        assert!(out.contains("dataplane (epoch 1)"), "{out}");
        cli.exec("revoke p");
        let out = cli.exec("status --metrics");
        assert!(out.contains("#1 revoke"), "{out}");
    }

    #[test]
    fn status_json_roundtrips() {
        let mut cli = cli();
        cli.exec(&format!("deploy {SRC}"));
        let text = cli.exec("status --json");
        let report = crate::telemetry::TelemetryReport::from_json(&text).unwrap();
        assert_eq!(report, cli.ctl.telemetry_report());
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].kind, "deploy");
        assert!(report.spans[0].entries_written > 0);
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut cli = cli();
        assert!(cli.exec("revoke nope").starts_with("error:"));
        assert!(cli.exec("deploy BOGUS").starts_with("error:"));
        assert!(cli.exec("frobnicate").contains("unknown command"));
        assert!(cli.exec("help").contains("deploy"));
    }
}
