//! A runtime command-line interface over the controller — the analogue of
//! the prototype's runtime CLI (§5 "We implement a runtime CLI to interact
//! with the P4runpro data plane").
//!
//! Commands (one per line):
//!
//! ```text
//! deploy <inline source…>      link a program (source until end of line;
//!                              use \n escapes or `deploy-file` in shells)
//! deploy-many <file…>          link many source files through one
//!                              concurrent compilation context
//! revoke <name>                unlink a program
//! revoke-many <name…>          unlink many programs (vectored batches)
//! update <name> <source…>      incremental update: revoke + redeploy
//! programs                     list deployed programs
//! status                       resource-manager summary
//! status --metrics             full telemetry summary (spans, gauges,
//!                              latency, dataplane counters)
//! status --json                the same report as one JSON document
//! mem <program> <memory>       dump a program's virtual memory (non-zero)
//! memwrite <prog> <mem> <addr> <value>
//! trace on [capacity]          enable the flight recorder
//! trace off                    disable it, reporting final stats
//! trace status                 ring statistics (capacity/recorded/dropped)
//! trace dump [last <n>] [control|packets|table <gress> <stage> <table>
//!                             |flow <a.b.c.d> [port]]
//! trace journeys               per-packet journey reconstruction
//! trace export [path]          Chrome trace-event JSON (Perfetto-viewable)
//! replay [--packets <n>] [--flows <n>] [--workers <n>] [--seed <n>]
//!                              synthesize a flow mix and replay it through
//!                              the data plane; `--workers > 1` shards flows
//!                              across the parallel engine (docs/PERF.md);
//!                              each replay also cuts a time-series bucket
//! top [--once]                 per-program usage ranked by attributed
//!                              packets; enables attribution on first use
//!                              (docs/METRICS.md)
//! metrics export [path|-]      Prometheus text exposition to a file or
//!                              stdout
//! metrics serve <addr>         answer one /metrics scrape on a loopback
//!                              TCP listener (blocks until the scrape)
//! watchdog arm [--drop-ppm <n>] [--deploy-faults <n>] [--p99-ns <n>]
//!                              arm SLO thresholds; breaches emit
//!                              SloViolation trace events
//! watchdog status | disarm     inspect or drop the armed watchdog
//! series on [capacity]         start the windowed telemetry time series
//! chaos run [--seed <n>] [--faults <spec>] [--steps <n>] [--programs <n>]
//!           [--workers <n>]    seeded fault-injection campaign on a fresh
//!           [--slo-drop-ppm <n>] [--slo-deploy-faults <n>] [--slo-p99-ns <n>]
//!                              controller (spec syntax in docs/CHAOS.md,
//!                              e.g. `failop@5,reset@12,drop:insert@20`);
//!                              `--workers > 1` runs traffic on the sharded
//!                              multi-worker engine under deploy churn;
//!                              `--slo-*` arms the campaign watchdog
//! serve <addr> [--max-clients <n>] [--queue <n>] [--rate <r>] [--timeout-ns <n>]
//!                              run the persistent multi-client runtime-
//!                              control server (line-framed JSON over TCP,
//!                              batching, backpressure; blocks until a
//!                              client sends `shutdown`; docs/SERVER.md)
//! client <addr> <op> [...]     one-shot loopback client for `serve`:
//!                              ping | status | metrics | trace | shutdown
//!                              | deploy <src…> | revoke <name> | raw <json>
//! help                         this text
//! ```
//!
//! Every command returns its output as a `String`, so the CLI is equally
//! usable from a REPL binary, tests, or scripts.

use crate::controller::{Controller, CtlResult};
use rmt_sim::pipeline::Gress;
use rmt_sim::trace::{chrome_trace_json, filter_events, journeys, TraceConfig, TraceFilter};

/// The command interpreter.
pub struct Cli {
    /// Ctl.
    pub ctl: Controller,
}

impl Cli {
    /// Construct with defaults appropriate to the type.
    pub fn new(ctl: Controller) -> Cli {
        Cli { ctl }
    }

    /// Execute one command line.
    pub fn exec(&mut self, line: &str) -> String {
        let line = line.trim();
        let (cmd, rest) = match line.split_once(char::is_whitespace) {
            Some((c, r)) => (c, r.trim()),
            None => (line, ""),
        };
        let result: CtlResult<String> = match cmd {
            "" | "help" => Ok(HELP.to_string()),
            "deploy" => self.deploy(rest),
            "deploy-many" => Ok(self.deploy_many(rest)),
            "revoke" => self.ctl.revoke(rest).map(|r| {
                format!("revoked `{}` in {:.2} ms", r.name, r.update_delay.as_millis_f64())
            }),
            "revoke-many" => Ok(self.revoke_many(rest)),
            "update" => self.update(rest),
            "programs" => Ok(self.programs()),
            "status" => Ok(match rest {
                "--metrics" => self.ctl.telemetry_report().summary(),
                "--json" => self.ctl.telemetry_report().to_json(),
                _ => self.status(),
            }),
            "mem" => self.mem(rest),
            "memwrite" => self.memwrite(rest),
            "trace" => Ok(self.trace_cmd(rest)),
            "replay" => Ok(self.replay_cmd(rest)),
            "top" => Ok(self.top_cmd(rest)),
            "metrics" => Ok(self.metrics_cmd(rest)),
            "watchdog" => Ok(self.watchdog_cmd(rest)),
            "series" => Ok(self.series_cmd(rest)),
            "chaos" => Ok(chaos_cmd(rest)),
            "serve" => Ok(self.serve_cmd(rest)),
            "client" => Ok(client_cmd(rest)),
            other => Ok(format!("unknown command `{other}` — try `help`")),
        };
        result.unwrap_or_else(|e| format!("error: {e}"))
    }

    fn deploy(&mut self, source: &str) -> CtlResult<String> {
        let source = source.replace("\\n", "\n");
        let reports = self.ctl.deploy(&source)?;
        Ok(reports
            .iter()
            .map(|r| {
                format!(
                    "linked `{}` (id {}): {} entries, depth {}, {} pass(es), alloc {:.2} ms, update {:.2} ms",
                    r.name,
                    r.prog_id,
                    r.entries_installed,
                    r.depth,
                    r.passes,
                    r.alloc_wall.as_secs_f64() * 1e3,
                    r.update_delay.as_millis_f64()
                )
            })
            .collect::<Vec<_>>()
            .join("\n"))
    }

    /// `deploy-many <file...>`: read each file, compile them all through
    /// one concurrent compilation context, and report one line per
    /// program plus a conflict summary.
    fn deploy_many(&mut self, rest: &str) -> String {
        let paths: Vec<&str> = rest.split_whitespace().collect();
        if paths.is_empty() {
            return "usage: deploy-many <file...>".to_string();
        }
        let mut sources = Vec::with_capacity(paths.len());
        for p in &paths {
            match std::fs::read_to_string(p) {
                Ok(s) => sources.push(s),
                Err(e) => return format!("error reading {p}: {e}"),
            }
        }
        let conflicts_before = self.ctl.spec_conflicts();
        let results = self.ctl.deploy_many(&sources);
        let mut out = Vec::new();
        for (p, result) in paths.iter().zip(results) {
            match result {
                Ok(reports) => {
                    for r in reports {
                        out.push(format!(
                            "linked `{}` (id {}): {} entries, alloc {:.2} ms, \
                             apply {:.2} ms, update {:.2} ms",
                            r.name,
                            r.prog_id,
                            r.entries_installed,
                            r.alloc_wall.as_secs_f64() * 1e3,
                            r.channel_wall.as_secs_f64() * 1e3,
                            r.update_delay.as_millis_f64()
                        ));
                    }
                }
                Err(e) => out.push(format!("error in {p}: {e}")),
            }
        }
        out.push(format!(
            "{} speculative conflict(s) re-allocated",
            self.ctl.spec_conflicts() - conflicts_before
        ));
        out.join("\n")
    }

    /// `revoke-many <name...>`: one vectored revoke per name, best-effort.
    fn revoke_many(&mut self, rest: &str) -> String {
        let names: Vec<String> = rest.split_whitespace().map(String::from).collect();
        if names.is_empty() {
            return "usage: revoke-many <name...>".to_string();
        }
        self.ctl
            .revoke_many(&names)
            .into_iter()
            .zip(&names)
            .map(|(r, n)| match r {
                Ok(r) => {
                    format!("revoked `{}` in {:.2} ms", r.name, r.update_delay.as_millis_f64())
                }
                Err(e) => format!("error revoking `{n}`: {e}"),
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    fn update(&mut self, rest: &str) -> CtlResult<String> {
        let (name, source) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| crate::controller::CtlError::NoSuchProgram(rest.to_string()))?;
        let source = source.replace("\\n", "\n");
        let r = self.ctl.update(name, &source)?;
        Ok(format!(
            "updated `{}` → `{}` in {:.2} ms total",
            name,
            r.name,
            r.update_delay.as_millis_f64()
        ))
    }

    fn programs(&self) -> String {
        let mut rows: Vec<String> = self
            .ctl
            .deployed_programs()
            .map(|(name, p)| {
                format!(
                    "  {name:<16} id {:<5} entries {:<4} passes {} memories {}",
                    p.image.prog_id,
                    p.image.entry_count(),
                    p.image.passes,
                    p.image.mem_regions.len()
                )
            })
            .collect();
        rows.sort();
        if rows.is_empty() {
            "no programs deployed".to_string()
        } else {
            format!("{} program(s):\n{}", rows.len(), rows.join("\n"))
        }
    }

    fn status(&self) -> String {
        let rm = self.ctl.resources();
        format!(
            "memory: {:.1}% used | rpb entries: {:.1}% used | init filters: {} | programs: {}",
            rm.memory_utilization() * 100.0,
            rm.entry_utilization() * 100.0,
            rm.init_entries_used(),
            self.ctl.deployed_programs().count()
        )
    }

    fn mem(&mut self, rest: &str) -> CtlResult<String> {
        let mut it = rest.split_whitespace();
        let (prog, mem) = (it.next().unwrap_or(""), it.next().unwrap_or(""));
        let values = self.ctl.read_memory(prog, mem)?;
        let nonzero: Vec<String> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| **v != 0)
            .take(32)
            .map(|(i, v)| format!("[{i}]={v}"))
            .collect();
        Ok(format!(
            "{}/{} buckets non-zero: {}",
            values.iter().filter(|v| **v != 0).count(),
            values.len(),
            nonzero.join(" ")
        ))
    }

    fn trace_cmd(&mut self, rest: &str) -> String {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.first().copied() {
            None | Some("status") => {
                let s = self.ctl.trace_stats();
                if s.enabled {
                    format!(
                        "tracing on: {} recorded, {} dropped, {} retained \
                         (capacity {}), {} violation(s)",
                        s.recorded, s.dropped, s.retained, s.capacity, s.violations
                    )
                } else {
                    "tracing off".to_string()
                }
            }
            Some("on") => {
                let mut cfg = TraceConfig::default();
                if let Some(cap) = parts.get(1) {
                    match cap.parse::<usize>() {
                        Ok(c) if c > 0 => cfg.capacity = c,
                        _ => return format!("bad capacity `{cap}`"),
                    }
                }
                let t = self.ctl.enable_trace(cfg);
                format!("tracing on (capacity {})", t.capacity())
            }
            Some("off") => match self.ctl.disable_trace() {
                Some(t) => {
                    let s = t.stats();
                    format!(
                        "tracing off: {} recorded, {} dropped, {} violation(s)",
                        s.recorded, s.dropped, s.violations
                    )
                }
                None => "tracing was already off".to_string(),
            },
            Some("dump") => self.trace_dump(&parts[1..]),
            Some("journeys") => match self.ctl.trace() {
                None => "tracing off".to_string(),
                Some(t) => {
                    let js = journeys(t.events());
                    if js.is_empty() {
                        "no packet journeys retained".to_string()
                    } else {
                        js.iter().map(|j| j.render()).collect::<Vec<_>>().join("\n")
                    }
                }
            },
            Some("export") => {
                let path = parts.get(1).copied().unwrap_or("results/trace.json");
                let Some(t) = self.ctl.trace() else {
                    return "tracing off".to_string();
                };
                let json = chrome_trace_json(t.events());
                let n = t.len();
                if let Some(dir) = std::path::Path::new(path).parent() {
                    if !dir.as_os_str().is_empty() {
                        let _ = std::fs::create_dir_all(dir);
                    }
                }
                match std::fs::write(path, json) {
                    Ok(()) => format!("wrote {n} event(s) to {path}"),
                    Err(e) => format!("error writing {path}: {e}"),
                }
            }
            Some(other) => format!("unknown trace subcommand `{other}` — try `help`"),
        }
    }

    fn trace_dump(&self, args: &[&str]) -> String {
        let Some(t) = self.ctl.trace() else {
            return "tracing off".to_string();
        };
        const USAGE: &str = "usage: trace dump [last <n>] [<filter>]";
        let mut args = args;
        let mut last = None;
        if args.first() == Some(&"last") {
            // `and_then(.. parse().ok())` used to fold "missing" and
            // "unparseable" into one silent None; say which it was.
            let Some(v) = args.get(1) else {
                return USAGE.to_string();
            };
            match v.parse::<usize>() {
                Ok(n) => last = Some(n),
                Err(_) => return format!("bad count `{v}` for `last`\n{USAGE}"),
            }
            args = &args[2..];
        }
        let filter = match parse_filter(args) {
            Ok(f) => f,
            Err(usage) => return usage,
        };
        let mut evs = filter_events(t.events(), filter);
        if let Some(n) = last {
            let skip = evs.len().saturating_sub(n);
            evs.drain(..skip);
        }
        if evs.is_empty() {
            "no matching events".to_string()
        } else {
            evs.iter().map(|e| e.render()).collect::<Vec<_>>().join("\n")
        }
    }

    /// `replay [--packets <n>] [--flows <n>] [--workers <n>] [--seed <n>]`:
    /// synthesize a seeded flow mix and replay it through the data plane.
    /// With `--workers 1` (the default) this is the sequential engine —
    /// exactly the path every other command exercises; with more, flows
    /// are sharded across the parallel engine and the merged outcome is
    /// reported (the per-worker breakdown lands in `status --json`).
    fn replay_cmd(&mut self, rest: &str) -> String {
        const USAGE: &str = "usage: replay [--packets <n>] [--flows <n>] [--workers <n>] [--seed <n>]";
        let (mut packets, mut flows, mut workers, mut seed) = (2000usize, 64usize, 1usize, 1u64);
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let mut it = parts.iter();
        while let Some(flag) = it.next() {
            let Some(value) = it.next() else {
                return format!("missing value for `{flag}`\n{USAGE}");
            };
            let parsed: Result<usize, _> = value.parse();
            match (*flag, parsed) {
                ("--packets", Ok(n)) if n > 0 => packets = n,
                ("--flows", Ok(n)) if n > 0 => flows = n,
                ("--workers", Ok(n)) if n > 0 => workers = n,
                ("--seed", _) => match value.parse() {
                    Ok(n) => seed = n,
                    Err(_) => return format!("bad seed `{value}`"),
                },
                ("--packets" | "--flows" | "--workers", _) => {
                    return format!("bad value `{value}` for `{flag}`\n{USAGE}");
                }
                (other, _) => return format!("unknown flag `{other}`\n{USAGE}"),
            }
        }
        let mix = traffic::gen::make_flows(seed, flows, 0.5);
        let trace: Vec<traffic::replay::TimedPacket> = (0..packets)
            .map(|i| traffic::replay::TimedPacket {
                t: rmt_sim::clock::Nanos::from_micros(i as u64),
                port: 0,
                frame: traffic::gen::frame_for(&mix[i % mix.len()].tuple, 64),
            })
            .collect();
        if workers <= 1 {
            let mut r = traffic::replay::Replay::new(trace);
            let mut failed = None;
            r.run_all_into(|port, frame, out| {
                if failed.is_none() {
                    if let Err(e) = self.ctl.inject_into(port, frame, out) {
                        failed = Some(format!("error: {e}"));
                    }
                }
            });
            if let Some(e) = failed {
                return e;
            }
            let (tx, dropped) = r
                .stats
                .iter()
                .fold((0u64, 0u64), |(t, d), s| (t + s.tx_pkts, d + s.dropped));
            // A finished replay is a series tick and an SLO checkpoint.
            self.ctl.tick_series();
            self.ctl.slo_check();
            return format!(
                "replayed {packets} packet(s), {flows} flow(s), sequential engine: \
                 {tx} tx, {dropped} dropped"
            );
        }
        self.ctl.enable_workers(workers);
        let pr = traffic::replay::ParallelReplay::new(trace, workers);
        let shards = pr.shard_sizes();
        let pool = self.ctl.workers_mut().expect("workers just enabled");
        match pr.run(pool) {
            Ok(out) => {
                let (tx, dropped) = out
                    .stats
                    .iter()
                    .fold((0u64, 0u64), |(t, d), s| (t + s.tx_pkts, d + s.dropped));
                self.ctl.tick_series();
                self.ctl.slo_check();
                format!(
                    "replayed {packets} packet(s), {flows} flow(s) across {workers} worker(s) \
                     (shards {shards:?}): {tx} tx, {dropped} dropped, snapshot generation {} \
                     — per-worker counters in `status --json`",
                    self.ctl.channel().snapshot_generation()
                )
            }
            Err(e) => format!("error: {e}"),
        }
    }

    /// `top [--once]`: per-program usage ranked by attributed packets.
    /// Enables attribution on first use, so counters accumulate from
    /// here on; `--once` is accepted for scripting symmetry (the CLI
    /// always renders exactly one frame — there is no terminal loop in
    /// the simulator).
    fn top_cmd(&mut self, rest: &str) -> String {
        match rest {
            "" | "--once" => {}
            other => return format!("unknown flag `{other}`\nusage: top [--once]"),
        }
        let first = !self.ctl.attribution_enabled();
        if first {
            self.ctl.enable_attribution();
        }
        let mut out = crate::metrics::render_top(&self.ctl.telemetry_report());
        if first {
            out.push_str("(attribution just enabled — packet counters attribute from now on)\n");
        }
        out
    }

    /// `metrics export [path|-]` / `metrics serve <addr>`.
    fn metrics_cmd(&mut self, rest: &str) -> String {
        const USAGE: &str = "usage: metrics export [path|-] | metrics serve <addr>";
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.first().copied() {
            Some("export") => {
                let body = crate::metrics::render_prometheus(&self.ctl.telemetry_report());
                match parts.get(1).copied() {
                    None | Some("-") => body,
                    Some(path) => {
                        if let Some(dir) = std::path::Path::new(path).parent() {
                            if !dir.as_os_str().is_empty() {
                                let _ = std::fs::create_dir_all(dir);
                            }
                        }
                        match std::fs::write(path, &body) {
                            Ok(()) => format!(
                                "wrote {} exposition line(s) to {path}",
                                body.lines().count()
                            ),
                            Err(e) => format!("error writing {path}: {e}"),
                        }
                    }
                }
            }
            Some("serve") => {
                let Some(addr) = parts.get(1) else {
                    return USAGE.to_string();
                };
                let listener = match std::net::TcpListener::bind(addr) {
                    Ok(l) => l,
                    Err(e) => return format!("error binding {addr}: {e}"),
                };
                let local = listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| addr.to_string());
                let body = crate::metrics::render_prometheus(&self.ctl.telemetry_report());
                match crate::metrics::serve_once(&listener, &body) {
                    Ok(()) => format!(
                        "served one scrape ({} line(s)) on http://{local}/metrics",
                        body.lines().count()
                    ),
                    Err(e) => format!("error serving on {local}: {e}"),
                }
            }
            _ => USAGE.to_string(),
        }
    }

    /// `watchdog arm [--drop-ppm <n>] [--deploy-faults <n>] [--p99-ns <n>]`
    /// / `watchdog status` / `watchdog disarm`.
    fn watchdog_cmd(&mut self, rest: &str) -> String {
        const USAGE: &str = "usage: watchdog arm [--drop-ppm <n>] [--deploy-faults <n>] \
                             [--p99-ns <n>] | watchdog status | watchdog disarm";
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.first().copied() {
            Some("arm") => {
                let mut t = crate::telemetry::SloThresholds::default();
                let mut it = parts[1..].iter();
                while let Some(flag) = it.next() {
                    let Some(value) = it.next() else {
                        return format!("missing value for `{flag}`\n{USAGE}");
                    };
                    let parsed: Result<u64, _> = value.parse();
                    match (*flag, parsed) {
                        ("--drop-ppm", Ok(n)) => t.max_drop_ppm = Some(n),
                        ("--deploy-faults", Ok(n)) => t.max_deploy_failures = Some(n),
                        ("--p99-ns", Ok(n)) => t.max_p99_write_ns = Some(n),
                        ("--drop-ppm" | "--deploy-faults" | "--p99-ns", _) => {
                            return format!("bad value `{value}` for `{flag}`");
                        }
                        (other, _) => return format!("unknown flag `{other}`\n{USAGE}"),
                    }
                }
                if !t.is_armed() {
                    return format!("no thresholds given\n{USAGE}");
                }
                self.ctl.arm_watchdog(t);
                // Evaluate immediately so `status` right after `arm`
                // reflects any standing breach.
                self.ctl.slo_check();
                render_watchdog(self.ctl.watchdog_status().as_ref())
            }
            None | Some("status") => render_watchdog(self.ctl.watchdog_status().as_ref()),
            Some("disarm") => match self.ctl.disarm_watchdog() {
                Some(s) => format!("watchdog disarmed after {} violation(s)", s.violations),
                None => "watchdog was not armed".to_string(),
            },
            Some(other) => format!("unknown watchdog subcommand `{other}`\n{USAGE}"),
        }
    }

    /// `series on [capacity]`: start windowed time-series collection
    /// (buckets cut on every lifecycle event and replay).
    fn series_cmd(&mut self, rest: &str) -> String {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        match parts.first().copied() {
            Some("on") => {
                let capacity = match parts.get(1) {
                    None => 256,
                    Some(c) => match c.parse::<usize>() {
                        Ok(n) if n > 0 => n,
                        _ => return format!("bad capacity `{c}`"),
                    },
                };
                self.ctl.enable_series(capacity);
                let s = self.ctl.series().expect("just enabled");
                format!(
                    "series on: {} point(s) retained (capacity {})",
                    s.points.len(),
                    s.capacity
                )
            }
            None | Some("status") => match self.ctl.series() {
                None => "series off".to_string(),
                Some(s) => format!(
                    "series on: {} point(s) retained (capacity {}, {} evicted)",
                    s.points.len(),
                    s.capacity,
                    s.evicted
                ),
            },
            Some(other) => format!("unknown series subcommand `{other}` — try `series on [cap]`"),
        }
    }

    fn memwrite(&mut self, rest: &str) -> CtlResult<String> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        if parts.len() != 4 {
            return Ok("usage: memwrite <program> <memory> <addr> <value>".into());
        }
        // A bad address used to collapse to `u32::MAX` (guaranteed
        // out-of-range error) and a bad value to `0` (a silent write of
        // the wrong data) — both must be loud instead.
        let addr: u32 = match parts[2].parse() {
            Ok(a) => a,
            Err(_) => return Ok(format!("bad address `{}` for memwrite", parts[2])),
        };
        let value: u32 = match parts[3].parse() {
            Ok(v) => v,
            Err(_) => return Ok(format!("bad value `{}` for memwrite", parts[3])),
        };
        self.ctl.write_memory(parts[0], parts[1], addr, value)?;
        Ok(format!("{}:{}[{addr}] = {value}", parts[0], parts[1]))
    }

    /// `serve <addr> [--max-clients <n>] [--queue <n>] [--rate <r>]
    /// [--timeout-ns <n>]`: run the persistent runtime-control server.
    /// Blocks the calling thread until a client sends `shutdown`.
    fn serve_cmd(&mut self, rest: &str) -> String {
        const USAGE: &str = "usage: serve <addr> [--max-clients <n>] [--queue <n>] \
                             [--rate <r>] [--timeout-ns <n>]";
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let Some(addr) = parts.first().copied() else {
            return USAGE.to_string();
        };
        let mut cfg = crate::server::ServerConfig::default();
        let mut it = parts[1..].iter();
        while let Some(flag) = it.next() {
            let Some(value) = it.next() else {
                return format!("missing value for `{flag}`\n{USAGE}");
            };
            match *flag {
                "--max-clients" => match value.parse::<usize>() {
                    Ok(n) if n > 0 => cfg.max_clients = n,
                    _ => return format!("bad client limit `{value}` for `--max-clients`"),
                },
                "--queue" => match value.parse::<usize>() {
                    Ok(n) if n > 0 => cfg.queue_depth = n,
                    _ => return format!("bad queue depth `{value}` for `--queue`"),
                },
                "--rate" => match value.parse::<u64>() {
                    Ok(n) if n > 0 => cfg.rate = Some(n),
                    _ => return format!("bad rate `{value}` for `--rate`"),
                },
                "--timeout-ns" => match value.parse::<u64>() {
                    Ok(n) if n > 0 => cfg.request_timeout_ns = Some(n),
                    _ => return format!("bad timeout `{value}` for `--timeout-ns`"),
                },
                other => return format!("unknown flag `{other}`\n{USAGE}"),
            }
        }
        let listener = match std::net::TcpListener::bind(addr) {
            Ok(l) => l,
            Err(e) => return format!("error binding {addr}: {e}"),
        };
        let local = listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| addr.to_string());
        match crate::server::serve(&mut self.ctl, listener, &cfg) {
            Ok(stats) => format!(
                "server on {local} drained: {} session(s) accepted, {} request(s), \
                 {} ok / {} err / {} rejected",
                stats.accepted,
                stats.requests,
                stats.responses_ok,
                stats.responses_err,
                stats.rejected()
            ),
            Err(e) => format!("error serving on {local}: {e}"),
        }
    }
}

/// `client <addr> <op> [...]`: a one-shot loopback client for `serve`.
/// Connects, issues one request, and prints the raw JSON reply line.
fn client_cmd(rest: &str) -> String {
    const USAGE: &str = "usage: client <addr> <ping|status|metrics|trace|shutdown\
                         |deploy <src…>|revoke <name>|raw <json>>";
    let Some((addr, rest)) = rest.split_once(char::is_whitespace) else {
        return USAGE.to_string();
    };
    let rest = rest.trim();
    let mut c = match crate::server::Client::connect(addr) {
        Ok(c) => c,
        Err(e) => return format!("error connecting to {addr}: {e}"),
    };
    let (op, arg) = match rest.split_once(char::is_whitespace) {
        Some((o, a)) => (o, a.trim()),
        None => (rest, ""),
    };
    let result = match op {
        "ping" => c.ping(),
        "status" => c.status(),
        "metrics" => c.metrics(),
        "trace" => c.trace(),
        "shutdown" => c.shutdown(),
        "deploy" if !arg.is_empty() => c.deploy(&arg.replace("\\n", "\n")),
        "revoke" if !arg.is_empty() => c.revoke(arg),
        "raw" if !arg.is_empty() => c.request_line(arg),
        _ => return USAGE.to_string(),
    };
    result.unwrap_or_else(|e| format!("error: {e}"))
}

/// Render the watchdog's status line.
fn render_watchdog(status: Option<&crate::telemetry::SloStatus>) -> String {
    match status {
        None => "watchdog disarmed".to_string(),
        Some(s) => {
            let t = &s.thresholds;
            let mut limits = Vec::new();
            if let Some(v) = t.max_drop_ppm {
                limits.push(format!("drop ≤ {v} ppm"));
            }
            if let Some(v) = t.max_deploy_failures {
                limits.push(format!("deploy faults ≤ {v}"));
            }
            if let Some(v) = t.max_p99_write_ns {
                limits.push(format!("write p99 ≤ {v} ns"));
            }
            format!(
                "watchdog armed: {} | {} violation(s){}",
                limits.join(", "),
                s.violations,
                if s.breached.is_empty() {
                    String::new()
                } else {
                    format!(" | IN BREACH: {}", s.breached.join(", "))
                }
            )
        }
    }
}

/// `chaos run [--seed <n>] [--faults <spec>] [--steps <n>] [--programs <n>]
/// [--workers <n>]`: run a seeded, deterministic fault-injection campaign
/// against a fresh controller and summarise what survived. The fault spec
/// syntax is `<kind>[:<opkind>]@<index>[,…]` — see `docs/CHAOS.md`.
/// `--workers` > 1 drives injections through the sharded parallel engine.
fn chaos_cmd(rest: &str) -> String {
    const USAGE: &str = "usage: chaos run [--seed <n>] [--faults <spec>] \
                         [--steps <n>] [--programs <n>] [--workers <n>] \
                         [--slo-drop-ppm <n>] [--slo-deploy-faults <n>] [--slo-p99-ns <n>]";
    let parts: Vec<&str> = rest.split_whitespace().collect();
    if parts.first() != Some(&"run") {
        return USAGE.to_string();
    }
    let mut cfg = crate::chaos::ChaosConfig::default();
    let mut it = parts[1..].iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return format!("missing value for `{flag}`\n{USAGE}");
        };
        match *flag {
            "--seed" => match value.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return format!("bad seed `{value}`"),
            },
            "--steps" => match value.parse() {
                Ok(n) if n > 0 => cfg.steps = n,
                _ => return format!("bad step count `{value}`"),
            },
            "--programs" => match value.parse() {
                Ok(n) if n > 0 => cfg.programs = n,
                _ => return format!("bad program count `{value}`"),
            },
            "--faults" => match rmt_sim::fault::FaultPlan::parse_spec(value) {
                Ok(plan) => cfg.faults = plan,
                Err(e) => return format!("bad fault spec `{value}`: {e}"),
            },
            "--workers" => match value.parse() {
                Ok(n) if n > 0 => cfg.workers = n,
                _ => return format!("bad worker count `{value}`"),
            },
            "--slo-drop-ppm" | "--slo-deploy-faults" | "--slo-p99-ns" => match value.parse() {
                Ok(n) => {
                    let t = cfg.watchdog.get_or_insert_with(Default::default);
                    match *flag {
                        "--slo-drop-ppm" => t.max_drop_ppm = Some(n),
                        "--slo-deploy-faults" => t.max_deploy_failures = Some(n),
                        _ => t.max_p99_write_ns = Some(n),
                    }
                }
                Err(_) => return format!("bad threshold `{value}` for `{flag}`"),
            },
            other => return format!("unknown flag `{other}`\n{USAGE}"),
        }
    }
    match crate::chaos::run(&cfg) {
        Ok(out) => {
            let a = &out.final_audit;
            format!(
                "chaos seed {}: {} step(s), deploys {} ok / {} faulted, \
                 revokes {} ok / {} faulted, {} reconcile pass(es)\n\
                 sentinel {} hit / {} miss, residents {} hit / {} miss, \
                 {} invariant violation(s)\n\
                 audit: {} expected, {} present, {} missing, {} unexpected, \
                 {} wedged ({})\n\
                 faults: {} injected, {} retries, {} rollback(s) ({} undo ops), \
                 device generation {}\n\
                 trace fingerprint {:#018x} — {}",
                cfg.seed,
                out.steps,
                out.deploys_ok,
                out.deploys_faulted,
                out.revokes_ok,
                out.revokes_faulted,
                out.reconcile_passes,
                out.sentinel_hits,
                out.sentinel_misses,
                out.resident_hits,
                out.resident_misses,
                out.invariant_violations,
                a.expected,
                a.present,
                a.missing,
                a.unexpected,
                a.wedged,
                if a.clean() { "clean" } else { "DIRTY" },
                out.fault_stats.faults_injected,
                out.fault_stats.retries,
                out.fault_stats.rollbacks,
                out.fault_stats.rollback_ops,
                out.fault_stats.device_generation,
                out.trace_fingerprint,
                if out.converged { "converged" } else { "DID NOT CONVERGE" },
            ) + &if cfg.watchdog.is_some() {
                format!("\nslo watchdog: {} violation(s)", out.slo_violations)
            } else {
                String::new()
            }
        }
        Err(e) => format!("error: {e}"),
    }
}

/// Parse a `trace dump` filter: nothing (all), `control`, `packets`,
/// `table <gress> <stage> <table>`, or `flow <a.b.c.d> [port]`.
fn parse_filter(args: &[&str]) -> Result<TraceFilter, String> {
    const USAGE: &str =
        "filters: control | packets | table <gress> <stage> <table> | flow <a.b.c.d> [port]";
    match args.first().copied() {
        None => Ok(TraceFilter::All),
        Some("control") => Ok(TraceFilter::Control),
        Some("packets") => Ok(TraceFilter::Packets),
        Some("table") => {
            let gress = match args.get(1).copied() {
                Some("ingress") => Gress::Ingress,
                Some("egress") => Gress::Egress,
                Some(other) => {
                    return Err(format!("bad gress `{other}` (expected ingress|egress)\n{USAGE}"))
                }
                None => return Err(USAGE.to_string()),
            };
            // The old `and_then(.. parse().ok())` swallowed unparseable
            // stage/table numbers into the generic usage line.
            let stage = match args.get(2) {
                Some(v) => match v.parse::<u16>() {
                    Ok(n) => n,
                    Err(_) => return Err(format!("bad stage `{v}`\n{USAGE}")),
                },
                None => return Err(USAGE.to_string()),
            };
            let table = match args.get(3) {
                Some(v) => match v.parse::<u16>() {
                    Ok(n) => n,
                    Err(_) => return Err(format!("bad table `{v}`\n{USAGE}")),
                },
                None => return Err(USAGE.to_string()),
            };
            Ok(TraceFilter::Table { gress, stage, table })
        }
        Some("flow") => {
            let Some(a) = args.get(1) else {
                return Err(USAGE.to_string());
            };
            let Some(addr) = parse_ipv4(a) else {
                return Err(format!("bad address `{a}` (expected a.b.c.d)\n{USAGE}"));
            };
            let port = match args.get(2) {
                None => None,
                Some(p) => match p.parse::<u16>() {
                    Ok(p) => Some(p),
                    Err(_) => return Err(format!("bad port `{p}`\n{USAGE}")),
                },
            };
            Ok(TraceFilter::Flow { addr, port })
        }
        Some(_) => Err(USAGE.to_string()),
    }
}

/// Parse dotted-quad IPv4 into the big-endian u32 the trace events carry.
fn parse_ipv4(s: &str) -> Option<u32> {
    let mut octets = [0u8; 4];
    let mut it = s.split('.');
    for o in &mut octets {
        *o = it.next()?.parse().ok()?;
    }
    if it.next().is_some() {
        return None;
    }
    Some(u32::from_be_bytes(octets))
}

const HELP: &str = "commands: deploy <src> | deploy-many <file...> | revoke <name> | revoke-many <name...> | update <name> <src> | programs | status [--metrics|--json] | mem <prog> <mem> | memwrite <prog> <mem> <addr> <val> | trace <on [cap]|off|status|dump|journeys|export [path]> | replay [--packets <n>] [--flows <n>] [--workers <n>] [--seed <n>] | top [--once] | metrics <export [path|-]|serve <addr>> | watchdog <arm [--drop-ppm <n>] [--deploy-faults <n>] [--p99-ns <n>]|status|disarm> | series <on [cap]|status> | chaos run [--seed <n>] [--faults <spec>] [--steps <n>] [--programs <n>] [--workers <n>] [--slo-drop-ppm <n>] [--slo-deploy-faults <n>] [--slo-p99-ns <n>] | serve <addr> [--max-clients <n>] [--queue <n>] [--rate <r>] [--timeout-ns <n>] | client <addr> <op> [...] | help";

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "program p(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) { FORWARD(3); }";

    fn cli() -> Cli {
        Cli::new(Controller::with_defaults().unwrap())
    }

    #[test]
    fn deploy_list_revoke_cycle() {
        let mut cli = cli();
        let out = cli.exec(&format!("deploy {SRC}"));
        assert!(out.contains("linked `p`"), "{out}");
        let out = cli.exec("programs");
        assert!(out.contains("1 program(s)"), "{out}");
        let out = cli.exec("status");
        assert!(out.contains("programs: 1"), "{out}");
        let out = cli.exec("revoke p");
        assert!(out.contains("revoked `p`"), "{out}");
        assert!(cli.exec("programs").contains("no programs"));
    }

    #[test]
    fn deploy_many_and_revoke_many_roundtrip() {
        let dir = std::env::temp_dir().join(format!("p4rp-cli-many-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for i in 0..4 {
            let path = dir.join(format!("p{i}.p4rp"));
            let src = format!(
                "@ m{i} 64\nprogram p{i}(<hdr.ipv4.dst, 10.0.{i}.1, 0xffffffff>) \
                 {{ LOADI(mar, 1); MEMREAD(m{i}); }}"
            );
            std::fs::write(&path, src).unwrap();
            paths.push(path.display().to_string());
        }
        let mut cli = cli();
        let out = cli.exec(&format!("deploy-many {}", paths.join(" ")));
        for i in 0..4 {
            assert!(out.contains(&format!("linked `p{i}`")), "{out}");
        }
        assert!(out.contains("speculative conflict(s) re-allocated"), "{out}");
        assert_eq!(cli.ctl.deployed_programs().count(), 4);
        let out = cli.exec("revoke-many p0 p1 p2 p3 ghost");
        for i in 0..4 {
            assert!(out.contains(&format!("revoked `p{i}`")), "{out}");
        }
        assert!(out.contains("error revoking `ghost`"), "{out}");
        assert_eq!(cli.ctl.deployed_programs().count(), 0);
        assert_eq!(cli.exec("deploy-many"), "usage: deploy-many <file...>");
        assert_eq!(cli.exec("revoke-many"), "usage: revoke-many <name...>");
        assert!(cli.exec("deploy-many /no/such/file").starts_with("error reading"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn update_replaces_program() {
        let mut cli = cli();
        cli.exec(&format!("deploy {SRC}"));
        let new_src = SRC.replace("FORWARD(3)", "FORWARD(9)");
        let out = cli.exec(&format!("update p {new_src}"));
        assert!(out.contains("updated `p`"), "{out}");
        assert_eq!(cli.ctl.deployed_programs().count(), 1);
    }

    #[test]
    fn memory_commands() {
        let mut cli = cli();
        cli.exec("deploy @ m 64\\nprogram q(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) { LOADI(mar, 5); MEMREAD(m); }");
        let out = cli.exec("memwrite q m 5 42");
        assert!(out.contains("= 42"), "{out}");
        let out = cli.exec("mem q m");
        assert!(out.contains("[5]=42"), "{out}");
        assert!(cli.exec("mem q ghost").starts_with("error:"));
    }

    #[test]
    fn status_metrics_renders_lifecycle_spans() {
        let mut cli = cli();
        cli.ctl.enable_telemetry();
        cli.exec(&format!("deploy {SRC}"));
        let out = cli.exec("status --metrics");
        assert!(out.contains("telemetry epoch 1"), "{out}");
        assert!(out.contains("#0 deploy"), "{out}");
        assert!(out.contains("entries"), "{out}");
        assert!(out.contains("dataplane (epoch 1)"), "{out}");
        cli.exec("revoke p");
        let out = cli.exec("status --metrics");
        assert!(out.contains("#1 revoke"), "{out}");
    }

    #[test]
    fn status_json_roundtrips() {
        let mut cli = cli();
        cli.exec(&format!("deploy {SRC}"));
        let text = cli.exec("status --json");
        let report = crate::telemetry::TelemetryReport::from_json(&text).unwrap();
        assert_eq!(report, cli.ctl.telemetry_report());
        assert_eq!(report.spans.len(), 1);
        assert_eq!(report.spans[0].kind, "deploy");
        assert!(report.spans[0].entries_written > 0);
    }

    #[test]
    fn trace_lifecycle_and_dump() {
        let mut cli = cli();
        assert_eq!(cli.exec("trace"), "tracing off");
        let out = cli.exec("trace on 1024");
        assert!(out.contains("capacity 1024"), "{out}");
        cli.exec(&format!("deploy {SRC}"));
        let out = cli.exec("trace status");
        assert!(out.contains("tracing on"), "{out}");
        assert!(out.contains("0 violation(s)"), "{out}");
        let out = cli.exec("trace dump control");
        assert!(out.contains("ctl epoch → 1"), "{out}");
        assert!(out.contains("begin ("), "{out}");
        assert!(out.contains("ctl insert"), "{out}");
        assert!(out.contains("ctl deploy prog"), "{out}");
        // No packets injected yet → packet filter comes back empty.
        assert_eq!(cli.exec("trace dump packets"), "no matching events");
        let out = cli.exec("trace dump last 1 control");
        assert_eq!(out.lines().count(), 1, "{out}");
        // `status --json` carries the same stats the subcommand shows.
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        assert!(report.trace.enabled);
        assert!(report.trace.recorded > 0);
        let out = cli.exec("trace off");
        assert!(out.contains("tracing off:"), "{out}");
        assert_eq!(cli.exec("trace"), "tracing off");
        assert_eq!(cli.exec("trace dump"), "tracing off");
    }

    #[test]
    fn trace_dump_rejects_bad_filters() {
        let mut cli = cli();
        cli.exec("trace on 64");
        assert!(cli.exec("trace dump table sideways 0 0").starts_with("bad gress `sideways`"));
        assert!(cli.exec("trace dump table ingress 0").starts_with("filters:"));
        assert!(cli.exec("trace dump flow not-an-ip").starts_with("bad address `not-an-ip`"));
        assert!(cli.exec("trace bogus").contains("unknown trace subcommand"));
        assert!(cli.exec("trace on zero").starts_with("bad capacity"));
    }

    #[test]
    fn trace_dump_numeric_args_fail_loudly() {
        let mut cli = cli();
        cli.exec("trace on 64");
        // Each numeric slot gets its own message — none may collapse into
        // the generic usage line (the old silent-`None` behavior).
        assert!(cli.exec("trace dump last ten").starts_with("bad count `ten`"));
        assert!(cli.exec("trace dump last").starts_with("usage: trace dump"));
        assert!(cli.exec("trace dump table ingress x 0").starts_with("bad stage `x`"));
        assert!(cli.exec("trace dump table ingress 0 70000").starts_with("bad table `70000`"));
        assert!(cli.exec("trace dump flow 10.0.0.1 notaport").starts_with("bad port `notaport`"));
        assert!(cli.exec("trace dump flow 10.0.0.1 65536").starts_with("bad port `65536`"));
    }

    #[test]
    fn memwrite_rejects_bad_numeric_args_without_writing() {
        let mut cli = cli();
        cli.exec(
            "deploy @ m 64\\nprogram q(<hdr.ipv4.dst, 10.0.0.1, 0xffffffff>) \
             { LOADI(mar, 5); MEMREAD(m); }",
        );
        // A bad address used to become u32::MAX, a bad value used to
        // write 0 — both silently. Now they refuse before touching state.
        let out = cli.exec("memwrite q m five 42");
        assert!(out.starts_with("bad address `five`"), "{out}");
        let out = cli.exec("memwrite q m 5 fortytwo");
        assert!(out.starts_with("bad value `fortytwo`"), "{out}");
        let out = cli.exec("mem q m");
        assert!(out.starts_with("0/"), "nothing may have been written: {out}");
        assert!(cli.exec("memwrite q m 5").starts_with("usage: memwrite"));
    }

    #[test]
    fn serve_rejects_bad_numeric_flags_before_binding() {
        let mut cli = cli();
        assert!(cli.exec("serve").starts_with("usage: serve"));
        assert!(cli.exec("serve 127.0.0.1:0 --max-clients x").starts_with("bad client limit `x`"));
        assert!(cli.exec("serve 127.0.0.1:0 --max-clients 0").starts_with("bad client limit `0`"));
        assert!(cli.exec("serve 127.0.0.1:0 --queue nope").starts_with("bad queue depth `nope`"));
        assert!(cli.exec("serve 127.0.0.1:0 --rate -1").starts_with("bad rate `-1`"));
        assert!(cli.exec("serve 127.0.0.1:0 --timeout-ns x").starts_with("bad timeout `x`"));
        assert!(cli.exec("serve 127.0.0.1:0 --rate").contains("missing value"));
        assert!(cli.exec("serve 127.0.0.1:0 --sideways 1").contains("unknown flag"));
    }

    #[test]
    fn client_reports_usage_and_connect_errors() {
        let mut cli = cli();
        assert!(cli.exec("client").starts_with("usage: client"));
        assert!(cli.exec("client 127.0.0.1:1").starts_with("usage: client"));
        // Port 1 on loopback is essentially never listening.
        assert!(cli.exec("client 127.0.0.1:1 ping").starts_with("error connecting"));
    }

    #[test]
    fn serve_and_client_loopback_roundtrip() {
        // Pick a free port, release it, and race to rebind — fine for a
        // single-process test.
        let port = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let mut srv = cli();
        let serve_line = format!("serve {addr}");
        let handle = std::thread::spawn(move || {
            let out = srv.exec(&serve_line);
            (out, srv)
        });
        // Wait for the listener to come up.
        let mut driver = cli();
        let mut attempts = 0;
        let ping = loop {
            let out = driver.exec(&format!("client {addr} ping"));
            if !out.starts_with("error connecting") {
                break out;
            }
            attempts += 1;
            assert!(attempts < 500, "server never came up: {out}");
            std::thread::sleep(std::time::Duration::from_millis(10));
        };
        let doc = serde::json::parse(&ping).expect("ping reply is JSON");
        assert_eq!(doc.get("ok"), Some(&serde::Value::Bool(true)), "{ping}");
        let out = driver.exec(&format!("client {addr} deploy {SRC}"));
        let doc = serde::json::parse(&out).unwrap();
        assert_eq!(doc.get("ok"), Some(&serde::Value::Bool(true)), "{out}");
        let out = driver.exec(&format!("client {addr} raw not json"));
        assert!(out.contains("\"error\""), "{out}");
        assert!(out.contains("line 1"), "{out}");
        let out = driver.exec(&format!("client {addr} revoke p"));
        assert!(out.contains("\"ok\""), "{out}");
        let out = driver.exec(&format!("client {addr} shutdown"));
        let doc = serde::json::parse(&out).unwrap();
        assert_eq!(doc.get("ok"), Some(&serde::Value::Bool(true)), "{out}");
        let (summary, srv) = handle.join().unwrap();
        assert!(summary.contains("drained"), "{summary}");
        assert!(srv.ctl.audit().unwrap().clean());
    }

    #[test]
    fn trace_export_writes_chrome_json() {
        let dir = std::env::temp_dir().join(format!("p4rp-cli-trace-{}", std::process::id()));
        let path = dir.join("trace.json");
        let mut cli = cli();
        cli.exec("trace on 4096");
        cli.exec(&format!("deploy {SRC}"));
        let out = cli.exec(&format!("trace export {}", path.display()));
        assert!(out.starts_with("wrote"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = serde::json::parse(&text).unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert!(!events.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn chaos_run_reports_converged_campaign() {
        let mut cli = cli();
        let out = cli.exec("chaos run --seed 7 --steps 30 --faults failop@4,reset@19");
        assert!(out.contains("chaos seed 7: 30 step(s)"), "{out}");
        assert!(out.contains("(clean)"), "{out}");
        assert!(out.contains("converged"), "{out}");
        assert!(out.contains("0 invariant violation(s)"), "{out}");
        assert!(out.contains("faults: 2 injected"), "{out}");
        // Same seed, same spec → the identical fingerprint line.
        let again = cli.exec("chaos run --seed 7 --steps 30 --faults failop@4,reset@19");
        assert_eq!(out, again);
        // A different seed changes the campaign.
        let other = cli.exec("chaos run --seed 8 --steps 30 --faults failop@4,reset@19");
        assert_ne!(out, other);
    }

    #[test]
    fn chaos_run_rejects_bad_flags() {
        let mut cli = cli();
        assert!(cli.exec("chaos").starts_with("usage: chaos run"), "chaos");
        assert!(cli.exec("chaos poke").starts_with("usage: chaos run"));
        assert!(cli.exec("chaos run --seed").contains("missing value"));
        assert!(cli.exec("chaos run --seed zebra").starts_with("bad seed"));
        assert!(cli.exec("chaos run --steps 0").starts_with("bad step count"));
        assert!(cli.exec("chaos run --programs x").starts_with("bad program count"));
        assert!(cli.exec("chaos run --faults sideways@3").starts_with("bad fault spec"));
        assert!(cli.exec("chaos run --frobnicate 1").contains("unknown flag"));
    }

    #[test]
    fn status_json_exposes_fault_counters() {
        let mut cli = cli();
        cli.ctl
            .set_fault_plan(rmt_sim::fault::FaultPlan::parse_spec("failop@1").unwrap());
        assert!(cli.exec(&format!("deploy {SRC}")).starts_with("error:"));
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        assert_eq!(report.faults.faults_injected, 1);
        assert_eq!(report.faults.deploy_faults, 1);
        assert_eq!(report.faults.rollbacks, 1);
        assert_eq!(report, cli.ctl.telemetry_report());
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        let mut cli = cli();
        assert!(cli.exec("revoke nope").starts_with("error:"));
        assert!(cli.exec("deploy BOGUS").starts_with("error:"));
        assert!(cli.exec("frobnicate").contains("unknown command"));
        assert!(cli.exec("help").contains("deploy"));
        assert!(cli.exec("help").contains("replay"), "replay missing from help");
    }

    #[test]
    fn replay_sequential_engine_reports_merged_counters() {
        let mut cli = cli();
        cli.exec(&format!("deploy {SRC}"));
        let out = cli.exec("replay --packets 200 --flows 8 --seed 3");
        assert!(out.contains("200 packet(s)"), "{out}");
        assert!(out.contains("sequential engine"), "{out}");
        // Sequential replay must not install a worker pool.
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        assert!(report.parallel.is_none(), "{report:?}");
    }

    #[test]
    fn replay_parallel_engine_exposes_per_worker_stats() {
        let mut cli = cli();
        cli.exec(&format!("deploy {SRC}"));
        let out = cli.exec("replay --packets 300 --flows 16 --workers 2 --seed 5");
        assert!(out.contains("across 2 worker(s)"), "{out}");
        assert!(out.contains("snapshot generation"), "{out}");
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        let par = report.parallel.as_ref().expect("parallel section missing");
        assert_eq!(par.workers, 2);
        assert_eq!(par.per_worker.len(), 2);
        let injected: u64 = par.per_worker.iter().map(|w| w.packets).sum();
        assert_eq!(injected, 300, "{par:?}");
        assert_eq!(report, cli.ctl.telemetry_report());
    }

    #[test]
    fn top_enables_attribution_and_ranks_programs() {
        let mut cli = cli();
        cli.exec(&format!("deploy {SRC}"));
        let out = cli.exec("top --once");
        assert!(out.contains("attribution just enabled"), "{out}");
        assert!(out.contains("PROGRAM"), "{out}");
        cli.exec("replay --packets 100 --flows 4 --seed 2");
        let out = cli.exec("top");
        assert!(!out.contains("attribution just enabled"), "{out}");
        assert!(out.contains('p'), "{out}");
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        assert!(!report.programs.is_empty(), "{report:?}");
        assert!(cli.exec("top --loop").contains("unknown flag"));
    }

    #[test]
    fn metrics_export_writes_parseable_exposition() {
        let dir = std::env::temp_dir().join(format!("p4rp-cli-metrics-{}", std::process::id()));
        let path = dir.join("metrics.prom");
        let mut cli = cli();
        cli.exec("top --once"); // enables attribution
        cli.exec(&format!("deploy {SRC}"));
        cli.exec("replay --packets 50 --flows 4 --seed 1");
        let body = cli.exec("metrics export");
        let samples = crate::metrics::parse_prometheus(&body).expect("well-formed");
        assert!(samples.iter().any(|s| s.name == "p4rp_program_packets_total"), "{body}");
        let out = cli.exec(&format!("metrics export {}", path.display()));
        assert!(out.starts_with("wrote"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, body);
        assert!(cli.exec("metrics").starts_with("usage:"));
        assert!(cli.exec("metrics serve").starts_with("usage:"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn watchdog_arm_status_disarm_cycle() {
        let mut cli = cli();
        assert_eq!(cli.exec("watchdog"), "watchdog disarmed");
        let out = cli.exec("watchdog arm --drop-ppm 1000 --p99-ns 500000000");
        assert!(out.contains("watchdog armed: drop ≤ 1000 ppm"), "{out}");
        assert!(out.contains("0 violation(s)"), "{out}");
        let out = cli.exec("watchdog status");
        assert!(out.contains("watchdog armed"), "{out}");
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        let slo = report.slo.expect("slo section armed");
        assert_eq!(slo.thresholds.max_drop_ppm, Some(1000));
        let out = cli.exec("watchdog disarm");
        assert!(out.contains("disarmed after 0 violation(s)"), "{out}");
        assert_eq!(cli.exec("watchdog disarm"), "watchdog was not armed");
        assert!(cli.exec("watchdog arm").contains("no thresholds given"));
        assert!(cli.exec("watchdog arm --drop-ppm x").starts_with("bad value"));
        assert!(cli.exec("watchdog poke").contains("unknown watchdog subcommand"));
    }

    #[test]
    fn watchdog_breach_surfaces_in_trace_and_status() {
        let mut cli = cli();
        cli.exec("trace on 1024");
        cli.ctl.enable_telemetry();
        cli.exec("watchdog arm --p99-ns 1"); // everything breaches this
        cli.exec(&format!("deploy {SRC}"));
        cli.exec("replay --packets 20 --flows 2 --seed 1");
        let out = cli.exec("watchdog status");
        assert!(out.contains("IN BREACH: p99_latency"), "{out}");
        let dump = cli.exec("trace dump control");
        assert!(dump.contains("ctl slo p99_latency"), "{dump}");
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        assert_eq!(report.slo.unwrap().violations, 1, "breach must latch once");
    }

    #[test]
    fn series_collects_buckets_on_lifecycle_and_replay() {
        let mut cli = cli();
        cli.ctl.enable_telemetry();
        assert_eq!(cli.exec("series"), "series off");
        let out = cli.exec("series on 8");
        assert!(out.contains("capacity 8"), "{out}");
        cli.exec(&format!("deploy {SRC}"));
        cli.exec("replay --packets 50 --flows 4 --seed 1");
        let report =
            crate::telemetry::TelemetryReport::from_json(&cli.exec("status --json")).unwrap();
        let series = report.series.expect("series armed");
        assert!(series.points.len() >= 2, "deploy + replay must cut buckets: {series:?}");
        let replay_bucket = series.points.last().unwrap();
        assert!(replay_bucket.forwarded + replay_bucket.drops > 0, "{series:?}");
        assert!(cli.exec("series on zero").starts_with("bad capacity"));
        assert!(cli.exec("series sideways").contains("unknown series subcommand"));
    }

    #[test]
    fn chaos_run_with_slo_flags_reports_violations() {
        let mut cli = cli();
        let out = cli.exec("chaos run --seed 7 --steps 20 --slo-deploy-faults 0");
        assert!(out.contains("slo watchdog: 0 violation(s)"), "{out}");
        let out = cli.exec("chaos run --seed 7 --steps 20");
        assert!(!out.contains("slo watchdog"), "{out}");
        assert!(cli.exec("chaos run --slo-drop-ppm x").starts_with("bad threshold"));
    }

    #[test]
    fn replay_rejects_bad_flags() {
        let mut cli = cli();
        assert!(cli.exec("replay --packets").contains("missing value"));
        assert!(cli.exec("replay --packets 0").starts_with("bad value"));
        assert!(cli.exec("replay --workers zero").starts_with("bad value"));
        assert!(cli.exec("replay --seed x").starts_with("bad seed"));
        assert!(cli.exec("replay --sideways 1").contains("unknown flag"));
    }
}
