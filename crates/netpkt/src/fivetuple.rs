//! The canonical L3/L4 five-tuple, shared by the traffic generator, the
//! hash units, and the analysis tooling.

use std::net::Ipv4Addr;

/// A flow five-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Src addr.
    pub src_addr: Ipv4Addr,
    /// Dst addr.
    pub dst_addr: Ipv4Addr,
    /// Src port.
    pub src_port: u16,
    /// Dst port.
    pub dst_port: u16,
    /// Raw IP protocol number (6 = TCP, 17 = UDP).
    pub protocol: u8,
}

impl FiveTuple {
    /// Serialize into the 13-byte layout the hardware hash units consume:
    /// `src_addr . dst_addr . src_port . dst_port . protocol`, big-endian.
    ///
    /// This is the byte order the `HASH_5_TUPLE` primitive feeds to the CRC
    /// engines, so the software and "hardware" hash of a flow agree.
    pub fn to_hash_bytes(&self) -> [u8; 13] {
        let mut out = [0u8; 13];
        out[0..4].copy_from_slice(&self.src_addr.octets());
        out[4..8].copy_from_slice(&self.dst_addr.octets());
        out[8..10].copy_from_slice(&self.src_port.to_be_bytes());
        out[10..12].copy_from_slice(&self.dst_port.to_be_bytes());
        out[12] = self.protocol;
        out
    }

    /// The reverse-direction tuple (server→client leg of the same flow).
    pub fn reversed(&self) -> FiveTuple {
        FiveTuple {
            src_addr: self.dst_addr,
            dst_addr: self.src_addr,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

impl core::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} proto {}",
            self.src_addr, self.src_port, self.dst_addr, self.dst_port, self.protocol
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ft() -> FiveTuple {
        FiveTuple {
            src_addr: Ipv4Addr::new(10, 1, 2, 3),
            dst_addr: Ipv4Addr::new(192, 168, 0, 9),
            src_port: 1000,
            dst_port: 2000,
            protocol: 6,
        }
    }

    #[test]
    fn hash_bytes_layout() {
        let b = ft().to_hash_bytes();
        assert_eq!(&b[0..4], &[10, 1, 2, 3]);
        assert_eq!(&b[8..10], &1000u16.to_be_bytes());
        assert_eq!(b[12], 6);
    }

    #[test]
    fn reversed_twice_is_identity() {
        assert_eq!(ft().reversed().reversed(), ft());
    }

    #[test]
    fn reversed_swaps_endpoints() {
        let r = ft().reversed();
        assert_eq!(r.src_port, 2000);
        assert_eq!(r.dst_addr, Ipv4Addr::new(10, 1, 2, 3));
    }
}
