//! Internet checksum (RFC 1071) helpers shared by IPv4/TCP/UDP.

/// Compute the ones'-complement sum over `data`, folding carries.
///
/// Returns the *unfinalized* 16-bit accumulator so callers can chain the
/// pseudo-header and payload before finalizing.
pub fn ones_complement_sum(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold the accumulator and take the ones' complement.
pub fn finalize(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// One-shot checksum over a single buffer (used by the IPv4 header).
pub fn checksum(data: &[u8]) -> u16 {
    finalize(ones_complement_sum(0, data))
}

/// The TCP/UDP pseudo-header contribution for IPv4.
pub fn pseudo_header_sum(src: std::net::Ipv4Addr, dst: std::net::Ipv4Addr, protocol: u8, l4_len: u16) -> u32 {
    let mut acc = 0u32;
    acc = ones_complement_sum(acc, &src.octets());
    acc = ones_complement_sum(acc, &dst.octets());
    acc += u32::from(protocol);
    acc += u32::from(l4_len);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // The classic example from RFC 1071 §3.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = ones_complement_sum(0, &data);
        assert_eq!(sum, 0x2ddf0);
        assert_eq!(finalize(sum), !0xddf2u16);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        assert_eq!(checksum(&[0xffu8]), checksum(&[0xff, 0x00]));
    }

    #[test]
    fn checksum_of_valid_header_is_zero_when_included() {
        // Checksumming a buffer that already contains its own valid
        // checksum must yield zero (this is how receivers verify).
        let mut hdr = vec![0x45u8, 0, 0, 20, 0, 0, 0, 0, 64, 17, 0, 0, 10, 0, 0, 1, 10, 0, 0, 2];
        let c = checksum(&hdr);
        hdr[10..12].copy_from_slice(&c.to_be_bytes());
        assert_eq!(checksum(&hdr), 0);
    }
}
