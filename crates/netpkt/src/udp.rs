//! UDP datagrams.

use crate::{WireError, WireResult};

/// Length of the UDP header in bytes.
pub const HEADER_LEN: usize = 8;

/// A read-only view of a UDP datagram.
#[derive(Debug)]
pub struct UdpDatagram<'a> {
    buf: &'a [u8],
}

impl<'a> UdpDatagram<'a> {
    /// Wrap a buffer after validating its length and structure.
    pub fn new_checked(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let dg = UdpDatagram { buf };
        if dg.len() < HEADER_LEN || buf.len() < dg.len() {
            return Err(WireError::Truncated);
        }
        Ok(dg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// The UDP length field (header + payload).
    pub fn len(&self) -> usize {
        usize::from(u16::from_be_bytes([self.buf[4], self.buf[5]]))
    }

    /// Is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == HEADER_LEN
    }

    /// The bytes following this header.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..self.len()]
    }
}

/// Owned representation of a UDP header.
///
/// The checksum is emitted as zero ("no checksum" per RFC 768); the
/// anonymized campus trace drops payloads anyway, and the simulator's parser
/// does not verify L4 checksums — matching RMT targets, which leave that to
/// the end hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpRepr {
    /// Src port.
    pub src_port: u16,
    /// Dst port.
    pub dst_port: u16,
}

impl UdpRepr {
    /// Extract the owned representation from a checked view.
    pub fn parse(dg: &UdpDatagram<'_>) -> Self {
        UdpRepr {
            src_port: dg.src_port(),
            dst_port: dg.dst_port(),
        }
    }

    /// Serialize this header followed by the payload.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&((HEADER_LEN + payload.len()) as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = UdpRepr { src_port: 1234, dst_port: 7777 };
        let bytes = repr.emit(&[0xaa; 5]);
        let dg = UdpDatagram::new_checked(&bytes).unwrap();
        assert_eq!(UdpRepr::parse(&dg), repr);
        assert_eq!(dg.payload(), &[0xaa; 5]);
        assert_eq!(dg.len(), 13);
    }

    #[test]
    fn rejects_short_buffer() {
        assert!(UdpDatagram::new_checked(&[0; 7]).is_err());
    }

    #[test]
    fn rejects_length_field_beyond_buffer() {
        let mut bytes = UdpRepr { src_port: 1, dst_port: 2 }.emit(&[]);
        bytes[5] = 200;
        assert!(UdpDatagram::new_checked(&bytes).is_err());
    }

    #[test]
    fn empty_payload_is_empty() {
        let bytes = UdpRepr { src_port: 1, dst_port: 2 }.emit(&[]);
        let dg = UdpDatagram::new_checked(&bytes).unwrap();
        assert!(dg.is_empty());
        assert!(dg.payload().is_empty());
    }
}
