//! # netpkt — wire formats for the P4runpro reproduction
//!
//! Typed, zero-copy views over byte buffers in the style of smoltcp's wire
//! module: each protocol gets a `Packet<T>`-like wrapper that validates
//! lengths once and then exposes checked field accessors, plus an owned
//! builder (`*Repr`) that can emit bytes.
//!
//! Protocols covered:
//!
//! * [`ethernet`] — Ethernet II frames,
//! * [`ipv4`] — IPv4 (no options), with header checksum support,
//! * [`udp`] / [`tcp`] — L4 headers,
//! * [`netcache`] — the NetCache-style in-network cache header used by the
//!   paper's in-network cache example (opcode, 64-bit key, 32-bit value),
//! * [`recirc`] — the P4runpro recirculation header that carries the three
//!   registers and control flags between pipeline passes (§4.1.3 of the
//!   paper); it is prepended in front of Ethernet on the recirculation port
//!   and is never visible to the external network.
//!
//! The crate is deliberately free of any simulator dependency so that the
//! traffic generator, the switch model, and the analysis tooling all share
//! one definition of "what a packet is".

pub mod checksum;
pub mod ethernet;
pub mod fivetuple;
pub mod ipv4;
pub mod netcache;
pub mod recirc;
pub mod tcp;
pub mod udp;

pub use ethernet::{EtherType, EthernetFrame, EthernetRepr, Mac};
pub use fivetuple::FiveTuple;
pub use ipv4::{Ipv4Packet, Ipv4Repr, IpProtocol};
pub use netcache::{CacheOp, NetCacheHeader, NetCacheRepr, NETCACHE_PORT};
pub use recirc::{RecircHeader, RecircRepr, RECIRC_HEADER_LEN};
pub use tcp::{TcpRepr, TcpSegment};
pub use udp::{UdpDatagram, UdpRepr};

/// Errors returned by wire-format parsing.
///
/// Mirrors smoltcp's convention: a single lightweight error type, because at
/// this layer the only failure modes are "buffer too short" and "a field
/// value is structurally invalid".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header, or shorter than a length
    /// field claims.
    Truncated,
    /// A field holds a value the parser cannot interpret (e.g. IPv4 version
    /// != 4, header length below minimum).
    Malformed,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated packet"),
            WireError::Malformed => write!(f, "malformed packet"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used by all parsers in this crate.
pub type WireResult<T> = Result<T, WireError>;

/// A fully parsed packet: the layered representation the traffic tooling
/// works with, together with the raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// Ethernet.
    pub ethernet: EthernetRepr,
    /// Ipv4.
    pub ipv4: Option<Ipv4Repr>,
    /// Udp.
    pub udp: Option<UdpRepr>,
    /// Tcp.
    pub tcp: Option<TcpRepr>,
    /// Netcache.
    pub netcache: Option<NetCacheRepr>,
    /// Length of the payload beyond the deepest parsed header.
    pub payload_len: usize,
}

impl ParsedPacket {
    /// Parse a raw Ethernet frame into its layered representation.
    ///
    /// Unknown EtherTypes or IP protocols terminate parsing gracefully: the
    /// remaining bytes count as payload, matching how an RMT parser falls
    /// through to `accept` on an unknown transition.
    pub fn parse(frame: &[u8]) -> WireResult<Self> {
        let eth = EthernetFrame::new_checked(frame)?;
        let ethernet = EthernetRepr::parse(&eth);
        let mut out = ParsedPacket {
            ethernet,
            ipv4: None,
            udp: None,
            tcp: None,
            netcache: None,
            payload_len: eth.payload().len(),
        };
        if ethernet.ethertype != EtherType::Ipv4 {
            return Ok(out);
        }
        let ip = Ipv4Packet::new_checked(eth.payload())?;
        let ipv4 = Ipv4Repr::parse(&ip)?;
        out.payload_len = ip.payload().len();
        out.ipv4 = Some(ipv4);
        match ipv4.protocol {
            IpProtocol::Udp => {
                let udp = UdpDatagram::new_checked(ip.payload())?;
                let repr = UdpRepr::parse(&udp);
                out.payload_len = udp.payload().len();
                // NetCache rides on a well-known UDP port in the paper's
                // running example (dst port 7777, Figure 2).
                if repr.dst_port == NETCACHE_PORT || repr.src_port == NETCACHE_PORT {
                    if let Ok(nc) = NetCacheHeader::new_checked(udp.payload()) {
                        out.netcache = Some(NetCacheRepr::parse(&nc));
                        out.payload_len = nc.payload().len();
                    }
                }
                out.udp = Some(repr);
            }
            IpProtocol::Tcp => {
                let tcp = TcpSegment::new_checked(ip.payload())?;
                out.payload_len = tcp.payload().len();
                out.tcp = Some(TcpRepr::parse(&tcp)?);
            }
            _ => {}
        }
        Ok(out)
    }

    /// The 5-tuple of this packet, if it is an L4 packet.
    pub fn five_tuple(&self) -> Option<FiveTuple> {
        let ip = self.ipv4.as_ref()?;
        let (src_port, dst_port) = if let Some(u) = &self.udp {
            (u.src_port, u.dst_port)
        } else if let Some(t) = &self.tcp {
            (t.src_port, t.dst_port)
        } else {
            return None;
        };
        Some(FiveTuple {
            src_addr: ip.src_addr,
            dst_addr: ip.dst_addr,
            protocol: ip.protocol.into(),
            src_port,
            dst_port,
        })
    }

    /// Emit this packet back to bytes. Payload bytes are zero-filled with
    /// `payload_len` length (the anonymized campus trace in the paper also
    /// replaces payloads with duplicated identical bytes).
    pub fn emit(&self) -> Vec<u8> {
        let mut l4: Vec<u8> = Vec::new();
        if let Some(nc) = &self.netcache {
            l4 = nc.emit(self.payload_len);
        } else {
            l4.resize(self.payload_len, 0);
        }
        let l4 = if let Some(udp) = &self.udp {
            udp.emit(&l4)
        } else if let Some(tcp) = &self.tcp {
            tcp.emit(&l4)
        } else {
            l4
        };
        let l3 = if let Some(ip) = &self.ipv4 {
            ip.emit(&l4)
        } else {
            l4
        };
        self.ethernet.emit(&l3)
    }

    /// Total frame length this packet will have when emitted.
    pub fn frame_len(&self) -> usize {
        let mut len = ethernet::HEADER_LEN + self.payload_len;
        if self.ipv4.is_some() {
            len += ipv4::HEADER_LEN;
        }
        if self.udp.is_some() {
            len += udp::HEADER_LEN;
        }
        if self.tcp.is_some() {
            len += tcp::HEADER_LEN;
        }
        if self.netcache.is_some() {
            len += netcache::HEADER_LEN;
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn sample_udp_packet() -> ParsedPacket {
        ParsedPacket {
            ethernet: EthernetRepr {
                src: Mac([0, 1, 2, 3, 4, 5]),
                dst: Mac([6, 7, 8, 9, 10, 11]),
                ethertype: EtherType::Ipv4,
            },
            ipv4: Some(Ipv4Repr {
                src_addr: Ipv4Addr::new(10, 0, 0, 1),
                dst_addr: Ipv4Addr::new(10, 0, 0, 2),
                protocol: IpProtocol::Udp,
                ttl: 64,
                dscp: 0,
                ecn: 0,
            }),
            udp: Some(UdpRepr { src_port: 5555, dst_port: 6666 }),
            tcp: None,
            netcache: None,
            payload_len: 16,
        }
    }

    #[test]
    fn udp_roundtrip() {
        let pkt = sample_udp_packet();
        let bytes = pkt.emit();
        assert_eq!(bytes.len(), pkt.frame_len());
        let reparsed = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(reparsed, pkt);
    }

    #[test]
    fn netcache_roundtrip() {
        let mut pkt = sample_udp_packet();
        pkt.udp.as_mut().unwrap().dst_port = NETCACHE_PORT;
        pkt.netcache = Some(NetCacheRepr {
            op: CacheOp::Read,
            key: 0x8888,
            value: 0xdead_beef,
        });
        pkt.payload_len = 0;
        let bytes = pkt.emit();
        let reparsed = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(reparsed, pkt);
        assert_eq!(reparsed.netcache.unwrap().key, 0x8888);
    }

    #[test]
    fn five_tuple_extraction() {
        let pkt = sample_udp_packet();
        let bytes = pkt.emit();
        let parsed = ParsedPacket::parse(&bytes).unwrap();
        let ft = parsed.five_tuple().unwrap();
        assert_eq!(ft.src_port, 5555);
        assert_eq!(ft.dst_port, 6666);
        assert_eq!(ft.protocol, 17);
    }

    #[test]
    fn l2_only_packet_parses() {
        let pkt = ParsedPacket {
            ethernet: EthernetRepr {
                src: Mac([0; 6]),
                dst: Mac([0xff; 6]),
                ethertype: EtherType::Unknown(0x88cc),
            },
            ipv4: None,
            udp: None,
            tcp: None,
            netcache: None,
            payload_len: 40,
        };
        let bytes = pkt.emit();
        let reparsed = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(reparsed.ipv4, None);
        assert_eq!(reparsed.payload_len, 40);
    }

    #[test]
    fn truncated_frame_rejected() {
        assert_eq!(ParsedPacket::parse(&[0u8; 5]), Err(WireError::Truncated));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn arb_packet() -> impl Strategy<Value = ParsedPacket> {
        (
            any::<[u8; 6]>(),
            any::<[u8; 6]>(),
            any::<u32>(),
            any::<u32>(),
            any::<u16>(),
            any::<u16>(),
            any::<bool>(),
            0usize..600,
        )
            .prop_map(|(dst, src, sa, da, sp, dp, is_tcp, payload)| ParsedPacket {
                ethernet: EthernetRepr {
                    dst: Mac(dst),
                    src: Mac(src),
                    ethertype: EtherType::Ipv4,
                },
                ipv4: Some(Ipv4Repr {
                    src_addr: Ipv4Addr::from(sa),
                    dst_addr: Ipv4Addr::from(da),
                    protocol: if is_tcp { IpProtocol::Tcp } else { IpProtocol::Udp },
                    ttl: 64,
                    dscp: 0,
                    ecn: 0,
                }),
                udp: (!is_tcp).then_some(UdpRepr {
                    // Avoid the NetCache port on either side: a payload ≥
                    // 13 bytes would legitimately re-parse as a cache
                    // header and change the representation.
                    src_port: if sp == NETCACHE_PORT { sp + 1 } else { sp },
                    dst_port: if dp == NETCACHE_PORT { dp + 1 } else { dp },
                }),
                tcp: is_tcp.then_some(TcpRepr {
                    src_port: sp,
                    dst_port: dp,
                    seq: 1,
                    ack: 2,
                    flags: tcp::flags::ACK,
                    window: 100,
                }),
                netcache: None,
                payload_len: payload,
            })
    }

    proptest! {
        /// Emit → parse is the identity for arbitrary L4 packets.
        #[test]
        fn emit_parse_roundtrip(pkt in arb_packet()) {
            let bytes = pkt.emit();
            prop_assert_eq!(bytes.len(), pkt.frame_len());
            let reparsed = ParsedPacket::parse(&bytes).unwrap();
            prop_assert_eq!(reparsed, pkt);
        }

        /// The emitted IPv4 header always checksums to valid.
        #[test]
        fn ipv4_checksum_always_valid(pkt in arb_packet()) {
            let bytes = pkt.emit();
            let ip = Ipv4Packet::new_checked(&bytes[ethernet::HEADER_LEN..]).unwrap();
            prop_assert!(ip.checksum_ok());
        }

        /// Truncating an emitted frame anywhere never panics the parser.
        #[test]
        fn truncation_never_panics(pkt in arb_packet(), cut in 0usize..100) {
            let bytes = pkt.emit();
            let cut = cut.min(bytes.len());
            let _ = ParsedPacket::parse(&bytes[..cut]);
        }
    }
}
