//! Ethernet II frames.

use crate::{WireError, WireResult};

/// Length of the Ethernet II header in bytes (no 802.1Q tags).
pub const HEADER_LEN: usize = 14;

/// A MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Mac(pub [u8; 6]);

impl Mac {
    /// `BROADCAST`.
    pub const BROADCAST: Mac = Mac([0xff; 6]);

    /// Build a locally-administered unicast MAC from a 32-bit host id; the
    /// traffic generator uses this to synthesize per-host addresses.
    pub fn from_host_id(id: u32) -> Mac {
        let b = id.to_be_bytes();
        Mac([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Interpret the low 6 bytes as a big-endian integer, useful for storing
    /// a MAC into a pair of PHV containers.
    pub fn to_u64(self) -> u64 {
        let mut v = 0u64;
        for b in self.0 {
            v = (v << 8) | u64::from(b);
        }
        v
    }

    /// From u64.
    pub fn from_u64(v: u64) -> Mac {
        let b = v.to_be_bytes();
        Mac([b[2], b[3], b[4], b[5], b[6], b[7]])
    }
}

impl core::fmt::Display for Mac {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

/// The EtherType field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// Ipv4.
    Ipv4,
    /// Arp.
    Arp,
    /// Any EtherType this crate has no parser for.
    Unknown(u16),
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Unknown(other),
        }
    }
}

impl From<EtherType> for u16 {
    fn from(v: EtherType) -> u16 {
        match v {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Unknown(other) => other,
        }
    }
}

/// A read-only view of an Ethernet II frame.
#[derive(Debug)]
pub struct EthernetFrame<'a> {
    buf: &'a [u8],
}

impl<'a> EthernetFrame<'a> {
    /// Wrap a buffer, validating the minimum length.
    pub fn new_checked(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(EthernetFrame { buf })
    }

    /// Destination address.
    pub fn dst(&self) -> Mac {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[0..6]);
        Mac(m)
    }

    /// Source address.
    pub fn src(&self) -> Mac {
        let mut m = [0u8; 6];
        m.copy_from_slice(&self.buf[6..12]);
        Mac(m)
    }

    /// The EtherType field.
    pub fn ethertype(&self) -> EtherType {
        u16::from_be_bytes([self.buf[12], self.buf[13]]).into()
    }

    /// The bytes following this header.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..]
    }
}

/// Owned representation of an Ethernet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetRepr {
    /// Dst.
    pub dst: Mac,
    /// Src.
    pub src: Mac,
    /// Ethertype.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Extract the owned representation from a checked view.
    pub fn parse(frame: &EthernetFrame<'_>) -> Self {
        EthernetRepr {
            dst: frame.dst(),
            src: frame.src(),
            ethertype: frame.ethertype(),
        }
    }

    /// Emit the header followed by `payload`.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&u16::from(self.ethertype).to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_u64_roundtrip() {
        let mac = Mac([0x02, 0x00, 0xab, 0xcd, 0xef, 0x01]);
        assert_eq!(Mac::from_u64(mac.to_u64()), mac);
    }

    #[test]
    fn mac_from_host_id_is_unicast_local() {
        let mac = Mac::from_host_id(42);
        assert_eq!(mac.0[0] & 0x01, 0, "must be unicast");
        assert_eq!(mac.0[0] & 0x02, 0x02, "must be locally administered");
    }

    #[test]
    fn frame_roundtrip() {
        let repr = EthernetRepr {
            dst: Mac::BROADCAST,
            src: Mac::from_host_id(7),
            ethertype: EtherType::Ipv4,
        };
        let bytes = repr.emit(&[1, 2, 3]);
        let frame = EthernetFrame::new_checked(&bytes).unwrap();
        assert_eq!(EthernetRepr::parse(&frame), repr);
        assert_eq!(frame.payload(), &[1, 2, 3]);
    }

    #[test]
    fn ethertype_unknown_preserved() {
        let t = EtherType::from(0x86dd);
        assert_eq!(u16::from(t), 0x86dd);
    }

    #[test]
    fn short_frame_rejected() {
        assert!(EthernetFrame::new_checked(&[0u8; 13]).is_err());
    }

    #[test]
    fn mac_display_formats() {
        let mac = Mac([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
    }
}
