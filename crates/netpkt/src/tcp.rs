//! TCP segments (fixed 20-byte header, options ignored but skipped).

use crate::{WireError, WireResult};

/// Length of the option-free TCP header in bytes.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits, as stored in the low byte of offset 13.
pub mod flags {
    /// `FIN`.
    pub const FIN: u8 = 0x01;
    /// `SYN`.
    pub const SYN: u8 = 0x02;
    /// `RST`.
    pub const RST: u8 = 0x04;
    /// `PSH`.
    pub const PSH: u8 = 0x08;
    /// `ACK`.
    pub const ACK: u8 = 0x10;
}

/// A read-only view of a TCP segment.
#[derive(Debug)]
pub struct TcpSegment<'a> {
    buf: &'a [u8],
}

impl<'a> TcpSegment<'a> {
    /// Wrap a buffer after validating its length and structure.
    pub fn new_checked(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let seg = TcpSegment { buf };
        let dof = seg.data_offset();
        if dof < HEADER_LEN {
            return Err(WireError::Malformed);
        }
        if buf.len() < dof {
            return Err(WireError::Truncated);
        }
        Ok(seg)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]])
    }

    /// Acknowledgment number.
    pub fn ack(&self) -> u32 {
        u32::from_be_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]])
    }

    /// Header length in bytes derived from the data-offset field.
    pub fn data_offset(&self) -> usize {
        usize::from(self.buf[12] >> 4) * 4
    }

    /// Flag bits.
    pub fn flags(&self) -> u8 {
        self.buf[13]
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        u16::from_be_bytes([self.buf[14], self.buf[15]])
    }

    /// The bytes following this header.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.data_offset()..]
    }
}

/// Owned representation of a TCP header (emitted without options).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpRepr {
    /// Src port.
    pub src_port: u16,
    /// Dst port.
    pub dst_port: u16,
    /// Seq.
    pub seq: u32,
    /// Ack.
    pub ack: u32,
    /// Flags.
    pub flags: u8,
    /// Window.
    pub window: u16,
}

impl TcpRepr {
    /// Extract the owned representation from a checked view.
    pub fn parse(seg: &TcpSegment<'_>) -> WireResult<Self> {
        Ok(TcpRepr {
            src_port: seg.src_port(),
            dst_port: seg.dst_port(),
            seq: seg.seq(),
            ack: seg.ack(),
            flags: seg.flags(),
            window: seg.window(),
        })
    }

    /// Serialize this header followed by the payload.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push((HEADER_LEN as u8 / 4) << 4);
        out.push(self.flags);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // checksum + urgent ptr
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repr() -> TcpRepr {
        TcpRepr {
            src_port: 443,
            dst_port: 51234,
            seq: 0x01020304,
            ack: 0x0a0b0c0d,
            flags: flags::ACK | flags::PSH,
            window: 65535,
        }
    }

    #[test]
    fn roundtrip() {
        let bytes = repr().emit(&[1; 7]);
        let seg = TcpSegment::new_checked(&bytes).unwrap();
        assert_eq!(TcpRepr::parse(&seg).unwrap(), repr());
        assert_eq!(seg.payload().len(), 7);
    }

    #[test]
    fn options_are_skipped() {
        let mut bytes = repr().emit(&[]);
        // Fake a 24-byte header: bump data offset and append 4 option bytes
        // plus 2 payload bytes.
        bytes[12] = 6 << 4;
        bytes.extend_from_slice(&[1, 1, 1, 1, 0xca, 0xfe]);
        let seg = TcpSegment::new_checked(&bytes).unwrap();
        assert_eq!(seg.payload(), &[0xca, 0xfe]);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut bytes = repr().emit(&[]);
        bytes[12] = 2 << 4; // 8 bytes < minimum
        assert!(matches!(TcpSegment::new_checked(&bytes), Err(WireError::Malformed)));
    }

    #[test]
    fn flag_accessors() {
        let bytes = repr().emit(&[]);
        let seg = TcpSegment::new_checked(&bytes).unwrap();
        assert_ne!(seg.flags() & flags::ACK, 0);
        assert_eq!(seg.flags() & flags::SYN, 0);
    }
}
