//! IPv4 headers (20-byte, no options).

use crate::checksum;
use crate::{WireError, WireResult};
use std::net::Ipv4Addr;

/// Length of the option-free IPv4 header in bytes.
pub const HEADER_LEN: usize = 20;

/// The IPv4 protocol field values this crate understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProtocol {
    /// Icmp.
    Icmp,
    /// Tcp.
    Tcp,
    /// Udp.
    Udp,
    /// Unknown.
    Unknown(u8),
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Unknown(other),
        }
    }
}

impl From<IpProtocol> for u8 {
    fn from(v: IpProtocol) -> u8 {
        match v {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Unknown(other) => other,
        }
    }
}

/// A read-only view of an IPv4 packet.
#[derive(Debug)]
pub struct Ipv4Packet<'a> {
    buf: &'a [u8],
}

impl<'a> Ipv4Packet<'a> {
    /// Wrap a buffer, validating version, header length, and total length.
    pub fn new_checked(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let pkt = Ipv4Packet { buf };
        if pkt.version() != 4 || pkt.header_len() < HEADER_LEN {
            return Err(WireError::Malformed);
        }
        if pkt.total_len() < pkt.header_len() || buf.len() < pkt.total_len() {
            return Err(WireError::Truncated);
        }
        Ok(pkt)
    }

    /// IP version field.
    pub fn version(&self) -> u8 {
        self.buf[0] >> 4
    }

    /// Header len.
    pub fn header_len(&self) -> usize {
        usize::from(self.buf[0] & 0x0f) * 4
    }

    /// Differentiated services codepoint.
    pub fn dscp(&self) -> u8 {
        self.buf[1] >> 2
    }

    /// Explicit congestion notification bits.
    pub fn ecn(&self) -> u8 {
        self.buf[1] & 0x03
    }

    /// Total len.
    pub fn total_len(&self) -> usize {
        usize::from(u16::from_be_bytes([self.buf[2], self.buf[3]]))
    }

    /// Time to live.
    pub fn ttl(&self) -> u8 {
        self.buf[8]
    }

    /// The IP protocol field.
    pub fn protocol(&self) -> IpProtocol {
        self.buf[9].into()
    }

    /// Header checksum.
    pub fn header_checksum(&self) -> u16 {
        u16::from_be_bytes([self.buf[10], self.buf[11]])
    }

    /// Verify the header checksum.
    pub fn checksum_ok(&self) -> bool {
        checksum::checksum(&self.buf[..self.header_len()]) == 0
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[12], self.buf[13], self.buf[14], self.buf[15])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Addr {
        Ipv4Addr::new(self.buf[16], self.buf[17], self.buf[18], self.buf[19])
    }

    /// The bytes following this header.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[self.header_len()..self.total_len()]
    }
}

/// Owned representation of an (option-free) IPv4 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Repr {
    /// Src addr.
    pub src_addr: Ipv4Addr,
    /// Dst addr.
    pub dst_addr: Ipv4Addr,
    /// Protocol.
    pub protocol: IpProtocol,
    /// Ttl.
    pub ttl: u8,
    /// Dscp.
    pub dscp: u8,
    /// Ecn.
    pub ecn: u8,
}

impl Ipv4Repr {
    /// Extract the owned representation from a checked view.
    pub fn parse(pkt: &Ipv4Packet<'_>) -> WireResult<Self> {
        Ok(Ipv4Repr {
            src_addr: pkt.src_addr(),
            dst_addr: pkt.dst_addr(),
            protocol: pkt.protocol(),
            ttl: pkt.ttl(),
            dscp: pkt.dscp(),
            ecn: pkt.ecn(),
        })
    }

    /// Emit the header (with a valid checksum) followed by `payload`.
    pub fn emit(&self, payload: &[u8]) -> Vec<u8> {
        let total = HEADER_LEN + payload.len();
        let mut out = Vec::with_capacity(total);
        out.push(0x45);
        out.push((self.dscp << 2) | (self.ecn & 0x03));
        out.extend_from_slice(&(total as u16).to_be_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // identification + flags/frag
        out.push(self.ttl);
        out.push(self.protocol.into());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src_addr.octets());
        out.extend_from_slice(&self.dst_addr.octets());
        let c = checksum::checksum(&out);
        out[10..12].copy_from_slice(&c.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repr() -> Ipv4Repr {
        Ipv4Repr {
            src_addr: Ipv4Addr::new(192, 168, 1, 1),
            dst_addr: Ipv4Addr::new(10, 0, 0, 42),
            protocol: IpProtocol::Udp,
            ttl: 63,
            dscp: 4,
            ecn: 1,
        }
    }

    #[test]
    fn roundtrip() {
        let bytes = repr().emit(&[9, 8, 7]);
        let pkt = Ipv4Packet::new_checked(&bytes).unwrap();
        assert!(pkt.checksum_ok());
        assert_eq!(Ipv4Repr::parse(&pkt).unwrap(), repr());
        assert_eq!(pkt.payload(), &[9, 8, 7]);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = repr().emit(&[]);
        bytes[0] = 0x65; // version 6
        assert!(matches!(Ipv4Packet::new_checked(&bytes), Err(WireError::Malformed)));
    }

    #[test]
    fn rejects_truncated_total_len() {
        let mut bytes = repr().emit(&[0; 8]);
        bytes.truncate(24); // shorter than total_len claims
        assert!(Ipv4Packet::new_checked(&bytes).is_err());
    }

    #[test]
    fn corrupted_checksum_detected() {
        let mut bytes = repr().emit(&[]);
        bytes[10] ^= 0xff;
        let pkt = Ipv4Packet::new_checked(&bytes).unwrap();
        assert!(!pkt.checksum_ok());
    }

    #[test]
    fn payload_excludes_trailing_padding() {
        // Ethernet minimum-size padding beyond total_len must not leak into
        // the payload view.
        let mut bytes = repr().emit(&[1, 2]);
        bytes.extend_from_slice(&[0xee; 10]);
        let pkt = Ipv4Packet::new_checked(&bytes).unwrap();
        assert_eq!(pkt.payload(), &[1, 2]);
    }
}
