//! The NetCache-style in-network cache header.
//!
//! The paper's running example (Figure 2) keys the cache on a 64-bit key
//! carried after UDP on destination port 7777, with an 8-bit opcode and a
//! 32-bit value:
//!
//! ```text
//!  0        8                                       72        104
//!  +--------+---------------------------------------+---------+
//!  | opcode |              key (64 bits)            |  value  |
//!  +--------+---------------------------------------+---------+
//! ```

use crate::{WireError, WireResult};

/// The UDP destination port the cache program filters on (Figure 2, line 4).
pub const NETCACHE_PORT: u16 = 7777;

/// Length of the cache header in bytes: 1 (op) + 8 (key) + 4 (value).
pub const HEADER_LEN: usize = 13;

/// Cache opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOp {
    /// Client-sent read request; the switch fills in `value` on a hit.
    Read,
    /// Server-sent write (cache fill); the switch stores `value`.
    Write,
    /// Any opcode the cache program does not handle.
    Unknown(u8),
}

impl From<u8> for CacheOp {
    fn from(v: u8) -> Self {
        match v {
            0 => CacheOp::Read,
            1 => CacheOp::Write,
            other => CacheOp::Unknown(other),
        }
    }
}

impl From<CacheOp> for u8 {
    fn from(v: CacheOp) -> u8 {
        match v {
            CacheOp::Read => 0,
            CacheOp::Write => 1,
            CacheOp::Unknown(other) => other,
        }
    }
}

/// A read-only view of a cache header.
#[derive(Debug)]
pub struct NetCacheHeader<'a> {
    buf: &'a [u8],
}

impl<'a> NetCacheHeader<'a> {
    /// Wrap a buffer after validating its length and structure.
    pub fn new_checked(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(NetCacheHeader { buf })
    }

    /// The opcode field.
    pub fn op(&self) -> CacheOp {
        self.buf[0].into()
    }

    /// The 64-bit cache key.
    pub fn key(&self) -> u64 {
        u64::from_be_bytes(self.buf[1..9].try_into().unwrap())
    }

    /// High 32 bits of the key, as extracted into `sar` by the example.
    pub fn key_hi(&self) -> u32 {
        (self.key() >> 32) as u32
    }

    /// Low 32 bits of the key, as extracted into `mar` by the example.
    pub fn key_lo(&self) -> u32 {
        self.key() as u32
    }

    /// The 32-bit cache value.
    pub fn value(&self) -> u32 {
        u32::from_be_bytes(self.buf[9..13].try_into().unwrap())
    }

    /// The bytes following this header.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[HEADER_LEN..]
    }
}

/// Owned representation of a cache header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetCacheRepr {
    /// Op.
    pub op: CacheOp,
    /// Key.
    pub key: u64,
    /// Value.
    pub value: u32,
}

impl NetCacheRepr {
    /// Extract the owned representation from a checked view.
    pub fn parse(hdr: &NetCacheHeader<'_>) -> Self {
        NetCacheRepr {
            op: hdr.op(),
            key: hdr.key(),
            value: hdr.value(),
        }
    }

    /// Emit the header followed by `payload_len` zero bytes.
    pub fn emit(&self, payload_len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + payload_len);
        out.push(self.op.into());
        out.extend_from_slice(&self.key.to_be_bytes());
        out.extend_from_slice(&self.value.to_be_bytes());
        out.resize(HEADER_LEN + payload_len, 0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = NetCacheRepr { op: CacheOp::Write, key: 0x1122_3344_5566_7788, value: 99 };
        let bytes = repr.emit(0);
        let hdr = NetCacheHeader::new_checked(&bytes).unwrap();
        assert_eq!(NetCacheRepr::parse(&hdr), repr);
    }

    #[test]
    fn key_split_matches_figure2() {
        // Figure 2 extracts key[0:31] into sar and key[32:63] into mar.
        let repr = NetCacheRepr { op: CacheOp::Read, key: 0xAAAA_BBBB_CCCC_DDDD, value: 0 };
        let bytes = repr.emit(0);
        let hdr = NetCacheHeader::new_checked(&bytes).unwrap();
        assert_eq!(hdr.key_hi(), 0xAAAA_BBBB);
        assert_eq!(hdr.key_lo(), 0xCCCC_DDDD);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(NetCacheHeader::new_checked(&[0; 12]).is_err());
    }

    #[test]
    fn unknown_opcode_preserved() {
        let repr = NetCacheRepr { op: CacheOp::Unknown(9), key: 1, value: 2 };
        let bytes = repr.emit(0);
        let hdr = NetCacheHeader::new_checked(&bytes).unwrap();
        assert_eq!(hdr.op(), CacheOp::Unknown(9));
    }
}
