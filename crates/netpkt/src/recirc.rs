//! The P4runpro recirculation header (§4.1.3).
//!
//! When a program cannot complete in one pipeline pass, the recirculation
//! block attaches all stateless execution state — the three registers, the
//! control flags (including the forwarding verdict, so a `FORWARD`/`DROP`/
//! `RETURN`/`REPORT` executed on an early pass survives), and the branch
//! state — to the packet so the next pass can resume where the previous one
//! stopped. The header is prepended in front of the Ethernet header on the
//! internal recirculation port only; it is stripped before the packet
//! leaves the switch and is therefore never visible to the external
//! network.
//!
//! Layout (big-endian, 20 bytes):
//!
//! ```text
//!  0         2         4      8      12     16    17    18       20
//!  +---------+---------+------+------+------+-----+-----+--------+
//!  | prog id | branch  | har  | sar  | mar  | rc  | fl  | egress |
//!  +---------+---------+------+------+------+-----+-----+--------+
//! ```
//!
//! `rc` is the packet-local recirculation id; `fl` packs the drop / return
//! / report flags. On the internal wire the 4-byte Ethernet FCS is not
//! carried, so the traffic manager's recirculation model charges
//! `RECIRC_HEADER_LEN - 4` bytes of overhead per pass (Figure 11).

use crate::{WireError, WireResult};

/// Length of the recirculation header in bytes.
pub const RECIRC_HEADER_LEN: usize = 20;

/// Flag bit: drop verdict already taken.
pub const FLAG_DROP: u8 = 0x01;
/// Flag bit: return (reflect) verdict already taken.
pub const FLAG_RETURN: u8 = 0x02;
/// Flag bit: report-to-CPU side effect already requested.
pub const FLAG_REPORT: u8 = 0x04;

/// A read-only view of a recirculation header.
#[derive(Debug)]
pub struct RecircHeader<'a> {
    buf: &'a [u8],
}

impl<'a> RecircHeader<'a> {
    /// Wrap a buffer after validating its length and structure.
    pub fn new_checked(buf: &'a [u8]) -> WireResult<Self> {
        if buf.len() < RECIRC_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(RecircHeader { buf })
    }

    /// The program id carried for the next pass.
    pub fn program_id(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// The branch id carried for the next pass.
    pub fn branch_id(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// The hash register value.
    pub fn har(&self) -> u32 {
        u32::from_be_bytes(self.buf[4..8].try_into().unwrap())
    }

    /// The stateful-ALU register value.
    pub fn sar(&self) -> u32 {
        u32::from_be_bytes(self.buf[8..12].try_into().unwrap())
    }

    /// The memory-address register value.
    pub fn mar(&self) -> u32 {
        u32::from_be_bytes(self.buf[12..16].try_into().unwrap())
    }

    /// The packet-local recirculation id.
    pub fn recirc_id(&self) -> u8 {
        self.buf[16]
    }

    /// Flag bits.
    pub fn flags(&self) -> u8 {
        self.buf[17]
    }

    /// The carried egress port decision.
    pub fn egress_spec(&self) -> u16 {
        u16::from_be_bytes([self.buf[18], self.buf[19]])
    }

    /// The encapsulated original frame.
    pub fn payload(&self) -> &'a [u8] {
        &self.buf[RECIRC_HEADER_LEN..]
    }
}

/// Owned representation of the recirculation header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecircRepr {
    /// Program id.
    pub program_id: u16,
    /// Branch id.
    pub branch_id: u16,
    /// Har.
    pub har: u32,
    /// Sar.
    pub sar: u32,
    /// Mar.
    pub mar: u32,
    /// Recirc id.
    pub recirc_id: u8,
    /// Flags.
    pub flags: u8,
    /// Egress spec.
    pub egress_spec: u16,
}

impl RecircRepr {
    /// Extract the owned representation from a checked view.
    pub fn parse(hdr: &RecircHeader<'_>) -> Self {
        RecircRepr {
            program_id: hdr.program_id(),
            branch_id: hdr.branch_id(),
            har: hdr.har(),
            sar: hdr.sar(),
            mar: hdr.mar(),
            recirc_id: hdr.recirc_id(),
            flags: hdr.flags(),
            egress_spec: hdr.egress_spec(),
        }
    }

    /// Emit the header followed by the encapsulated frame.
    pub fn emit(&self, inner_frame: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECIRC_HEADER_LEN + inner_frame.len());
        out.extend_from_slice(&self.program_id.to_be_bytes());
        out.extend_from_slice(&self.branch_id.to_be_bytes());
        out.extend_from_slice(&self.har.to_be_bytes());
        out.extend_from_slice(&self.sar.to_be_bytes());
        out.extend_from_slice(&self.mar.to_be_bytes());
        out.push(self.recirc_id);
        out.push(self.flags);
        out.extend_from_slice(&self.egress_spec.to_be_bytes());
        out.extend_from_slice(inner_frame);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let repr = RecircRepr {
            program_id: 12,
            branch_id: 3,
            har: 0xaabbccdd,
            sar: 7,
            mar: 512,
            recirc_id: 1,
            flags: FLAG_RETURN | FLAG_REPORT,
            egress_spec: 32,
        };
        let bytes = repr.emit(&[0xde, 0xad]);
        assert_eq!(bytes.len(), RECIRC_HEADER_LEN + 2);
        let hdr = RecircHeader::new_checked(&bytes).unwrap();
        assert_eq!(RecircRepr::parse(&hdr), repr);
        assert_eq!(hdr.payload(), &[0xde, 0xad]);
    }

    #[test]
    fn default_is_zeroed() {
        let repr = RecircRepr::default();
        assert_eq!(repr.recirc_id, 0);
        assert_eq!(repr.flags, 0);
        assert_eq!(repr.egress_spec, 0);
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(RecircHeader::new_checked(&[0; RECIRC_HEADER_LEN - 1]).is_err());
    }

    #[test]
    fn flag_bits_distinct() {
        assert_eq!(FLAG_DROP & FLAG_RETURN, 0);
        assert_eq!(FLAG_RETURN & FLAG_REPORT, 0);
        assert_eq!(FLAG_DROP & FLAG_REPORT, 0);
    }
}
