//! Result analysis: the metrics of the §6.4 case studies.

use netpkt::FiveTuple;
use std::collections::HashSet;

/// Precision / recall / F1 of a detected flow set against ground truth
/// (the Figure 13(d) metric).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1 {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1.
    pub f1: f64,
    /// True positives.
    pub true_positives: usize,
    /// False positives.
    pub false_positives: usize,
    /// False negatives.
    pub false_negatives: usize,
}

/// Score `detected` against `truth`.
pub fn f1_score(detected: &HashSet<FiveTuple>, truth: &HashSet<FiveTuple>) -> F1 {
    let tp = detected.intersection(truth).count();
    let fp = detected.len() - tp;
    let fnn = truth.len() - tp;
    let precision = if detected.is_empty() { 0.0 } else { tp as f64 / detected.len() as f64 };
    let recall = if truth.is_empty() { 1.0 } else { tp as f64 / truth.len() as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    F1 { precision, recall, f1, true_positives: tp, false_positives: fp, false_negatives: fnn }
}

/// A simple moving average with the paper's window (31 in Figure 7(a)).
pub fn moving_average(series: &[f64], window: usize) -> Vec<f64> {
    if series.is_empty() || window == 0 {
        return Vec::new();
    }
    let half = window / 2;
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(series.len());
            series[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ft(n: u8) -> FiveTuple {
        FiveTuple {
            src_addr: Ipv4Addr::new(10, 0, 0, n),
            dst_addr: Ipv4Addr::new(10, 0, 1, n),
            src_port: 1000,
            dst_port: 2000,
            protocol: 17,
        }
    }

    #[test]
    fn perfect_detection() {
        let truth: HashSet<_> = (0..10).map(ft).collect();
        let s = f1_score(&truth.clone(), &truth);
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.false_negatives, 0);
    }

    #[test]
    fn partial_detection() {
        let truth: HashSet<_> = (0..10).map(ft).collect();
        let detected: HashSet<_> = (0..5).map(ft).chain((20..22).map(ft)).collect();
        let s = f1_score(&detected, &truth);
        assert_eq!(s.true_positives, 5);
        assert_eq!(s.false_positives, 2);
        assert_eq!(s.false_negatives, 5);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!(s.f1 > 0.0 && s.f1 < 1.0);
    }

    #[test]
    fn empty_cases() {
        let empty = HashSet::new();
        let truth: HashSet<_> = (0..3).map(ft).collect();
        assert_eq!(f1_score(&empty, &truth).f1, 0.0);
        assert_eq!(f1_score(&empty, &empty).recall, 1.0);
    }

    #[test]
    fn moving_average_smooths() {
        let series = vec![0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0];
        let ma = moving_average(&series, 3);
        assert_eq!(ma.len(), series.len());
        assert!(ma[3] > 2.0 && ma[3] < 8.0);
        assert!(moving_average(&[], 31).is_empty());
        assert!(moving_average(&series, 0).is_empty());
    }
}
