//! Timed replay of packet traces into a switch, with per-bucket
//! accounting — the stand-in for tcpreplay + libpcap capture analysis.
//!
//! The replay session walks a timestamped trace; the experiment harness
//! interleaves control plane actions ("deploy at t = 5 s") between bucket
//! boundaries, exactly how the case studies of §6.4 are run. Statistics
//! are collected per 50 ms bucket (the paper's collection interval).
//!
//! For long traces, [`generate_streaming`] produces packets on a worker
//! thread through a bounded crossbeam channel so synthesis overlaps
//! injection.

use crossbeam::channel::{bounded, Receiver};
use netpkt::FiveTuple;
use rmt_sim::clock::Nanos;
use rmt_sim::error::SimResult;
use rmt_sim::parallel::{shard_for_frame, WorkerPool, WorkerStats};
use rmt_sim::switch::ProcessOutcome;
use std::collections::HashSet;

/// One timestamped frame.
#[derive(Debug, Clone)]
pub struct TimedPacket {
    /// T.
    pub t: Nanos,
    /// Port.
    pub port: u16,
    /// Frame.
    pub frame: Vec<u8>,
}

/// Statistics for one collection bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BucketStats {
    /// Bucket start time (seconds).
    pub t_secs: f64,
    /// Offered bytes/packets in the bucket.
    pub offered_bytes: u64,
    /// Offered pkts.
    pub offered_pkts: u64,
    /// Bytes/packets emitted on any external port (the RX rate of the
    /// measurement server).
    pub tx_bytes: u64,
    /// Tx pkts.
    pub tx_pkts: u64,
    /// Per-verdict counters.
    pub dropped: u64,
    /// Reports.
    pub reports: u64,
    /// Telemetry epoch active when the bucket's first packet was injected
    /// (see `rmt_sim::telemetry`): control-plane lifecycle events bump the
    /// epoch, so a series of buckets can be cut at deploy/revoke
    /// boundaries without timestamp arithmetic.
    pub epoch: u64,
}

impl BucketStats {
    /// RX rate over the bucket, bits/s.
    pub fn rx_rate_bps(&self, bucket: Nanos) -> f64 {
        self.tx_bytes as f64 * 8.0 / bucket.as_secs_f64()
    }
}

/// The replay driver.
pub struct Replay {
    packets: Vec<TimedPacket>,
    idx: usize,
    /// Bucket.
    pub bucket: Nanos,
    /// Stats.
    pub stats: Vec<BucketStats>,
    current: BucketStats,
    bucket_end: Nanos,
    /// Per-port emitted-byte totals (for the load balancer's imbalance
    /// metric).
    pub port_tx_bytes: std::collections::HashMap<u16, u64>,
    /// Five-tuples of reported (punted) packets — the heavy-hitter result
    /// set.
    pub reported_flows: HashSet<FiveTuple>,
    /// Active telemetry epoch; the experiment harness copies the
    /// controller's epoch here after each control action, and every bucket
    /// is tagged with the epoch its first packet saw.
    pub epoch: u64,
    /// Scratch outcome reused across the injection loop so the switch's
    /// `process_frame_into` path never allocates a fresh outcome per packet.
    scratch: ProcessOutcome,
}

impl Replay {
    /// 50 ms buckets, the paper's collection interval.
    pub fn new(packets: Vec<TimedPacket>) -> Replay {
        Replay::with_bucket(packets, Nanos::from_millis(50))
    }

    /// With bucket.
    pub fn with_bucket(packets: Vec<TimedPacket>, bucket: Nanos) -> Replay {
        Replay {
            packets,
            idx: 0,
            bucket,
            stats: Vec::new(),
            current: BucketStats::default(),
            bucket_end: bucket,
            port_tx_bytes: std::collections::HashMap::new(),
            reported_flows: HashSet::new(),
            epoch: 0,
            scratch: ProcessOutcome::empty(),
        }
    }

    /// Done.
    pub fn done(&self) -> bool {
        self.idx >= self.packets.len()
    }

    /// The timestamp of the next packet, if any.
    pub fn next_time(&self) -> Option<Nanos> {
        self.packets.get(self.idx).map(|p| p.t)
    }

    /// Inject all packets with `t < until` through `inject`, folding the
    /// outcomes into bucket statistics. Returns the number processed.
    pub fn run_until(
        &mut self,
        until: Nanos,
        mut inject: impl FnMut(u16, &[u8]) -> ProcessOutcome,
    ) -> usize {
        self.run_until_into(until, |port, frame, out| *out = inject(port, frame))
    }

    /// Allocation-free variant of [`Replay::run_until`]: `inject` fills a
    /// replay-owned scratch outcome in place (pair it with
    /// `Switch::process_frame_into` / `Controller::inject_into`), so the
    /// steady-state injection loop reuses one outcome's buffers throughout.
    pub fn run_until_into(
        &mut self,
        until: Nanos,
        mut inject: impl FnMut(u16, &[u8], &mut ProcessOutcome),
    ) -> usize {
        self.run_until_into_at(until, |_, port, frame, out| inject(port, frame, out))
    }

    /// [`Replay::run_until_into`] with the packet's trace timestamp passed
    /// through to `inject` — the flight-recorder path uses it to stamp
    /// trace events with the replay clock (`TraceBuffer::set_now`) so
    /// packet journeys and control batches share one timeline.
    pub fn run_until_into_at(
        &mut self,
        until: Nanos,
        mut inject: impl FnMut(Nanos, u16, &[u8], &mut ProcessOutcome),
    ) -> usize {
        let mut n = 0;
        while self.idx < self.packets.len() && self.packets[self.idx].t < until {
            while self.packets[self.idx].t >= self.bucket_end {
                self.rotate_bucket();
            }
            let pkt = &self.packets[self.idx];
            inject(pkt.t, pkt.port, &pkt.frame, &mut self.scratch);
            let out = &self.scratch;
            if self.current.offered_pkts == 0 {
                self.current.epoch = self.epoch;
            }
            self.current.offered_bytes += pkt.frame.len() as u64;
            self.current.offered_pkts += 1;
            for (port, bytes) in &out.emitted {
                self.current.tx_bytes += bytes.len() as u64;
                self.current.tx_pkts += 1;
                *self.port_tx_bytes.entry(*port).or_insert(0) += bytes.len() as u64;
            }
            if out.dropped {
                self.current.dropped += 1;
            }
            for report in &out.reports {
                self.current.reports += 1;
                if let Ok(parsed) = netpkt::ParsedPacket::parse(report) {
                    if let Some(ft) = parsed.five_tuple() {
                        self.reported_flows.insert(ft);
                    }
                }
            }
            self.idx += 1;
            n += 1;
        }
        n
    }

    /// Run the whole trace.
    pub fn run_all(&mut self, mut inject: impl FnMut(u16, &[u8]) -> ProcessOutcome) {
        self.run_all_into(|port, frame, out| *out = inject(port, frame));
    }

    /// Allocation-free variant of [`Replay::run_all`].
    pub fn run_all_into(&mut self, inject: impl FnMut(u16, &[u8], &mut ProcessOutcome)) {
        let end = self.packets.last().map(|p| p.t + Nanos(1)).unwrap_or(Nanos::ZERO);
        self.run_until_into(end, inject);
        self.finish();
    }

    /// [`Replay::run_all_into`] with timestamps (see
    /// [`Replay::run_until_into_at`]).
    pub fn run_all_into_at(&mut self, inject: impl FnMut(Nanos, u16, &[u8], &mut ProcessOutcome)) {
        let end = self.packets.last().map(|p| p.t + Nanos(1)).unwrap_or(Nanos::ZERO);
        self.run_until_into_at(end, inject);
        self.finish();
    }

    fn rotate_bucket(&mut self) {
        let mut s = std::mem::take(&mut self.current);
        s.t_secs = (self.bucket_end - self.bucket).as_secs_f64();
        if s.offered_pkts == 0 {
            // An idle bucket never saw a packet: tag it with the epoch
            // active when it rotated out.
            s.epoch = self.epoch;
        }
        self.stats.push(s);
        self.bucket_end += self.bucket;
    }

    /// Flush the in-progress bucket.
    pub fn finish(&mut self) {
        if self.current != BucketStats::default() {
            self.rotate_bucket();
        }
    }

    /// Load-imbalance rate between two ports (Figure 13(c)):
    /// `|rx1 − rx2| / (rx1 + rx2)`.
    pub fn imbalance(&self, port_a: u16, port_b: u16) -> f64 {
        let a = *self.port_tx_bytes.get(&port_a).unwrap_or(&0) as f64;
        let b = *self.port_tx_bytes.get(&port_b).unwrap_or(&0) as f64;
        if a + b == 0.0 {
            0.0
        } else {
            (a - b).abs() / (a + b)
        }
    }
}

/// What a sharded multi-worker replay produced, merged back into the
/// sequential [`Replay`]'s shapes so downstream consumers (status
/// reports, experiment harnesses) are worker-count-agnostic.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Bucket statistics summed across workers, aligned by bucket index
    /// (bucket boundaries are global, so index `i` is the same 50 ms
    /// window on every worker).
    pub stats: Vec<BucketStats>,
    /// Per-port emitted-byte totals summed across workers.
    pub port_tx_bytes: std::collections::HashMap<u16, u64>,
    /// Reported (punted) flows unioned across workers.
    pub reported_flows: HashSet<FiveTuple>,
    /// Per-worker bucket series, in worker order (kept for imbalance
    /// inspection; the merged `stats` is what experiments consume).
    pub per_worker: Vec<Vec<BucketStats>>,
    /// Per-worker engine counters sampled after the run.
    pub worker_stats: Vec<WorkerStats>,
    /// Packets injected across all workers.
    pub packets: u64,
}

/// Sharded multi-worker replay: the parallel front-end over a
/// [`WorkerPool`].
///
/// The trace is split by [`shard_for_frame`] — an RSS-style five-tuple
/// hash — so every packet of a flow lands on the same worker and per-flow
/// order is preserved. Each worker thread drives a private sequential
/// [`Replay`] over its shard; before each injection the worker adopts any
/// control-plane snapshot deltas published since its last packet
/// (batch-granular, never torn — see `rmt_sim::snapshot`).
///
/// Every packet is injected under the **global** packet id it would have
/// carried in a sequential replay of the same trace (`base + trace
/// index`), so per-packet trace events are bit-identical to the
/// sequential engine's and the merged ring is worker-count-independent.
pub struct ParallelReplay {
    shards: Vec<Vec<TimedPacket>>,
    ids: Vec<Vec<u64>>,
    bucket: Nanos,
    total: u64,
}

impl ParallelReplay {
    /// Shard a trace for `workers` workers, 50 ms buckets.
    pub fn new(packets: Vec<TimedPacket>, workers: usize) -> ParallelReplay {
        ParallelReplay::with_bucket(packets, workers, Nanos::from_millis(50))
    }

    /// With an explicit bucket width.
    pub fn with_bucket(packets: Vec<TimedPacket>, workers: usize, bucket: Nanos) -> ParallelReplay {
        let n = workers.max(1);
        let mut shards: Vec<Vec<TimedPacket>> = (0..n).map(|_| Vec::new()).collect();
        let mut ids: Vec<Vec<u64>> = (0..n).map(|_| Vec::new()).collect();
        let total = packets.len() as u64;
        for (i, p) in packets.into_iter().enumerate() {
            let s = shard_for_frame(&p.frame, n);
            ids[s].push(i as u64);
            shards[s].push(p);
        }
        ParallelReplay { shards, ids, bucket, total }
    }

    /// Packets per shard, in worker order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Vec::len).collect()
    }

    /// Total packets in the trace.
    pub fn total_packets(&self) -> u64 {
        self.total
    }

    /// Drive the whole trace through `pool`, one OS thread per worker.
    ///
    /// The pool must have exactly as many workers as this replay was
    /// sharded for. Control-plane activity may proceed concurrently on
    /// the master switch: workers pick up published batches at packet
    /// boundaries and are never blocked by a deploy.
    pub fn run(self, pool: &mut WorkerPool) -> SimResult<ParallelOutcome> {
        assert_eq!(
            pool.len(),
            self.shards.len(),
            "pool size must match the shard count"
        );
        // Workers fork with the master's packet-id cursor, so `base +
        // global index` reproduces the ids a sequential replay would
        // assign from the same starting point.
        let base = pool
            .workers()
            .iter()
            .map(|w| w.switch().next_packet_id())
            .max()
            .unwrap_or(0);
        let bucket = self.bucket;
        let runs: Vec<SimResult<Replay>> = std::thread::scope(|s| {
            let handles: Vec<_> = pool
                .workers_mut()
                .iter_mut()
                .zip(self.shards.into_iter().zip(self.ids))
                .map(|(w, (shard, ids))| {
                    s.spawn(move || {
                        let mut r = Replay::with_bucket(shard, bucket);
                        // Tag buckets with the epoch the worker starts
                        // under; concurrent epoch bumps surface through
                        // the merged telemetry, not bucket tags.
                        r.epoch = w.switch().telemetry().map_or(0, |m| m.epoch);
                        let mut err = None;
                        let mut k = 0usize;
                        r.run_all_into_at(|t, port, frame, out| {
                            if err.is_none() {
                                if let Some(tr) = w.switch_mut().trace_mut() {
                                    tr.set_now(t);
                                }
                                if let Err(e) = w.inject_at(base + ids[k], port, frame, out) {
                                    err = Some(e);
                                }
                            }
                            k += 1;
                        });
                        match err {
                            Some(e) => Err(e),
                            None => Ok(r),
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replay worker thread panicked"))
                .collect()
        });
        let mut per_worker = Vec::with_capacity(runs.len());
        let mut port_tx_bytes = std::collections::HashMap::new();
        let mut reported_flows = HashSet::new();
        for run in runs {
            let r = run?;
            for (port, bytes) in &r.port_tx_bytes {
                *port_tx_bytes.entry(*port).or_insert(0) += bytes;
            }
            reported_flows.extend(r.reported_flows.iter().cloned());
            per_worker.push(r.stats);
        }
        // Bucket boundaries are global (every worker's bucket `i` covers
        // `[i·bucket, (i+1)·bucket)`), so summation by index is exact.
        let buckets = per_worker.iter().map(Vec::len).max().unwrap_or(0);
        let mut stats = Vec::with_capacity(buckets);
        for i in 0..buckets {
            let mut m = BucketStats {
                t_secs: (Nanos(self.bucket.0 * i as u64)).as_secs_f64(),
                ..Default::default()
            };
            for w in &per_worker {
                if let Some(s) = w.get(i) {
                    m.offered_bytes += s.offered_bytes;
                    m.offered_pkts += s.offered_pkts;
                    m.tx_bytes += s.tx_bytes;
                    m.tx_pkts += s.tx_pkts;
                    m.dropped += s.dropped;
                    m.reports += s.reports;
                    m.epoch = m.epoch.max(s.epoch);
                }
            }
            stats.push(m);
        }
        Ok(ParallelOutcome {
            stats,
            port_tx_bytes,
            reported_flows,
            per_worker,
            worker_stats: pool.stats(),
            packets: self.total,
        })
    }
}

/// Stream packets from a generator closure running on a worker thread.
/// Useful when the synthesized trace would not fit memory comfortably.
pub fn generate_streaming<F>(gen: F, capacity: usize) -> Receiver<TimedPacket>
where
    F: FnOnce(crossbeam::channel::Sender<TimedPacket>) + Send + 'static,
{
    let (tx, rx) = bounded(capacity);
    std::thread::spawn(move || gen(tx));
    rx
}

#[cfg(test)]
mod tests {
    use super::*;
    use rmt_sim::phv::{FieldTable, Phv};

    fn fake_outcome(emit: Option<(u16, usize)>, dropped: bool, report: bool) -> ProcessOutcome {
        let ft = FieldTable::new();
        ProcessOutcome {
            emitted: emit.map(|(p, n)| (p, vec![0u8; n])).into_iter().collect(),
            reports: if report { vec![vec![0u8; 14]] } else { vec![] },
            dropped,
            passes: 1,
            phv: Phv::new(&ft),
        }
    }

    fn pkt(t_ms: u64, len: usize) -> TimedPacket {
        TimedPacket { t: Nanos::from_millis(t_ms), port: 0, frame: vec![0; len] }
    }

    #[test]
    fn buckets_aggregate_by_time() {
        let mut r = Replay::new(vec![pkt(10, 100), pkt(20, 100), pkt(60, 100), pkt(120, 100)]);
        r.run_all(|_, _| fake_outcome(Some((1, 100)), false, false));
        // Buckets: [0,50): 2 pkts; [50,100): 1; [100,150): 1.
        assert_eq!(r.stats.len(), 3);
        assert_eq!(r.stats[0].offered_pkts, 2);
        assert_eq!(r.stats[1].offered_pkts, 1);
        assert_eq!(r.stats[2].offered_pkts, 1);
        assert_eq!(r.stats[0].tx_bytes, 200);
        assert!((r.stats[1].t_secs - 0.05).abs() < 1e-9);
    }

    #[test]
    fn run_until_splits_at_event_boundaries() {
        let mut r = Replay::new(vec![pkt(10, 50), pkt(60, 50), pkt(90, 50)]);
        let n = r.run_until(Nanos::from_millis(55), |_, _| fake_outcome(None, true, false));
        assert_eq!(n, 1);
        assert!(!r.done());
        let n = r.run_until(Nanos::from_millis(1000), |_, _| fake_outcome(None, true, false));
        assert_eq!(n, 2);
        assert!(r.done());
        r.finish();
        assert_eq!(r.stats.iter().map(|s| s.dropped).sum::<u64>(), 3);
    }

    #[test]
    fn buckets_are_tagged_with_the_active_epoch() {
        let mut r = Replay::new(vec![pkt(10, 100), pkt(60, 100), pkt(120, 100)]);
        // Bucket [0,50) under epoch 0; "deploy" before 60 ms bumps to 1.
        r.run_until(Nanos::from_millis(50), |_, _| fake_outcome(None, false, false));
        r.epoch = 1;
        r.run_until(Nanos::from_millis(100), |_, _| fake_outcome(None, false, false));
        r.epoch = 2;
        r.run_all(|_, _| fake_outcome(None, false, false));
        assert_eq!(r.stats.iter().map(|s| s.epoch).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn timestamped_variant_passes_the_trace_clock() {
        let mut r = Replay::new(vec![pkt(10, 100), pkt(60, 100)]);
        let mut seen = Vec::new();
        r.run_all_into_at(|t, _, _, out| {
            seen.push(t);
            *out = fake_outcome(None, false, false);
        });
        assert_eq!(seen, vec![Nanos::from_millis(10), Nanos::from_millis(60)]);
        assert_eq!(r.stats.iter().map(|s| s.offered_pkts).sum::<u64>(), 2);
    }

    #[test]
    fn imbalance_metric() {
        let mut r = Replay::new(vec![pkt(1, 10), pkt(2, 10), pkt(3, 10), pkt(4, 10)]);
        let mut flip = 0u16;
        r.run_all(|_, _| {
            flip += 1;
            fake_outcome(Some((flip % 2, 100)), false, false)
        });
        assert_eq!(r.imbalance(0, 1), 0.0, "perfectly balanced");
        assert_eq!(r.imbalance(0, 9), 1.0, "all traffic on one port");
    }

    #[test]
    fn rx_rate_computation() {
        let s = BucketStats { tx_bytes: 625_000, ..Default::default() };
        // 625 kB in 50 ms = 100 Mbps.
        assert!((s.rx_rate_bps(Nanos::from_millis(50)) - 100e6).abs() < 1.0);
    }

    #[test]
    fn streaming_generator_delivers_in_order() {
        let rx = generate_streaming(
            |tx| {
                for i in 0..100u64 {
                    tx.send(TimedPacket {
                        t: Nanos::from_micros(i),
                        port: 0,
                        frame: vec![i as u8],
                    })
                    .unwrap();
                }
            },
            8,
        );
        let got: Vec<TimedPacket> = rx.iter().collect();
        assert_eq!(got.len(), 100);
        assert!(got.windows(2).all(|w| w[0].t <= w[1].t));
    }
}
