//! Synthetic campus trace — the stand-in for the paper's ≈1.3 GB of
//! anonymized Tsinghua campus traffic (§6.4).
//!
//! Reproduced statistical features (the ones the case studies depend on):
//!
//! * exactly 4,096 distinct five-tuples (the paper post-processes the raw
//!   trace to that flow count);
//! * a TCP/UDP mix with heavy-tailed (Zipf) flow popularity;
//! * mostly small/medium packets with occasional *large TCP transfer
//!   bursts* — the cause of the RX-rate spikes visible in Figure 13(a);
//! * a constant offered rate (100 Mbps in the case studies), packets
//!   timestamped by their serialization spacing.

use crate::gen::{make_flows, zipf_weights, frame_for, netcache_frame, Flow, FlowSampler};
use crate::replay::TimedPacket;
use netpkt::{CacheOp, FiveTuple};
use rand::prelude::*;
use rand::rngs::StdRng;
use rmt_sim::clock::{Bandwidth, Nanos};

/// Campus trace generator parameters.
#[derive(Debug, Clone)]
pub struct CampusParams {
    /// Seed.
    pub seed: u64,
    /// Distinct five-tuples (the paper uses 4,096).
    pub flows: usize,
    /// Offered rate.
    pub rate: Bandwidth,
    /// Trace duration.
    pub duration: Nanos,
    /// Fraction of TCP flows.
    pub tcp_fraction: f64,
    /// Zipf exponent of flow popularity (0 = uniform).
    pub zipf_alpha: f64,
    /// Probability that a TCP packet belongs to a large-transfer burst.
    pub burst_probability: f64,
    /// Packets per burst.
    pub burst_len: usize,
    /// Ingress port packets arrive on.
    pub port: u16,
}

impl Default for CampusParams {
    fn default() -> Self {
        CampusParams {
            seed: 42,
            flows: 4096,
            rate: Bandwidth::from_mbps(100.0),
            duration: Nanos::from_secs(10),
            tcp_fraction: 0.8,
            zipf_alpha: 1.1,
            burst_probability: 0.02,
            burst_len: 40,
            port: 0,
        }
    }
}

/// The synthesized trace plus its ground truth.
#[derive(Debug, Clone)]
pub struct CampusTrace {
    /// Packets.
    pub packets: Vec<TimedPacket>,
    /// Flows.
    pub flows: Vec<Flow>,
    /// Per-flow packet counts (ground truth for the heavy-hitter study).
    pub flow_counts: Vec<u64>,
}

impl CampusTrace {
    /// Flows whose packet count exceeds `threshold` — the heavy-hitter
    /// ground truth of Figure 13(d).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<FiveTuple> {
        self.flows
            .iter()
            .zip(&self.flow_counts)
            .filter(|(_, &c)| c > threshold)
            .map(|(f, _)| f.tuple)
            .collect()
    }
}

/// Synthesize the campus trace.
pub fn synthesize(p: &CampusParams) -> CampusTrace {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut flows = make_flows(p.seed, p.flows, p.tcp_fraction);
    zipf_weights(&mut flows, p.zipf_alpha);
    let sampler = FlowSampler::new(&flows);
    let mut flow_counts = vec![0u64; flows.len()];

    let mut packets = Vec::new();
    let mut t = Nanos::ZERO;
    let mut burst_remaining = 0usize;
    let mut burst_flow = 0usize;
    while t < p.duration {
        let (flow_idx, payload) = if burst_remaining > 0 {
            burst_remaining -= 1;
            (burst_flow, 1400)
        } else {
            let idx = sampler.sample(&mut rng);
            let is_tcp = flows[idx].tuple.protocol == 6;
            if is_tcp && rng.random::<f64>() < p.burst_probability {
                burst_remaining = p.burst_len - 1;
                burst_flow = idx;
                (idx, 1400)
            } else {
                // Small/medium packets: bimodal around ACK-size and ~500 B.
                let payload = if rng.random::<f64>() < 0.6 {
                    rng.random_range(0..64)
                } else {
                    rng.random_range(200..800)
                };
                (idx, payload)
            }
        };
        let frame = frame_for(&flows[flow_idx].tuple, payload);
        let wire_len = frame.len();
        flow_counts[flow_idx] += 1;
        packets.push(TimedPacket { t, port: p.port, frame });
        // Next arrival: constant offered rate.
        t += p.rate.serialize(wire_len);
    }

    CampusTrace { packets, flows, flow_counts }
}

/// The NetCache workload transform (§6.4 Setup): UDP packets to the cache
/// port, payload discarded, a cache header attached; a fraction `hit_rate`
/// of requests use keys the cache will hold.
pub fn netcache_workload(
    p: &CampusParams,
    hit_keys: &[u64],
    miss_key_base: u64,
    hit_rate: f64,
) -> CampusTrace {
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0x4e43);
    let mut flows = make_flows(p.seed, p.flows, 0.0);
    zipf_weights(&mut flows, 1.0);
    let sampler = FlowSampler::new(&flows);
    let mut flow_counts = vec![0u64; flows.len()];

    let mut packets = Vec::new();
    let mut t = Nanos::ZERO;
    while t < p.duration {
        let idx = sampler.sample(&mut rng);
        let key = if rng.random::<f64>() < hit_rate && !hit_keys.is_empty() {
            hit_keys[rng.random_range(0..hit_keys.len())]
        } else {
            miss_key_base + rng.random_range(0..1000) as u64
        };
        let frame = netcache_frame(&flows[idx].tuple, CacheOp::Read, key, 0);
        let wire_len = frame.len();
        flow_counts[idx] += 1;
        packets.push(TimedPacket { t, port: p.port, frame });
        t += p.rate.serialize(wire_len);
    }
    CampusTrace { packets, flows, flow_counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CampusParams {
        CampusParams { duration: Nanos::from_millis(200), ..Default::default() }
    }

    #[test]
    fn trace_rate_close_to_offered() {
        let p = small_params();
        let trace = synthesize(&p);
        let bytes: usize = trace.packets.iter().map(|p| p.frame.len()).sum();
        let secs = p.duration.as_secs_f64();
        let rate = bytes as f64 * 8.0 / secs;
        assert!(
            (rate - p.rate.0).abs() / p.rate.0 < 0.05,
            "offered {} vs target {}",
            rate,
            p.rate.0
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = synthesize(&small_params());
        let b = synthesize(&small_params());
        assert_eq!(a.packets.len(), b.packets.len());
        assert_eq!(a.packets[0].frame, b.packets[0].frame);
        let c = synthesize(&CampusParams { seed: 1, ..small_params() });
        assert_ne!(a.packets[5].frame, c.packets[5].frame);
    }

    #[test]
    fn timestamps_monotone() {
        let trace = synthesize(&small_params());
        for w in trace.packets.windows(2) {
            assert!(w[0].t <= w[1].t);
        }
    }

    #[test]
    fn heavy_tail_produces_heavy_hitters() {
        let p = CampusParams { duration: Nanos::from_secs(2), ..small_params() };
        let trace = synthesize(&p);
        let total: u64 = trace.flow_counts.iter().sum();
        let hh = trace.heavy_hitters(total / 200);
        assert!(!hh.is_empty(), "a Zipf trace has heavy flows");
        assert!(hh.len() < trace.flows.len() / 10, "but not too many");
    }

    #[test]
    fn bursts_include_large_frames() {
        let trace = synthesize(&small_params());
        let large = trace.packets.iter().filter(|p| p.frame.len() > 1300).count();
        assert!(large > 0, "burst packets present");
    }

    #[test]
    fn netcache_workload_hit_fraction() {
        let p = small_params();
        let trace = netcache_workload(&p, &[0x8888], 0x9000, 0.6);
        let mut hits = 0usize;
        for pkt in &trace.packets {
            let parsed = netpkt::ParsedPacket::parse(&pkt.frame).unwrap();
            let nc = parsed.netcache.expect("cache header attached");
            if nc.key == 0x8888 {
                hits += 1;
            }
        }
        let frac = hits as f64 / trace.packets.len() as f64;
        assert!((0.55..=0.65).contains(&frac), "hit fraction {frac}");
    }
}
