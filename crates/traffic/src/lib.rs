//! # traffic — load generation, trace synthesis, replay, and analysis
//!
//! The stand-in for the paper's traffic toolchain (Cisco TRex, tcpreplay,
//! libpcap, and the anonymized campus dataset — see DESIGN.md):
//!
//! * [`gen`] — seeded flow/packet synthesis (uniform and Zipf mixes);
//! * [`campus`] — the synthetic campus-afternoon trace with 4,096 flows
//!   and large-TCP-burst spikes, plus the NetCache workload transform;
//! * [`replay`] — timed injection with 50 ms bucket statistics and
//!   event-interleaved control (the §6.4 methodology);
//! * [`analysis`] — F1 score, imbalance, and smoothing helpers.

pub mod analysis;
pub mod campus;
pub mod gen;
pub mod replay;

pub use analysis::{f1_score, moving_average, F1};
pub use campus::{netcache_workload, synthesize, CampusParams, CampusTrace};
pub use gen::{frame_for, make_flows, netcache_frame, zipf_weights, Flow, FlowSampler};
pub use replay::{generate_streaming, BucketStats, Replay, TimedPacket};
