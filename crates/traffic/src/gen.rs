//! Flow-oriented packet generation.
//!
//! The replacement for TRex + the paper's trace tooling: deterministic,
//! seeded synthesis of flow sets and packet streams. Flows are five-tuples
//! with a popularity weight; packet emission interleaves flows so the
//! stream looks like multiplexed traffic rather than back-to-back bursts.

use netpkt::{
    EtherType, EthernetRepr, FiveTuple, IpProtocol, Ipv4Repr, Mac, NetCacheRepr, ParsedPacket,
    TcpRepr, UdpRepr,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::net::Ipv4Addr;

/// One synthetic flow.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Tuple.
    pub tuple: FiveTuple,
    /// Relative popularity weight (used by the Zipf sampler).
    pub weight: f64,
}

/// Build `n` distinct five-tuples inside `10.s.0.0/16 → 10.d.0.0/16`.
pub fn make_flows(seed: u64, n: usize, tcp_fraction: f64) -> Vec<Flow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut flows = Vec::with_capacity(n);
    while flows.len() < n {
        let proto = if rng.random::<f64>() < tcp_fraction { 6 } else { 17 };
        let t = FiveTuple {
            src_addr: Ipv4Addr::new(10, 1, rng.random::<u8>(), rng.random::<u8>().max(1)),
            dst_addr: Ipv4Addr::new(10, 2, rng.random::<u8>(), rng.random::<u8>().max(1)),
            src_port: rng.random_range(1024..u16::MAX),
            dst_port: rng.random_range(1..1024),
            protocol: proto,
        };
        if seen.insert(t) {
            flows.push(Flow { tuple: t, weight: 1.0 });
        }
    }
    flows
}

/// Assign Zipf(α) popularity weights by rank (rank 0 most popular).
pub fn zipf_weights(flows: &mut [Flow], alpha: f64) {
    for (rank, f) in flows.iter_mut().enumerate() {
        f.weight = 1.0 / ((rank + 1) as f64).powf(alpha);
    }
}

/// A weighted flow sampler (cumulative-distribution inversion).
pub struct FlowSampler {
    cdf: Vec<f64>,
}

impl FlowSampler {
    /// Construct with defaults appropriate to the type.
    pub fn new(flows: &[Flow]) -> FlowSampler {
        let total: f64 = flows.iter().map(|f| f.weight).sum();
        let mut acc = 0.0;
        let cdf = flows
            .iter()
            .map(|f| {
                acc += f.weight / total;
                acc
            })
            .collect();
        FlowSampler { cdf }
    }

    /// Sample.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Build a full frame for a flow with `payload_len` payload bytes.
pub fn frame_for(tuple: &FiveTuple, payload_len: usize) -> Vec<u8> {
    let eth = EthernetRepr {
        dst: Mac::from_host_id(u32::from_be_bytes(tuple.dst_addr.octets())),
        src: Mac::from_host_id(u32::from_be_bytes(tuple.src_addr.octets())),
        ethertype: EtherType::Ipv4,
    };
    let ipv4 = Some(Ipv4Repr {
        src_addr: tuple.src_addr,
        dst_addr: tuple.dst_addr,
        protocol: tuple.protocol.into(),
        ttl: 64,
        dscp: 0,
        ecn: 0,
    });
    let pkt = match tuple.protocol {
        6 => ParsedPacket {
            ethernet: eth,
            ipv4,
            udp: None,
            tcp: Some(TcpRepr {
                src_port: tuple.src_port,
                dst_port: tuple.dst_port,
                seq: 1,
                ack: 1,
                flags: netpkt::tcp::flags::ACK,
                window: 65535,
            }),
            netcache: None,
            payload_len,
        },
        _ => ParsedPacket {
            ethernet: eth,
            ipv4,
            udp: Some(UdpRepr { src_port: tuple.src_port, dst_port: tuple.dst_port }),
            tcp: None,
            netcache: None,
            payload_len,
        },
    };
    pkt.emit()
}

/// Build a NetCache request frame (UDP to the cache port, no payload).
pub fn netcache_frame(tuple: &FiveTuple, op: netpkt::CacheOp, key: u64, value: u32) -> Vec<u8> {
    ParsedPacket {
        ethernet: EthernetRepr {
            dst: Mac::from_host_id(1),
            src: Mac::from_host_id(u32::from_be_bytes(tuple.src_addr.octets())),
            ethertype: EtherType::Ipv4,
        },
        ipv4: Some(Ipv4Repr {
            src_addr: tuple.src_addr,
            dst_addr: tuple.dst_addr,
            protocol: IpProtocol::Udp,
            ttl: 64,
            dscp: 0,
            ecn: 0,
        }),
        udp: Some(UdpRepr { src_port: tuple.src_port, dst_port: netpkt::NETCACHE_PORT }),
        tcp: None,
        netcache: Some(NetCacheRepr { op, key, value }),
        payload_len: 0,
    }
    .emit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flows_are_distinct_and_seeded() {
        let a = make_flows(7, 512, 0.8);
        let b = make_flows(7, 512, 0.8);
        assert_eq!(a.len(), 512);
        assert_eq!(a[0].tuple, b[0].tuple, "same seed → same flows");
        let distinct: std::collections::HashSet<_> = a.iter().map(|f| f.tuple).collect();
        assert_eq!(distinct.len(), 512);
    }

    #[test]
    fn tcp_fraction_respected() {
        let flows = make_flows(1, 2000, 0.8);
        let tcp = flows.iter().filter(|f| f.tuple.protocol == 6).count();
        assert!((1400..=1800).contains(&tcp), "tcp count {tcp}");
    }

    #[test]
    fn zipf_sampler_is_head_heavy() {
        let mut flows = make_flows(2, 100, 0.5);
        zipf_weights(&mut flows, 1.2);
        let sampler = FlowSampler::new(&flows);
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = vec![0usize; flows.len()];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50] * 5, "rank 0 {} vs rank 50 {}", counts[0], counts[50]);
        assert!(counts[0] > counts[10]);
    }

    #[test]
    fn frames_parse_back() {
        let flows = make_flows(3, 4, 0.5);
        for f in &flows {
            let frame = frame_for(&f.tuple, 100);
            let parsed = ParsedPacket::parse(&frame).unwrap();
            assert_eq!(parsed.five_tuple().unwrap(), f.tuple);
            assert_eq!(parsed.payload_len, 100);
        }
    }

    #[test]
    fn netcache_frames_carry_cache_header() {
        let flows = make_flows(4, 1, 0.0);
        let frame = netcache_frame(&flows[0].tuple, netpkt::CacheOp::Read, 0x8888, 0);
        let parsed = ParsedPacket::parse(&frame).unwrap();
        assert_eq!(parsed.netcache.unwrap().key, 0x8888);
        assert_eq!(parsed.udp.unwrap().dst_port, netpkt::NETCACHE_PORT);
    }
}
