//! # p4rp-lang — the P4runpro runtime programming language
//!
//! The language of §3.2 / Appendix B of the paper: memory annotations,
//! `program` declarations with ternary traffic filters, and the primitive /
//! pseudo-primitive set of Table 3, including `BRANCH` with `case` blocks.
//!
//! * [`lexer`] / [`parser`] — hand-written scanner and recursive-descent
//!   parser for the Figure 15 grammar (the prototype uses Python Lex-Yacc);
//! * [`ast`] — the typed AST, with the register set (`har`/`sar`/`mar`) and
//!   classification helpers the compiler relies on (pseudo, forwarding,
//!   memory-access);
//! * [`typecheck`] — semantic checks: declared memories, power-of-two
//!   sizes, known fields, well-formed branches;
//! * [`pretty`] — canonical printer (round-trips through the parser);
//! * [`loc`] — the Table 1 lines-of-code counting rules.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod loc;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod typecheck;

pub use ast::{Annotation, Case, Filter, Primitive, PrimitiveKind, ProgramDecl, Reg, RegConds, SourceUnit};
pub use error::LangError;
pub use loc::{count_loc, count_loc_excluding_elastic};
pub use parser::parse;
pub use pretty::print_unit;
pub use typecheck::{check, CheckContext};
