//! Language-level errors and diagnostics.

use core::fmt;

/// An error from the lexer, parser, or type checker, carrying a 1-based
/// source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LangError {
    /// Stage.
    pub stage: Stage,
    /// Message.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
/// Stage.
pub enum Stage {
    /// Lex.
    Lex,
    /// Parse.
    Parse,
    /// Check.
    Check,
}

impl LangError {
    /// Lex.
    pub fn lex(message: impl Into<String>, line: u32, col: u32) -> LangError {
        LangError { stage: Stage::Lex, message: message.into(), line, col }
    }

    /// Extract the owned representation from a checked view.
    pub fn parse(message: impl Into<String>, line: u32, col: u32) -> LangError {
        LangError { stage: Stage::Parse, message: message.into(), line, col }
    }

    /// Check.
    pub fn check(message: impl Into<String>, line: u32, col: u32) -> LangError {
        LangError { stage: Stage::Check, message: message.into(), line, col }
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = match self.stage {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Check => "check",
        };
        write!(f, "{stage} error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_position() {
        let e = LangError::parse("expected `;`", 7, 12);
        assert_eq!(e.to_string(), "parse error at 7:12: expected `;`");
    }
}
