//! Tokens of the P4runpro language.

/// A lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// Token kinds. Primitive names are ordinary identifiers at the lexical
/// level; the parser gives them meaning (matching how the paper's PLY-based
/// scanner works).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `program` keyword.
    KwProgram,
    /// `case` keyword.
    KwCase,
    /// An identifier, possibly dotted (`hdr.udp.dst_port`, `mem1`, `har`).
    Ident(String),
    /// An integer literal (decimal, `0x…`, or `0b…`).
    Int(u64),
    /// An IPv4 address literal (`10.0.0.0`), normalized to its u32 value.
    IpAddr(u32),
    /// At.
    At,        // @
    /// LParen.
    LParen,    // (
    /// RParen.
    RParen,    // )
    /// LBrace.
    LBrace,    // {
    /// RBrace.
    RBrace,    // }
    /// Lt.
    Lt,        // <
    /// Gt.
    Gt,        // >
    /// Comma.
    Comma,     // ,
    /// Semi.
    Semi,      // ;
    /// Colon.
    Colon,     // :
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::KwProgram => "`program`".into(),
            TokenKind::KwCase => "`case`".into(),
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::IpAddr(v) => {
                let b = v.to_be_bytes();
                format!("address `{}.{}.{}.{}`", b[0], b[1], b[2], b[3])
            }
            TokenKind::At => "`@`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}
