//! The P4runpro abstract syntax tree.
//!
//! Mirrors Table 3 (primitives and pseudo primitives) and the Figure 15
//! grammar. Each primitive carries its source line for diagnostics and for
//! the compiler's error reporting.

/// The three PHV "registers" of the P4runpro data plane (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Reg {
    /// Hash register.
    Har,
    /// Stateful-ALU register.
    Sar,
    /// Memory-address register.
    Mar,
}

impl Reg {
    /// `ALL`.
    pub const ALL: [Reg; 3] = [Reg::Har, Reg::Sar, Reg::Mar];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Har => "har",
            Reg::Sar => "sar",
            Reg::Mar => "mar",
        }
    }

    /// From name.
    pub fn from_name(s: &str) -> Option<Reg> {
        match s {
            "har" => Some(Reg::Har),
            "sar" => Some(Reg::Sar),
            "mar" => Some(Reg::Mar),
            _ => None,
        }
    }
}

/// A whole source unit: annotations then programs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceUnit {
    /// Annotations.
    pub annotations: Vec<Annotation>,
    /// Programs.
    pub programs: Vec<ProgramDecl>,
}

/// `@ IDENTIFIER INT` — a virtual memory block request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Human-readable name.
    pub name: String,
    /// Number of 32-bit buckets (must be a power of two — checked by the
    /// type checker, required by the mask-based address translation).
    pub size: u64,
    /// 1-based source line.
    pub line: u32,
}

/// `program NAME (filter, …) { … }`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramDecl {
    /// Human-readable name.
    pub name: String,
    /// Filters.
    pub filters: Vec<Filter>,
    /// Body.
    pub body: Vec<Primitive>,
    /// 1-based source line.
    pub line: u32,
}

/// A traffic filter `<FIELD, VALUE, MASK>` (ternary match on a header or
/// metadata field; §4.1.1 flow filtering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// Field.
    pub field: String,
    /// Value.
    pub value: u64,
    /// Mask.
    pub mask: u64,
}

/// Conditions of one `case`: an optional `(value, mask)` per register.
/// `None` is don't-care. Conditions may be written named
/// (`<sar, 0, 0xffffffff>`) or positional (`<0, 0xffffffff>` in har, sar,
/// mar order) — the parser normalizes both forms into this struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegConds {
    /// Har.
    pub har: Option<(u32, u32)>,
    /// Sar.
    pub sar: Option<(u32, u32)>,
    /// Mar.
    pub mar: Option<(u32, u32)>,
}

impl RegConds {
    /// Get.
    pub fn get(&self, reg: Reg) -> Option<(u32, u32)> {
        match reg {
            Reg::Har => self.har,
            Reg::Sar => self.sar,
            Reg::Mar => self.mar,
        }
    }

    /// Set.
    pub fn set(&mut self, reg: Reg, value: u32, mask: u32) {
        let slot = match reg {
            Reg::Har => &mut self.har,
            Reg::Sar => &mut self.sar,
            Reg::Mar => &mut self.mar,
        };
        *slot = Some((value, mask));
    }
}

/// One `case (conds) { body }` block of a BRANCH.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// Conds.
    pub conds: RegConds,
    /// Body.
    pub body: Vec<Primitive>,
    /// 1-based source line.
    pub line: u32,
}

/// A primitive (or pseudo primitive) invocation. Variants mirror Table 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrimitiveKind {
    // -- Header interaction ------------------------------------------------
    /// `EXTRACT(field, reg)`: reg = field.
    /// Extract.
    Extract { field: String, reg: Reg },
    /// `MODIFY(field, reg)`: field = reg.
    /// Modify.
    Modify { field: String, reg: Reg },

    // -- Hash ---------------------------------------------------------------
    /// `HASH_5_TUPLE`: har = hash(5-tuple).
    Hash5Tuple,
    /// `HASH`: har = hash(har).
    Hash,
    /// `HASH_5_TUPLE_MEM(mid)`: mar = (bit<width>) hash(5-tuple).
    /// Hash5TupleMem.
    Hash5TupleMem { mem: String },
    /// `HASH_MEM(mid)`: mar = (bit<width>) hash(har).
    /// HashMem.
    HashMem { mem: String },

    // -- Conditional branch --------------------------------------------------
    /// `BRANCH: case+;`
    /// Branch.
    Branch { cases: Vec<Case> },

    // -- Memory ---------------------------------------------------------------
    /// `MEMADD(mid)`: mid\[mar\] += sar; sar = new value.
    /// MemAdd.
    MemAdd { mem: String },
    /// `MEMSUB(mid)`: mid\[mar\] -= sar; sar = new value.
    /// MemSub.
    MemSub { mem: String },
    /// `MEMAND(mid)`: mid\[mar\] &= sar; sar = new value.
    /// MemAnd.
    MemAnd { mem: String },
    /// `MEMOR(mid)`: sar = old value; mid\[mar\] |= sar.
    /// MemOr.
    MemOr { mem: String },
    /// `MEMREAD(mid)`: sar = mid\[mar\].
    /// MemRead.
    MemRead { mem: String },
    /// `MEMWRITE(mid)`: mid\[mar\] = sar.
    /// MemWrite.
    MemWrite { mem: String },
    /// `MEMMAX(mid)`: mid\[mar\] = sar if sar > mid\[mar\].
    /// MemMax.
    MemMax { mem: String },

    // -- Arithmetic & logic (hardware) ----------------------------------------
    /// `LOADI(reg, i)`: reg = i.
    /// LoadI.
    LoadI { reg: Reg, imm: u32 },
    /// `ADD(reg0, reg1)`: reg0 += reg1.
    /// Add.
    Add { a: Reg, b: Reg },
    /// `AND(reg0, reg1)`.
    /// And.
    And { a: Reg, b: Reg },
    /// `OR(reg0, reg1)`.
    /// Or.
    Or { a: Reg, b: Reg },
    /// `MAX(reg0, reg1)`: reg0 = max(reg0, reg1).
    /// Max.
    Max { a: Reg, b: Reg },
    /// `MIN(reg0, reg1)`: reg0 = min(reg0, reg1).
    /// Min.
    Min { a: Reg, b: Reg },
    /// `XOR(reg0, reg1)`.
    /// Xor.
    Xor { a: Reg, b: Reg },

    // -- Arithmetic & logic (pseudo, Figure 14) --------------------------------
    /// `MOVE(reg0, reg1)`: reg0 = reg1.
    /// Move.
    Move { a: Reg, b: Reg },
    /// `NOT(reg)`: reg = ~reg.
    /// Not.
    Not { reg: Reg },
    /// `SUB(reg0, reg1)`: reg0 -= reg1.
    /// Sub.
    Sub { a: Reg, b: Reg },
    /// `EQUAL(reg0, reg1)`: reg0 = 0 iff reg0 == reg1.
    /// Equal.
    Equal { a: Reg, b: Reg },
    /// `SGT(reg0, reg1)`: reg0 = 0 iff reg0 >= reg1.
    /// Sgt.
    Sgt { a: Reg, b: Reg },
    /// `SLT(reg0, reg1)`: reg0 = 0 iff reg0 <= reg1.
    /// Slt.
    Slt { a: Reg, b: Reg },
    /// `ADDI(reg, i)`.
    /// AddI.
    AddI { reg: Reg, imm: u32 },
    /// `ANDI(reg, i)`.
    /// AndI.
    AndI { reg: Reg, imm: u32 },
    /// `XORI(reg, i)`.
    /// XorI.
    XorI { reg: Reg, imm: u32 },
    /// `SUBI(reg, i)`.
    /// SubI.
    SubI { reg: Reg, imm: u32 },

    // -- Forwarding --------------------------------------------------------------
    /// `FORWARD(port)`.
    /// Forward.
    Forward { port: u16 },
    /// `MULTICAST(group)` — the §7 extension: replicate to a traffic-
    /// manager multicast group (enables SwitchML-style aggregation).
    /// Multicast.
    Multicast { group: u16 },
    /// `DROP`.
    Drop,
    /// `RETURN`: reflect out the ingress port.
    Return,
    /// `REPORT`: copy to the CPU.
    Report,

    /// Internal no-op (inserted by the compiler for memory alignment; not
    /// part of the surface syntax).
    Nop,
}

/// A primitive with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Primitive {
    /// Kind.
    pub kind: PrimitiveKind,
    /// 1-based source line.
    pub line: u32,
}

impl PrimitiveKind {
    /// Is this a pseudo primitive (translated by the compiler, Figure 14)?
    pub fn is_pseudo(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Move { .. }
                | PrimitiveKind::Not { .. }
                | PrimitiveKind::Sub { .. }
                | PrimitiveKind::Equal { .. }
                | PrimitiveKind::Sgt { .. }
                | PrimitiveKind::Slt { .. }
                | PrimitiveKind::AddI { .. }
                | PrimitiveKind::AndI { .. }
                | PrimitiveKind::XorI { .. }
                | PrimitiveKind::SubI { .. }
        )
    }

    /// Is this a forwarding primitive (only executable in ingress RPBs —
    /// allocation constraint (4))?
    pub fn is_forwarding(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::Forward { .. }
                | PrimitiveKind::Multicast { .. }
                | PrimitiveKind::Drop
                | PrimitiveKind::Return
                | PrimitiveKind::Report
        )
    }

    /// The virtual memory identifier this primitive operates on, if any.
    pub fn memory(&self) -> Option<&str> {
        match self {
            PrimitiveKind::Hash5TupleMem { mem }
            | PrimitiveKind::HashMem { mem }
            | PrimitiveKind::MemAdd { mem }
            | PrimitiveKind::MemSub { mem }
            | PrimitiveKind::MemAnd { mem }
            | PrimitiveKind::MemOr { mem }
            | PrimitiveKind::MemRead { mem }
            | PrimitiveKind::MemWrite { mem }
            | PrimitiveKind::MemMax { mem } => Some(mem),
            _ => None,
        }
    }

    /// Is this a memory-access primitive (reads or writes a bucket —
    /// excludes the hash/address-setup primitives)?
    pub fn is_memory_access(&self) -> bool {
        matches!(
            self,
            PrimitiveKind::MemAdd { .. }
                | PrimitiveKind::MemSub { .. }
                | PrimitiveKind::MemAnd { .. }
                | PrimitiveKind::MemOr { .. }
                | PrimitiveKind::MemRead { .. }
                | PrimitiveKind::MemWrite { .. }
                | PrimitiveKind::MemMax { .. }
        )
    }

    /// The surface name of the primitive (for diagnostics and printing).
    pub fn name(&self) -> &'static str {
        match self {
            PrimitiveKind::Extract { .. } => "EXTRACT",
            PrimitiveKind::Modify { .. } => "MODIFY",
            PrimitiveKind::Hash5Tuple => "HASH_5_TUPLE",
            PrimitiveKind::Hash => "HASH",
            PrimitiveKind::Hash5TupleMem { .. } => "HASH_5_TUPLE_MEM",
            PrimitiveKind::HashMem { .. } => "HASH_MEM",
            PrimitiveKind::Branch { .. } => "BRANCH",
            PrimitiveKind::MemAdd { .. } => "MEMADD",
            PrimitiveKind::MemSub { .. } => "MEMSUB",
            PrimitiveKind::MemAnd { .. } => "MEMAND",
            PrimitiveKind::MemOr { .. } => "MEMOR",
            PrimitiveKind::MemRead { .. } => "MEMREAD",
            PrimitiveKind::MemWrite { .. } => "MEMWRITE",
            PrimitiveKind::MemMax { .. } => "MEMMAX",
            PrimitiveKind::LoadI { .. } => "LOADI",
            PrimitiveKind::Add { .. } => "ADD",
            PrimitiveKind::And { .. } => "AND",
            PrimitiveKind::Or { .. } => "OR",
            PrimitiveKind::Max { .. } => "MAX",
            PrimitiveKind::Min { .. } => "MIN",
            PrimitiveKind::Xor { .. } => "XOR",
            PrimitiveKind::Move { .. } => "MOVE",
            PrimitiveKind::Not { .. } => "NOT",
            PrimitiveKind::Sub { .. } => "SUB",
            PrimitiveKind::Equal { .. } => "EQUAL",
            PrimitiveKind::Sgt { .. } => "SGT",
            PrimitiveKind::Slt { .. } => "SLT",
            PrimitiveKind::AddI { .. } => "ADDI",
            PrimitiveKind::AndI { .. } => "ANDI",
            PrimitiveKind::XorI { .. } => "XORI",
            PrimitiveKind::SubI { .. } => "SUBI",
            PrimitiveKind::Forward { .. } => "FORWARD",
            PrimitiveKind::Multicast { .. } => "MULTICAST",
            PrimitiveKind::Drop => "DROP",
            PrimitiveKind::Return => "RETURN",
            PrimitiveKind::Report => "REPORT",
            PrimitiveKind::Nop => "NOP",
        }
    }
}

impl ProgramDecl {
    /// Walk every primitive in the program (depth-first through branches).
    pub fn visit_primitives<'a>(&'a self, f: &mut impl FnMut(&'a Primitive)) {
        fn walk<'a>(prims: &'a [Primitive], f: &mut impl FnMut(&'a Primitive)) {
            for p in prims {
                f(p);
                if let PrimitiveKind::Branch { cases } = &p.kind {
                    for c in cases {
                        walk(&c.body, f);
                    }
                }
            }
        }
        walk(&self.body, f);
    }

    /// All virtual memory identifiers referenced by this program.
    pub fn referenced_memories(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit_primitives(&mut |p| {
            if let Some(m) = p.kind.memory() {
                if !out.iter().any(|x| x == m) {
                    out.push(m.to_string());
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_names_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_name(r.name()), Some(r));
        }
        assert_eq!(Reg::from_name("xyz"), None);
    }

    #[test]
    fn classification_predicates() {
        assert!(PrimitiveKind::Move { a: Reg::Har, b: Reg::Sar }.is_pseudo());
        assert!(!PrimitiveKind::Add { a: Reg::Har, b: Reg::Sar }.is_pseudo());
        assert!(PrimitiveKind::Drop.is_forwarding());
        assert!(!PrimitiveKind::Hash.is_forwarding());
        assert!(PrimitiveKind::MemRead { mem: "m".into() }.is_memory_access());
        assert!(!PrimitiveKind::HashMem { mem: "m".into() }.is_memory_access());
        assert_eq!(PrimitiveKind::HashMem { mem: "m".into() }.memory(), Some("m"));
    }

    #[test]
    fn visit_walks_nested_branches() {
        let inner = Primitive { kind: PrimitiveKind::Drop, line: 3 };
        let branch = Primitive {
            kind: PrimitiveKind::Branch {
                cases: vec![Case { conds: RegConds::default(), body: vec![inner], line: 2 }],
            },
            line: 2,
        };
        let prog = ProgramDecl {
            name: "p".into(),
            filters: vec![],
            body: vec![Primitive { kind: PrimitiveKind::Hash, line: 1 }, branch],
            line: 1,
        };
        let mut names = Vec::new();
        prog.visit_primitives(&mut |p| names.push(p.kind.name()));
        assert_eq!(names, vec!["HASH", "BRANCH", "DROP"]);
    }

    #[test]
    fn referenced_memories_dedup() {
        let prog = ProgramDecl {
            name: "p".into(),
            filters: vec![],
            body: vec![
                Primitive { kind: PrimitiveKind::MemAdd { mem: "a".into() }, line: 1 },
                Primitive { kind: PrimitiveKind::MemRead { mem: "a".into() }, line: 2 },
                Primitive { kind: PrimitiveKind::MemOr { mem: "b".into() }, line: 3 },
            ],
            line: 1,
        };
        assert_eq!(prog.referenced_memories(), vec!["a".to_string(), "b".to_string()]);
    }
}
