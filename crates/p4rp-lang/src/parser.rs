//! Recursive-descent parser for the Figure 15 grammar.
//!
//! ```text
//! start      ::= annotation* program+
//! annotation ::= @ IDENTIFIER INT
//! program    ::= program IDENTIFIER ( filter , filter* ) { primitive* }
//! filter     ::= < FIELD , VALUE , MASK >
//! primitive  ::= BRANCH : case+ ;
//!              | PRIMITIVE_WITH_ARG ( argument , argument* ) ;
//!              | OTHER_PRIMITIVE ;
//! case       ::= case ( condition+ ) { primitive* } ;?
//! condition  ::= < VALUE , MASK > | < REGISTER , VALUE , MASK >
//! ```
//!
//! Conditions support both the positional form of the grammar (`<value,
//! mask>` in har/sar/mar order) and the named form the paper's example
//! programs use (`<sar, 0, 0xffffffff>`, Figures 16/17).

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};

/// Parse a full source unit.
pub fn parse(src: &str) -> Result<SourceUnit, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    p.source_unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token, LangError> {
        let t = self.peek().clone();
        if &t.kind == kind {
            Ok(self.advance())
        } else {
            Err(LangError::parse(
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
                t.line,
                t.col,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, u32, u32), LangError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Ident(name) => {
                self.advance();
                Ok((name, t.line, t.col))
            }
            other => Err(LangError::parse(
                format!("expected identifier, found {}", other.describe()),
                t.line,
                t.col,
            )),
        }
    }

    /// An integer or IPv4-address literal, as a u64.
    fn expect_value(&mut self) -> Result<u64, LangError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(v) => {
                self.advance();
                Ok(v)
            }
            TokenKind::IpAddr(v) => {
                self.advance();
                Ok(u64::from(v))
            }
            other => Err(LangError::parse(
                format!("expected value, found {}", other.describe()),
                t.line,
                t.col,
            )),
        }
    }

    fn source_unit(&mut self) -> Result<SourceUnit, LangError> {
        let mut unit = SourceUnit::default();
        while self.peek().kind == TokenKind::At {
            unit.annotations.push(self.annotation()?);
        }
        while self.peek().kind == TokenKind::KwProgram {
            unit.programs.push(self.program()?);
        }
        if unit.programs.is_empty() {
            let t = self.peek();
            return Err(LangError::parse("expected at least one `program`", t.line, t.col));
        }
        self.expect(&TokenKind::Eof)?;
        Ok(unit)
    }

    fn annotation(&mut self) -> Result<Annotation, LangError> {
        let at = self.expect(&TokenKind::At)?;
        let (name, ..) = self.expect_ident()?;
        let size = self.expect_value()?;
        Ok(Annotation { name, size, line: at.line })
    }

    fn program(&mut self) -> Result<ProgramDecl, LangError> {
        let kw = self.expect(&TokenKind::KwProgram)?;
        let (name, ..) = self.expect_ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut filters = vec![self.filter()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            filters.push(self.filter()?);
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let body = self.primitive_list()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(ProgramDecl { name, filters, body, line: kw.line })
    }

    fn filter(&mut self) -> Result<Filter, LangError> {
        self.expect(&TokenKind::Lt)?;
        let (field, ..) = self.expect_ident()?;
        self.expect(&TokenKind::Comma)?;
        let value = self.expect_value()?;
        self.expect(&TokenKind::Comma)?;
        let mask = self.expect_value()?;
        self.expect(&TokenKind::Gt)?;
        Ok(Filter { field, value, mask })
    }

    fn primitive_list(&mut self) -> Result<Vec<Primitive>, LangError> {
        let mut out = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::RBrace | TokenKind::Eof => break,
                // Stray semicolons between primitives are tolerated (the
                // example programs end case lists with `};`).
                TokenKind::Semi => {
                    self.advance();
                }
                _ => out.push(self.primitive()?),
            }
        }
        Ok(out)
    }

    fn primitive(&mut self) -> Result<Primitive, LangError> {
        let (name, line, col) = self.expect_ident()?;
        let kind = match name.as_str() {
            "BRANCH" => {
                self.expect(&TokenKind::Colon)?;
                let mut cases = Vec::new();
                while self.peek().kind == TokenKind::KwCase {
                    cases.push(self.case()?);
                    if self.peek().kind == TokenKind::Semi {
                        self.advance();
                    }
                }
                if cases.is_empty() {
                    return Err(LangError::parse("BRANCH requires at least one case", line, col));
                }
                PrimitiveKind::Branch { cases }
            }
            "DROP" => self.bare(PrimitiveKind::Drop)?,
            "RETURN" => self.bare(PrimitiveKind::Return)?,
            "REPORT" => self.bare(PrimitiveKind::Report)?,
            "HASH_5_TUPLE" => self.bare(PrimitiveKind::Hash5Tuple)?,
            "HASH" => self.bare(PrimitiveKind::Hash)?,
            "NOP" => self.bare(PrimitiveKind::Nop)?,
            "EXTRACT" | "MODIFY" => {
                let (args_line, args_col) = (line, col);
                self.expect(&TokenKind::LParen)?;
                let (field, ..) = self.expect_ident()?;
                self.expect(&TokenKind::Comma)?;
                let reg = self.reg()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                if name == "EXTRACT" {
                    PrimitiveKind::Extract { field, reg }
                } else {
                    let _ = (args_line, args_col);
                    PrimitiveKind::Modify { field, reg }
                }
            }
            "HASH_5_TUPLE_MEM" | "HASH_MEM" | "MEMADD" | "MEMSUB" | "MEMAND" | "MEMOR"
            | "MEMREAD" | "MEMWRITE" | "MEMMAX" => {
                self.expect(&TokenKind::LParen)?;
                let (mem, ..) = self.expect_ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                match name.as_str() {
                    "HASH_5_TUPLE_MEM" => PrimitiveKind::Hash5TupleMem { mem },
                    "HASH_MEM" => PrimitiveKind::HashMem { mem },
                    "MEMADD" => PrimitiveKind::MemAdd { mem },
                    "MEMSUB" => PrimitiveKind::MemSub { mem },
                    "MEMAND" => PrimitiveKind::MemAnd { mem },
                    "MEMOR" => PrimitiveKind::MemOr { mem },
                    "MEMREAD" => PrimitiveKind::MemRead { mem },
                    "MEMWRITE" => PrimitiveKind::MemWrite { mem },
                    "MEMMAX" => PrimitiveKind::MemMax { mem },
                    _ => unreachable!(),
                }
            }
            "LOADI" | "ADDI" | "ANDI" | "XORI" | "SUBI" => {
                self.expect(&TokenKind::LParen)?;
                let reg = self.reg()?;
                self.expect(&TokenKind::Comma)?;
                let imm64 = self.expect_value()?;
                let imm = u32::try_from(imm64).map_err(|_| {
                    LangError::parse(format!("immediate {imm64} exceeds 32 bits"), line, col)
                })?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                match name.as_str() {
                    "LOADI" => PrimitiveKind::LoadI { reg, imm },
                    "ADDI" => PrimitiveKind::AddI { reg, imm },
                    "ANDI" => PrimitiveKind::AndI { reg, imm },
                    "XORI" => PrimitiveKind::XorI { reg, imm },
                    "SUBI" => PrimitiveKind::SubI { reg, imm },
                    _ => unreachable!(),
                }
            }
            "ADD" | "AND" | "OR" | "MAX" | "MIN" | "XOR" | "MOVE" | "SUB" | "EQUAL" | "SGT"
            | "SLT" => {
                self.expect(&TokenKind::LParen)?;
                let a = self.reg()?;
                self.expect(&TokenKind::Comma)?;
                let b = self.reg()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                match name.as_str() {
                    "ADD" => PrimitiveKind::Add { a, b },
                    "AND" => PrimitiveKind::And { a, b },
                    "OR" => PrimitiveKind::Or { a, b },
                    "MAX" => PrimitiveKind::Max { a, b },
                    "MIN" => PrimitiveKind::Min { a, b },
                    "XOR" => PrimitiveKind::Xor { a, b },
                    "MOVE" => PrimitiveKind::Move { a, b },
                    "SUB" => PrimitiveKind::Sub { a, b },
                    "EQUAL" => PrimitiveKind::Equal { a, b },
                    "SGT" => PrimitiveKind::Sgt { a, b },
                    "SLT" => PrimitiveKind::Slt { a, b },
                    _ => unreachable!(),
                }
            }
            "NOT" => {
                self.expect(&TokenKind::LParen)?;
                let reg = self.reg()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                PrimitiveKind::Not { reg }
            }
            "FORWARD" | "MULTICAST" => {
                self.expect(&TokenKind::LParen)?;
                let v64 = self.expect_value()?;
                let v = u16::try_from(v64).map_err(|_| {
                    LangError::parse(format!("value {v64} exceeds 16 bits"), line, col)
                })?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                if name == "FORWARD" {
                    PrimitiveKind::Forward { port: v }
                } else {
                    if v == 0 {
                        return Err(LangError::parse("multicast group 0 is reserved", line, col));
                    }
                    PrimitiveKind::Multicast { group: v }
                }
            }
            other => {
                return Err(LangError::parse(format!("unknown primitive `{other}`"), line, col));
            }
        };
        Ok(Primitive { kind, line })
    }

    /// A primitive with no arguments followed by `;`.
    fn bare(&mut self, kind: PrimitiveKind) -> Result<PrimitiveKind, LangError> {
        self.expect(&TokenKind::Semi)?;
        Ok(kind)
    }

    fn reg(&mut self) -> Result<Reg, LangError> {
        let (name, line, col) = self.expect_ident()?;
        Reg::from_name(&name).ok_or_else(|| {
            LangError::parse(format!("expected register (har/sar/mar), found `{name}`"), line, col)
        })
    }

    fn case(&mut self) -> Result<Case, LangError> {
        let kw = self.expect(&TokenKind::KwCase)?;
        self.expect(&TokenKind::LParen)?;
        let mut conds = RegConds::default();
        let mut positional_idx = 0usize;
        loop {
            self.condition(&mut conds, &mut positional_idx)?;
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::LBrace)?;
        let body = self.primitive_list()?;
        self.expect(&TokenKind::RBrace)?;
        Ok(Case { conds, body, line: kw.line })
    }

    /// Parse one `<…>` condition in named or positional form.
    fn condition(&mut self, conds: &mut RegConds, positional_idx: &mut usize) -> Result<(), LangError> {
        let lt = self.expect(&TokenKind::Lt)?;
        // Named form starts with a register identifier.
        let reg = if let TokenKind::Ident(name) = &self.peek().kind {
            let name = name.clone();
            let t = self.peek().clone();
            let Some(r) = Reg::from_name(&name) else {
                return Err(LangError::parse(
                    format!("expected register or value in condition, found `{name}`"),
                    t.line,
                    t.col,
                ));
            };
            self.advance();
            self.expect(&TokenKind::Comma)?;
            r
        } else {
            let r = *Reg::ALL.get(*positional_idx).ok_or_else(|| {
                LangError::parse("too many positional conditions (max 3)", lt.line, lt.col)
            })?;
            *positional_idx += 1;
            r
        };
        let value = self.expect_value()? as u32;
        self.expect(&TokenKind::Comma)?;
        let mask = self.expect_value()? as u32;
        self.expect(&TokenKind::Gt)?;
        if conds.get(reg).is_some() {
            return Err(LangError::parse(
                format!("duplicate condition on register `{}`", reg.name()),
                lt.line,
                lt.col,
            ));
        }
        conds.set(reg, value, mask);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CACHE_SRC: &str = r#"
@ mem1 1024

program cache(
    /*filtering traffic*/
    <hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);   //get opcode
    EXTRACT(hdr.nc.key1, sar); //get key[0:31]
    EXTRACT(hdr.nc.key2, mar); //get key[32:63]
    BRANCH:
    /*cache hit and cache read*/
    case(<har, 0, 0xffffffff>,
         <sar, 0x8888, 0xffffffff>,
         <mar, 0, 0xffffffff>) {
        RETURN;
        LOADI(mar, 512);
        MEMREAD(mem1);
        MODIFY(hdr.nc.value, sar);
    };
    /*cache hit and cache write*/
    case(<har, 1, 0xffffffff>,
         <sar, 0x8888, 0xffffffff>,
         <mar, 0, 0xffffffff>) {
        DROP;
        LOADI(mar, 512);
        EXTRACT(hdr.nc.value, sar);
        MEMWRITE(mem1);
    };
    FORWARD(32); //cache miss
}
"#;

    #[test]
    fn parses_figure2_cache_program() {
        let unit = parse(CACHE_SRC).unwrap();
        assert_eq!(unit.annotations.len(), 1);
        assert_eq!(unit.annotations[0].name, "mem1");
        assert_eq!(unit.annotations[0].size, 1024);
        assert_eq!(unit.programs.len(), 1);
        let prog = &unit.programs[0];
        assert_eq!(prog.name, "cache");
        assert_eq!(prog.filters.len(), 1);
        assert_eq!(prog.filters[0].field, "hdr.udp.dst_port");
        assert_eq!(prog.filters[0].value, 7777);
        assert_eq!(prog.filters[0].mask, 0xffff);
        // 3 EXTRACTs, BRANCH, FORWARD.
        assert_eq!(prog.body.len(), 5);
        let PrimitiveKind::Branch { cases } = &prog.body[3].kind else {
            panic!("4th primitive must be BRANCH");
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(cases[0].conds.har, Some((0, 0xffffffff)));
        assert_eq!(cases[0].conds.sar, Some((0x8888, 0xffffffff)));
        assert_eq!(cases[0].body.len(), 4);
        assert_eq!(prog.body[4].kind, PrimitiveKind::Forward { port: 32 });
    }

    #[test]
    fn positional_conditions_fill_in_register_order() {
        let src = r#"
program p(<hdr.ipv4.dst, 10.0.0.0, 0xffff0000>) {
    BRANCH:
    case(<1, 0xff>, <2, 0xff>) { DROP; };
}
"#;
        let unit = parse(src).unwrap();
        let PrimitiveKind::Branch { cases } = &unit.programs[0].body[0].kind else {
            panic!()
        };
        assert_eq!(cases[0].conds.har, Some((1, 0xff)));
        assert_eq!(cases[0].conds.sar, Some((2, 0xff)));
        assert_eq!(cases[0].conds.mar, None);
    }

    #[test]
    fn ip_filter_value_normalized() {
        let src = "program p(<hdr.ipv4.dst, 10.0.0.0, 0xffff0000>) { DROP; }";
        let unit = parse(src).unwrap();
        assert_eq!(unit.programs[0].filters[0].value, 0x0a000000);
    }

    #[test]
    fn multiple_filters() {
        let src = "program p(<a, 1, 0xff>, <b, 2, 0xff>) { DROP; }";
        let unit = parse(src).unwrap();
        assert_eq!(unit.programs[0].filters.len(), 2);
    }

    #[test]
    fn nested_branch_parses() {
        let src = r#"
program p(<a, 1, 1>) {
    BRANCH:
    case(<sar, 0, 0xffffffff>) {
        BRANCH:
        case(<har, 1, 0xffffffff>) { REPORT; };
    };
}
"#;
        let unit = parse(src).unwrap();
        let PrimitiveKind::Branch { cases } = &unit.programs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(cases[0].body[0].kind, PrimitiveKind::Branch { .. }));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse("program p(<a, 1, 1>) { BOGUS; }").unwrap_err();
        assert!(err.to_string().contains("unknown primitive"));
        let err = parse("program p() { DROP; }").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn branch_requires_cases() {
        assert!(parse("program p(<a, 1, 1>) { BRANCH: ; }").is_err());
    }

    #[test]
    fn duplicate_register_condition_rejected() {
        let src = "program p(<a,1,1>) { BRANCH: case(<sar,0,1>, <sar,1,1>) { DROP; }; }";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("duplicate condition"));
    }

    #[test]
    fn too_many_positional_conditions_rejected() {
        let src = "program p(<a,1,1>) { BRANCH: case(<0,1>, <1,1>, <2,1>, <3,1>) { DROP; }; }";
        assert!(parse(src).is_err());
    }

    #[test]
    fn forward_port_range_checked() {
        assert!(parse("program p(<a,1,1>) { FORWARD(70000); }").is_err());
    }

    #[test]
    fn immediate_width_checked() {
        assert!(parse("program p(<a,1,1>) { LOADI(mar, 0x1ffffffff); }").is_err());
    }

    #[test]
    fn empty_input_needs_program() {
        assert!(parse("").is_err());
        assert!(parse("@ mem1 1024").is_err());
    }

    #[test]
    fn all_two_reg_ops_parse() {
        for op in ["ADD", "AND", "OR", "MAX", "MIN", "XOR", "MOVE", "SUB", "EQUAL", "SGT", "SLT"] {
            let src = format!("program p(<a,1,1>) {{ {op}(har, sar); }}");
            let unit = parse(&src).unwrap_or_else(|e| panic!("{op}: {e}"));
            assert_eq!(unit.programs[0].body.len(), 1);
        }
    }

    #[test]
    fn all_mem_ops_parse() {
        for op in ["MEMADD", "MEMSUB", "MEMAND", "MEMOR", "MEMREAD", "MEMWRITE", "MEMMAX"] {
            let src = format!("@ m 64\nprogram p(<a,1,1>) {{ {op}(m); }}");
            let unit = parse(&src).unwrap_or_else(|e| panic!("{op}: {e}"));
            assert_eq!(unit.programs[0].body[0].kind.memory(), Some("m"));
        }
    }
}
