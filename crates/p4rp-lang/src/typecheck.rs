//! Semantic checks over the parsed AST.
//!
//! The paper's compiler performs "a type check on primitive arguments when
//! generating the AST" (§4.3); argument *shapes* are already enforced
//! structurally by the typed parser, so what remains are the semantic
//! rules:
//!
//! * memory annotations: unique names, power-of-two sizes (required by the
//!   mask-based address translation, §4.1.2 / §7), non-zero, bounded by the
//!   per-stage physical memory;
//! * every memory identifier used by a primitive must be declared;
//! * header/metadata fields referenced by EXTRACT/MODIFY and filters must
//!   exist in the provisioned parser's field set (checked against an
//!   optional field universe, since the data plane fixes the parse graph);
//! * a program must not be empty, and program names must be unique.

use crate::ast::{PrimitiveKind, SourceUnit};
use crate::error::LangError;
use std::collections::HashSet;

/// Context the checker validates against: what the provisioned data plane
/// actually offers.
#[derive(Debug, Clone, Default)]
pub struct CheckContext {
    /// Known header/metadata field names. Empty set = skip field checks
    /// (useful for pure-syntax tooling).
    pub known_fields: HashSet<String>,
    /// Largest virtual memory block a program may request, in buckets.
    /// Zero = unlimited.
    pub max_memory: u64,
}

impl CheckContext {
    /// With fields.
    pub fn with_fields<I: IntoIterator<Item = S>, S: Into<String>>(fields: I) -> CheckContext {
        CheckContext {
            known_fields: fields.into_iter().map(Into::into).collect(),
            max_memory: 0,
        }
    }
}

/// Run all semantic checks; returns every diagnostic rather than stopping
/// at the first.
pub fn check(unit: &SourceUnit, ctx: &CheckContext) -> Result<(), Vec<LangError>> {
    let mut errs = Vec::new();
    let mut mems: HashSet<&str> = HashSet::new();

    for ann in &unit.annotations {
        if !mems.insert(ann.name.as_str()) {
            errs.push(LangError::check(
                format!("duplicate memory annotation `{}`", ann.name),
                ann.line,
                1,
            ));
        }
        if ann.size == 0 || !ann.size.is_power_of_two() {
            errs.push(LangError::check(
                format!(
                    "memory `{}` size {} must be a non-zero power of two (mask-based address translation)",
                    ann.name, ann.size
                ),
                ann.line,
                1,
            ));
        }
        if ctx.max_memory != 0 && ann.size > ctx.max_memory {
            errs.push(LangError::check(
                format!(
                    "memory `{}` size {} exceeds the physical per-stage memory {}",
                    ann.name, ann.size, ctx.max_memory
                ),
                ann.line,
                1,
            ));
        }
    }

    let mut prog_names: HashSet<&str> = HashSet::new();
    for prog in &unit.programs {
        if !prog_names.insert(prog.name.as_str()) {
            errs.push(LangError::check(
                format!("duplicate program name `{}`", prog.name),
                prog.line,
                1,
            ));
        }
        if prog.body.is_empty() {
            errs.push(LangError::check(
                format!("program `{}` has an empty body", prog.name),
                prog.line,
                1,
            ));
        }
        for f in &prog.filters {
            if !ctx.known_fields.is_empty() && !ctx.known_fields.contains(&f.field) {
                errs.push(LangError::check(
                    format!("filter references unknown field `{}`", f.field),
                    prog.line,
                    1,
                ));
            }
        }
        prog.visit_primitives(&mut |p| {
            if let Some(mem) = p.kind.memory() {
                if !mems.contains(mem) {
                    errs.push(LangError::check(
                        format!("use of undeclared memory `{mem}`"),
                        p.line,
                        1,
                    ));
                }
            }
            match &p.kind {
                PrimitiveKind::Extract { field, .. } | PrimitiveKind::Modify { field, .. }
                    if !ctx.known_fields.is_empty() && !ctx.known_fields.contains(field) => {
                        errs.push(LangError::check(
                            format!("unknown field `{field}` (not extracted by the fixed parser)"),
                            p.line,
                            1,
                        ));
                    }
                PrimitiveKind::Branch { cases } => {
                    for c in cases {
                        if c.conds.har.is_none() && c.conds.sar.is_none() && c.conds.mar.is_none()
                        {
                            errs.push(LangError::check(
                                "case with no conditions would shadow all later cases",
                                c.line,
                                1,
                            ));
                        }
                    }
                }
                _ => {}
            }
        });
    }

    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn ctx() -> CheckContext {
        CheckContext::with_fields(["hdr.udp.dst_port", "hdr.nc.op", "hdr.nc.value"])
    }

    fn msgs(errs: Vec<LangError>) -> String {
        errs.iter().map(|e| e.to_string()).collect::<Vec<_>>().join("\n")
    }

    #[test]
    fn valid_program_passes() {
        let unit = parse(
            "@ m 256\nprogram p(<hdr.udp.dst_port, 7777, 0xffff>) { LOADI(mar, 3); MEMREAD(m); }",
        )
        .unwrap();
        check(&unit, &ctx()).unwrap();
    }

    #[test]
    fn non_power_of_two_memory_rejected() {
        let unit = parse("@ m 100\nprogram p(<hdr.udp.dst_port,1,1>) { MEMREAD(m); }").unwrap();
        let errs = check(&unit, &ctx()).unwrap_err();
        assert!(msgs(errs).contains("power of two"));
    }

    #[test]
    fn oversized_memory_rejected() {
        let unit = parse("@ m 131072\nprogram p(<hdr.udp.dst_port,1,1>) { MEMREAD(m); }").unwrap();
        let c = CheckContext { max_memory: 65536, ..ctx() };
        let errs = check(&unit, &c).unwrap_err();
        assert!(msgs(errs).contains("exceeds"));
    }

    #[test]
    fn undeclared_memory_rejected() {
        let unit = parse("program p(<hdr.udp.dst_port,1,1>) { MEMREAD(ghost); }").unwrap();
        let errs = check(&unit, &ctx()).unwrap_err();
        assert!(msgs(errs).contains("undeclared memory `ghost`"));
    }

    #[test]
    fn unknown_field_rejected() {
        let unit = parse("program p(<hdr.udp.dst_port,1,1>) { EXTRACT(hdr.bogus.x, har); }").unwrap();
        let errs = check(&unit, &ctx()).unwrap_err();
        assert!(msgs(errs).contains("unknown field"));
    }

    #[test]
    fn unknown_filter_field_rejected() {
        let unit = parse("program p(<hdr.bogus.y, 1, 1>) { DROP; }").unwrap();
        let errs = check(&unit, &ctx()).unwrap_err();
        assert!(msgs(errs).contains("unknown field"));
    }

    #[test]
    fn empty_field_universe_skips_field_checks() {
        let unit = parse("program p(<anything.goes, 1, 1>) { EXTRACT(whatever, har); DROP; }").unwrap();
        check(&unit, &CheckContext::default()).unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let unit = parse(
            "@ m 8\n@ m 8\nprogram p(<hdr.udp.dst_port,1,1>) { DROP; }\nprogram p(<hdr.udp.dst_port,1,1>) { DROP; }",
        )
        .unwrap();
        let errs = check(&unit, &ctx()).unwrap_err();
        let s = msgs(errs);
        assert!(s.contains("duplicate memory annotation"));
        assert!(s.contains("duplicate program name"));
    }

    #[test]
    fn unconditional_case_rejected() {
        // A case with zero conditions can only arise from the named form
        // being skipped entirely; construct it via AST to test the rule.
        let mut unit = parse("program p(<hdr.udp.dst_port,1,1>) { BRANCH: case(<sar,0,1>) { DROP; }; }").unwrap();
        if let PrimitiveKind::Branch { cases } = &mut unit.programs[0].body[0].kind {
            cases[0].conds = Default::default();
        }
        let errs = check(&unit, &ctx()).unwrap_err();
        assert!(msgs(errs).contains("no conditions"));
    }

    #[test]
    fn all_errors_reported_not_just_first() {
        let unit = parse(
            "@ m 100\nprogram p(<hdr.udp.dst_port,1,1>) { MEMREAD(ghost); EXTRACT(hdr.bogus.x, har); }",
        )
        .unwrap();
        let errs = check(&unit, &ctx()).unwrap_err();
        assert!(errs.len() >= 3, "expected 3+ diagnostics, got {}", errs.len());
    }
}
