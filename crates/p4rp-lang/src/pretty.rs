//! Pretty-printer: AST → canonical P4runpro source.
//!
//! The printer emits a canonical form (named conditions, one primitive per
//! line) that re-parses to an identical AST — the property the round-trip
//! tests rely on.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole source unit.
pub fn print_unit(unit: &SourceUnit) -> String {
    let mut out = String::new();
    for ann in &unit.annotations {
        let _ = writeln!(out, "@ {} {}", ann.name, ann.size);
    }
    for prog in &unit.programs {
        if !out.is_empty() {
            out.push('\n');
        }
        let filters = prog
            .filters
            .iter()
            .map(|f| format!("<{}, {}, 0x{:x}>", f.field, f.value, f.mask))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "program {}({}) {{", prog.name, filters);
        print_body(&mut out, &prog.body, 1);
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_body(out: &mut String, prims: &[Primitive], level: usize) {
    for p in prims {
        print_primitive(out, &p.kind, level);
    }
}

fn print_primitive(out: &mut String, kind: &PrimitiveKind, level: usize) {
    indent(out, level);
    match kind {
        PrimitiveKind::Branch { cases } => {
            out.push_str("BRANCH:\n");
            for case in cases {
                indent(out, level);
                let mut conds = Vec::new();
                for reg in Reg::ALL {
                    if let Some((v, m)) = case.conds.get(reg) {
                        conds.push(format!("<{}, {}, 0x{:x}>", reg.name(), v, m));
                    }
                }
                let _ = writeln!(out, "case({}) {{", conds.join(", "));
                print_body(out, &case.body, level + 1);
                indent(out, level);
                out.push_str("};\n");
            }
        }
        PrimitiveKind::Extract { field, reg } => {
            let _ = writeln!(out, "EXTRACT({field}, {});", reg.name());
        }
        PrimitiveKind::Modify { field, reg } => {
            let _ = writeln!(out, "MODIFY({field}, {});", reg.name());
        }
        PrimitiveKind::Hash5Tuple => out.push_str("HASH_5_TUPLE;\n"),
        PrimitiveKind::Hash => out.push_str("HASH;\n"),
        PrimitiveKind::Hash5TupleMem { mem } => {
            let _ = writeln!(out, "HASH_5_TUPLE_MEM({mem});");
        }
        PrimitiveKind::HashMem { mem } => {
            let _ = writeln!(out, "HASH_MEM({mem});");
        }
        PrimitiveKind::MemAdd { mem } => {
            let _ = writeln!(out, "MEMADD({mem});");
        }
        PrimitiveKind::MemSub { mem } => {
            let _ = writeln!(out, "MEMSUB({mem});");
        }
        PrimitiveKind::MemAnd { mem } => {
            let _ = writeln!(out, "MEMAND({mem});");
        }
        PrimitiveKind::MemOr { mem } => {
            let _ = writeln!(out, "MEMOR({mem});");
        }
        PrimitiveKind::MemRead { mem } => {
            let _ = writeln!(out, "MEMREAD({mem});");
        }
        PrimitiveKind::MemWrite { mem } => {
            let _ = writeln!(out, "MEMWRITE({mem});");
        }
        PrimitiveKind::MemMax { mem } => {
            let _ = writeln!(out, "MEMMAX({mem});");
        }
        PrimitiveKind::LoadI { reg, imm } => {
            let _ = writeln!(out, "LOADI({}, {imm});", reg.name());
        }
        PrimitiveKind::Add { a, b } => two(out, "ADD", *a, *b),
        PrimitiveKind::And { a, b } => two(out, "AND", *a, *b),
        PrimitiveKind::Or { a, b } => two(out, "OR", *a, *b),
        PrimitiveKind::Max { a, b } => two(out, "MAX", *a, *b),
        PrimitiveKind::Min { a, b } => two(out, "MIN", *a, *b),
        PrimitiveKind::Xor { a, b } => two(out, "XOR", *a, *b),
        PrimitiveKind::Move { a, b } => two(out, "MOVE", *a, *b),
        PrimitiveKind::Sub { a, b } => two(out, "SUB", *a, *b),
        PrimitiveKind::Equal { a, b } => two(out, "EQUAL", *a, *b),
        PrimitiveKind::Sgt { a, b } => two(out, "SGT", *a, *b),
        PrimitiveKind::Slt { a, b } => two(out, "SLT", *a, *b),
        PrimitiveKind::Not { reg } => {
            let _ = writeln!(out, "NOT({});", reg.name());
        }
        PrimitiveKind::AddI { reg, imm } => {
            let _ = writeln!(out, "ADDI({}, {imm});", reg.name());
        }
        PrimitiveKind::AndI { reg, imm } => {
            let _ = writeln!(out, "ANDI({}, {imm});", reg.name());
        }
        PrimitiveKind::XorI { reg, imm } => {
            let _ = writeln!(out, "XORI({}, {imm});", reg.name());
        }
        PrimitiveKind::SubI { reg, imm } => {
            let _ = writeln!(out, "SUBI({}, {imm});", reg.name());
        }
        PrimitiveKind::Forward { port } => {
            let _ = writeln!(out, "FORWARD({port});");
        }
        PrimitiveKind::Multicast { group } => {
            let _ = writeln!(out, "MULTICAST({group});");
        }
        PrimitiveKind::Drop => out.push_str("DROP;\n"),
        PrimitiveKind::Return => out.push_str("RETURN;\n"),
        PrimitiveKind::Report => out.push_str("REPORT;\n"),
        PrimitiveKind::Nop => out.push_str("NOP;\n"),
    }
}

fn two(out: &mut String, name: &str, a: Reg, b: Reg) {
    let _ = writeln!(out, "{name}({}, {});", a.name(), b.name());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strip positions so re-parsed output compares structurally.
    fn strip(unit: &mut SourceUnit) {
        fn strip_prims(prims: &mut [Primitive]) {
            for p in prims {
                p.line = 0;
                if let PrimitiveKind::Branch { cases } = &mut p.kind {
                    for c in cases {
                        c.line = 0;
                        strip_prims(&mut c.body);
                    }
                }
            }
        }
        for a in &mut unit.annotations {
            a.line = 0;
        }
        for p in &mut unit.programs {
            p.line = 0;
            strip_prims(&mut p.body);
        }
    }

    #[test]
    fn roundtrip_cache_like_program() {
        let src = r#"
@ m 64
program p(<hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);
    BRANCH:
    case(<har, 0, 0xffffffff>, <sar, 3, 0xff>) {
        RETURN;
        LOADI(mar, 512);
        MEMREAD(m);
        MODIFY(hdr.nc.value, sar);
    };
    case(<mar, 1, 0xffffffff>) {
        SUBI(sar, 7);
        NOT(har);
    };
    FORWARD(32);
}
"#;
        let mut a = parse(src).unwrap();
        let printed = print_unit(&a);
        let mut b = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        strip(&mut a);
        strip(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn roundtrip_every_primitive() {
        let src = r#"
@ m 8
program all(<f, 1, 1>) {
    EXTRACT(f, har);
    MODIFY(f, sar);
    HASH_5_TUPLE;
    HASH;
    HASH_5_TUPLE_MEM(m);
    HASH_MEM(m);
    MEMADD(m);
    MEMSUB(m);
    MEMAND(m);
    MEMOR(m);
    MEMREAD(m);
    MEMWRITE(m);
    MEMMAX(m);
    LOADI(har, 1);
    ADD(har, sar);
    AND(har, sar);
    OR(har, sar);
    MAX(har, sar);
    MIN(har, sar);
    XOR(har, sar);
    MOVE(har, sar);
    NOT(har);
    SUB(har, sar);
    EQUAL(har, sar);
    SGT(har, sar);
    SLT(har, sar);
    ADDI(har, 2);
    ANDI(har, 3);
    XORI(har, 4);
    SUBI(har, 5);
    FORWARD(9);
    DROP;
    RETURN;
    REPORT;
    NOP;
}
"#;
        let mut a = parse(src).unwrap();
        let printed = print_unit(&a);
        let mut b = parse(&printed).unwrap();
        strip(&mut a);
        strip(&mut b);
        assert_eq!(a, b);
    }
}
