//! The P4runpro scanner.
//!
//! Hand-written (the prototype uses Python Lex-Yacc; a recursive scanner is
//! the idiomatic Rust equivalent). Handles `//` line comments, `/* … */`
//! block comments, decimal/hex/binary integers, IPv4 address literals, and
//! dotted identifiers.

use crate::error::LangError;
use crate::token::{Token, TokenKind};

/// Tokenize a P4runpro source string.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LangError::lex("unterminated block comment", tline, tcol));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'@' => {
                tokens.push(Token { kind: TokenKind::At, line: tline, col: tcol });
                bump!();
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, line: tline, col: tcol });
                bump!();
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, line: tline, col: tcol });
                bump!();
            }
            b'{' => {
                tokens.push(Token { kind: TokenKind::LBrace, line: tline, col: tcol });
                bump!();
            }
            b'}' => {
                tokens.push(Token { kind: TokenKind::RBrace, line: tline, col: tcol });
                bump!();
            }
            b'<' => {
                tokens.push(Token { kind: TokenKind::Lt, line: tline, col: tcol });
                bump!();
            }
            b'>' => {
                tokens.push(Token { kind: TokenKind::Gt, line: tline, col: tcol });
                bump!();
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, line: tline, col: tcol });
                bump!();
            }
            b';' => {
                tokens.push(Token { kind: TokenKind::Semi, line: tline, col: tcol });
                bump!();
            }
            b':' => {
                tokens.push(Token { kind: TokenKind::Colon, line: tline, col: tcol });
                bump!();
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'.' || bytes[i] == b'_')
                {
                    bump!();
                }
                let text = &src[start..i];
                tokens.push(Token { kind: number_or_addr(text, tline, tcol)?, line: tline, col: tcol });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric()
                        || bytes[i] == b'.'
                        || bytes[i] == b'_'
                        || bytes[i] == b'$')
                {
                    bump!();
                }
                let text = &src[start..i];
                let kind = match text {
                    "program" => TokenKind::KwProgram,
                    "case" => TokenKind::KwCase,
                    _ => TokenKind::Ident(text.to_string()),
                };
                tokens.push(Token { kind, line: tline, col: tcol });
            }
            other => {
                return Err(LangError::lex(
                    format!("unexpected character `{}`", other as char),
                    tline,
                    tcol,
                ));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line, col });
    Ok(tokens)
}

/// Classify a digit-initial token: IPv4 address (contains dots), or an
/// integer in decimal / `0x` / `0b` notation.
fn number_or_addr(text: &str, line: u32, col: u32) -> Result<TokenKind, LangError> {
    if text.contains('.') {
        let parts: Vec<&str> = text.split('.').collect();
        if parts.len() != 4 {
            return Err(LangError::lex(format!("malformed address `{text}`"), line, col));
        }
        let mut v: u32 = 0;
        for p in parts {
            let octet: u32 = p
                .parse()
                .ok()
                .filter(|&o| o <= 255)
                .ok_or_else(|| LangError::lex(format!("malformed address `{text}`"), line, col))?;
            v = (v << 8) | octet;
        }
        return Ok(TokenKind::IpAddr(v));
    }
    let lower = text.to_ascii_lowercase();
    
    let (digits, radix) = if let Some(rest) = lower.strip_prefix("0x") {
        (rest, 16)
    } else if let Some(rest) = lower.strip_prefix("0b") {
        (rest, 2)
    } else {
        (lower.as_str(), 10)
    };
    let cleaned: String = digits.replace('_', "");
    u64::from_str_radix(&cleaned, radix)
        .map(TokenKind::Int)
        .map_err(|_| LangError::lex(format!("malformed integer `{text}`"), line, col))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_keywords() {
        assert_eq!(
            kinds("program p ( ) { } ;"),
            vec![
                TokenKind::KwProgram,
                TokenKind::Ident("p".into()),
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn integers_in_all_bases() {
        assert_eq!(
            kinds("42 0xff 0b1101 1_000"),
            vec![
                TokenKind::Int(42),
                TokenKind::Int(255),
                TokenKind::Int(13),
                TokenKind::Int(1000),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn ip_addresses() {
        assert_eq!(kinds("10.0.0.0"), vec![TokenKind::IpAddr(0x0a000000), TokenKind::Eof]);
        assert_eq!(
            kinds("255.255.0.1"),
            vec![TokenKind::IpAddr(0xffff0001), TokenKind::Eof]
        );
        assert!(lex("10.0.0").is_err());
        assert!(lex("10.0.0.999").is_err());
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(
            kinds("hdr.udp.dst_port"),
            vec![TokenKind::Ident("hdr.udp.dst_port".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n b /* block\n over lines */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unexpected_character_reports_position() {
        let err = lex("a ? b").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains('?'), "{msg}");
        assert!(msg.contains("1:3"), "{msg}");
    }

    #[test]
    fn figure2_snippet_lexes() {
        let src = r#"
            @ mem1 1024
            program cache(
                <hdr.udp.dst_port, 7777, 0xffff>) {
                EXTRACT(hdr.nc.op, har); //get opcode
            }
        "#;
        let toks = lex(src).unwrap();
        assert!(toks.iter().any(|t| t.kind == TokenKind::At));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Ident("EXTRACT".into())));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Int(7777)));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Int(0xffff)));
    }
}
