//! Lines-of-code counting, following the paper's Table 1 methodology.
//!
//! §6.1: "we only compare the LoC that comprises the packet processing
//! logic … Elastic case blocks, which do not embody program logic, are
//! excluded from the count." Elastic case blocks are the ones whose
//! *number* varies with configuration (one per cached key, per DIP, …);
//! they correspond to non-constant table entries in the P4 version, which
//! are likewise absent from the P4 LoC. A program source therefore contains
//! one *representative* instance of each elastic block (counting toward the
//! baseline figure, as in Figure 2 → 26 LoC), and the repetitions that real
//! deployments add are never in the source at all.
//!
//! Two counters are provided:
//! * [`count_loc`] — all code lines (blank/comment lines skipped). This is
//!   the Table 1 quantity for the shipped sources.
//! * [`count_loc_excluding_elastic`] — additionally drops case blocks
//!   marked `/*elastic*/`, giving the "pure logic" size used when comparing
//!   against P4 control blocks with zero constant entries.

fn count_impl(src: &str, exclude_elastic: bool) -> usize {
    let mut count = 0usize;
    let mut in_block_comment = false;
    let mut elastic_depth: Option<i32> = None;
    let mut depth: i32 = 0;

    for raw in src.lines() {
        let mut line = raw.to_string();
        if in_block_comment {
            if let Some(end) = line.find("*/") {
                line = line[end + 2..].to_string();
                in_block_comment = false;
            } else {
                continue;
            }
        }
        let is_elastic_marker = line.contains("/*elastic*/");
        // Strip block comments fully contained in the line; detect an
        // unterminated one.
        let mut cleaned = String::new();
        let mut rest = line.as_str();
        loop {
            match rest.find("/*") {
                None => {
                    cleaned.push_str(rest);
                    break;
                }
                Some(start) => {
                    cleaned.push_str(&rest[..start]);
                    match rest[start + 2..].find("*/") {
                        Some(end) => rest = &rest[start + 2 + end + 2..],
                        None => {
                            in_block_comment = true;
                            break;
                        }
                    }
                }
            }
        }
        let code = match cleaned.find("//") {
            Some(i) => &cleaned[..i],
            None => cleaned.as_str(),
        };
        let code = code.trim();

        let opens = code.matches('{').count() as i32;
        let closes = code.matches('}').count() as i32;

        let entering_elastic =
            exclude_elastic && is_elastic_marker && code.starts_with("case") && elastic_depth.is_none();
        let in_elastic = elastic_depth.is_some();
        if !code.is_empty() && !in_elastic && !entering_elastic {
            count += 1;
        }
        if entering_elastic {
            elastic_depth = Some(depth);
        }
        depth += opens - closes;
        if let Some(d) = elastic_depth {
            if depth <= d {
                elastic_depth = None;
            }
        }
    }
    count
}

/// Count all code lines (the Table 1 quantity).
pub fn count_loc(src: &str) -> usize {
    count_impl(src, false)
}

/// Count code lines with `/*elastic*/`-marked case blocks excluded.
pub fn count_loc_excluding_elastic(src: &str) -> usize {
    count_impl(src, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_ignored() {
        let src = "\n// comment\n/* block */\nDROP;\n\n";
        assert_eq!(count_loc(src), 1);
    }

    #[test]
    fn multiline_block_comment_ignored() {
        let src = "/* a\n b\n c */\nDROP;\nRETURN;";
        assert_eq!(count_loc(src), 2);
    }

    #[test]
    fn trailing_comment_still_counts() {
        assert_eq!(count_loc("DROP; // drop it"), 1);
        assert_eq!(count_loc("LOADI(mar, 512); /* addr */"), 1);
    }

    const CACHE: &str = r#"
@ mem1 1024
program cache(
    <hdr.udp.dst_port, 7777, 0xffff>) {
    EXTRACT(hdr.nc.op, har);
    EXTRACT(hdr.nc.key1, sar);
    EXTRACT(hdr.nc.key2, mar);
    BRANCH:
    case(<har, 0, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) { /*elastic*/
        RETURN;
        LOADI(mar, 512);
        MEMREAD(mem1);
        MODIFY(hdr.nc.value, sar);
    };
    case(<har, 1, 0xffffffff>, <sar, 0x8888, 0xffffffff>, <mar, 0, 0xffffffff>) { /*elastic*/
        DROP;
        LOADI(mar, 512);
        EXTRACT(hdr.nc.value, sar);
        MEMWRITE(mem1);
    };
    FORWARD(32);
}
"#;

    #[test]
    fn full_count_includes_one_elastic_instance() {
        // @, program, filter, 3×EXTRACT, BRANCH, 2×(case + 4 prims + };),
        // FORWARD, } = 21 code lines for our formatting.
        assert_eq!(count_loc(CACHE), 21);
    }

    #[test]
    fn elastic_exclusion_drops_whole_blocks() {
        // Remaining: @, program, filter, 3×EXTRACT, BRANCH, FORWARD, }.
        assert_eq!(count_loc_excluding_elastic(CACHE), 9);
    }

    #[test]
    fn elastic_marker_on_non_case_line_is_ignored() {
        assert_eq!(count_loc_excluding_elastic("DROP; /*elastic*/"), 1);
    }

    #[test]
    fn nested_braces_inside_elastic_tracked() {
        let src = r#"
program p(<f, 1, 1>) {
    BRANCH:
    case(<har, 0, 1>) { /*elastic*/
        BRANCH:
        case(<sar, 0, 1>) {
            DROP;
        };
    };
    RETURN;
}
"#;
        // program, BRANCH, RETURN, } — the nested structure inside the
        // elastic block must not terminate the exclusion early.
        assert_eq!(count_loc_excluding_elastic(src), 4);
    }
}
