//! Behavioral tests: each Table-1 program deployed at runtime and
//! exercised with packets, asserting its externally observable function.

use netpkt::{CacheOp, ParsedPacket};
use p4rp_ctl::Controller;
use p4rp_progs::sources;
use traffic::{frame_for, make_flows, netcache_frame};

fn ctl() -> Controller {
    Controller::with_defaults().unwrap()
}

#[test]
fn calculator_computes_all_opcodes() {
    let mut ctl = ctl();
    ctl.deploy(&sources::calculator("calc")).unwrap();
    let flow = make_flows(1, 1, 0.0)[0].tuple;

    // Key layout: key1 = operand b (high word), key2 = operand a (low).
    let pack = |a: u32, b: u32| (u64::from(b) << 32) | u64::from(a);
    for (op, a, b, expect) in [
        (0u8, 7u32, 5u32, 12u32),       // ADD
        (1, 0b1100, 0b1010, 0b1000),    // AND
        (2, 0b1100, 0b1010, 0b1110),    // OR
        (3, 0b1100, 0b1010, 0b0110),    // XOR
        (4, 3, 9, 9),                   // MAX
    ] {
        let frame = netcache_frame(&flow, CacheOp::Unknown(op), pack(a, b), 0);
        let out = ctl.inject(4, &frame).unwrap();
        assert_eq!(out.emitted.len(), 1, "op {op} answered");
        assert_eq!(out.emitted[0].0, 4, "RETURN reflects");
        let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
        assert_eq!(reply.netcache.unwrap().value, expect, "op {op}: {a} ⊕ {b}");
    }
    // Unknown opcode drops.
    let frame = netcache_frame(&flow, CacheOp::Unknown(9), pack(1, 1), 0);
    assert!(ctl.inject(4, &frame).unwrap().dropped);
}

#[test]
fn ecn_marks_ect_packets_only() {
    let mut ctl = ctl();
    ctl.deploy(&sources::ecn("ecn", "<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>"))
        .unwrap();
    let flow = make_flows(2, 1, 0.0)[0].tuple;
    for (ecn_in, ecn_out) in [(0u8, 0u8), (1, 3), (2, 3), (3, 3)] {
        let mut frame = frame_for(&flow, 32);
        // Patch the ECN bits (low 2 bits of the TOS byte) + checksum.
        frame[15] = (frame[15] & 0xfc) | ecn_in;
        frame[24] = 0;
        frame[25] = 0;
        let c = netpkt::checksum::checksum(&frame[14..34]);
        frame[24..26].copy_from_slice(&c.to_be_bytes());
        let out = ctl.inject(0, &frame).unwrap();
        assert_eq!(out.emitted[0].0, 4, "forwarded");
        let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
        assert_eq!(reply.ipv4.unwrap().ecn, ecn_out, "ECN {ecn_in} → {ecn_out}");
    }
}

#[test]
fn tunnel_rewrites_destination() {
    let mut ctl = ctl();
    ctl.deploy(&sources::tunnel(
        "tun",
        "<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>",
        u32::from_be_bytes([192, 0, 2, 1]),
        8,
    ))
    .unwrap();
    let flow = make_flows(3, 1, 0.0)[0].tuple;
    let out = ctl.inject(0, &frame_for(&flow, 64)).unwrap();
    assert_eq!(out.emitted[0].0, 8);
    let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
    assert_eq!(reply.ipv4.unwrap().dst_addr.octets(), [192, 0, 2, 1]);
    // The rewritten header carries a recomputed, valid checksum.
    let ip = netpkt::Ipv4Packet::new_checked(&out.emitted[0].1[14..]).unwrap();
    assert!(ip.checksum_ok());
}

#[test]
fn l2_forwarding_switches_on_mac() {
    let mut ctl = ctl();
    ctl.deploy(&sources::l2_forwarding(
        "l2",
        &[(0x0000_002a, 5), (0x0000_002b, 6)],
    ))
    .unwrap();
    let flow = make_flows(4, 1, 0.0)[0].tuple;
    for (host, port) in [(42u32, 5u16), (43, 6)] {
        let mut frame = frame_for(&flow, 20);
        frame[0..6].copy_from_slice(&netpkt::Mac::from_host_id(host).0);
        let out = ctl.inject(0, &frame).unwrap();
        assert_eq!(out.emitted[0].0, port, "station {host}");
    }
    // Unknown station drops.
    let mut frame = frame_for(&flow, 20);
    frame[0..6].copy_from_slice(&netpkt::Mac::from_host_id(99).0);
    assert!(ctl.inject(0, &frame).unwrap().dropped);
}

#[test]
fn firewall_admits_established_flows_only() {
    let mut ctl = ctl();
    ctl.deploy(&sources::firewall("fw", 31, 1024)).unwrap();
    let flow = make_flows(5, 1, 0.0)[0].tuple;
    let outbound = frame_for(&flow, 40);
    let inbound = frame_for(&flow.reversed(), 40);

    // Unsolicited inbound (external port 40) is dropped.
    let out = ctl.inject(40, &inbound).unwrap();
    assert!(out.dropped, "unsolicited inbound blocked");

    // Outbound from an internal port (< 32) whitelists the flow …
    let out = ctl.inject(3, &outbound).unwrap();
    assert_eq!(out.emitted[0].0, 48, "outbound passes to the uplink");

    // … after which the reverse direction is admitted (symmetric key).
    let out = ctl.inject(40, &inbound).unwrap();
    assert!(!out.dropped, "established flow admitted");
    assert_eq!(out.emitted[0].0, 0, "inbound forwarded to the inside");

    // An unrelated external flow is still blocked.
    let other = make_flows(6, 1, 0.0)[0].tuple;
    assert!(ctl.inject(40, &frame_for(&other, 40)).unwrap().dropped);
}

#[test]
fn dqacc_accumulates_per_flow() {
    let mut ctl = ctl();
    ctl.deploy(&sources::dqacc("dq", "<hdr.udp.dst_port, 7777, 0xffff>", 256))
        .unwrap();
    let flow = make_flows(7, 2, 0.0);
    let mut totals = [0u32; 2];
    for round in 1..=3u32 {
        for (i, f) in flow.iter().enumerate() {
            let frame = netcache_frame(&f.tuple, CacheOp::Read, 0, round * 10);
            let out = ctl.inject(0, &frame).unwrap();
            totals[i] += round * 10;
            assert_eq!(out.emitted[0].0, 16);
            let reply = ParsedPacket::parse(&out.emitted[0].1).unwrap();
            assert_eq!(
                reply.netcache.unwrap().value,
                totals[i],
                "running per-flow aggregate, flow {i} round {round}"
            );
        }
    }
}

#[test]
fn cms_counts_and_bf_remembers() {
    // Overlapping filters would hand every packet to one program (§7:
    // parallel execution of unrelated programs on the same packet is not
    // supported), so cms and bf run on separate switches here.
    let mut ctl_cms = ctl();
    ctl_cms
        .deploy(&sources::cms("cms", "<hdr.ipv4.src, 10.1.0.0, 0xffff0000>", 1024))
        .unwrap();
    let mut ctl_bf = ctl();
    ctl_bf
        .deploy(&sources::bloom("bf", "<hdr.ipv4.dst, 10.2.0.0, 0xffff0000>", 1024))
        .unwrap();
    let flows = make_flows(8, 3, 0.0);
    for f in &flows {
        for _ in 0..5 {
            ctl_cms.inject(0, &frame_for(&f.tuple, 40)).unwrap();
            ctl_bf.inject(0, &frame_for(&f.tuple, 40)).unwrap();
        }
    }
    // CMS row sums equal the packet count (CMS never undercounts).
    let row: Vec<u32> = ctl_cms.read_memory("cms", "cmsa_cms").unwrap();
    assert_eq!(row.iter().map(|&v| u64::from(v)).sum::<u64>(), 15);
    // BF has at most 3 set bits per row (collisions only reduce).
    let bf: Vec<u32> = ctl_bf.read_memory("bf", "bfa_bf").unwrap();
    let set = bf.iter().filter(|&&v| v != 0).count();
    assert!((1..=3).contains(&set), "{set} bits for 3 flows");
}

#[test]
fn sumax_tracks_sum_and_max() {
    let mut ctl = ctl();
    ctl.deploy(&sources::sumax("sm", "<hdr.ipv4.src, 10.1.0.0, 0xffff0000>", 1024))
        .unwrap();
    let flow = make_flows(9, 1, 0.0)[0].tuple;
    let mut sum = 0u64;
    let mut max = 0u64;
    for payload in [100usize, 700, 300] {
        let frame = frame_for(&flow, payload);
        sum += frame.len() as u64;
        max = max.max(frame.len() as u64);
        ctl.inject(0, &frame).unwrap();
    }
    let sums: Vec<u32> = ctl.read_memory("sm", "sum_sm").unwrap();
    let maxes: Vec<u32> = ctl.read_memory("sm", "max_sm").unwrap();
    assert_eq!(sums.iter().map(|&v| u64::from(v)).sum::<u64>(), sum);
    assert_eq!(u64::from(*maxes.iter().max().unwrap()), max);
}

#[test]
fn hll_registers_hold_leading_one_ranks() {
    let mut ctl = ctl();
    ctl.deploy(&sources::hll("hll", "<hdr.ipv4.src, 10.1.0.0, 0xffff0000>", 256))
        .unwrap();
    // 512 distinct flows → register ranks follow the HLL profile: maximum
    // rank grows ~log2(n/m)+const, most registers small but nonzero.
    for f in make_flows(10, 512, 0.5) {
        ctl.inject(0, &frame_for(&f.tuple, 40)).unwrap();
    }
    let regs: Vec<u32> = ctl.read_memory("hll", "hllreg_hll").unwrap();
    let touched = regs.iter().filter(|&&v| v > 0).count();
    assert!(touched > 180, "most of the 256 registers touched: {touched}");
    let max_rank = *regs.iter().max().unwrap();
    assert!((2..=20).contains(&max_rank), "plausible max rank {max_rank}");
    // An HLL cardinality estimate from the registers lands near 512.
    let m = regs.len() as f64;
    let alpha = 0.7213 / (1.0 + 1.079 / m);
    let denom: f64 = regs.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
    let estimate = alpha * m * m / denom;
    assert!(
        (200.0..=1200.0).contains(&estimate),
        "cardinality estimate {estimate:.0} for 512 flows"
    );
}

#[test]
fn netcache_reports_hot_missed_keys() {
    let mut ctl = ctl();
    let src = sources::netcache(
        "nc",
        "<hdr.udp.dst_port, 7777, 0xffff>",
        1024,
        &[(0x8888, 1)],
        4,
    );
    ctl.deploy(&src).unwrap();
    let flow = make_flows(11, 1, 0.0)[0].tuple;

    // The popularity path counts *every* lookup (see the source builder's
    // comment); hits are still answered from the switch, and the hot-key
    // signal fires exactly once when a key crosses the threshold.
    let hit = netcache_frame(&flow, CacheOp::Read, 0x8888, 0);
    let mut hit_reports = 0;
    for _ in 0..6 {
        let out = ctl.inject(0, &hit).unwrap();
        hit_reports += out.reports.len();
        assert_eq!(out.emitted[0].0, 0, "reflected to the client");
    }
    assert_eq!(hit_reports, 1, "the hit key crossed the threshold once");

    // A missed key crossing the popularity threshold reports exactly once
    // and is always forwarded to the server.
    let miss = netcache_frame(&flow, CacheOp::Read, 0x4242, 0);
    let mut reports = 0;
    for _ in 0..8 {
        let out = ctl.inject(0, &miss).unwrap();
        assert_eq!(out.emitted[0].0, 32, "misses go to the server");
        reports += out.reports.len();
    }
    assert_eq!(reports, 1, "hot-key promotion signal fires once");
}
