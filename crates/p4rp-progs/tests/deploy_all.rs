//! Generality test (§6.1): all 15 Table 1 programs deploy concurrently
//! onto one running data plane, and the workload generators sustain
//! repeated deploy/revoke churn.

use p4rp_ctl::Controller;
use p4rp_progs::{catalog_all, instance, Family, Workload, WorkloadParams};

#[test]
fn all_fifteen_programs_coexist() {
    let mut ctl = Controller::with_defaults().unwrap();
    for spec in catalog_all() {
        let reports = ctl
            .deploy(&spec.source)
            .unwrap_or_else(|e| panic!("{} failed to deploy: {e}", spec.name));
        assert_eq!(reports.len(), 1, "{}", spec.name);
        let r = &reports[0];
        assert!(r.update_delay.as_millis_f64() > 0.0, "{}", spec.name);
        assert!(
            r.passes <= 2,
            "{} needed {} passes (R=1 allows 2)",
            spec.name,
            r.passes
        );
    }
    assert_eq!(ctl.deployed_programs().count(), 15);
    // The paper: "Most of them (13 of 15) can be processed without
    // recirculation." Count the single-pass programs.
    let single_pass = ctl
        .deployed_programs()
        .filter(|(_, p)| p.image.passes == 1)
        .count();
    assert!(
        single_pass >= 12,
        "expected most programs single-pass, got {single_pass}/15"
    );

    // Everything revokes cleanly, in arbitrary order.
    let names: Vec<String> = ctl.deployed_programs().map(|(n, _)| n.clone()).collect();
    for name in names {
        ctl.revoke(&name).unwrap();
    }
    assert_eq!(ctl.resources().memory_utilization(), 0.0);
    assert_eq!(ctl.resources().entry_utilization(), 0.0);
}

#[test]
fn workload_instances_deploy_in_bulk() {
    let mut ctl = Controller::with_defaults().unwrap();
    let p = WorkloadParams::default();
    // 30 epochs of the mixed workload (10 of each core family).
    let mut deployed = Vec::new();
    for i in 0..30 {
        let src = Workload::Mixed.program(i, i, p);
        let r = ctl.deploy(&src).unwrap_or_else(|e| panic!("epoch {i}: {e}"));
        deployed.push(r[0].name.clone());
    }
    assert_eq!(ctl.deployed_programs().count(), 30);
    assert!(ctl.resources().entry_utilization() > 0.0);

    // Churn: revoke every other one, deploy replacements.
    for name in deployed.iter().step_by(2) {
        ctl.revoke(name).unwrap();
    }
    for i in 30..45 {
        ctl.deploy(&Workload::Mixed.program(i, i, p)).unwrap();
    }
    assert_eq!(ctl.deployed_programs().count(), 30);
}

#[test]
fn larger_elastic_configs_deploy() {
    let mut ctl = Controller::with_defaults().unwrap();
    let p = WorkloadParams { mem: 1024, elastic: 16 };
    for (i, family) in [Family::Cache, Family::Lb, Family::NetCache].into_iter().enumerate() {
        ctl.deploy(&instance(family, i, p))
            .unwrap_or_else(|e| panic!("{family:?}: {e}"));
    }
    assert_eq!(ctl.deployed_programs().count(), 3);
}

#[test]
#[ignore = "timing probe, run explicitly"]
fn timing_probe() {
    let mut ctl = Controller::with_defaults().unwrap();
    let p = WorkloadParams::default();
    let mut worst = std::time::Duration::ZERO;
    let t0 = std::time::Instant::now();
    let mut count = 0usize;
    for i in 0..200 {
        let src = Workload::Mixed.program(i, i, p);
        match ctl.deploy(&src) {
            Ok(r) => {
                worst = worst.max(r[0].alloc_wall);
                count += 1;
            }
            Err(_) => break,
        }
    }
    println!("deployed {count}, total {:?}, worst alloc {:?}", t0.elapsed(), worst);
}
