//! The Table 1 catalog: the 15 programs with their paper-reported
//! comparison data (P4 control-block LoC, prior systems' update delays).

use crate::sources;

/// Which prior system Table 1 compares a program's update delay against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorSystem {
    /// ActiveRmt.
    ActiveRmt,
    /// FlyMon.
    FlyMon,
}

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct ProgramSpec {
    /// Short name as used in the paper.
    pub name: &'static str,
    /// Source.
    pub source: String,
    /// The equivalent P4 control-block LoC (Table 1's "P4" column).
    pub p4_loc: usize,
    /// The paper's own update delay for this program (ms) — our measured
    /// value is compared against this in EXPERIMENTS.md.
    pub paper_delay_ms: f64,
    /// Prior system's update delay (ms), where Table 1 reports one.
    pub prior: Option<(PriorSystem, f64)>,
}

/// Default filters used by the canonical instances.
pub const FILTER_NC: &str = "<hdr.udp.dst_port, 7777, 0xffff>";
/// `FILTER_IP`.
pub const FILTER_IP: &str = "<hdr.ipv4.dst, 10.0.0.0, 0xffff0000>";
/// `FILTER_SRC`.
pub const FILTER_SRC: &str = "<hdr.ipv4.src, 10.0.0.0, 0xffff0000>";

/// Build the canonical instance of every Table 1 program.
pub fn all() -> Vec<ProgramSpec> {
    vec![
        ProgramSpec {
            name: "cache",
            source: sources::cache("cache", FILTER_NC, 1024, &[(0x8888, 512)]),
            p4_loc: 77,
            paper_delay_ms: 11.47,
            prior: Some((PriorSystem::ActiveRmt, 194.30)),
        },
        ProgramSpec {
            name: "lb",
            source: sources::lb("lb", FILTER_IP, 256, &[0, 1]),
            p4_loc: 63,
            paper_delay_ms: 10.63,
            prior: Some((PriorSystem::ActiveRmt, 225.46)),
        },
        ProgramSpec {
            name: "hh",
            source: sources::hh("hh", FILTER_SRC, 1024, 1024),
            p4_loc: 109,
            paper_delay_ms: 30.64,
            prior: Some((PriorSystem::ActiveRmt, 228.70)),
        },
        ProgramSpec {
            name: "netcache",
            source: sources::netcache("netcache", FILTER_NC, 1024, &[(0x8888, 512)], 128),
            p4_loc: 152,
            paper_delay_ms: 40.06,
            prior: None,
        },
        ProgramSpec {
            name: "dqacc",
            source: sources::dqacc("dqacc", FILTER_NC, 256),
            p4_loc: 137,
            paper_delay_ms: 15.45,
            prior: None,
        },
        ProgramSpec {
            name: "firewall",
            source: sources::firewall("firewall", 31, 1024),
            p4_loc: 88,
            paper_delay_ms: 19.70,
            prior: None,
        },
        ProgramSpec {
            name: "l2fwd",
            source: sources::l2_forwarding("l2fwd", &[(0x0000_0001, 1), (0x0000_0002, 2)]),
            p4_loc: 33,
            paper_delay_ms: 2.98,
            prior: None,
        },
        ProgramSpec {
            name: "l3route",
            source: sources::l3_routing("l3route", &[(0x0a00_0000, 0xff00_0000, 7)]),
            p4_loc: 34,
            paper_delay_ms: 1.88,
            prior: None,
        },
        ProgramSpec {
            name: "tunnel",
            source: sources::tunnel("tunnel", FILTER_IP, 0x0a0a_0a0a, 8),
            p4_loc: 51,
            paper_delay_ms: 2.38,
            prior: None,
        },
        ProgramSpec {
            name: "calculator",
            source: sources::calculator("calculator"),
            p4_loc: 53,
            paper_delay_ms: 26.74,
            prior: None,
        },
        ProgramSpec {
            name: "ecn",
            source: sources::ecn("ecn", FILTER_IP),
            p4_loc: 18,
            paper_delay_ms: 4.84,
            prior: None,
        },
        ProgramSpec {
            name: "cms",
            source: sources::cms("cms", FILTER_SRC, 1024),
            p4_loc: 78,
            paper_delay_ms: 14.21,
            prior: Some((PriorSystem::FlyMon, 27.46)),
        },
        ProgramSpec {
            name: "bf",
            source: sources::bloom("bf", FILTER_SRC, 1024),
            p4_loc: 78,
            paper_delay_ms: 12.51,
            prior: Some((PriorSystem::FlyMon, 32.09)),
        },
        ProgramSpec {
            name: "sumax",
            source: sources::sumax("sumax", FILTER_SRC, 1024),
            p4_loc: 80,
            paper_delay_ms: 19.94,
            prior: Some((PriorSystem::FlyMon, 22.88)),
        },
        ProgramSpec {
            name: "hll",
            source: sources::hll("hll", FILTER_SRC, 256),
            p4_loc: 180,
            paper_delay_ms: 166.90,
            prior: Some((PriorSystem::FlyMon, 17.37)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use p4rp_lang::{count_loc, parse};

    #[test]
    fn fifteen_programs() {
        assert_eq!(all().len(), 15);
    }

    #[test]
    fn all_parse_and_names_unique() {
        let specs = all();
        let mut names: Vec<&str> = specs.iter().map(|s| s.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 15);
        for s in &specs {
            parse(&s.source).unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn p4runpro_loc_beats_p4_everywhere() {
        // Table 1's headline: the P4runpro expression is smaller than the
        // equivalent P4 control block for every program.
        for s in all() {
            let ours = count_loc(&s.source);
            assert!(
                ours < s.p4_loc,
                "{}: ours {ours} !< P4 {}",
                s.name,
                s.p4_loc
            );
        }
    }
}
