//! # p4rp-progs — the 15 example programs of Table 1
//!
//! * [`sources`] — canonical P4runpro sources, parameterized on the
//!   elastic configuration (cached keys, DIPs, routes) and memory sizes;
//! * [`catalog`] — the Table 1 rows, with the paper's P4-LoC and
//!   prior-system comparison data;
//! * [`workloads`] — unique-instance generators for the §6.2 deployment
//!   experiments (cache / lb / hh / nc / mix / all-mixed).

pub mod catalog;
pub mod sources;
pub mod workloads;

pub use catalog::{all as catalog_all, PriorSystem, ProgramSpec};
pub use workloads::{instance, instance_filter, Family, Workload, WorkloadParams};
